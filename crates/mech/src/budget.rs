//! Privacy parameters and sequential composition.

/// Errors produced by budget operations.
#[derive(Debug, Clone, PartialEq)]
pub enum BudgetError {
    /// ε must be finite and strictly positive.
    InvalidEpsilon {
        /// The rejected value.
        value: f64,
    },
    /// A spend would exceed the remaining budget.
    Exhausted {
        /// Amount requested.
        requested: f64,
        /// Amount remaining.
        remaining: f64,
    },
}

impl core::fmt::Display for BudgetError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BudgetError::InvalidEpsilon { value } => write!(f, "invalid epsilon {value}"),
            BudgetError::Exhausted {
                requested,
                remaining,
            } => write!(
                f,
                "privacy budget exhausted: requested {requested}, remaining {remaining}"
            ),
        }
    }
}

impl std::error::Error for BudgetError {}

/// A validated privacy parameter `ε > 0`.
///
/// Smaller ε means more privacy and more noise; the paper evaluates
/// `ε ∈ {1.0, 0.1, 0.01}`.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Epsilon(f64);

impl Epsilon {
    /// Validates and wraps an ε value.
    pub fn new(value: f64) -> Result<Self, BudgetError> {
        if !value.is_finite() || value <= 0.0 {
            return Err(BudgetError::InvalidEpsilon { value });
        }
        Ok(Self(value))
    }

    /// The raw value.
    #[inline]
    pub fn value(&self) -> f64 {
        self.0
    }

    /// Splits the budget into `parts` equal shares (sequential composition in
    /// reverse: running each share-protocol once composes back to `self`).
    pub fn split(&self, parts: usize) -> Vec<Epsilon> {
        assert!(parts > 0, "cannot split into zero parts");
        vec![Epsilon(self.0 / parts as f64); parts]
    }
}

impl core::fmt::Display for Epsilon {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "ε={}", self.0)
    }
}

/// A mutable privacy-budget account implementing sequential composition.
///
/// The paper (Sec. 2.1): "the protocol that computes an εᵢ-differentially
/// private response to the i-th sequence is (Σᵢεᵢ)-differentially private."
/// The account enforces that total.
#[derive(Debug, Clone)]
pub struct PrivacyBudget {
    total: f64,
    spent: f64,
    ledger: Vec<(String, f64)>,
}

impl PrivacyBudget {
    /// Opens an account with the given total ε.
    pub fn new(total: Epsilon) -> Self {
        Self {
            total: total.value(),
            spent: 0.0,
            ledger: Vec::new(),
        }
    }

    /// Attempts to spend `amount` for a release labelled `purpose`.
    pub fn spend(
        &mut self,
        purpose: impl Into<String>,
        amount: Epsilon,
    ) -> Result<Epsilon, BudgetError> {
        let a = amount.value();
        // Tolerate float dust from equal splits summing to the total.
        if self.spent + a > self.total * (1.0 + 1e-12) {
            return Err(BudgetError::Exhausted {
                requested: a,
                remaining: self.remaining(),
            });
        }
        self.spent += a;
        self.ledger.push((purpose.into(), a));
        Ok(amount)
    }

    /// Budget not yet spent.
    pub fn remaining(&self) -> f64 {
        (self.total - self.spent).max(0.0)
    }

    /// Total spent so far — by sequential composition, the privacy level of
    /// everything released against this account.
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// The release ledger: `(purpose, ε)` pairs in spend order.
    pub fn ledger(&self) -> &[(String, f64)] {
        &self.ledger
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_validation() {
        assert!(Epsilon::new(0.1).is_ok());
        assert!(Epsilon::new(0.0).is_err());
        assert!(Epsilon::new(-1.0).is_err());
        assert!(Epsilon::new(f64::INFINITY).is_err());
        assert!(Epsilon::new(f64::NAN).is_err());
    }

    #[test]
    fn split_shares_sum_to_whole() {
        let e = Epsilon::new(1.0).unwrap();
        let parts = e.split(4);
        assert_eq!(parts.len(), 4);
        let total: f64 = parts.iter().map(|p| p.value()).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn budget_accounts_for_spending() {
        let mut b = PrivacyBudget::new(Epsilon::new(1.0).unwrap());
        b.spend("hist-1", Epsilon::new(0.4).unwrap()).unwrap();
        b.spend("hist-2", Epsilon::new(0.6).unwrap()).unwrap();
        assert!(b.remaining() < 1e-12);
        assert_eq!(b.ledger().len(), 2);
        assert!((b.spent() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overspend_is_rejected() {
        let mut b = PrivacyBudget::new(Epsilon::new(0.5).unwrap());
        b.spend("a", Epsilon::new(0.3).unwrap()).unwrap();
        let err = b.spend("b", Epsilon::new(0.3).unwrap()).unwrap_err();
        assert!(matches!(err, BudgetError::Exhausted { .. }));
        // Failed spends do not mutate the account.
        assert!((b.spent() - 0.3).abs() < 1e-12);
        assert_eq!(b.ledger().len(), 1);
    }

    #[test]
    fn equal_split_spends_exactly_exhaust() {
        let total = Epsilon::new(1.0).unwrap();
        let mut b = PrivacyBudget::new(total);
        for (i, part) in total.split(3).into_iter().enumerate() {
            b.spend(format!("part-{i}"), part).unwrap();
        }
        assert!(b.remaining() < 1e-9);
    }
}
