//! Privacy parameters and sequential composition.

/// Errors produced by budget operations.
#[derive(Debug, Clone, PartialEq)]
pub enum BudgetError {
    /// ε must be finite and strictly positive.
    InvalidEpsilon {
        /// The rejected value.
        value: f64,
    },
    /// A spend would exceed the remaining budget.
    Exhausted {
        /// Amount requested.
        requested: f64,
        /// Amount remaining.
        remaining: f64,
    },
    /// δ must lie in `[0, 1)` (δ = 0 is pure ε-DP).
    InvalidDelta {
        /// The rejected value.
        value: f64,
    },
    /// A spend's δ would exceed the account's remaining δ allowance.
    DeltaExhausted {
        /// δ requested.
        requested: f64,
        /// δ remaining.
        remaining: f64,
    },
}

impl core::fmt::Display for BudgetError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BudgetError::InvalidEpsilon { value } => write!(f, "invalid epsilon {value}"),
            BudgetError::Exhausted {
                requested,
                remaining,
            } => write!(
                f,
                "privacy budget exhausted: requested {requested}, remaining {remaining}"
            ),
            BudgetError::InvalidDelta { value } => write!(f, "invalid delta {value}"),
            BudgetError::DeltaExhausted {
                requested,
                remaining,
            } => write!(
                f,
                "delta allowance exhausted: requested {requested}, remaining {remaining}"
            ),
        }
    }
}

impl std::error::Error for BudgetError {}

/// A validated privacy parameter `ε > 0`.
///
/// Smaller ε means more privacy and more noise; the paper evaluates
/// `ε ∈ {1.0, 0.1, 0.01}`.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Epsilon(f64);

impl Epsilon {
    /// Validates and wraps an ε value.
    pub fn new(value: f64) -> Result<Self, BudgetError> {
        if !value.is_finite() || value <= 0.0 {
            return Err(BudgetError::InvalidEpsilon { value });
        }
        Ok(Self(value))
    }

    /// The raw value.
    #[inline]
    pub fn value(&self) -> f64 {
        self.0
    }

    /// Splits the budget into `parts` equal shares (sequential composition in
    /// reverse: running each share-protocol once composes back to `self`).
    pub fn split(&self, parts: usize) -> Vec<Epsilon> {
        assert!(parts > 0, "cannot split into zero parts");
        vec![Epsilon(self.0 / parts as f64); parts]
    }
}

impl core::fmt::Display for Epsilon {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "ε={}", self.0)
    }
}

/// A mutable privacy-budget account implementing sequential composition.
///
/// The paper (Sec. 2.1): "the protocol that computes an εᵢ-differentially
/// private response to the i-th sequence is (Σᵢεᵢ)-differentially private."
/// The account enforces that total.
#[derive(Debug, Clone)]
pub struct PrivacyBudget {
    total: f64,
    spent: f64,
    ledger: Vec<(String, f64)>,
}

impl PrivacyBudget {
    /// Opens an account with the given total ε.
    pub fn new(total: Epsilon) -> Self {
        Self {
            total: total.value(),
            spent: 0.0,
            ledger: Vec::new(),
        }
    }

    /// Attempts to spend `amount` for a release labelled `purpose`.
    pub fn spend(
        &mut self,
        purpose: impl Into<String>,
        amount: Epsilon,
    ) -> Result<Epsilon, BudgetError> {
        let a = amount.value();
        // Tolerate float dust from equal splits summing to the total.
        if self.spent + a > self.total * (1.0 + 1e-12) {
            return Err(BudgetError::Exhausted {
                requested: a,
                remaining: self.remaining(),
            });
        }
        self.spent += a;
        self.ledger.push((purpose.into(), a));
        Ok(amount)
    }

    /// Budget not yet spent.
    pub fn remaining(&self) -> f64 {
        (self.total - self.spent).max(0.0)
    }

    /// Total spent so far — by sequential composition, the privacy level of
    /// everything released against this account.
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// The release ledger: `(purpose, ε)` pairs in spend order.
    pub fn ledger(&self) -> &[(String, f64)] {
        &self.ledger
    }
}

/// One named spend in a [`PrivacyAccountant`]'s ledger — self-describing,
/// unlike the positional `(String, f64)` pairs of [`PrivacyBudget`].
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerEntry {
    /// The caller-chosen spend label (e.g. `release-3`).
    pub label: String,
    /// The ε debited by this spend.
    pub epsilon: f64,
    /// The δ debited by this spend — `0.0` for pure ε-DP releases, positive
    /// for (ε,δ) entries such as the stability mechanism's.
    pub delta: f64,
    /// The release epoch the spend funded (0 for out-of-band spends that
    /// are not tied to a snapshot epoch).
    pub release_epoch: u64,
}

/// A privacy accountant: sequential composition over named (ε, δ) spends.
///
/// The successor to [`PrivacyBudget`] and the account type the serving
/// layer keeps per tenant. Composition is the paper's (Sec. 2.1): a sum of
/// εᵢ-DP responses is (Σεᵢ)-DP, and likewise for δ under basic sequential
/// composition — the accountant tracks both sums against separate
/// allowances. δ defaults to an allowance of 0, which makes every
/// positive-δ spend fail: pure-ε accounts cannot silently weaken to
/// approximate DP, a caller must opt in with [`Self::with_delta`] (the
/// stability-mechanism path for sparse/unknown domains does).
#[derive(Debug, Clone)]
pub struct PrivacyAccountant {
    total: f64,
    total_delta: f64,
    spent: f64,
    spent_delta: f64,
    ledger: Vec<LedgerEntry>,
}

impl PrivacyAccountant {
    /// Opens a pure-ε account with the given total ε (δ allowance 0).
    pub fn new(total: Epsilon) -> Self {
        Self {
            total: total.value(),
            total_delta: 0.0,
            spent: 0.0,
            spent_delta: 0.0,
            ledger: Vec::new(),
        }
    }

    /// Grants a total δ allowance for (ε,δ) spends. `delta` must lie in
    /// `[0, 1)`.
    pub fn with_delta(mut self, delta: f64) -> Result<Self, BudgetError> {
        if !delta.is_finite() || !(0.0..1.0).contains(&delta) {
            return Err(BudgetError::InvalidDelta { value: delta });
        }
        self.total_delta = delta;
        Ok(self)
    }

    /// Spends pure ε for a release labelled `label` at epoch 0 — the
    /// shorthand for out-of-band spends. Failed spends do not mutate the
    /// account.
    pub fn spend(
        &mut self,
        label: impl Into<String>,
        amount: Epsilon,
    ) -> Result<Epsilon, BudgetError> {
        self.spend_at(label, amount, 0.0, 0)
    }

    /// Spends (ε, δ) for a release labelled `label` funding
    /// `release_epoch`. Checks both allowances *before* mutating: a failed
    /// spend leaves the account untouched.
    pub fn spend_at(
        &mut self,
        label: impl Into<String>,
        amount: Epsilon,
        delta: f64,
        release_epoch: u64,
    ) -> Result<Epsilon, BudgetError> {
        if !delta.is_finite() || !(0.0..1.0).contains(&delta) {
            return Err(BudgetError::InvalidDelta { value: delta });
        }
        let a = amount.value();
        // Tolerate float dust from equal splits summing to the total.
        if self.spent + a > self.total * (1.0 + 1e-12) {
            return Err(BudgetError::Exhausted {
                requested: a,
                remaining: self.remaining(),
            });
        }
        if self.spent_delta + delta > self.total_delta * (1.0 + 1e-12) {
            return Err(BudgetError::DeltaExhausted {
                requested: delta,
                remaining: self.remaining_delta(),
            });
        }
        self.spent += a;
        self.spent_delta += delta;
        self.ledger.push(LedgerEntry {
            label: label.into(),
            epsilon: a,
            delta,
            release_epoch,
        });
        Ok(amount)
    }

    /// ε not yet spent.
    pub fn remaining(&self) -> f64 {
        (self.total - self.spent).max(0.0)
    }

    /// δ allowance not yet spent.
    pub fn remaining_delta(&self) -> f64 {
        (self.total_delta - self.spent_delta).max(0.0)
    }

    /// Total ε spent so far — by sequential composition, the ε level of
    /// everything released against this account.
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// Total δ spent so far.
    pub fn spent_delta(&self) -> f64 {
        self.spent_delta
    }

    /// The release ledger in spend order.
    pub fn ledger(&self) -> &[LedgerEntry] {
        &self.ledger
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_validation() {
        assert!(Epsilon::new(0.1).is_ok());
        assert!(Epsilon::new(0.0).is_err());
        assert!(Epsilon::new(-1.0).is_err());
        assert!(Epsilon::new(f64::INFINITY).is_err());
        assert!(Epsilon::new(f64::NAN).is_err());
    }

    #[test]
    fn split_shares_sum_to_whole() {
        let e = Epsilon::new(1.0).unwrap();
        let parts = e.split(4);
        assert_eq!(parts.len(), 4);
        let total: f64 = parts.iter().map(|p| p.value()).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn budget_accounts_for_spending() {
        let mut b = PrivacyBudget::new(Epsilon::new(1.0).unwrap());
        b.spend("hist-1", Epsilon::new(0.4).unwrap()).unwrap();
        b.spend("hist-2", Epsilon::new(0.6).unwrap()).unwrap();
        assert!(b.remaining() < 1e-12);
        assert_eq!(b.ledger().len(), 2);
        assert!((b.spent() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overspend_is_rejected() {
        let mut b = PrivacyBudget::new(Epsilon::new(0.5).unwrap());
        b.spend("a", Epsilon::new(0.3).unwrap()).unwrap();
        let err = b.spend("b", Epsilon::new(0.3).unwrap()).unwrap_err();
        assert!(matches!(err, BudgetError::Exhausted { .. }));
        // Failed spends do not mutate the account.
        assert!((b.spent() - 0.3).abs() < 1e-12);
        assert_eq!(b.ledger().len(), 1);
    }

    #[test]
    fn equal_split_spends_exactly_exhaust() {
        let total = Epsilon::new(1.0).unwrap();
        let mut b = PrivacyBudget::new(total);
        for (i, part) in total.split(3).into_iter().enumerate() {
            b.spend(format!("part-{i}"), part).unwrap();
        }
        assert!(b.remaining() < 1e-9);
    }

    #[test]
    fn accountant_tracks_named_epsilon_delta_spends() {
        let mut a = PrivacyAccountant::new(Epsilon::new(1.0).unwrap())
            .with_delta(1e-6)
            .unwrap();
        a.spend_at("release-0", Epsilon::new(0.4).unwrap(), 0.0, 1)
            .unwrap();
        a.spend_at("stability", Epsilon::new(0.3).unwrap(), 4e-7, 0)
            .unwrap();
        assert!((a.spent() - 0.7).abs() < 1e-12);
        assert!((a.spent_delta() - 4e-7).abs() < 1e-18);
        assert!((a.remaining() - 0.3).abs() < 1e-12);
        assert!((a.remaining_delta() - 6e-7).abs() < 1e-18);
        assert_eq!(
            a.ledger(),
            &[
                LedgerEntry {
                    label: "release-0".into(),
                    epsilon: 0.4,
                    delta: 0.0,
                    release_epoch: 1,
                },
                LedgerEntry {
                    label: "stability".into(),
                    epsilon: 0.3,
                    delta: 4e-7,
                    release_epoch: 0,
                },
            ]
        );
    }

    #[test]
    fn accountant_failed_spends_leave_the_account_untouched() {
        let mut a = PrivacyAccountant::new(Epsilon::new(0.5).unwrap());
        a.spend("a", Epsilon::new(0.3).unwrap()).unwrap();
        let err = a.spend("b", Epsilon::new(0.3).unwrap()).unwrap_err();
        assert!(matches!(err, BudgetError::Exhausted { .. }));
        // A pure-ε account rejects any positive δ — and the ε side of the
        // rejected spend must not have been debited.
        let err = a
            .spend_at("c", Epsilon::new(0.1).unwrap(), 1e-9, 2)
            .unwrap_err();
        assert!(matches!(err, BudgetError::DeltaExhausted { .. }), "{err}");
        assert!((a.spent() - 0.3).abs() < 1e-12);
        assert_eq!(a.spent_delta(), 0.0);
        assert_eq!(a.ledger().len(), 1);
    }

    #[test]
    fn accountant_rejects_invalid_delta() {
        assert!(matches!(
            PrivacyAccountant::new(Epsilon::new(1.0).unwrap()).with_delta(1.0),
            Err(BudgetError::InvalidDelta { .. })
        ));
        let mut a = PrivacyAccountant::new(Epsilon::new(1.0).unwrap());
        assert!(matches!(
            a.spend_at("bad", Epsilon::new(0.1).unwrap(), -0.1, 0),
            Err(BudgetError::InvalidDelta { .. })
        ));
    }
}
