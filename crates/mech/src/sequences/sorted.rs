//! The sorted query sequence `S` for unattributed histograms.

use std::borrow::Cow;

use hc_data::Histogram;

use crate::QuerySequence;

/// The sorted strategy `S = ⟨rank₁(U), …, rankₙ(U)⟩` (Sec. 3): the multiset
/// of unit counts in ascending order.
///
/// Sorting happens *before* noise is added, so the analyst knows the true
/// answers are ordered — the inequality constraints `γ_S` that `hc-core`'s
/// isotonic regression exploits. Proposition 3: sensitivity is still 1,
/// because adding one record moves a single rank boundary by one without
/// disturbing the sort order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SortedQuery;

impl QuerySequence for SortedQuery {
    fn output_len(&self, domain_size: usize) -> usize {
        domain_size
    }

    fn evaluate(&self, histogram: &Histogram) -> Vec<f64> {
        histogram
            .sorted_counts()
            .into_iter()
            .map(|c| c as f64)
            .collect()
    }

    fn sensitivity(&self, _domain_size: usize) -> f64 {
        1.0
    }

    fn label(&self) -> Cow<'static, str> {
        Cow::Borrowed("S")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_data::Domain;

    fn example() -> Histogram {
        Histogram::from_counts(Domain::new("src", 4).unwrap(), vec![2, 0, 10, 2])
    }

    #[test]
    fn evaluates_to_sorted_counts() {
        // Example 3: S(I) = ⟨0, 2, 2, 10⟩.
        assert_eq!(SortedQuery.evaluate(&example()), vec![0.0, 2.0, 2.0, 10.0]);
    }

    #[test]
    fn output_is_always_nondecreasing() {
        let h = Histogram::from_counts(Domain::new("x", 6).unwrap(), vec![9, 1, 4, 4, 0, 7]);
        let s = SortedQuery.evaluate(&h);
        assert!(s.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn shape_and_sensitivity() {
        assert_eq!(SortedQuery.output_len(4), 4);
        assert_eq!(SortedQuery.sensitivity(4), 1.0);
        assert_eq!(SortedQuery.label(), "S");
    }
}
