//! The unit-length query sequence `L`.

use std::borrow::Cow;

use hc_data::Histogram;

use crate::QuerySequence;

/// The conventional strategy `L = ⟨c([x₁]), …, c([xₙ])⟩`: one counting query
/// per domain element (Sec. 2).
///
/// Sensitivity is 1 (Example 2): adding or removing a record changes exactly
/// one count by exactly one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnitQuery;

impl QuerySequence for UnitQuery {
    fn output_len(&self, domain_size: usize) -> usize {
        domain_size
    }

    fn evaluate(&self, histogram: &Histogram) -> Vec<f64> {
        histogram.counts_f64()
    }

    fn evaluate_into(&self, histogram: &Histogram, out: &mut Vec<f64>) {
        out.clear();
        out.extend(histogram.counts().iter().map(|&c| c as f64));
    }

    fn evaluate_into_slice(&self, histogram: &Histogram, out: &mut [f64]) {
        assert_eq!(out.len(), histogram.len(), "one slot per domain bin");
        for (slot, &c) in out.iter_mut().zip(histogram.counts()) {
            *slot = c as f64;
        }
    }

    fn sensitivity(&self, _domain_size: usize) -> f64 {
        1.0
    }

    fn label(&self) -> Cow<'static, str> {
        Cow::Borrowed("L")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_data::Domain;

    fn example() -> Histogram {
        Histogram::from_counts(Domain::new("src", 4).unwrap(), vec![2, 0, 10, 2])
    }

    #[test]
    fn evaluates_to_unit_counts() {
        // Example 1: L(I) = ⟨2, 0, 10, 2⟩.
        assert_eq!(UnitQuery.evaluate(&example()), vec![2.0, 0.0, 10.0, 2.0]);
    }

    #[test]
    fn shape_and_sensitivity() {
        assert_eq!(UnitQuery.output_len(4), 4);
        assert_eq!(UnitQuery.sensitivity(4), 1.0);
        assert_eq!(UnitQuery.label(), "L");
    }
}
