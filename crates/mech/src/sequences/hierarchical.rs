//! The hierarchical query sequence `H` and k-ary tree geometry.

use std::borrow::Cow;

use hc_data::{Histogram, Interval};

use crate::QuerySequence;

/// Upper bound on tree heights: a binary tree of height 64 already has more
/// nodes than a `usize` can index, so the inline offset table below never
/// constrains a representable tree.
const MAX_HEIGHT: usize = 64;

/// Geometry of a complete k-ary interval tree (Sec. 4, Fig. 4).
///
/// Nodes are identified by their breadth-first index: the root is `0` and the
/// children of node `v` are `k·v + 1 … k·v + k`. Level 0 is the root; leaves
/// sit at depth `ℓ − 1` where `ℓ` is the paper's *height in nodes*
/// (`ℓ = log_k n + 1`).
///
/// All arithmetic is implicit in the index — the tree is never materialized
/// as a pointer structure, and the offset table is an inline array, so
/// constructing or cloning a `TreeShape` performs **no heap allocation**
/// (the release→inference hot loops construct one per trial).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeShape {
    branching: usize,
    height: usize,
    /// `level_offset[d]` is the BFS index of the first node at depth `d`
    /// for `d ≤ height`, with the entry at `height` a sentinel holding the
    /// total node count; entries beyond that are zero (so derived equality
    /// over the whole array is equivalent to prefix equality).
    level_offset: [usize; MAX_HEIGHT + 1],
}

impl TreeShape {
    /// A complete tree with the given branching factor `k ≥ 2` and height
    /// `ℓ ≥ 1` (number of levels).
    pub fn new(branching: usize, height: usize) -> Self {
        assert!(branching >= 2, "branching factor must be at least 2");
        assert!(height >= 1, "height must be at least 1");
        assert!(
            height <= MAX_HEIGHT,
            "height exceeds the representable bound"
        );
        let mut level_offset = [0usize; MAX_HEIGHT + 1];
        let mut offset = 0usize;
        let mut width = 1usize;
        for slot in level_offset.iter_mut().take(height) {
            *slot = offset;
            offset += width;
            width = width.saturating_mul(branching);
        }
        level_offset[height] = offset;
        Self {
            branching,
            height,
            level_offset,
        }
    }

    /// The smallest complete `k`-ary tree whose leaf level covers a domain of
    /// `domain_size` bins. Domains that are not a power of `k` are embedded
    /// by zero-padding on the right (`Histogram::zero_padded`).
    pub fn for_domain(domain_size: usize, branching: usize) -> Self {
        assert!(domain_size >= 1, "domain must be non-empty");
        let mut height = 1;
        let mut leaves = 1usize;
        while leaves < domain_size {
            leaves = leaves.saturating_mul(branching);
            height += 1;
        }
        Self::new(branching, height)
    }

    /// The branching factor `k`.
    #[inline]
    pub fn branching(&self) -> usize {
        self.branching
    }

    /// The height `ℓ` in nodes (root and leaf levels inclusive) — the
    /// sensitivity of the `H` query (Proposition 4).
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of leaves, `k^(ℓ−1)`.
    #[inline]
    pub fn leaves(&self) -> usize {
        self.level_offset[self.height] - self.level_offset[self.height - 1]
    }

    /// Total number of nodes `m = (k^ℓ − 1)/(k − 1)` — the length of the `H`
    /// query sequence.
    #[inline]
    pub fn nodes(&self) -> usize {
        self.level_offset[self.height]
    }

    /// The BFS index range of nodes at `depth` (0 = root).
    pub fn level(&self, depth: usize) -> core::ops::Range<usize> {
        assert!(depth < self.height, "depth out of range");
        self.level_offset[depth]..self.level_offset[depth + 1]
    }

    /// The raw level-offset table: `level_offsets()[d]` is the BFS index of
    /// the first node at depth `d`, and a final sentinel holds the total node
    /// count (`len = height + 1`). This is the contiguous layout the
    /// `hc-core` inference engine's per-level slices are built on.
    #[inline]
    pub fn level_offsets(&self) -> &[usize] {
        &self.level_offset[..self.height + 1]
    }

    /// Number of nodes at `depth` (`k^depth` for a complete tree).
    #[inline]
    pub fn level_width(&self, depth: usize) -> usize {
        assert!(depth < self.height, "depth out of range");
        self.level_offset[depth + 1] - self.level_offset[depth]
    }

    /// The BFS index of the first leaf (`level_offsets()[height − 1]`).
    ///
    /// Because children of BFS node `v` are `k·v + 1 … k·v + k`, the children
    /// of the `i`-th node at depth `d` start at `level_offsets()[d + 1] + i·k`
    /// — each level is a contiguous run and sibling groups never interleave,
    /// which is what lets the engine walk levels as flat slices.
    #[inline]
    pub fn first_leaf(&self) -> usize {
        self.level_offset[self.height - 1]
    }

    /// The depth of node `v` (0 = root).
    pub fn depth(&self, v: usize) -> usize {
        assert!(v < self.nodes(), "node index out of range");
        // height <= ~40 in practice; linear scan beats binary search at this
        // size and is branch-predictable.
        let mut d = 0;
        while self.level_offset[d + 1] <= v {
            d += 1;
        }
        d
    }

    /// The paper's *height of a node* `l`: leaves have `l = 1`, the root has
    /// `l = ℓ`. This is the `l` in the `z[v]` recurrence of Sec. 4.1.
    pub fn node_height(&self, v: usize) -> usize {
        self.height - self.depth(v)
    }

    /// Whether `v` is a leaf.
    #[inline]
    pub fn is_leaf(&self, v: usize) -> bool {
        v >= self.level_offset[self.height - 1]
    }

    /// Whether `v` is the root.
    #[inline]
    pub fn is_root(&self, v: usize) -> bool {
        v == 0
    }

    /// The parent of `v`, or `None` for the root.
    pub fn parent(&self, v: usize) -> Option<usize> {
        (v > 0).then(|| (v - 1) / self.branching)
    }

    /// The children of `v` (empty for leaves).
    pub fn children(&self, v: usize) -> core::ops::Range<usize> {
        if self.is_leaf(v) {
            0..0
        } else {
            let first = self.branching * v + 1;
            first..first + self.branching
        }
    }

    /// The BFS index of the `i`-th leaf.
    pub fn leaf_node(&self, leaf_index: usize) -> usize {
        assert!(leaf_index < self.leaves(), "leaf index out of range");
        self.level_offset[self.height - 1] + leaf_index
    }

    /// The leaf-position interval `[lo, hi]` covered by node `v`.
    pub fn leaf_span(&self, v: usize) -> Interval {
        let d = self.depth(v);
        let pos_in_level = v - self.level_offset[d];
        // Each node at depth d covers k^(ℓ-1-d) leaves.
        let span = self.branching.pow((self.height - 1 - d) as u32);
        Interval::new(pos_in_level * span, (pos_in_level + 1) * span - 1)
    }

    /// The minimal set of nodes whose leaf spans exactly tile `target`
    /// (the "fewest sub-intervals" strategy used to answer range queries
    /// from `H̃`, Sec. 4.2). At most `2ℓ` nodes for binary trees, and more
    /// generally at most `2(k−1)` per level.
    pub fn subtree_decomposition(&self, target: Interval) -> Vec<usize> {
        let mut out = Vec::new();
        self.subtree_decomposition_into(target, &mut out);
        out
    }

    /// [`Self::subtree_decomposition`] into a caller-owned buffer (cleared
    /// first) — the allocation-free form used by the experiment trial loops,
    /// which answer thousands of range queries per release. Nodes are pushed
    /// in the same order as [`Self::subtree_decomposition`].
    pub fn subtree_decomposition_into(&self, target: Interval, out: &mut Vec<usize>) {
        assert!(
            target.hi() < self.leaves(),
            "target {target} outside leaf range"
        );
        out.clear();
        self.decompose_into(0, target, out);
    }

    fn decompose_into(&self, v: usize, target: Interval, out: &mut Vec<usize>) {
        let span = self.leaf_span(v);
        if target.covers(&span) {
            out.push(v);
            return;
        }
        for child in self.children(v) {
            if self.leaf_span(child).intersect(&target).is_some() {
                self.decompose_into(child, target, out);
            }
        }
    }
}

/// The hierarchical strategy `H` (Sec. 4): all interval counts of a complete
/// k-ary tree over the domain, in breadth-first order.
///
/// Proposition 4: sensitivity is the tree height `ℓ`, because one record lies
/// in exactly one interval per level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchicalQuery {
    branching: usize,
}

impl HierarchicalQuery {
    /// A hierarchy with branching factor `k ≥ 2`.
    pub fn new(branching: usize) -> Self {
        assert!(branching >= 2, "branching factor must be at least 2");
        Self { branching }
    }

    /// The binary hierarchy used in the paper's experiments.
    pub fn binary() -> Self {
        Self::new(2)
    }

    /// The branching factor.
    #[inline]
    pub fn branching(&self) -> usize {
        self.branching
    }

    /// The tree geometry this query induces over a domain.
    pub fn shape(&self, domain_size: usize) -> TreeShape {
        TreeShape::for_domain(domain_size, self.branching)
    }

    /// Evaluates the tree counts bottom-up into a caller-owned buffer.
    ///
    /// Level-indexed form of the reverse-BFS walk: padding is written as
    /// zeros directly (no padded histogram copy) and each parent accumulates
    /// its children in *descending* index order — the order the reverse-BFS
    /// reference walk adds them — so the output is bit-identical to the
    /// per-node `values[parent(v)] += values[v]` recurrence while doing no
    /// division-heavy `parent()` arithmetic and no allocation after warm-up.
    fn tree_counts_into(&self, histogram: &Histogram, out: &mut Vec<f64>) {
        let nodes = self.shape(histogram.len()).nodes();
        out.resize(nodes, 0.0);
        self.tree_counts_into_slice(histogram, out);
    }

    /// The slice core of [`Self::tree_counts_into`]: writes the full tree
    /// vector into a pre-sized slice (every slot assigned — leaves, padding,
    /// and parents), so batch pipelines can evaluate straight into one
    /// trial's segment of a shared batch buffer.
    fn tree_counts_into_slice(&self, histogram: &Histogram, out: &mut [f64]) {
        let shape = self.shape(histogram.len());
        assert_eq!(out.len(), shape.nodes(), "output slice must cover the tree");
        let first_leaf = shape.first_leaf();
        // Leaves: the domain counts, then explicit zero padding — internal
        // nodes need no initialization because the accumulation below
        // *assigns* each parent rather than accumulating into it.
        for (slot, &c) in out[first_leaf..].iter_mut().zip(histogram.counts()) {
            *slot = c as f64;
        }
        for slot in &mut out[first_leaf + histogram.len()..] {
            *slot = 0.0;
        }
        let offsets = shape.level_offsets();
        let k = shape.branching();
        for d in (1..shape.height()).rev() {
            let (lo, hi) = (offsets[d - 1], offsets[d]);
            let (parents, rest) = out[lo..].split_at_mut(hi - lo);
            let children = &rest[..(hi - lo) * k];
            if k == 2 {
                // 4-way unrolled; each parent is the reverse-BFS fold
                // `(0.0 + c₁) + c₀`, written out so the bits can't drift.
                let n = parents.len();
                let main = n - n % 4;
                for i in (0..main).step_by(4) {
                    let c = &children[2 * i..2 * i + 8];
                    let p = &mut parents[i..i + 4];
                    p[0] = (0.0 + c[1]) + c[0];
                    p[1] = (0.0 + c[3]) + c[2];
                    p[2] = (0.0 + c[5]) + c[4];
                    p[3] = (0.0 + c[7]) + c[6];
                }
                for i in main..n {
                    parents[i] = (0.0 + children[2 * i + 1]) + children[2 * i];
                }
            } else {
                for (i, p) in parents.iter_mut().enumerate() {
                    let mut acc = 0.0f64;
                    for c in children[i * k..(i + 1) * k].iter().rev() {
                        acc += c;
                    }
                    *p = acc;
                }
            }
        }
    }
}

impl QuerySequence for HierarchicalQuery {
    fn output_len(&self, domain_size: usize) -> usize {
        self.shape(domain_size).nodes()
    }

    fn evaluate(&self, histogram: &Histogram) -> Vec<f64> {
        let mut out = Vec::new();
        self.tree_counts_into(histogram, &mut out);
        out
    }

    fn evaluate_into(&self, histogram: &Histogram, out: &mut Vec<f64>) {
        self.tree_counts_into(histogram, out);
    }

    fn evaluate_into_slice(&self, histogram: &Histogram, out: &mut [f64]) {
        self.tree_counts_into_slice(histogram, out);
    }

    fn sensitivity(&self, domain_size: usize) -> f64 {
        self.shape(domain_size).height() as f64
    }

    fn label(&self) -> Cow<'static, str> {
        match self.branching {
            2 => Cow::Borrowed("H2"),
            3 => Cow::Borrowed("H3"),
            4 => Cow::Borrowed("H4"),
            8 => Cow::Borrowed("H8"),
            16 => Cow::Borrowed("H16"),
            k => Cow::Owned(format!("H{k}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_data::Domain;

    fn example() -> Histogram {
        Histogram::from_counts(Domain::new("src", 4).unwrap(), vec![2, 0, 10, 2])
    }

    #[test]
    fn example6_tree_counts() {
        // H(I) = ⟨14, 2, 12, 2, 0, 10, 2⟩ (Fig. 2 / Example 6).
        let h = HierarchicalQuery::binary();
        assert_eq!(
            h.evaluate(&example()),
            vec![14.0, 2.0, 12.0, 2.0, 0.0, 10.0, 2.0]
        );
    }

    #[test]
    fn example6_shape() {
        let shape = HierarchicalQuery::binary().shape(4);
        assert_eq!(shape.height(), 3); // ℓ = 3 in Example 6
        assert_eq!(shape.leaves(), 4);
        assert_eq!(shape.nodes(), 7);
        assert_eq!(HierarchicalQuery::binary().sensitivity(4), 3.0);
    }

    #[test]
    fn node_arithmetic_is_consistent() {
        let shape = TreeShape::new(3, 4); // 27 leaves, 40 nodes
        assert_eq!(shape.nodes(), 1 + 3 + 9 + 27);
        assert_eq!(shape.leaves(), 27);
        for v in 0..shape.nodes() {
            for c in shape.children(v) {
                assert_eq!(shape.parent(c), Some(v));
                assert_eq!(shape.depth(c), shape.depth(v) + 1);
            }
            if !shape.is_root(v) {
                let p = shape.parent(v).unwrap();
                assert!(shape.children(p).contains(&v));
            }
        }
    }

    #[test]
    fn node_heights_follow_paper_convention() {
        let shape = TreeShape::new(2, 3);
        assert_eq!(shape.node_height(0), 3); // root: l = ℓ
        assert_eq!(shape.node_height(1), 2);
        assert_eq!(shape.node_height(3), 1); // leaf: l = 1
    }

    #[test]
    fn leaf_spans_partition_each_level() {
        let shape = TreeShape::new(2, 5);
        for d in 0..shape.height() {
            let mut next_expected = 0usize;
            for v in shape.level(d) {
                let span = shape.leaf_span(v);
                assert_eq!(span.lo(), next_expected);
                next_expected = span.hi() + 1;
            }
            assert_eq!(next_expected, shape.leaves(), "level {d} tiles leaves");
        }
    }

    #[test]
    fn leaf_node_round_trips() {
        let shape = TreeShape::new(4, 3);
        for i in 0..shape.leaves() {
            let v = shape.leaf_node(i);
            assert!(shape.is_leaf(v));
            let span = shape.leaf_span(v);
            assert_eq!((span.lo(), span.hi()), (i, i));
        }
    }

    #[test]
    fn decomposition_tiles_target_exactly() {
        let shape = TreeShape::new(2, 6); // 32 leaves
        for (lo, hi) in [(0, 31), (1, 30), (5, 5), (0, 15), (16, 31), (7, 24)] {
            let target = Interval::new(lo, hi);
            let nodes = shape.subtree_decomposition(target);
            // Spans must be disjoint, sorted by construction, and cover target.
            let mut covered = 0usize;
            let mut cursor = lo;
            let mut spans: Vec<_> = nodes.iter().map(|&v| shape.leaf_span(v)).collect();
            spans.sort_by_key(|s| s.lo());
            for s in &spans {
                assert_eq!(s.lo(), cursor, "gap before {s}");
                cursor = s.hi() + 1;
                covered += s.len();
            }
            assert_eq!(covered, target.len());
            assert_eq!(cursor, hi + 1);
        }
    }

    #[test]
    fn decomposition_is_minimal_for_binary_trees() {
        // At most 2 nodes per level for k = 2 (the bound behind
        // error(H̃_q) = O(ℓ³/ε²)).
        let shape = TreeShape::new(2, 10);
        let n = shape.leaves();
        for (lo, hi) in [(1, n - 2), (3, n / 2 + 1), (0, n - 1), (n / 4, 3 * n / 4)] {
            let nodes = shape.subtree_decomposition(Interval::new(lo, hi));
            let mut per_level = vec![0usize; shape.height()];
            for &v in &nodes {
                per_level[shape.depth(v)] += 1;
            }
            assert!(
                per_level.iter().all(|&c| c <= 2),
                "more than 2 nodes at a level for [{lo}, {hi}]: {per_level:?}"
            );
        }
    }

    #[test]
    fn aligned_range_uses_single_node() {
        let shape = TreeShape::new(2, 5); // 16 leaves
        assert_eq!(shape.subtree_decomposition(Interval::new(0, 7)), vec![1]);
        assert_eq!(shape.subtree_decomposition(Interval::new(8, 15)), vec![2]);
        assert_eq!(shape.subtree_decomposition(Interval::new(0, 15)), vec![0]);
    }

    #[test]
    fn padding_embeds_non_power_domains() {
        let d = Domain::new("x", 5).unwrap();
        let h = Histogram::from_counts(d, vec![1, 2, 3, 4, 5]);
        let q = HierarchicalQuery::binary();
        let shape = q.shape(5);
        assert_eq!(shape.leaves(), 8);
        let values = q.evaluate(&h);
        assert_eq!(values.len(), shape.nodes());
        assert_eq!(values[0], 15.0); // root = total
                                     // Padded leaves contribute zero.
        let first_leaf = shape.leaf_node(0);
        assert_eq!(
            &values[first_leaf..],
            &[1.0, 2.0, 3.0, 4.0, 5.0, 0.0, 0.0, 0.0]
        );
    }

    #[test]
    fn parent_equals_sum_of_children_everywhere() {
        let d = Domain::new("x", 16).unwrap();
        let counts: Vec<u64> = (0..16).map(|i| (i * 7 % 5) as u64).collect();
        let h = Histogram::from_counts(d, counts);
        let q = HierarchicalQuery::new(4);
        let shape = q.shape(16);
        let values = q.evaluate(&h);
        for v in 0..shape.nodes() {
            if !shape.is_leaf(v) {
                let child_sum: f64 = shape.children(v).map(|c| values[c]).sum();
                assert_eq!(values[v], child_sum, "node {v}");
            }
        }
    }

    #[test]
    fn for_domain_rounds_up() {
        assert_eq!(TreeShape::for_domain(1, 2).height(), 1);
        assert_eq!(TreeShape::for_domain(2, 2).height(), 2);
        assert_eq!(TreeShape::for_domain(3, 2).height(), 3);
        assert_eq!(TreeShape::for_domain(4, 2).height(), 3);
        assert_eq!(TreeShape::for_domain(65_536, 2).height(), 17);
        assert_eq!(TreeShape::for_domain(32_768, 2).height(), 16);
        assert_eq!(TreeShape::for_domain(17, 4).height(), 4); // 64 leaves
    }

    #[test]
    fn degenerate_single_node_tree() {
        let shape = TreeShape::for_domain(1, 2);
        assert_eq!(shape.nodes(), 1);
        assert!(shape.is_leaf(0));
        assert!(shape.is_root(0));
        assert_eq!(shape.parent(0), None);
        assert_eq!(shape.children(0).len(), 0);
    }

    #[test]
    fn level_offsets_agree_with_node_arithmetic() {
        for (k, height) in [(2usize, 1usize), (2, 5), (3, 4), (5, 3)] {
            let shape = TreeShape::new(k, height);
            let offsets = shape.level_offsets();
            assert_eq!(offsets.len(), height + 1);
            assert_eq!(offsets[height], shape.nodes());
            assert_eq!(shape.first_leaf(), shape.leaf_node(0));
            for d in 0..height {
                assert_eq!(offsets[d]..offsets[d + 1], shape.level(d));
                assert_eq!(shape.level_width(d), shape.level(d).len());
            }
            // Children of the i-th node at depth d start at
            // offsets[d + 1] + i·k — the contiguity the engine relies on.
            for d in 0..height - 1 {
                for (i, v) in shape.level(d).enumerate() {
                    assert_eq!(shape.children(v).start, offsets[d + 1] + i * k);
                }
            }
        }
    }

    #[test]
    fn labels_embed_branching() {
        assert_eq!(HierarchicalQuery::binary().label(), "H2");
        assert_eq!(HierarchicalQuery::new(16).label(), "H16");
        assert_eq!(HierarchicalQuery::new(5).label(), "H5");
    }

    /// The old reverse-BFS per-node walk, kept as the evaluation oracle.
    fn naive_tree_counts(q: &HierarchicalQuery, histogram: &Histogram) -> Vec<f64> {
        let shape = q.shape(histogram.len());
        let padded;
        let counts: &[u64] = if histogram.len() == shape.leaves() {
            histogram.counts()
        } else {
            padded = histogram.zero_padded(shape.leaves());
            padded.counts()
        };
        let mut values = vec![0.0f64; shape.nodes()];
        let first_leaf = shape.leaf_node(0);
        for (i, &c) in counts.iter().enumerate() {
            values[first_leaf + i] = c as f64;
        }
        for v in (1..shape.nodes()).rev() {
            let parent = shape.parent(v).expect("non-root has parent");
            values[parent] += values[v];
        }
        values
    }

    #[test]
    fn level_indexed_evaluation_is_bit_identical_to_reverse_bfs_walk() {
        for (k, n, seed_mult) in [(2usize, 4usize, 1u64), (2, 13, 3), (3, 20, 5), (4, 64, 7)] {
            let counts: Vec<u64> = (0..n).map(|i| (i as u64 * seed_mult) % 11).collect();
            let h = Histogram::from_counts(Domain::new("x", n).unwrap(), counts);
            let q = HierarchicalQuery::new(k);
            assert_eq!(q.evaluate(&h), naive_tree_counts(&q, &h), "k={k} n={n}");
        }
    }

    #[test]
    fn evaluate_into_reuses_oversized_buffers() {
        let q = HierarchicalQuery::binary();
        let big = Histogram::from_counts(Domain::new("x", 16).unwrap(), vec![1; 16]);
        let small = example();
        let mut buf = Vec::new();
        q.evaluate_into(&big, &mut buf);
        assert_eq!(buf.len(), 31);
        // Shrinking to a smaller tree must fully reinitialize the prefix.
        q.evaluate_into(&small, &mut buf);
        assert_eq!(buf, q.evaluate(&small));
    }
}
