//! The paper's three query strategies: `L`, `S`, and `H`.

mod hierarchical;
mod sorted;
mod unit;

pub use hierarchical::{HierarchicalQuery, TreeShape};
pub use sorted::SortedQuery;
pub use unit::UnitQuery;
