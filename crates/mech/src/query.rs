//! The query-sequence abstraction.

use std::borrow::Cow;

use hc_data::Histogram;

/// A sequence of counting queries `Q = ⟨q₁, …, q_d⟩` over a histogram's
/// domain (Sec. 2 of the paper).
///
/// Implementations must be *pure*: `evaluate` depends only on the histogram,
/// and `sensitivity` is the analytic worst case
/// `max ‖Q(I) − Q(I′)‖₁` over neighbouring databases (Definition 2.2). The
/// test suite checks the analytic value against [`crate::empirical_sensitivity`].
pub trait QuerySequence {
    /// Number of answers produced for a histogram over `domain_size` bins.
    fn output_len(&self, domain_size: usize) -> usize;

    /// Evaluates the true answers `Q(I)`.
    fn evaluate(&self, histogram: &Histogram) -> Vec<f64>;

    /// Evaluates `Q(I)` into a caller-owned buffer.
    ///
    /// `out` is cleared and resized to [`Self::output_len`]; once its
    /// capacity has warmed up, implementations that override this method
    /// allocate nothing (the default delegates to [`Self::evaluate`] and is
    /// *not* allocation-free). The values written must be bit-identical to
    /// [`Self::evaluate`]'s.
    fn evaluate_into(&self, histogram: &Histogram, out: &mut Vec<f64>) {
        out.clear();
        out.extend_from_slice(&self.evaluate(histogram));
    }

    /// Evaluates `Q(I)` into a caller-owned **slice** of exactly
    /// [`Self::output_len`] entries — the write-in-place hook batch
    /// pipelines use to evaluate straight into one trial's segment of a
    /// larger batch buffer, with no intermediate vector and no copy.
    ///
    /// Every slot is assigned (no slot's prior content survives), and the
    /// values are bit-identical to [`Self::evaluate`]'s. The default
    /// delegates to [`Self::evaluate`] and copies; hot-path sequences
    /// override it to write directly.
    fn evaluate_into_slice(&self, histogram: &Histogram, out: &mut [f64]) {
        let values = self.evaluate(histogram);
        assert_eq!(
            out.len(),
            values.len(),
            "output slice must match the query's output length"
        );
        out.copy_from_slice(&values);
    }

    /// The L1 sensitivity `Δ_Q`.
    fn sensitivity(&self, domain_size: usize) -> f64;

    /// A short strategy label used in reports (e.g. `"L"`, `"S"`, `"H2"`).
    ///
    /// Returned as a `Cow` so the common strategies are `&'static str`s and
    /// per-release label construction costs nothing.
    fn label(&self) -> Cow<'static, str>;
}
