//! The query-sequence abstraction.

use hc_data::Histogram;

/// A sequence of counting queries `Q = ⟨q₁, …, q_d⟩` over a histogram's
/// domain (Sec. 2 of the paper).
///
/// Implementations must be *pure*: `evaluate` depends only on the histogram,
/// and `sensitivity` is the analytic worst case
/// `max ‖Q(I) − Q(I′)‖₁` over neighbouring databases (Definition 2.2). The
/// test suite checks the analytic value against [`crate::empirical_sensitivity`].
pub trait QuerySequence {
    /// Number of answers produced for a histogram over `domain_size` bins.
    fn output_len(&self, domain_size: usize) -> usize;

    /// Evaluates the true answers `Q(I)`.
    fn evaluate(&self, histogram: &Histogram) -> Vec<f64>;

    /// The L1 sensitivity `Δ_Q`.
    fn sensitivity(&self, domain_size: usize) -> f64;

    /// A short strategy label used in reports (e.g. `"L"`, `"S"`, `"H2"`).
    fn label(&self) -> String;
}
