//! Differential-privacy substrate: budgets, query sequences, sensitivity,
//! and the Laplace mechanism.
//!
//! This crate implements Sec. 2 of the paper:
//!
//! * [`Epsilon`] / [`PrivacyBudget`] / [`PrivacyAccountant`] — the privacy
//!   parameter and sequential composition (a protocol answering sequence
//!   *i* with `εᵢ` is `Σεᵢ`-differentially private); the accountant adds
//!   named (ε,δ) ledger entries for serving-layer audit trails.
//! * [`QuerySequence`] — the abstraction for the paper's vector-valued count
//!   queries, with the three concrete strategies:
//!   [`UnitQuery`] (`L`), [`SortedQuery`] (`S`, Sec. 3) and
//!   [`HierarchicalQuery`] (`H`, Sec. 4).
//! * Analytic sensitivities (Propositions 3 and 4) plus an
//!   [`empirical_sensitivity`] bound used by tests to validate them.
//! * [`LaplaceMechanism`] — Proposition 1: add i.i.d. `Lap(Δ/ε)` noise to
//!   each true answer.
//!
//! Constrained inference (the paper's contribution) lives in `hc-core`; this
//! crate releases the *noisy* outputs it post-processes.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

mod budget;
mod confidence;
mod laplace_mech;
mod query;
mod sensitivity;
pub mod sequences;

pub use budget::{BudgetError, Epsilon, LedgerEntry, PrivacyAccountant, PrivacyBudget};
pub use confidence::{laplace_half_width, stability_half_width, ConfidenceInterval};
pub use laplace_mech::{LaplaceMechanism, NoisyOutput, PreparedMechanism};
// The sampling-backend choice travels with the mechanism, so re-export it
// here: code configuring a `LaplaceMechanism` should not need a direct
// `hc-noise` dependency just to name a backend.
pub use hc_noise::NoiseBackend;
pub use query::QuerySequence;
pub use sensitivity::empirical_sensitivity;
pub use sequences::{HierarchicalQuery, SortedQuery, TreeShape, UnitQuery};
