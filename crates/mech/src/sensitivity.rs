//! Empirical sensitivity bounds for validating the analytic formulas.

use hc_data::{Histogram, Relation};

use crate::QuerySequence;

/// Computes the exact maximum `‖Q(I) − Q(I′)‖₁` over all neighbours `I′` of
/// the *given* database `I` (one record added at any domain value, or one
/// existing record removed).
///
/// This is a lower bound on the worst-case sensitivity `Δ_Q` (which maximizes
/// over `I` too); the test suite checks
/// `empirical ≤ analytic` on random databases and `empirical == analytic` on
/// adversarially chosen ones, validating Propositions 3 and 4 without
/// trusting the proofs.
pub fn empirical_sensitivity<Q: QuerySequence + ?Sized>(query: &Q, relation: &Relation) -> f64 {
    let base = query.evaluate(&Histogram::from_relation(relation));
    let domain_size = relation.domain().size();
    let mut worst: f64 = 0.0;

    // All single-record insertions.
    for value in 0..domain_size {
        let neighbor = relation
            .neighbor_with_insertion(value)
            .expect("value is in domain");
        let answer = query.evaluate(&Histogram::from_relation(&neighbor));
        worst = worst.max(l1_distance(&base, &answer));
    }

    // All single-record removals (one per distinct present value suffices:
    // removing any copy of the same value yields the same histogram).
    let mut last = usize::MAX;
    for &value in relation.records() {
        if value == last {
            continue;
        }
        last = value;
        let neighbor = relation
            .neighbor_with_removal(value)
            .expect("value is present");
        let answer = query.evaluate(&Histogram::from_relation(&neighbor));
        worst = worst.max(l1_distance(&base, &answer));
    }

    worst
}

fn l1_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "queries must be evaluated on one domain");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HierarchicalQuery, SortedQuery, UnitQuery};
    use hc_data::Domain;
    use rand::Rng;

    fn random_relation(seed: u64, domain_size: usize, records: usize) -> Relation {
        let mut rng = hc_noise::rng_from_seed(seed);
        let values = (0..records)
            .map(|_| rng.random_range(0..domain_size))
            .collect();
        Relation::from_records(Domain::new("x", domain_size).unwrap(), values).unwrap()
    }

    #[test]
    fn unit_query_sensitivity_is_one() {
        for seed in 0..5 {
            let r = random_relation(seed, 16, 40);
            let s = empirical_sensitivity(&UnitQuery, &r);
            assert!((s - 1.0).abs() < 1e-12, "seed {seed}: {s}");
        }
    }

    #[test]
    fn sorted_query_sensitivity_is_one() {
        // Proposition 3 — the key nontrivial claim: sorting does not raise
        // sensitivity even though one insertion can shift rank positions.
        for seed in 0..8 {
            let r = random_relation(seed, 12, 30);
            let s = empirical_sensitivity(&SortedQuery, &r);
            assert!(s <= 1.0 + 1e-12, "seed {seed}: {s}");
            assert!(s >= 1.0 - 1e-12, "insertion always changes one rank");
        }
    }

    #[test]
    fn hierarchical_sensitivity_is_tree_height() {
        // Proposition 4: Δ_H = ℓ.
        for (domain, expected_height) in [(4usize, 3.0f64), (8, 4.0), (16, 5.0)] {
            let r = random_relation(domain as u64, domain, 25);
            let q = HierarchicalQuery::binary();
            let s = empirical_sensitivity(&q, &r);
            assert!(
                (s - expected_height).abs() < 1e-12,
                "domain {domain}: empirical {s} vs ℓ = {expected_height}"
            );
            assert_eq!(q.sensitivity(domain), expected_height);
        }
    }

    #[test]
    fn hierarchical_sensitivity_with_padding_never_exceeds_height() {
        // Non-power-of-two domain: record changes still touch ℓ nodes.
        let r = random_relation(3, 6, 20);
        let q = HierarchicalQuery::binary();
        let s = empirical_sensitivity(&q, &r);
        assert!(s <= q.sensitivity(6) + 1e-12);
    }

    #[test]
    fn empty_relation_insertion_only() {
        let r = Relation::new(Domain::new("x", 8).unwrap());
        let s = empirical_sensitivity(&SortedQuery, &r);
        assert!((s - 1.0).abs() < 1e-12);
    }
}
