//! The Laplace mechanism over query sequences (Proposition 1).

use std::borrow::Cow;

use hc_data::Histogram;
use hc_noise::{Laplace, NoiseBackend};
use rand::Rng;

use crate::{Epsilon, QuerySequence};

/// The ε-differentially private release of a query sequence's output.
#[derive(Debug, Clone, PartialEq)]
pub struct NoisyOutput {
    values: Vec<f64>,
    epsilon: Epsilon,
    noise_scale: f64,
    strategy: Cow<'static, str>,
}

impl NoisyOutput {
    /// The noisy answer vector `q̃ = Q(I) + ⟨Lap(Δ/ε)⟩`.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Consumes the release, returning the answer vector.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }

    /// The privacy parameter the release was calibrated to.
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    /// The Laplace scale `b = Δ/ε` actually used.
    pub fn noise_scale(&self) -> f64 {
        self.noise_scale
    }

    /// Per-answer noise variance `2b²`.
    pub fn noise_variance(&self) -> f64 {
        2.0 * self.noise_scale * self.noise_scale
    }

    /// The strategy label (`"L"`, `"S"`, `"H2"`, …).
    pub fn strategy(&self) -> &str {
        &self.strategy
    }
}

/// The Laplace mechanism: adds i.i.d. `Lap(Δ_Q/ε)` noise to each answer of a
/// query sequence (Proposition 1 — this step alone provides the privacy
/// guarantee; everything downstream is post-processing).
#[derive(Debug, Clone, Copy)]
pub struct LaplaceMechanism {
    epsilon: Epsilon,
    backend: NoiseBackend,
}

impl LaplaceMechanism {
    /// A mechanism calibrated to `epsilon`, sampling through the default
    /// [`NoiseBackend::Reference`] backend (bit-identical to every
    /// historical release of this workspace).
    pub fn new(epsilon: Epsilon) -> Self {
        Self {
            epsilon,
            backend: NoiseBackend::Reference,
        }
    }

    /// The same mechanism sampling through `backend`. Privacy is identical
    /// (both backends draw exact Laplace noise); only the sample bits — and
    /// therefore which golden snapshots apply — change.
    pub fn with_backend(self, backend: NoiseBackend) -> Self {
        Self { backend, ..self }
    }

    /// The configured ε.
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    /// The configured sampling backend.
    pub fn backend(&self) -> NoiseBackend {
        self.backend
    }

    /// The Laplace scale `b = Δ_Q/ε` for `query` over a domain of
    /// `domain_size` bins — the single source of truth shared by
    /// [`Self::release`], [`Self::release_into`], [`Self::noise_variance`],
    /// and [`PreparedMechanism`].
    pub fn noise_scale<Q: QuerySequence + ?Sized>(&self, query: &Q, domain_size: usize) -> f64 {
        query.sensitivity(domain_size) / self.epsilon.value()
    }

    /// Per-answer noise variance `2(Δ_Q/ε)²`, derived from the same scale as
    /// the release paths.
    pub fn noise_variance<Q: QuerySequence + ?Sized>(&self, query: &Q, domain_size: usize) -> f64 {
        let b = self.noise_scale(query, domain_size);
        2.0 * b * b
    }

    /// The calibrated noise distribution `Lap(Δ_Q/ε)`.
    fn noise_for<Q: QuerySequence + ?Sized>(&self, query: &Q, domain_size: usize) -> Laplace {
        Laplace::centered(self.noise_scale(query, domain_size))
            .expect("positive scale from valid ε and positive sensitivity")
    }

    /// Binds this mechanism to one query over one domain size: sensitivity,
    /// noise scale, distribution, and strategy label are computed once and
    /// amortized over every subsequent release.
    ///
    /// This is the hook for trial loops — the per-release path of
    /// [`PreparedMechanism::release_into`] constructs nothing.
    pub fn prepare<Q: QuerySequence>(&self, query: Q, domain_size: usize) -> PreparedMechanism<Q> {
        let scale = self.noise_scale(&query, domain_size);
        let laplace = self.noise_for(&query, domain_size);
        let label = query.label();
        let output_len = query.output_len(domain_size);
        PreparedMechanism {
            query,
            epsilon: self.epsilon,
            backend: self.backend,
            domain_size,
            output_len,
            scale,
            laplace,
            label,
        }
    }

    /// Releases `Q̃(I) = Q(I) + ⟨Lap(Δ_Q/ε)⟩^d`.
    pub fn release<Q: QuerySequence + ?Sized, R: Rng + ?Sized>(
        &self,
        query: &Q,
        histogram: &Histogram,
        rng: &mut R,
    ) -> NoisyOutput {
        let mut values = query.evaluate(histogram);
        let scale = self.noise_scale(query, histogram.len());
        self.noise_for(query, histogram.len())
            .add_noise_with(self.backend, rng, &mut values);
        NoisyOutput {
            values,
            epsilon: self.epsilon,
            noise_scale: scale,
            strategy: query.label(),
        }
    }

    /// [`Self::release`] into a caller-owned buffer: evaluates the query via
    /// [`QuerySequence::evaluate_into`] and perturbs it in place, returning
    /// the noise scale used. No [`NoisyOutput`] wrapper, no label — once
    /// `values` has warmed up the whole release is allocation-free (for
    /// query sequences whose `evaluate_into` is).
    ///
    /// Draws noise in the same order as [`Self::release`], so for a fixed
    /// RNG state the two paths produce bit-identical values.
    pub fn release_into<Q: QuerySequence + ?Sized, R: Rng + ?Sized>(
        &self,
        query: &Q,
        histogram: &Histogram,
        rng: &mut R,
        values: &mut Vec<f64>,
    ) -> f64 {
        query.evaluate_into(histogram, values);
        self.noise_for(query, histogram.len())
            .add_noise_with(self.backend, rng, values);
        self.noise_scale(query, histogram.len())
    }

    /// The true (noise-free) evaluation — used by tests and the theoretical
    /// error calculators; *not* a private release.
    pub fn true_answer<Q: QuerySequence + ?Sized>(
        &self,
        query: &Q,
        histogram: &Histogram,
    ) -> Vec<f64> {
        query.evaluate(histogram)
    }
}

/// A [`LaplaceMechanism`] bound to one query sequence and domain size, with
/// the calibrated [`Laplace`] distribution constructed once.
///
/// The experiment protocol releases the same strategy thousands of times
/// over one histogram; this type hoists everything release-invariant
/// (sensitivity, scale, distribution, label) out of that loop.
#[derive(Debug, Clone)]
pub struct PreparedMechanism<Q> {
    query: Q,
    epsilon: Epsilon,
    backend: NoiseBackend,
    domain_size: usize,
    output_len: usize,
    scale: f64,
    laplace: Laplace,
    label: Cow<'static, str>,
}

impl<Q: QuerySequence> PreparedMechanism<Q> {
    /// The bound query sequence.
    pub fn query(&self) -> &Q {
        &self.query
    }

    /// The ε the mechanism was calibrated to.
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    /// The sampling backend every release through this preparation uses —
    /// fused pipelines that take over the noise draws (via [`Self::noise`])
    /// must sample through the same backend to stay bit-identical to
    /// [`Self::release_into`].
    pub fn backend(&self) -> NoiseBackend {
        self.backend
    }

    /// The domain size the preparation assumed (releases assert it).
    pub fn domain_size(&self) -> usize {
        self.domain_size
    }

    /// Number of answers per release (computed once at preparation).
    pub fn output_len(&self) -> usize {
        self.output_len
    }

    /// The hoisted Laplace scale `b = Δ_Q/ε`.
    pub fn noise_scale(&self) -> f64 {
        self.scale
    }

    /// Per-answer noise variance `2b²`, from the same hoisted scale.
    pub fn noise_variance(&self) -> f64 {
        2.0 * self.scale * self.scale
    }

    /// The strategy label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The hoisted calibrated distribution `Lap(Δ_Q/ε)` — exposed so fused
    /// release→inference pipelines can interleave the noise draws with
    /// their own passes (they must preserve the answer-index draw order to
    /// stay bit-identical to [`Self::release_into`]).
    pub fn noise(&self) -> Laplace {
        self.laplace
    }

    /// Releases into a caller-owned buffer with zero allocations after
    /// warm-up; bit-identical to [`LaplaceMechanism::release`] at the same
    /// RNG state.
    pub fn release_into<R: Rng + ?Sized>(
        &self,
        histogram: &Histogram,
        rng: &mut R,
        values: &mut Vec<f64>,
    ) {
        assert_eq!(
            histogram.len(),
            self.domain_size,
            "prepared for a different domain size"
        );
        self.query.evaluate_into(histogram, values);
        self.laplace.add_noise_with(self.backend, rng, values);
    }

    /// Releases straight into a caller-owned **slice** of exactly
    /// [`Self::output_len`] entries — the write-in-place path batch
    /// pipelines use to release each trial into its segment of a shared
    /// batch buffer without a scratch vector or a copy. Bit-identical to
    /// [`Self::release_into`] at the same RNG state.
    pub fn release_into_slice<R: Rng + ?Sized>(
        &self,
        histogram: &Histogram,
        rng: &mut R,
        values: &mut [f64],
    ) {
        assert_eq!(
            histogram.len(),
            self.domain_size,
            "prepared for a different domain size"
        );
        self.query.evaluate_into_slice(histogram, values);
        self.laplace.add_noise_with(self.backend, rng, values);
    }

    /// Releases an owned [`NoisyOutput`] (allocates the value vector and, if
    /// the label is dynamic, one label clone).
    pub fn release<R: Rng + ?Sized>(&self, histogram: &Histogram, rng: &mut R) -> NoisyOutput {
        let mut values = Vec::new();
        self.release_into(histogram, rng, &mut values);
        NoisyOutput {
            values,
            epsilon: self.epsilon,
            noise_scale: self.scale,
            strategy: self.label.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HierarchicalQuery, SortedQuery, UnitQuery};
    use hc_data::Domain;
    use hc_noise::rng_from_seed;

    fn example() -> Histogram {
        Histogram::from_counts(Domain::new("src", 4).unwrap(), vec![2, 0, 10, 2])
    }

    #[test]
    fn noise_scale_uses_sensitivity() {
        let mech = LaplaceMechanism::new(Epsilon::new(0.5).unwrap());
        let mut rng = rng_from_seed(61);
        let out_l = mech.release(&UnitQuery, &example(), &mut rng);
        assert!((out_l.noise_scale() - 2.0).abs() < 1e-12); // Δ=1, ε=0.5
        let out_h = mech.release(&HierarchicalQuery::binary(), &example(), &mut rng);
        assert!((out_h.noise_scale() - 6.0).abs() < 1e-12); // Δ=ℓ=3, ε=0.5
        assert!((mech.noise_variance(&UnitQuery, 4) - 8.0).abs() < 1e-12); // 2b²
    }

    #[test]
    fn release_has_right_length_and_label() {
        let mech = LaplaceMechanism::new(Epsilon::new(1.0).unwrap());
        let mut rng = rng_from_seed(62);
        let out = mech.release(&HierarchicalQuery::binary(), &example(), &mut rng);
        assert_eq!(out.values().len(), 7);
        assert_eq!(out.strategy(), "H2");
    }

    #[test]
    fn noise_is_centered_on_true_answer() {
        let mech = LaplaceMechanism::new(Epsilon::new(1.0).unwrap());
        let truth = SortedQuery.evaluate(&example());
        let trials = 3000;
        let mut sums = vec![0.0; truth.len()];
        let mut rng = rng_from_seed(63);
        for _ in 0..trials {
            for (s, v) in sums
                .iter_mut()
                .zip(mech.release(&SortedQuery, &example(), &mut rng).values())
            {
                *s += v;
            }
        }
        for (s, t) in sums.iter().zip(&truth) {
            let mean = s / trials as f64;
            // std of mean = sqrt(2)/sqrt(3000) ≈ 0.026; allow 5σ.
            assert!((mean - t).abs() < 0.15, "mean {mean} vs true {t}");
        }
    }

    #[test]
    fn empirical_variance_matches_calibration() {
        let eps = Epsilon::new(0.1).unwrap();
        let mech = LaplaceMechanism::new(eps);
        let mut rng = rng_from_seed(64);
        let truth = UnitQuery.evaluate(&example());
        let trials = 5000;
        let mut sq = 0.0;
        for _ in 0..trials {
            let out = mech.release(&UnitQuery, &example(), &mut rng);
            sq += (out.values()[0] - truth[0]).powi(2);
        }
        let var = sq / trials as f64;
        let expected = 2.0 / (0.1f64 * 0.1); // 2(Δ/ε)² = 200
        assert!(
            (var - expected).abs() / expected < 0.1,
            "var {var} vs expected {expected}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let mech = LaplaceMechanism::new(Epsilon::new(1.0).unwrap());
        let a = mech.release(&UnitQuery, &example(), &mut rng_from_seed(65));
        let b = mech.release(&UnitQuery, &example(), &mut rng_from_seed(65));
        assert_eq!(a, b);
    }

    #[test]
    fn release_into_is_bit_identical_to_release() {
        let mech = LaplaceMechanism::new(Epsilon::new(0.3).unwrap());
        let h = example();
        for seed in [66u64, 67, 68] {
            let owned = mech.release(&HierarchicalQuery::binary(), &h, &mut rng_from_seed(seed));
            let mut buf = vec![f64::NAN; 3]; // wrong size on purpose
            let scale = mech.release_into(
                &HierarchicalQuery::binary(),
                &h,
                &mut rng_from_seed(seed),
                &mut buf,
            );
            assert_eq!(buf, owned.values());
            assert_eq!(scale, owned.noise_scale());
        }
    }

    #[test]
    fn prepared_mechanism_matches_ad_hoc_release() {
        let mech = LaplaceMechanism::new(Epsilon::new(0.7).unwrap());
        let h = example();
        let prepared = mech.prepare(HierarchicalQuery::binary(), h.len());
        assert_eq!(prepared.output_len(), 7);
        assert_eq!(prepared.label(), "H2");
        assert!((prepared.noise_variance() - 2.0 * prepared.noise_scale().powi(2)).abs() < 1e-15);
        let mut buf = Vec::new();
        for seed in [70u64, 71] {
            prepared.release_into(&h, &mut rng_from_seed(seed), &mut buf);
            let adhoc = mech.release(&HierarchicalQuery::binary(), &h, &mut rng_from_seed(seed));
            assert_eq!(buf, adhoc.values());
            let owned = prepared.release(&h, &mut rng_from_seed(seed));
            assert_eq!(owned, adhoc);
            // The write-in-place slice path is the same release bit for bit,
            // even over a dirty slice.
            let mut slice_buf = vec![f64::NAN; prepared.output_len()];
            prepared.release_into_slice(&h, &mut rng_from_seed(seed), &mut slice_buf);
            assert_eq!(slice_buf, adhoc.values());
        }
    }

    #[test]
    #[should_panic(expected = "different domain size")]
    fn prepared_mechanism_rejects_mismatched_domains() {
        let mech = LaplaceMechanism::new(Epsilon::new(1.0).unwrap());
        let prepared = mech.prepare(UnitQuery, 8);
        let mut buf = Vec::new();
        prepared.release_into(&example(), &mut rng_from_seed(72), &mut buf);
    }

    #[test]
    fn backend_threads_through_prepare_and_release() {
        let h = example();
        let mech = LaplaceMechanism::new(Epsilon::new(0.4).unwrap());
        assert_eq!(mech.backend(), NoiseBackend::Reference);
        let fast = mech.with_backend(NoiseBackend::FastLn);
        assert_eq!(fast.backend(), NoiseBackend::FastLn);
        assert_eq!(fast.epsilon(), mech.epsilon());
        let prepared = fast.prepare(HierarchicalQuery::binary(), h.len());
        assert_eq!(prepared.backend(), NoiseBackend::FastLn);

        // All three FastLn release paths consume the stream identically.
        let owned = fast.release(&HierarchicalQuery::binary(), &h, &mut rng_from_seed(73));
        let mut via_into = Vec::new();
        fast.release_into(
            &HierarchicalQuery::binary(),
            &h,
            &mut rng_from_seed(73),
            &mut via_into,
        );
        let mut via_prepared = Vec::new();
        prepared.release_into(&h, &mut rng_from_seed(73), &mut via_prepared);
        assert_eq!(owned.values(), via_into);
        assert_eq!(owned.values(), via_prepared);

        // And the backend really changes the sample bits (same seed, same
        // scale, different ln arithmetic) while staying close.
        let reference = mech.release(&HierarchicalQuery::binary(), &h, &mut rng_from_seed(73));
        assert_ne!(reference.values(), owned.values());
        for (r, f) in reference.values().iter().zip(owned.values()) {
            assert!((r - f).abs() <= 1e-9 * (1.0 + r.abs()), "{r} vs {f}");
        }
    }
}
