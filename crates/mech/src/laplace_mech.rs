//! The Laplace mechanism over query sequences (Proposition 1).

use hc_data::Histogram;
use hc_noise::Laplace;
use rand::Rng;

use crate::{Epsilon, QuerySequence};

/// The ε-differentially private release of a query sequence's output.
#[derive(Debug, Clone, PartialEq)]
pub struct NoisyOutput {
    values: Vec<f64>,
    epsilon: Epsilon,
    noise_scale: f64,
    strategy: String,
}

impl NoisyOutput {
    /// The noisy answer vector `q̃ = Q(I) + ⟨Lap(Δ/ε)⟩`.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Consumes the release, returning the answer vector.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }

    /// The privacy parameter the release was calibrated to.
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    /// The Laplace scale `b = Δ/ε` actually used.
    pub fn noise_scale(&self) -> f64 {
        self.noise_scale
    }

    /// Per-answer noise variance `2b²`.
    pub fn noise_variance(&self) -> f64 {
        2.0 * self.noise_scale * self.noise_scale
    }

    /// The strategy label (`"L"`, `"S"`, `"H2"`, …).
    pub fn strategy(&self) -> &str {
        &self.strategy
    }
}

/// The Laplace mechanism: adds i.i.d. `Lap(Δ_Q/ε)` noise to each answer of a
/// query sequence (Proposition 1 — this step alone provides the privacy
/// guarantee; everything downstream is post-processing).
#[derive(Debug, Clone, Copy)]
pub struct LaplaceMechanism {
    epsilon: Epsilon,
}

impl LaplaceMechanism {
    /// A mechanism calibrated to `epsilon`.
    pub fn new(epsilon: Epsilon) -> Self {
        Self { epsilon }
    }

    /// The configured ε.
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    /// Releases `Q̃(I) = Q(I) + ⟨Lap(Δ_Q/ε)⟩^d`.
    pub fn release<Q: QuerySequence + ?Sized, R: Rng + ?Sized>(
        &self,
        query: &Q,
        histogram: &Histogram,
        rng: &mut R,
    ) -> NoisyOutput {
        let mut values = query.evaluate(histogram);
        let sensitivity = query.sensitivity(histogram.len());
        let scale = sensitivity / self.epsilon.value();
        let laplace = Laplace::centered(scale).expect("positive scale from valid ε");
        for v in &mut values {
            *v += laplace.sample(rng);
        }
        NoisyOutput {
            values,
            epsilon: self.epsilon,
            noise_scale: scale,
            strategy: query.label(),
        }
    }

    /// The true (noise-free) evaluation — used by tests and the theoretical
    /// error calculators; *not* a private release.
    pub fn true_answer<Q: QuerySequence + ?Sized>(
        &self,
        query: &Q,
        histogram: &Histogram,
    ) -> Vec<f64> {
        query.evaluate(histogram)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HierarchicalQuery, SortedQuery, UnitQuery};
    use hc_data::Domain;
    use hc_noise::rng_from_seed;

    fn example() -> Histogram {
        Histogram::from_counts(Domain::new("src", 4).unwrap(), vec![2, 0, 10, 2])
    }

    #[test]
    fn noise_scale_uses_sensitivity() {
        let mech = LaplaceMechanism::new(Epsilon::new(0.5).unwrap());
        let mut rng = rng_from_seed(61);
        let out_l = mech.release(&UnitQuery, &example(), &mut rng);
        assert!((out_l.noise_scale() - 2.0).abs() < 1e-12); // Δ=1, ε=0.5
        let out_h = mech.release(&HierarchicalQuery::binary(), &example(), &mut rng);
        assert!((out_h.noise_scale() - 6.0).abs() < 1e-12); // Δ=ℓ=3, ε=0.5
    }

    #[test]
    fn release_has_right_length_and_label() {
        let mech = LaplaceMechanism::new(Epsilon::new(1.0).unwrap());
        let mut rng = rng_from_seed(62);
        let out = mech.release(&HierarchicalQuery::binary(), &example(), &mut rng);
        assert_eq!(out.values().len(), 7);
        assert_eq!(out.strategy(), "H2");
    }

    #[test]
    fn noise_is_centered_on_true_answer() {
        let mech = LaplaceMechanism::new(Epsilon::new(1.0).unwrap());
        let truth = SortedQuery.evaluate(&example());
        let trials = 3000;
        let mut sums = vec![0.0; truth.len()];
        let mut rng = rng_from_seed(63);
        for _ in 0..trials {
            for (s, v) in sums
                .iter_mut()
                .zip(mech.release(&SortedQuery, &example(), &mut rng).values())
            {
                *s += v;
            }
        }
        for (s, t) in sums.iter().zip(&truth) {
            let mean = s / trials as f64;
            // std of mean = sqrt(2)/sqrt(3000) ≈ 0.026; allow 5σ.
            assert!((mean - t).abs() < 0.15, "mean {mean} vs true {t}");
        }
    }

    #[test]
    fn empirical_variance_matches_calibration() {
        let eps = Epsilon::new(0.1).unwrap();
        let mech = LaplaceMechanism::new(eps);
        let mut rng = rng_from_seed(64);
        let truth = UnitQuery.evaluate(&example());
        let trials = 5000;
        let mut sq = 0.0;
        for _ in 0..trials {
            let out = mech.release(&UnitQuery, &example(), &mut rng);
            sq += (out.values()[0] - truth[0]).powi(2);
        }
        let var = sq / trials as f64;
        let expected = 2.0 / (0.1f64 * 0.1); // 2(Δ/ε)² = 200
        assert!(
            (var - expected).abs() / expected < 0.1,
            "var {var} vs expected {expected}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let mech = LaplaceMechanism::new(Epsilon::new(1.0).unwrap());
        let a = mech.release(&UnitQuery, &example(), &mut rng_from_seed(65));
        let b = mech.release(&UnitQuery, &example(), &mut rng_from_seed(65));
        assert_eq!(a, b);
    }
}
