//! Confidence intervals for Laplace-mechanism releases.
//!
//! A released count is `true + Lap(b)` with known `b = Δ/ε`, so an exact
//! two-sided confidence interval for the true value is the released value
//! ± the Laplace quantile. (For *post-processed* estimates like `S̄`/`H̄`
//! the noise is no longer Laplace; Sec. 3.2 cites Hwang & Peddada for
//! order-restricted intervals — here we expose the exact pre-inference
//! interval, which remains valid though conservative after projection,
//! since projection onto a convex set containing the truth cannot move the
//! estimate further from it.)

use hc_noise::Laplace;

use crate::NoisyOutput;

/// A two-sided confidence interval `[lo, hi]` at some confidence level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower endpoint.
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
    /// The confidence level the interval was built for, e.g. `0.95`.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Whether a value lies inside.
    pub fn contains(&self, value: f64) -> bool {
        self.lo <= value && value <= self.hi
    }
}

/// The half-width of an exact two-sided Laplace interval at `level` for
/// noise scale `b`: `−b · ln(1 − level)`.
pub fn laplace_half_width(noise_scale: f64, level: f64) -> f64 {
    assert!(
        (0.0..1.0).contains(&level),
        "confidence level must be in [0, 1)"
    );
    assert!(noise_scale > 0.0, "noise scale must be positive");
    let d = Laplace::centered(noise_scale).expect("positive scale");
    // P(|X| <= q) = level  ⇔  q = quantile((1 + level)/2).
    d.quantile((1.0 + level) / 2.0)
}

/// The half-width of a `(1−α)`-confidence interval for an (ε,δ) stability
/// release (the sparse/unknown-domain histogram path): `2·ln(2/(α·δ))/ε`.
///
/// This is the standard accuracy form for the stability mechanism — noise
/// at scale `2/ε` plus a `2·ln(2/δ)/ε` threshold that can silently suppress
/// a small count, folded into one conservative width. Pure-ε releases use
/// [`laplace_half_width`] instead; this helper exists so accountant-driven
/// callers holding a [`crate::LedgerEntry`] with `delta > 0` can still
/// price their answers.
pub fn stability_half_width(epsilon: f64, delta: f64, alpha: f64) -> f64 {
    assert!(
        epsilon > 0.0 && epsilon.is_finite(),
        "epsilon must be positive"
    );
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
    2.0 * (2.0 / (alpha * delta)).ln() / epsilon // hc-lint: allow(frozen-bits) — accounting arithmetic; never enters a release
}

impl NoisyOutput {
    /// The exact confidence interval for the true answer at position `i`.
    pub fn confidence_interval(&self, i: usize, level: f64) -> ConfidenceInterval {
        let half = laplace_half_width(self.noise_scale(), level);
        let center = self.values()[i];
        ConfidenceInterval {
            lo: center - half,
            hi: center + half,
            level,
        }
    }

    /// Confidence intervals for every answer in the release.
    pub fn confidence_intervals(&self, level: f64) -> Vec<ConfidenceInterval> {
        let half = laplace_half_width(self.noise_scale(), level);
        self.values()
            .iter()
            .map(|&center| ConfidenceInterval {
                lo: center - half,
                hi: center + half,
                level,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Epsilon, LaplaceMechanism, UnitQuery};
    use hc_data::{Domain, Histogram};
    use hc_noise::rng_from_seed;

    #[test]
    fn half_width_matches_quantile_identity() {
        // At level 0.5 the half-width is the Laplace upper quartile b·ln 2.
        let hw = laplace_half_width(2.0, 0.5);
        assert!((hw - 2.0 * (2.0f64).ln()).abs() < 1e-12);
        // Wider levels give wider intervals.
        assert!(laplace_half_width(2.0, 0.99) > laplace_half_width(2.0, 0.9));
    }

    #[test]
    fn empirical_coverage_matches_nominal() {
        let h = Histogram::from_counts(Domain::new("x", 4).unwrap(), vec![7; 4]);
        let mech = LaplaceMechanism::new(Epsilon::new(0.5).unwrap());
        let mut rng = rng_from_seed(17);
        let level = 0.9;
        let trials = 5000;
        let mut covered = 0usize;
        for _ in 0..trials {
            let out = mech.release(&UnitQuery, &h, &mut rng);
            if out.confidence_interval(0, level).contains(7.0) {
                covered += 1;
            }
        }
        let coverage = covered as f64 / trials as f64;
        assert!(
            (coverage - level).abs() < 0.02,
            "coverage {coverage} vs nominal {level}"
        );
    }

    #[test]
    fn intervals_scale_with_sensitivity_and_epsilon() {
        let h = Histogram::from_counts(Domain::new("x", 4).unwrap(), vec![1; 4]);
        let mut rng = rng_from_seed(18);
        let strong =
            LaplaceMechanism::new(Epsilon::new(1.0).unwrap()).release(&UnitQuery, &h, &mut rng);
        let weak =
            LaplaceMechanism::new(Epsilon::new(0.1).unwrap()).release(&UnitQuery, &h, &mut rng);
        let w_strong = strong.confidence_interval(0, 0.95).width();
        let w_weak = weak.confidence_interval(0, 0.95).width();
        assert!((w_weak / w_strong - 10.0).abs() < 1e-9);
    }

    #[test]
    fn all_positions_get_identical_widths() {
        let h = Histogram::from_counts(Domain::new("x", 8).unwrap(), vec![3; 8]);
        let mech = LaplaceMechanism::new(Epsilon::new(0.3).unwrap());
        let mut rng = rng_from_seed(19);
        let out = mech.release(&UnitQuery, &h, &mut rng);
        let cis = out.confidence_intervals(0.8);
        assert_eq!(cis.len(), 8);
        let w0 = cis[0].width();
        assert!(cis.iter().all(|ci| (ci.width() - w0).abs() < 1e-12));
    }

    #[test]
    #[should_panic(expected = "confidence level")]
    fn rejects_invalid_level() {
        let _ = laplace_half_width(1.0, 1.0);
    }
}
