//! A long-lived, multi-tenant serving layer over the paper's release +
//! constrained-inference pipeline.
//!
//! The rest of the workspace is batch-shaped: build a histogram, release it
//! once, infer, measure. This crate adds the service shape a deployment
//! needs — data arriving continuously, many tenants with separate privacy
//! accounts, and readers that must never block on a refresh:
//!
//! * [`SnapshotCell`] — the epoch-based snapshot swap. Readers pin the
//!   current [`hc_core::ConsistentSnapshot`] wait-free; a writer rebuilds
//!   off-path and publishes atomically. Published answers are bit-identical
//!   to the serial pipeline at the same seeds.
//! * [`SnapshotShards`] — a bank of cells serving the same tenant, one per
//!   `effective_threads`-governed shard, so concurrent readers pin
//!   shard-local snapshots round-robin instead of contending on one cell.
//! * [`HistogramService`] / [`TenantConfig`] — per-tenant domain shape,
//!   [`hc_core::ReleaseStrategy`] (hand-picked, or planned at registration
//!   from an [`hc_core::AccuracyTarget`] via
//!   [`TenantConfig::with_accuracy`]), and a [`hc_mech::PrivacyAccountant`]
//!   debited once per release under sequential composition, with typed
//!   [`hc_mech::LedgerEntry`] audit rows.
//! * [`RangeQuery`] — the half-open wire query; unlike the core's
//!   structurally non-empty `Interval`, empty client requests are
//!   representable and answered exactly. The conversion convention is
//!   documented on [`RangeQuery`] and routed through
//!   `Interval::half_open` — one audited path in each direction.
//!
//! The load-test binary (`crates/bench/src/bin/serve_load.rs`) drives this
//! crate open-loop and feeds its latency envelope into the CI benchmark
//! gate; its `--verify` mode and the `hc_threads` subprocess test pin
//! serving determinism across `HC_THREADS` ∈ {1, 2, 4}.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod cell;
pub mod query;
pub mod service;

pub use cell::{PinnedSnapshot, SnapshotCell, SnapshotShards};
pub use query::{EmptyRange, RangeQuery};
pub use service::{HistogramService, PublishReport, ServeError, TenantConfig, TenantId};
