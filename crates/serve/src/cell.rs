//! The epoch-based snapshot swap: readers never block, writers publish
//! atomically.
//!
//! [`SnapshotCell`] holds the currently-served [`ConsistentSnapshot`] behind
//! a small ring of epoch-stamped slots. The read path
//! ([`load`](SnapshotCell::load)) is wait-free in practice: it loads the
//! epoch counter, `try_read`s the matching slot (never a blocking lock
//! acquisition), and pins the published `Arc`. The only way a `try_read`
//! can fail is a writer holding that exact slot — which requires the
//! reader's epoch load to be a full ring-lap ([`SLOTS`] publishes) stale —
//! and the retry then picks up the fresh epoch and a different slot. A
//! pinned snapshot stays valid for as long as the caller holds it, however
//! many publishes happen meanwhile: publication swaps the served `Arc`, it
//! never mutates a snapshot in place.
//!
//! The write path ([`publish`](SnapshotCell::publish)) is the one that may
//! wait: writers serialize on a mutex, write-lock the *next* slot (stalling
//! only on readers a whole lap behind), store the new snapshot, and bump
//! the epoch counter with `Release` ordering so any reader that observes
//! the new epoch also observes the fully-written slot. Readers therefore
//! see a complete snapshot — the old one or the new one, never a torn mix —
//! which `crates/bench/src/bin/serve_load.rs --verify` and the
//! `hc_threads` subprocess stress test pin across `HC_THREADS` ∈ {1, 2, 4}.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use hc_core::ConsistentSnapshot;

/// Ring width. A reader only ever contends with a writer after the ring has
/// been lapped — `SLOTS` publishes between its epoch load and its slot read
/// — so even a handful of slots makes reader retries vanishingly rare while
/// keeping the cell a few pointers wide.
const SLOTS: usize = 4;

/// One published slot: the epoch it was published at, and the snapshot.
type Slot = Option<(usize, Arc<ConsistentSnapshot>)>;

/// An epoch-swapped, reader-never-blocks cell holding the currently-served
/// snapshot of one tenant.
///
/// ```
/// use hc_core::ConsistentSnapshot;
/// use hc_serve::SnapshotCell;
///
/// let cell = SnapshotCell::new(ConsistentSnapshot::from_leaves(&[1.0, 2.0], 2));
/// let pinned = cell.load(); // wait-free read path
/// assert_eq!(pinned.epoch(), 0);
/// assert_eq!(pinned.total(), 3.0);
/// cell.publish(ConsistentSnapshot::from_leaves(&[5.0, 5.0], 2));
/// assert_eq!(pinned.total(), 3.0); // the pin still serves its epoch
/// assert_eq!(cell.load().total(), 10.0); // fresh loads serve the new one
/// ```
#[derive(Debug)]
pub struct SnapshotCell {
    /// The current epoch; `epoch % SLOTS` names the served slot.
    epoch: AtomicUsize,
    /// Epoch-stamped publication ring.
    slots: [RwLock<Slot>; SLOTS],
    /// Serializes publishers (the epoch bump must pair with its slot write).
    writer: Mutex<()>,
}

impl SnapshotCell {
    /// A cell serving `initial` at epoch 0.
    pub fn new(initial: ConsistentSnapshot) -> Self {
        let cell = Self {
            epoch: AtomicUsize::new(0),
            slots: std::array::from_fn(|_| RwLock::new(None)),
            writer: Mutex::new(()),
        };
        *cell.slots[0].write().expect("fresh lock never poisoned") = Some((0, Arc::new(initial)));
        cell
    }

    /// The epoch of the currently-served snapshot: 0 for the initial
    /// snapshot, incremented by one per [`Self::publish`].
    #[inline]
    pub fn epoch(&self) -> usize {
        self.epoch.load(Ordering::Acquire)
    }

    /// Pins the currently-served snapshot. Never blocks: the slot read is a
    /// `try_read`, and the only contention that can make it fail (a writer
    /// lapping the whole ring between the epoch load and the slot read)
    /// also guarantees the retry's fresh epoch points at a different slot.
    pub fn load(&self) -> PinnedSnapshot {
        loop {
            let observed = self.epoch.load(Ordering::Acquire);
            if let Ok(slot) = self.slots[observed % SLOTS].try_read() {
                if let Some((epoch, snapshot)) = slot.as_ref() {
                    // The slot may have been republished since the epoch
                    // load (a lap); either way it holds a *complete*
                    // published snapshot stamped with its own epoch.
                    return PinnedSnapshot {
                        epoch: *epoch,
                        snapshot: Arc::clone(snapshot),
                    };
                }
            }
            std::hint::spin_loop();
        }
    }

    /// Publishes a new snapshot, returning its epoch. Publishers serialize
    /// on an internal mutex and may wait for readers a full ring-lap
    /// behind; readers never wait for a publisher. The epoch store uses
    /// `Release` ordering, so a reader observing the new epoch observes the
    /// fully-written slot.
    pub fn publish(&self, snapshot: ConsistentSnapshot) -> usize {
        let _writer = self.writer.lock().expect("publish mutex never poisoned");
        let next = self.epoch.load(Ordering::Relaxed) + 1;
        {
            let mut slot = self.slots[next % SLOTS]
                .write()
                .expect("slot lock never poisoned");
            *slot = Some((next, Arc::new(snapshot)));
        }
        self.epoch.store(next, Ordering::Release);
        next
    }
}

/// A sharded bank of [`SnapshotCell`]s serving the *same* tenant: one cell
/// per shard, each holding its own `Arc` of the published snapshot, so
/// concurrent readers spread across shards instead of all hitting one
/// cell's epoch counter and slot ring. The shard count is fixed at
/// construction (the service sizes it through `effective_threads`).
///
/// Readers [`pin`](SnapshotShards::pin) a shard-local snapshot wait-free —
/// a round-robin cursor picks the shard, then the pin is exactly a
/// [`SnapshotCell::load`]. Writers [`broadcast`](SnapshotShards::broadcast)
/// to every shard; shard 0 is published **last**, so once
/// [`epoch`](SnapshotShards::epoch) (shard 0's epoch) reports the new
/// value, every shard serves it. During a broadcast, two concurrent pins
/// may land on different epochs — each is still a complete published
/// snapshot (the per-cell torn-read guarantee is unchanged), and a batch
/// answered from one pin stays single-epoch.
///
/// ```
/// use hc_core::ConsistentSnapshot;
/// use hc_serve::SnapshotShards;
///
/// let shards = SnapshotShards::new(ConsistentSnapshot::from_leaves(&[1.0, 2.0], 2), 4);
/// assert_eq!(shards.shard_count(), 4);
/// let epoch = shards.broadcast(ConsistentSnapshot::from_leaves(&[5.0, 5.0], 2));
/// assert_eq!(epoch, 1);
/// assert_eq!(shards.pin().total(), 10.0); // wait-free, shard-local
/// ```
#[derive(Debug)]
pub struct SnapshotShards {
    cells: Vec<SnapshotCell>,
    /// Round-robin reader cursor; wraps via modulo, `Relaxed` is enough —
    /// it only balances load, it carries no synchronization.
    cursor: AtomicUsize,
}

impl SnapshotShards {
    /// A bank of `shards.max(1)` cells, every shard serving `initial` at
    /// epoch 0. The last shard takes ownership of `initial`; the rest hold
    /// clones.
    pub fn new(initial: ConsistentSnapshot, shards: usize) -> Self {
        let shards = shards.max(1);
        let mut cells = Vec::with_capacity(shards);
        for _ in 0..shards - 1 {
            cells.push(SnapshotCell::new(initial.clone()));
        }
        cells.push(SnapshotCell::new(initial));
        Self {
            cells,
            cursor: AtomicUsize::new(0),
        }
    }

    /// The number of shards (≥ 1, fixed at construction).
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.cells.len()
    }

    /// The bank's epoch: shard 0's, published last by
    /// [`Self::broadcast`] — when this reports `e`, every shard serves
    /// epoch `e`.
    #[inline]
    pub fn epoch(&self) -> usize {
        self.cells[0].epoch()
    }

    /// Pins the served snapshot from the next shard in round-robin order.
    /// Wait-free: cursor bump + [`SnapshotCell::load`].
    pub fn pin(&self) -> PinnedSnapshot {
        let shard = self.cursor.fetch_add(1, Ordering::Relaxed) % self.cells.len();
        self.cells[shard].load()
    }

    /// Pins the served snapshot from a specific shard (index taken modulo
    /// the shard count), for callers with their own placement scheme.
    pub fn pin_shard(&self, shard: usize) -> PinnedSnapshot {
        self.cells[shard % self.cells.len()].load()
    }

    /// Publishes `snapshot` to every shard and returns the new epoch.
    /// Shards 1.. receive clones first; shard 0 — the epoch authority —
    /// takes ownership and is published last.
    pub fn broadcast(&self, snapshot: ConsistentSnapshot) -> usize {
        for cell in &self.cells[1..] {
            cell.publish(snapshot.clone());
        }
        self.cells[0].publish(snapshot)
    }
}

/// A pinned, immutable view of one published snapshot: dereferences to
/// [`ConsistentSnapshot`], stays valid across any number of later
/// publishes, and carries the epoch it was published at.
#[derive(Debug, Clone)]
pub struct PinnedSnapshot {
    epoch: usize,
    snapshot: Arc<ConsistentSnapshot>,
}

impl PinnedSnapshot {
    /// The epoch this snapshot was published at.
    #[inline]
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// The pinned snapshot.
    #[inline]
    pub fn snapshot(&self) -> &ConsistentSnapshot {
        &self.snapshot
    }
}

impl std::ops::Deref for PinnedSnapshot {
    type Target = ConsistentSnapshot;

    #[inline]
    fn deref(&self) -> &ConsistentSnapshot {
        &self.snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_data::Interval;

    fn leaves(vals: &[f64]) -> ConsistentSnapshot {
        ConsistentSnapshot::from_leaves(vals, vals.len())
    }

    #[test]
    fn load_serves_the_latest_publish() {
        let cell = SnapshotCell::new(leaves(&[1.0, 2.0, 3.0, 4.0]));
        assert_eq!(cell.epoch(), 0);
        assert_eq!(cell.load().answer(Interval::new(0, 3)), 10.0);
        let e = cell.publish(leaves(&[4.0, 3.0, 2.0, 11.0]));
        assert_eq!(e, 1);
        assert_eq!(cell.epoch(), 1);
        let pinned = cell.load();
        assert_eq!(pinned.epoch(), 1);
        assert_eq!(pinned.answer(Interval::new(2, 3)), 13.0);
    }

    #[test]
    fn pins_survive_ring_laps() {
        let cell = SnapshotCell::new(leaves(&[1.0; 8]));
        let pinned = cell.load();
        // Lap the ring several times: the pin must keep serving epoch 0's
        // values even though its slot has long been overwritten.
        for i in 1..=(3 * SLOTS) {
            cell.publish(leaves(&[i as f64; 8]));
        }
        assert_eq!(pinned.epoch(), 0);
        assert_eq!(pinned.answer(Interval::new(0, 7)), 8.0);
        let fresh = cell.load();
        assert_eq!(fresh.epoch(), 3 * SLOTS);
        assert_eq!(fresh.answer(Interval::new(0, 7)), 8.0 * (3 * SLOTS) as f64);
    }

    #[test]
    fn shards_serve_the_same_snapshot_from_every_shard() {
        let shards = SnapshotShards::new(leaves(&[1.0, 2.0, 3.0, 4.0]), 3);
        assert_eq!(shards.shard_count(), 3);
        assert_eq!(shards.epoch(), 0);
        let whole = Interval::new(0, 3);
        for shard in 0..shards.shard_count() {
            assert_eq!(shards.pin_shard(shard).answer(whole), 10.0);
        }
        // pin_shard wraps modulo the shard count.
        assert_eq!(shards.pin_shard(7).answer(whole), 10.0);
        let epoch = shards.broadcast(leaves(&[4.0, 3.0, 2.0, 11.0]));
        assert_eq!(epoch, 1);
        assert_eq!(shards.epoch(), 1);
        for _ in 0..2 * shards.shard_count() {
            // Round-robin pins all land on the new epoch.
            let pinned = shards.pin();
            assert_eq!(pinned.epoch(), 1);
            assert_eq!(pinned.answer(whole), 20.0);
        }
    }

    #[test]
    fn zero_shards_clamp_to_one() {
        let shards = SnapshotShards::new(leaves(&[2.0, 2.0]), 0);
        assert_eq!(shards.shard_count(), 1);
        assert_eq!(shards.pin().answer(Interval::new(0, 1)), 4.0);
    }

    #[test]
    fn concurrent_readers_see_only_complete_snapshots() {
        // Each published snapshot is constant-valued, so a torn read (a mix
        // of two epochs' prefixes) would show up as a range answer that is
        // not an exact multiple of the range length.
        let n = 64usize;
        let cell = SnapshotCell::new(leaves(&vec![0.0; n]));
        let publishes = 200usize;
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let whole = Interval::new(0, n - 1);
                    loop {
                        let pinned = cell.load();
                        let per_leaf = pinned.answer(whole) / n as f64;
                        assert_eq!(
                            per_leaf.fract(),
                            0.0,
                            "torn snapshot observed at epoch {}",
                            pinned.epoch()
                        );
                        assert_eq!(per_leaf, pinned.epoch() as f64);
                        if pinned.epoch() == publishes {
                            break;
                        }
                    }
                });
            }
            for i in 1..=publishes {
                cell.publish(leaves(&vec![i as f64; n]));
            }
        });
        assert_eq!(cell.epoch(), publishes);
    }
}
