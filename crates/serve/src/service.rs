//! The multi-tenant histogram service: per-tenant budget ledgers, delta
//! ingest, strategy-dispatched releases, and epoch-swapped serving.
//!
//! Each tenant owns a true histogram (never served directly), a
//! [`PrivacyAccountant`] debited once per release under sequential
//! composition (with named (ε,δ) ledger entries), and a [`SnapshotShards`]
//! bank — one
//! [`crate::cell::SnapshotCell`] per `effective_threads`-governed shard —
//! holding the currently-served [`ConsistentSnapshot`]. Ingest accumulates
//! count deltas behind the tenant's write lock; a release — on the
//! configured cadence or on demand — spends `ε` from the ledger, runs the
//! tenant's [`ReleaseStrategy`] through the allocation-free
//! release+inference pipeline ([`BatchInference::release_and_infer`] for
//! the hierarchical path), and broadcasts the fresh snapshot to every
//! shard. Readers pin a shard-local snapshot round-robin, never block, and
//! never see the true counts: only published post-inference snapshots.
//!
//! Determinism: release `i` of a tenant draws its noise from
//! `SeedStream::new(seed).rng(i)`, so the served answers are bit-identical
//! to running the same strategy serially at the same seeds — pinned by the
//! crate's tests and the `serve_load --verify` subprocess check across
//! `HC_THREADS` settings.

use std::fmt;
use std::sync::Mutex;

use hc_core::{
    effective_threads, AccuracyTarget, BatchInference, BudgetedHierarchical, ConsistentSnapshot,
    FlatUniversal, HierarchicalUniversal, ReleaseStrategy, Rounding, StrategyPlanner,
};
use hc_data::{Domain, Histogram};
use hc_mech::{
    BudgetError, ConfidenceInterval, Epsilon, HierarchicalQuery, LedgerEntry, PreparedMechanism,
    PrivacyAccountant, TreeShape,
};
use hc_noise::{NoiseBackend, SeedStream};

use crate::cell::{PinnedSnapshot, SnapshotShards};
use crate::query::RangeQuery;

/// Errors the service reports to clients. Variants carry plain fields (no
/// boxed payloads, no formatting on construction) so the hot read path can
/// return them without allocating.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// No tenant registered under the given id.
    UnknownTenant {
        /// The id presented.
        tenant: usize,
    },
    /// A tenant with this name is already registered.
    DuplicateTenant {
        /// The conflicting name.
        name: String,
    },
    /// Tenants must serve at least one bin.
    EmptyDomain,
    /// An ingested delta addressed a bin outside the tenant's domain.
    BinOutOfRange {
        /// The offending bin index.
        bin: usize,
        /// The tenant's domain size.
        domain_size: usize,
    },
    /// A query's exclusive upper bound exceeded the tenant's domain.
    QueryOutOfRange {
        /// The query's exclusive upper bound.
        hi: usize,
        /// The tenant's domain size.
        domain_size: usize,
    },
    /// The privacy-budget ledger refused the spend.
    Budget(BudgetError),
    /// The tenant set both an explicit strategy and an accuracy target —
    /// the two prescriptions could silently disagree, so registration
    /// refuses to guess which one wins.
    ConflictingStrategy {
        /// The tenant's name.
        name: String,
    },
    /// The accuracy target's workload was declared over a different domain
    /// than the tenant serves.
    AccuracyDomainMismatch {
        /// The workload's domain size.
        workload_domain: usize,
        /// The tenant's domain size.
        tenant_domain: usize,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownTenant { tenant } => write!(f, "unknown tenant id {tenant}"),
            ServeError::DuplicateTenant { name } => {
                write!(f, "tenant {name:?} is already registered")
            }
            ServeError::EmptyDomain => write!(f, "tenant domain must be non-empty"),
            ServeError::BinOutOfRange { bin, domain_size } => {
                write!(f, "bin {bin} outside domain of size {domain_size}")
            }
            ServeError::QueryOutOfRange { hi, domain_size } => {
                write!(f, "query bound {hi} outside domain of size {domain_size}")
            }
            ServeError::Budget(e) => write!(f, "budget refused: {e}"),
            ServeError::ConflictingStrategy { name } => write!(
                f,
                "tenant {name:?} sets both an explicit strategy and an accuracy target"
            ),
            ServeError::AccuracyDomainMismatch {
                workload_domain,
                tenant_domain,
            } => write!(
                f,
                "accuracy workload declared over domain {workload_domain}, tenant serves {tenant_domain}"
            ),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<BudgetError> for ServeError {
    fn from(e: BudgetError) -> Self {
        ServeError::Budget(e)
    }
}

/// Opaque handle to a registered tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TenantId(usize);

/// Per-tenant configuration, fixed at registration.
#[derive(Debug, Clone)]
pub struct TenantConfig {
    name: String,
    domain_size: usize,
    total_epsilon: f64,
    epsilon_per_release: f64,
    strategy: ReleaseStrategy,
    explicit_strategy: bool,
    accuracy: Option<AccuracyTarget>,
    backend: NoiseBackend,
    refresh_every: u64,
    seed: u64,
    shards: usize,
    blocked_rebuild: bool,
}

impl TenantConfig {
    /// A tenant named `name` over `domain_size` bins, with the defaults:
    /// total budget ε = 1.0 spent ε = 0.1 per release, binary hierarchical
    /// releases, reference noise backend, automatic release every 1000
    /// ingested deltas, seed 0, 4 requested snapshot shards (resolved
    /// through `effective_threads` at registration).
    pub fn new(name: impl Into<String>, domain_size: usize) -> Self {
        Self {
            name: name.into(),
            domain_size,
            total_epsilon: 1.0,
            epsilon_per_release: 0.1,
            strategy: ReleaseStrategy::Hierarchical { branching: 2 },
            explicit_strategy: false,
            accuracy: None,
            backend: NoiseBackend::Reference,
            refresh_every: 1000,
            seed: 0,
            shards: 4,
            blocked_rebuild: false,
        }
    }

    /// Sets the lifetime privacy budget and the ε debited per release.
    /// Sequential composition caps the tenant at
    /// `floor(total / per_release)` releases.
    pub fn with_budget(mut self, total_epsilon: f64, epsilon_per_release: f64) -> Self {
        self.total_epsilon = total_epsilon;
        self.epsilon_per_release = epsilon_per_release;
        self
    }

    /// Sets the release strategy (flat `L̃`, hierarchical `H̄`, or budgeted)
    /// explicitly. Mutually exclusive with [`Self::with_accuracy`]:
    /// registering a config that sets both fails with
    /// [`ServeError::ConflictingStrategy`].
    pub fn with_strategy(mut self, strategy: ReleaseStrategy) -> Self {
        self.strategy = strategy;
        self.explicit_strategy = true;
        self
    }

    /// Plans the strategy *and* the per-release ε from an accuracy target
    /// at registration: the service runs
    /// [`StrategyPlanner::plan`] over the target and adopts the
    /// cheapest-ε plan, overriding the default strategy and
    /// `epsilon_per_release` (the lifetime `total_epsilon` is untouched —
    /// size it to the number of refreshes the tenant should get). Mutually
    /// exclusive with [`Self::with_strategy`].
    pub fn with_accuracy(mut self, target: AccuracyTarget) -> Self {
        self.accuracy = Some(target);
        self
    }

    /// Sets the Laplace sampling backend.
    pub fn with_backend(mut self, backend: NoiseBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Release automatically once this many deltas have been ingested since
    /// the last release. `0` disables the cadence: releases happen only via
    /// [`HistogramService::publish`].
    pub fn with_refresh_every(mut self, deltas: u64) -> Self {
        self.refresh_every = deltas;
        self
    }

    /// Sets the master seed for the tenant's noise stream; release `i`
    /// draws from `SeedStream::new(seed).rng(i)`.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Opts the tenant's tree-backed releases (hierarchical and budgeted)
    /// into the blocked prefix rebuild
    /// ([`ConsistentSnapshot::rebuild_from_tree_values_blocked`]): the
    /// publisher's prefix scan runs one serial add per 8-leaf block instead
    /// of one per leaf.
    ///
    /// **This is an explicit bit opt-in.** The blocked scan reassociates
    /// the leaf summation, so served answers differ in their low bits from
    /// the default serial rebuild (the mode carries its own golden pins in
    /// `tests/snapshot_serving.rs`). Flat releases already serve from fused
    /// prefix arrays and are unaffected.
    pub fn with_blocked_rebuild(mut self) -> Self {
        self.blocked_rebuild = true;
        self
    }

    /// Requests this many snapshot shards for the tenant's serving bank.
    /// The registered shard count is `effective_threads(shards).max(1)` —
    /// an `HC_THREADS` override wins, and at least one shard always exists.
    /// Shard count never changes answers, only reader contention: every
    /// shard serves clones of the same published snapshot.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// The tenant's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The tenant's domain size.
    pub fn domain_size(&self) -> usize {
        self.domain_size
    }
}

/// The strategy-specific release machinery, built once at registration so
/// the per-release path reuses prepared queries and engine scratch. The
/// hierarchical payloads are boxed: `TreeShape` carries an inline offset
/// array of over 500 bytes, and this enum lives behind the tenant lock —
/// built once, matched once per release, never on the read path.
enum Pipeline {
    Flat { mech: FlatUniversal },
    Hierarchical(Box<HierPipeline>),
    Budgeted(Box<BudgetedPipeline>),
}

struct HierPipeline {
    prepared: PreparedMechanism<HierarchicalQuery>,
    shape: TreeShape,
    engine: BatchInference,
    inferred: Vec<f64>,
}

struct BudgetedPipeline {
    mech: BudgetedHierarchical,
    engine: BatchInference,
}

/// Everything behind the tenant's write lock: the true counts, the budget
/// ledger, and the release pipeline. Readers never touch this.
struct WriteState {
    counts: Vec<u64>,
    domain: Domain,
    pending_deltas: u64,
    releases: u64,
    budget: PrivacyAccountant,
    pipeline: Pipeline,
}

struct Tenant {
    config: TenantConfig,
    shards: SnapshotShards,
    write: Mutex<WriteState>,
}

/// Outcome of one successful release+publish.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PublishReport {
    /// The epoch the new snapshot was published at.
    pub epoch: usize,
    /// The zero-based index of this release in the tenant's noise stream.
    pub release_index: u64,
    /// The ε debited from the ledger for this release.
    pub spent: f64,
    /// Budget remaining after the debit.
    pub remaining: f64,
}

/// A long-lived, multi-tenant histogram service.
///
/// Registration and ingest go through `&self` with interior locking per
/// tenant, so one service value can be shared across threads; reads go
/// through each tenant's lock-free [`SnapshotCell`].
///
/// ```
/// use hc_serve::{HistogramService, RangeQuery, TenantConfig};
///
/// let mut service = HistogramService::new();
/// let id = service
///     .register(TenantConfig::new("taxi", 64).with_refresh_every(0))
///     .unwrap();
/// service.ingest(id, &[(3, 10), (40, 2)]).unwrap();
/// let report = service.publish(id).unwrap();
/// assert_eq!(report.epoch, 1);
/// let noisy = service.answer(id, RangeQuery::new(0, 64)).unwrap();
/// assert!(noisy.is_finite());
/// ```
#[derive(Default)]
pub struct HistogramService {
    // A Vec, not a map: tenant counts are small, ids are dense indices, and
    // iteration order stays deterministic for ledger dumps and tests.
    tenants: Vec<Tenant>,
}

impl HistogramService {
    /// An empty service.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Registers a tenant and publishes its epoch-0 snapshot: the all-zeros
    /// histogram, which depends on no data and therefore spends no budget.
    pub fn register(&mut self, config: TenantConfig) -> Result<TenantId, ServeError> {
        let mut config = config;
        if config.domain_size == 0 {
            return Err(ServeError::EmptyDomain);
        }
        if self.tenants.iter().any(|t| t.config.name == config.name) {
            return Err(ServeError::DuplicateTenant {
                name: config.name.clone(),
            });
        }
        // Accuracy-first registration: plan the strategy and per-release ε
        // from the target before the pipeline is built. An explicit
        // strategy alongside a target is refused rather than second-guessed.
        let mut delta_allowance = 0.0;
        if let Some(target) = config.accuracy.take() {
            if config.explicit_strategy {
                return Err(ServeError::ConflictingStrategy { name: config.name });
            }
            if let Some(w) = target
                .workload()
                .iter()
                .find(|w| w.domain_size() != config.domain_size)
            {
                return Err(ServeError::AccuracyDomainMismatch {
                    workload_domain: w.domain_size(),
                    tenant_domain: config.domain_size,
                });
            }
            let plan = StrategyPlanner::for_domain(config.domain_size).plan(&target);
            config.strategy = plan.choice;
            config.epsilon_per_release = plan.epsilon;
            delta_allowance = target.delta();
        }
        let epsilon = Epsilon::new(config.epsilon_per_release)?;
        let total = Epsilon::new(config.total_epsilon)?;
        let domain =
            Domain::new(config.name.as_str(), config.domain_size).expect("size checked above");
        let pipeline = match &config.strategy {
            ReleaseStrategy::Flat => Pipeline::Flat {
                mech: FlatUniversal::new(epsilon).with_backend(config.backend),
            },
            ReleaseStrategy::Hierarchical { branching } => {
                let mech =
                    HierarchicalUniversal::new(epsilon, *branching).with_backend(config.backend);
                let shape = TreeShape::for_domain(config.domain_size, *branching);
                Pipeline::Hierarchical(Box::new(HierPipeline {
                    prepared: mech.prepare(config.domain_size),
                    engine: BatchInference::for_shape(&shape),
                    inferred: Vec::new(),
                    shape,
                }))
            }
            ReleaseStrategy::Budgeted { branching, split } => {
                let shape = TreeShape::for_domain(config.domain_size, *branching);
                Pipeline::Budgeted(Box::new(BudgetedPipeline {
                    mech: BudgetedHierarchical::new(epsilon, *branching, split.clone())
                        .with_backend(config.backend),
                    engine: BatchInference::for_shape(&shape),
                }))
            }
        };
        let budget = PrivacyAccountant::new(total)
            .with_delta(delta_allowance)
            .map_err(ServeError::Budget)?;
        let write = WriteState {
            counts: vec![0; config.domain_size],
            domain,
            pending_deltas: 0,
            releases: 0,
            budget,
            pipeline,
        };
        let initial =
            ConsistentSnapshot::from_leaves(&vec![0.0; config.domain_size], config.domain_size);
        let shard_count = effective_threads(config.shards).max(1);
        let id = TenantId(self.tenants.len());
        self.tenants.push(Tenant {
            config,
            shards: SnapshotShards::new(initial, shard_count),
            write: Mutex::new(write),
        });
        Ok(id)
    }

    /// Looks a tenant up by name.
    pub fn tenant_id(&self, name: &str) -> Option<TenantId> {
        self.tenants
            .iter()
            .position(|t| t.config.name == name)
            .map(TenantId)
    }

    fn tenant(&self, id: TenantId) -> Result<&Tenant, ServeError> {
        self.tenants
            .get(id.0)
            .ok_or(ServeError::UnknownTenant { tenant: id.0 })
    }

    /// Ingests `(bin, count)` deltas into the tenant's true histogram.
    ///
    /// Validates every bin before applying any delta (all-or-nothing). If
    /// the tenant's refresh cadence fires and budget remains, a release is
    /// published and its report returned; if the cadence fires but the
    /// ledger is exhausted, ingest still succeeds and returns `Ok(None)` —
    /// the service keeps serving the last published snapshot rather than
    /// over-spending.
    pub fn ingest(
        &self,
        id: TenantId,
        deltas: &[(usize, u64)],
    ) -> Result<Option<PublishReport>, ServeError> {
        let tenant = self.tenant(id)?;
        let mut state = tenant.write.lock().expect("tenant lock never poisoned");
        let domain_size = tenant.config.domain_size;
        if let Some(&(bin, _)) = deltas.iter().find(|&&(bin, _)| bin >= domain_size) {
            return Err(ServeError::BinOutOfRange { bin, domain_size });
        }
        for &(bin, count) in deltas {
            state.counts[bin] += count;
        }
        state.pending_deltas += deltas.len() as u64;
        let cadence = tenant.config.refresh_every;
        if cadence > 0 && state.pending_deltas >= cadence {
            match Self::release_locked(tenant, &mut state) {
                Ok(report) => return Ok(Some(report)),
                Err(ServeError::Budget(BudgetError::Exhausted { .. })) => return Ok(None),
                Err(e) => return Err(e),
            }
        }
        Ok(None)
    }

    /// Releases and publishes now, regardless of cadence. Spends
    /// `epsilon_per_release` from the ledger; fails with
    /// [`ServeError::Budget`] when exhausted.
    pub fn publish(&self, id: TenantId) -> Result<PublishReport, ServeError> {
        let tenant = self.tenant(id)?;
        let mut state = tenant.write.lock().expect("tenant lock never poisoned");
        Self::release_locked(tenant, &mut state)
    }

    /// One release under the tenant's write lock: debit the ledger, derive
    /// the release RNG, run the strategy pipeline, publish the snapshot.
    fn release_locked(
        tenant: &Tenant,
        state: &mut WriteState,
    ) -> Result<PublishReport, ServeError> {
        let release_index = state.releases;
        let epsilon = Epsilon::new(tenant.config.epsilon_per_release)?;
        // Epoch 0 is the data-free zeros snapshot, so release i funds
        // epoch i + 1.
        let spent = state
            .budget
            .spend_at(
                format!("release-{release_index}"),
                epsilon,
                0.0,
                release_index + 1,
            )?
            .value();
        let mut rng = SeedStream::new(tenant.config.seed).rng(release_index);
        let histogram = Histogram::from_counts(state.domain.clone(), state.counts.clone());
        let domain_size = tenant.config.domain_size;
        let snapshot = match &mut state.pipeline {
            Pipeline::Flat { mech } => mech.release(&histogram, &mut rng).snapshot(Rounding::None),
            Pipeline::Hierarchical(hier) => {
                let HierPipeline {
                    prepared,
                    shape,
                    engine,
                    inferred,
                } = hier.as_mut();
                engine.release_and_infer(prepared, &histogram, &mut rng, inferred);
                let mut snapshot = Self::tree_snapshot(
                    shape,
                    inferred,
                    domain_size,
                    tenant.config.blocked_rebuild,
                );
                snapshot.set_noise_scale(Some(prepared.noise_scale()));
                snapshot
            }
            Pipeline::Budgeted(budgeted) => {
                let BudgetedPipeline { mech, engine } = budgeted.as_mut();
                let release = mech.release(&histogram, &mut rng);
                let tree = release.infer_with(engine);
                // Per-level scales differ under a geometric split, so no
                // single Laplace scale is attached: confidence queries
                // report `None` rather than a wrong union bound.
                Self::tree_snapshot(
                    release.shape(),
                    tree.node_values(),
                    domain_size,
                    tenant.config.blocked_rebuild,
                )
            }
        };
        state.releases += 1;
        state.pending_deltas = 0;
        let epoch = tenant.shards.broadcast(snapshot);
        Ok(PublishReport {
            epoch,
            release_index,
            spent,
            remaining: state.budget.remaining(),
        })
    }

    /// Builds the published snapshot from a tree-node vector, routing to
    /// the blocked prefix scan only for tenants that opted in via
    /// [`TenantConfig::with_blocked_rebuild`]. The default path is the
    /// frozen serial rebuild — bit-identical to every existing pin.
    fn tree_snapshot(
        shape: &TreeShape,
        values: &[f64],
        domain_size: usize,
        blocked: bool,
    ) -> ConsistentSnapshot {
        if blocked {
            let mut snapshot = ConsistentSnapshot::from_leaves(&[], 0);
            snapshot.rebuild_from_tree_values_blocked(shape, values, domain_size);
            snapshot
        } else {
            ConsistentSnapshot::from_tree_values(shape, values, domain_size)
        }
    }

    /// Answers one range query from the tenant's current snapshot. Empty
    /// queries answer exactly `0.0`.
    pub fn answer(&self, id: TenantId, query: RangeQuery) -> Result<f64, ServeError> {
        let tenant = self.tenant(id)?;
        let domain_size = tenant.config.domain_size;
        if query.hi() > domain_size {
            return Err(ServeError::QueryOutOfRange {
                hi: query.hi(),
                domain_size,
            });
        }
        let pinned = tenant.shards.pin();
        Ok(match query.to_interval() {
            Some(interval) => pinned.answer(interval),
            None => 0.0,
        })
    }

    /// Answers a batch of range queries into a caller-owned buffer —
    /// allocation-free after `out` has warmed up, and every answer comes
    /// from the *same* pinned snapshot (one epoch, never a mix).
    pub fn answer_into(
        &self,
        id: TenantId,
        queries: &[RangeQuery],
        out: &mut Vec<f64>,
    ) -> Result<usize, ServeError> {
        let tenant = self.tenant(id)?;
        let domain_size = tenant.config.domain_size;
        for query in queries {
            if query.hi() > domain_size {
                return Err(ServeError::QueryOutOfRange {
                    hi: query.hi(),
                    domain_size,
                });
            }
        }
        out.clear();
        out.reserve(queries.len());
        let pinned = tenant.shards.pin();
        for query in queries {
            out.push(match query.to_interval() {
                Some(interval) => pinned.answer(interval),
                None => 0.0,
            });
        }
        Ok(pinned.epoch())
    }

    /// A union-bound confidence interval for one query at `level`, from the
    /// current snapshot. `None` when the serving snapshot carries no single
    /// noise scale (budgeted releases, or the unreleased epoch-0 zeros).
    /// Empty queries get the exact zero-width interval at `0.0`.
    pub fn confidence(
        &self,
        id: TenantId,
        query: RangeQuery,
        level: f64,
    ) -> Result<Option<ConfidenceInterval>, ServeError> {
        let tenant = self.tenant(id)?;
        let domain_size = tenant.config.domain_size;
        if query.hi() > domain_size {
            return Err(ServeError::QueryOutOfRange {
                hi: query.hi(),
                domain_size,
            });
        }
        let pinned = tenant.shards.pin();
        Ok(match query.to_interval() {
            Some(interval) => pinned.confidence(interval, level),
            None => pinned
                .noise_scale()
                .map(|scale| hc_core::union_bound_interval(scale, 0, level, 0.0)),
        })
    }

    /// Pins the tenant's currently-served snapshot (stays valid across
    /// later publishes).
    pub fn snapshot(&self, id: TenantId) -> Result<PinnedSnapshot, ServeError> {
        Ok(self.tenant(id)?.shards.pin())
    }

    /// The tenant's current serving epoch (0 = initial zeros snapshot).
    pub fn epoch(&self, id: TenantId) -> Result<usize, ServeError> {
        Ok(self.tenant(id)?.shards.epoch())
    }

    /// The tenant's resolved shard count: the registered
    /// `effective_threads(config.shards).max(1)`.
    pub fn shard_count(&self, id: TenantId) -> Result<usize, ServeError> {
        Ok(self.tenant(id)?.shards.shard_count())
    }

    /// Budget remaining on the tenant's ledger.
    pub fn remaining_budget(&self, id: TenantId) -> Result<f64, ServeError> {
        let tenant = self.tenant(id)?;
        let state = tenant.write.lock().expect("tenant lock never poisoned");
        Ok(state.budget.remaining())
    }

    /// The tenant's spend ledger in release order — typed
    /// [`LedgerEntry`] values (label, ε, δ, funded epoch), not positional
    /// tuples.
    pub fn ledger(&self, id: TenantId) -> Result<Vec<LedgerEntry>, ServeError> {
        let tenant = self.tenant(id)?;
        let state = tenant.write.lock().expect("tenant lock never poisoned");
        Ok(state.budget.ledger().to_vec())
    }

    /// The release strategy the tenant is running — the registered one, or
    /// the planner's pick for tenants that registered with
    /// [`TenantConfig::with_accuracy`].
    pub fn strategy(&self, id: TenantId) -> Result<ReleaseStrategy, ServeError> {
        Ok(self.tenant(id)?.config.strategy.clone())
    }

    /// The ε the tenant debits per release — the registered value, or the
    /// solved minimum for accuracy-planned tenants.
    pub fn epsilon_per_release(&self, id: TenantId) -> Result<f64, ServeError> {
        Ok(self.tenant(id)?.config.epsilon_per_release)
    }

    /// Debits an out-of-band (ε, δ) spend against the tenant's accountant
    /// under a caller-chosen label — the hook for privacy costs incurred
    /// outside the release pipeline (e.g. a stability-mechanism release
    /// over the tenant's sparse domain). Recorded at epoch 0 since no
    /// served snapshot is funded.
    pub fn debit(
        &self,
        id: TenantId,
        label: impl Into<String>,
        epsilon: f64,
        delta: f64,
    ) -> Result<(), ServeError> {
        let tenant = self.tenant(id)?;
        let mut state = tenant.write.lock().expect("tenant lock never poisoned");
        let epsilon = Epsilon::new(epsilon)?;
        state.budget.spend_at(label, epsilon, delta, 0)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_data::Interval;

    fn config(name: &str, n: usize) -> TenantConfig {
        TenantConfig::new(name, n)
            .with_budget(1.0, 0.25)
            .with_refresh_every(0)
            .with_seed(7)
    }

    #[test]
    fn registration_validates_and_serves_zeros() {
        let mut service = HistogramService::new();
        assert_eq!(
            service.register(config("t", 0)),
            Err(ServeError::EmptyDomain)
        );
        let id = service.register(config("t", 16)).unwrap();
        assert_eq!(
            service.register(config("t", 8)).unwrap_err(),
            ServeError::DuplicateTenant { name: "t".into() }
        );
        assert_eq!(service.tenant_id("t"), Some(id));
        assert_eq!(service.tenant_id("missing"), None);
        assert_eq!(service.epoch(id).unwrap(), 0);
        assert_eq!(service.answer(id, RangeQuery::new(0, 16)).unwrap(), 0.0);
        // Epoch 0 is data-independent: the full budget is still there.
        assert_eq!(service.remaining_budget(id).unwrap(), 1.0);
    }

    #[test]
    fn hierarchical_publishes_match_the_serial_pipeline_bit_for_bit() {
        let mut service = HistogramService::new();
        let id = service.register(config("t", 32)).unwrap();
        service.ingest(id, &[(0, 5), (3, 1), (31, 9)]).unwrap();
        let report = service.publish(id).unwrap();
        assert_eq!((report.epoch, report.release_index), (1, 0));
        assert_eq!(report.spent, 0.25);
        assert_eq!(report.remaining, 0.75);

        // Serial reference: same strategy, same seed, same release index.
        let eps = Epsilon::new(0.25).unwrap();
        let mut counts = vec![0u64; 32];
        counts[0] = 5;
        counts[3] = 1;
        counts[31] = 9;
        let hist = Histogram::from_counts(Domain::new("t", 32).unwrap(), counts);
        let mut rng = SeedStream::new(7).rng(0);
        let mut engine = BatchInference::for_shape(&TreeShape::for_domain(32, 2));
        let expected = HierarchicalUniversal::new(eps, 2)
            .release(&hist, &mut rng)
            .infer_snapshot(&mut engine);

        let served = service.snapshot(id).unwrap();
        assert_eq!(served.snapshot(), &expected);
        for (lo, hi) in [(0, 1), (0, 32), (3, 17), (31, 32)] {
            let q = RangeQuery::new(lo, hi);
            assert_eq!(
                service.answer(id, q).unwrap(),
                expected.answer(Interval::new(lo, hi - 1)),
                "range [{lo}, {hi})"
            );
        }
    }

    #[test]
    fn flat_and_budgeted_strategies_release_and_serve() {
        let mut service = HistogramService::new();
        let flat = service
            .register(config("flat", 16).with_strategy(ReleaseStrategy::Flat))
            .unwrap();
        let budgeted = service
            .register(
                config("budgeted", 16).with_strategy(ReleaseStrategy::Budgeted {
                    branching: 2,
                    split: hc_core::BudgetSplit::Geometric { ratio: 1.5 },
                }),
            )
            .unwrap();
        for id in [flat, budgeted] {
            service.ingest(id, &[(2, 4), (9, 4)]).unwrap();
            let report = service.publish(id).unwrap();
            assert_eq!(report.epoch, 1);
            let total = service.answer(id, RangeQuery::new(0, 16)).unwrap();
            assert!(total.is_finite());
        }
        // Flat releases carry a single Laplace scale; budgeted ones do not.
        let q = RangeQuery::new(2, 10);
        assert!(service.confidence(flat, q, 0.95).unwrap().is_some());
        assert!(service.confidence(budgeted, q, 0.95).unwrap().is_none());
    }

    #[test]
    fn blocked_rebuild_opt_in_serves_within_tolerance_of_the_default() {
        // Two tenants, identical strategy/seed/data — one on the default
        // serial rebuild, one opted into the blocked scan. The blocked
        // tenant's answers must agree to float tolerance (the reassociation
        // only moves low bits); its bits are pinned separately in
        // tests/snapshot_serving.rs.
        let mut service = HistogramService::new();
        let serial = service.register(config("serial", 64)).unwrap();
        let blocked = service
            .register(config("blocked", 64).with_blocked_rebuild())
            .unwrap();
        let deltas: Vec<(usize, u64)> = (0..64).map(|i| (i, (i as u64 * 7) % 13)).collect();
        for id in [serial, blocked] {
            service.ingest(id, &deltas).unwrap();
            service.publish(id).unwrap();
        }
        for (lo, hi) in [(0usize, 64usize), (3, 40), (17, 18), (0, 1)] {
            let q = RangeQuery::new(lo, hi);
            let a = service.answer(serial, q).unwrap();
            let b = service.answer(blocked, q).unwrap();
            assert!(
                (a - b).abs() <= 1e-9 * a.abs().max(1.0),
                "[{lo},{hi}) {a} vs {b}"
            );
        }
    }

    #[test]
    fn batch_answers_come_from_one_epoch() {
        let mut service = HistogramService::new();
        let id = service.register(config("t", 8)).unwrap();
        service.ingest(id, &[(1, 3)]).unwrap();
        service.publish(id).unwrap();
        let queries = [
            RangeQuery::new(0, 8),
            RangeQuery::new(4, 4), // empty
            RangeQuery::new(1, 2),
        ];
        let mut out = Vec::new();
        let epoch = service.answer_into(id, &queries, &mut out).unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(out.len(), 3);
        assert_eq!(out[1], 0.0);
        assert_eq!(out[0], service.answer(id, queries[0]).unwrap());
    }

    #[test]
    fn empty_queries_answer_zero_with_zero_width_confidence() {
        let mut service = HistogramService::new();
        let id = service.register(config("t", 8)).unwrap();
        service.publish(id).unwrap();
        let empty = RangeQuery::new(5, 5);
        assert_eq!(service.answer(id, empty).unwrap(), 0.0);
        let ci = service.confidence(id, empty, 0.95).unwrap().unwrap();
        assert_eq!((ci.lo, ci.hi), (0.0, 0.0));
    }

    #[test]
    fn validation_rejects_bad_bins_queries_and_ids() {
        let mut service = HistogramService::new();
        let id = service.register(config("t", 8)).unwrap();
        assert_eq!(
            service.ingest(id, &[(2, 1), (8, 1)]).unwrap_err(),
            ServeError::BinOutOfRange {
                bin: 8,
                domain_size: 8
            }
        );
        // All-or-nothing: the valid delta before the bad one did not land.
        service.publish(id).unwrap();
        assert_eq!(service.answer(id, RangeQuery::new(0, 8)).unwrap(), {
            let hist = Histogram::from_counts(Domain::new("t", 8).unwrap(), vec![0; 8]);
            let mut rng = SeedStream::new(7).rng(0);
            let mut engine = BatchInference::for_shape(&TreeShape::for_domain(8, 2));
            HierarchicalUniversal::new(Epsilon::new(0.25).unwrap(), 2)
                .release(&hist, &mut rng)
                .infer_snapshot(&mut engine)
                .answer(Interval::new(0, 7))
        });
        assert_eq!(
            service.answer(id, RangeQuery::new(0, 9)).unwrap_err(),
            ServeError::QueryOutOfRange {
                hi: 9,
                domain_size: 8
            }
        );
        let bogus = TenantId(42);
        assert_eq!(
            service.answer(bogus, RangeQuery::new(0, 1)).unwrap_err(),
            ServeError::UnknownTenant { tenant: 42 }
        );
    }

    #[test]
    fn budget_exhaustion_stops_releases_but_not_serving() {
        let mut service = HistogramService::new();
        // Budget for exactly 2 releases.
        let id = service
            .register(
                TenantConfig::new("t", 8)
                    .with_budget(0.5, 0.25)
                    .with_refresh_every(0)
                    .with_seed(3),
            )
            .unwrap();
        service.publish(id).unwrap();
        service.publish(id).unwrap();
        assert_eq!(service.remaining_budget(id).unwrap(), 0.0);
        let err = service.publish(id).unwrap_err();
        assert!(matches!(
            err,
            ServeError::Budget(BudgetError::Exhausted { .. })
        ));
        // Still serving the last published epoch.
        assert_eq!(service.epoch(id).unwrap(), 2);
        assert!(service
            .answer(id, RangeQuery::new(0, 8))
            .unwrap()
            .is_finite());
        let ledger = service.ledger(id).unwrap();
        assert_eq!(
            ledger,
            vec![
                LedgerEntry {
                    label: "release-0".to_string(),
                    epsilon: 0.25,
                    delta: 0.0,
                    release_epoch: 1,
                },
                LedgerEntry {
                    label: "release-1".to_string(),
                    epsilon: 0.25,
                    delta: 0.0,
                    release_epoch: 2,
                },
            ]
        );
    }

    #[test]
    fn cadence_triggers_releases_and_goes_quiet_when_exhausted() {
        let mut service = HistogramService::new();
        let id = service
            .register(
                TenantConfig::new("t", 8)
                    .with_budget(0.2, 0.1)
                    .with_refresh_every(2)
                    .with_seed(11),
            )
            .unwrap();
        // One delta: below cadence, no release.
        assert_eq!(service.ingest(id, &[(0, 1)]).unwrap(), None);
        assert_eq!(service.epoch(id).unwrap(), 0);
        // Second delta trips the cadence.
        let report = service.ingest(id, &[(1, 1)]).unwrap().unwrap();
        assert_eq!((report.epoch, report.release_index), (1, 0));
        // Pending counter reset: two more deltas for the next release.
        assert_eq!(service.ingest(id, &[(2, 1)]).unwrap(), None);
        assert!(service.ingest(id, &[(3, 1)]).unwrap().is_some());
        // Budget is now exhausted: the cadence fires silently, ingest still
        // lands (visible in the *next* release if budget were added).
        assert_eq!(service.ingest(id, &[(4, 1), (5, 1)]).unwrap(), None);
        assert_eq!(service.epoch(id).unwrap(), 2);
        assert_eq!(service.remaining_budget(id).unwrap(), 0.0);
    }

    #[test]
    fn shard_count_is_a_contention_knob_not_a_semantics_knob() {
        let build = |shards: usize| {
            let mut service = HistogramService::new();
            let id = service
                .register(config("t", 32).with_shards(shards))
                .unwrap();
            service.ingest(id, &[(1, 4), (17, 2), (30, 8)]).unwrap();
            service.publish(id).unwrap();
            let queries: Vec<RangeQuery> = (0..32).map(|lo| RangeQuery::new(lo, 32)).collect();
            let mut out = Vec::new();
            service.answer_into(id, &queries, &mut out).unwrap();
            (service.shard_count(id).unwrap(), out)
        };
        let (one, serial) = build(1);
        let (many, sharded) = build(4);
        assert_eq!(one, effective_threads(1).max(1));
        assert_eq!(many, effective_threads(4).max(1));
        // Bit-identical across shard counts: every shard serves clones of
        // the same published snapshot.
        assert_eq!(sharded, serial);
    }

    #[test]
    fn same_seed_same_answers_independent_of_publish_route() {
        // A cadence-triggered release and a manual publish at the same
        // release index produce bit-identical snapshots.
        let build = |refresh: u64| {
            let mut service = HistogramService::new();
            let id = service
                .register(
                    TenantConfig::new("t", 16)
                        .with_budget(1.0, 0.5)
                        .with_refresh_every(refresh)
                        .with_seed(99),
                )
                .unwrap();
            service.ingest(id, &[(3, 2), (7, 5)]).unwrap();
            if refresh == 0 {
                service.publish(id).unwrap();
            }
            let mut out = Vec::new();
            let queries: Vec<RangeQuery> = (0..16).map(|lo| RangeQuery::new(lo, 16)).collect();
            service.answer_into(id, &queries, &mut out).unwrap();
            out
        };
        assert_eq!(build(0), build(2));
    }

    #[test]
    fn accuracy_registration_plans_strategy_and_epsilon() {
        use hc_data::RangeWorkload;
        let n = 1 << 10;
        let target = AccuracyTarget::new(0.05, 50.0)
            .with_workload(vec![RangeWorkload::new(n, 256)])
            .with_delta(1e-7);
        let mut service = HistogramService::new();
        let id = service
            .register(
                TenantConfig::new("planned", n)
                    .with_budget(100.0, 0.1) // per-release ε is overridden below
                    .with_refresh_every(0)
                    .with_seed(5)
                    .with_accuracy(target.clone()),
            )
            .unwrap();
        // The adopted plan is exactly the planner's top-ranked one.
        let expected = StrategyPlanner::for_domain(n).plan(&target);
        assert_eq!(service.strategy(id).unwrap(), expected.choice);
        assert_eq!(service.epsilon_per_release(id).unwrap(), expected.epsilon);
        // And the release pipeline actually debits the solved ε.
        service.ingest(id, &[(9, 3)]).unwrap();
        let report = service.publish(id).unwrap();
        assert_eq!(report.spent, expected.epsilon);
        // The target's δ became the accountant's allowance: a stability
        // debit within it lands, one beyond it is refused.
        service.debit(id, "stability", 0.5, 5e-8).unwrap();
        let err = service.debit(id, "stability-2", 0.5, 9e-8).unwrap_err();
        assert!(matches!(
            err,
            ServeError::Budget(BudgetError::DeltaExhausted { .. })
        ));
        let ledger = service.ledger(id).unwrap();
        assert_eq!(ledger.len(), 2);
        assert_eq!(ledger[1].label, "stability");
        assert_eq!(ledger[1].delta, 5e-8);
        assert_eq!(ledger[1].release_epoch, 0);
    }

    #[test]
    fn accuracy_and_explicit_strategy_conflict_at_registration() {
        let mut service = HistogramService::new();
        let err = service
            .register(
                TenantConfig::new("both", 64)
                    .with_strategy(ReleaseStrategy::Flat)
                    .with_accuracy(AccuracyTarget::new(0.05, 50.0)),
            )
            .unwrap_err();
        assert_eq!(
            err,
            ServeError::ConflictingStrategy {
                name: "both".into()
            }
        );
    }

    #[test]
    fn accuracy_workload_must_match_the_tenant_domain() {
        use hc_data::RangeWorkload;
        let mut service = HistogramService::new();
        let err = service
            .register(TenantConfig::new("mismatch", 64).with_accuracy(
                AccuracyTarget::new(0.05, 50.0).with_workload(vec![RangeWorkload::new(128, 4)]),
            ))
            .unwrap_err();
        assert_eq!(
            err,
            ServeError::AccuracyDomainMismatch {
                workload_domain: 128,
                tenant_domain: 64
            }
        );
    }

    #[test]
    fn pure_epsilon_tenants_refuse_delta_debits() {
        let mut service = HistogramService::new();
        let id = service.register(config("t", 8)).unwrap();
        // ε-only debits are fine out of band…
        service.debit(id, "side-channel", 0.1, 0.0).unwrap();
        // …but a positive δ needs an allowance no pure-ε tenant has.
        let err = service.debit(id, "stability", 0.1, 1e-9).unwrap_err();
        assert!(matches!(
            err,
            ServeError::Budget(BudgetError::DeltaExhausted { .. })
        ));
    }
}
