//! The service's wire-level range query.
//!
//! The core [`hc_data::Interval`] is *structurally non-empty* (its
//! constructor asserts `lo <= hi` over inclusive bounds), which is the
//! right invariant for the inference engines but leaves a long-lived
//! service no way to express "a client asked for nothing". [`RangeQuery`]
//! is the half-open `[lo, hi)` form used at the service boundary: empty
//! ranges are representable (`lo == hi`), answered exactly (sum over
//! nothing is `0.0`, confidence width zero via
//! [`hc_core::union_bound_interval`] at `m = 0`), and non-empty ranges
//! lower to an [`Interval`] for the snapshot's O(1) prefix serving.
//!
//! # Range-vocabulary convention
//!
//! Inclusive ↔ half-open conversions go through exactly one audited path:
//! [`Interval::half_open`] and [`Interval::to_half_open`] in `hc-data`.
//! This module's `From<Interval>` / `TryFrom<RangeQuery>` impls (and the
//! named [`RangeQuery::from_interval`] / [`RangeQuery::to_interval`]
//! helpers) delegate there — no `±1` arithmetic is performed here.

use hc_data::Interval;

/// A half-open range query `[lo, hi)` over histogram bins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RangeQuery {
    lo: usize,
    hi: usize,
}

impl RangeQuery {
    /// The query `[lo, hi)`. Empty when `lo == hi`.
    ///
    /// # Panics
    ///
    /// If `lo > hi` — malformed on any domain, unlike out-of-domain bounds
    /// which the service reports per-tenant as
    /// [`ServeError::QueryOutOfRange`](crate::ServeError::QueryOutOfRange).
    pub fn new(lo: usize, hi: usize) -> Self {
        assert!(lo <= hi, "range query bounds out of order");
        Self { lo, hi }
    }

    /// The inclusive interval `[lo, hi]`, as a half-open `[lo, hi + 1)`.
    pub fn from_interval(interval: Interval) -> Self {
        let (lo, hi) = interval.to_half_open();
        Self { lo, hi }
    }

    /// Inclusive lower bound.
    #[inline]
    pub fn lo(&self) -> usize {
        self.lo
    }

    /// Exclusive upper bound.
    #[inline]
    pub fn hi(&self) -> usize {
        self.hi
    }

    /// Number of bins covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.hi - self.lo
    }

    /// Whether the query covers no bins.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lo == self.hi
    }

    /// Lowers to the core's inclusive [`Interval`]; `None` when empty.
    #[inline]
    pub fn to_interval(self) -> Option<Interval> {
        Interval::half_open(self.lo, self.hi)
    }
}

impl From<Interval> for RangeQuery {
    fn from(interval: Interval) -> Self {
        RangeQuery::from_interval(interval)
    }
}

/// The error for [`Interval`]'s `TryFrom<RangeQuery>`: the query was empty,
/// and intervals are structurally non-empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmptyRange {
    /// The empty query's position (`lo == hi`).
    pub at: usize,
}

impl core::fmt::Display for EmptyRange {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "empty range query at bin {} has no interval form",
            self.at
        )
    }
}

impl std::error::Error for EmptyRange {}

impl TryFrom<RangeQuery> for Interval {
    type Error = EmptyRange;

    fn try_from(query: RangeQuery) -> Result<Self, Self::Error> {
        query.to_interval().ok_or(EmptyRange { at: query.lo() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_with_interval() {
        let q = RangeQuery::from_interval(Interval::new(2, 5));
        assert_eq!((q.lo(), q.hi(), q.len()), (2, 6, 4));
        assert_eq!(q.to_interval(), Some(Interval::new(2, 5)));
        // The std conversion traits take the same audited path.
        assert_eq!(RangeQuery::from(Interval::new(2, 5)), q);
        assert_eq!(Interval::try_from(q), Ok(Interval::new(2, 5)));
        assert_eq!(
            Interval::try_from(RangeQuery::new(3, 3)),
            Err(EmptyRange { at: 3 })
        );
    }

    #[test]
    fn empty_queries_are_representable() {
        let q = RangeQuery::new(3, 3);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.to_interval(), None);
        // Empty at the domain origin too.
        assert_eq!(RangeQuery::new(0, 0).to_interval(), None);
    }

    #[test]
    #[should_panic(expected = "bounds out of order")]
    fn inverted_bounds_are_rejected() {
        let _ = RangeQuery::new(4, 2);
    }
}
