//! Experiment harness reproducing every table and figure of the paper.
//!
//! Each experiment is a library function under [`experiments`] taking a
//! [`RunConfig`]; the binaries in `src/bin/` are thin wrappers so the same
//! code drives full paper-scale runs, `--quick` smoke runs, and the
//! integration tests. Results are printed as aligned tables (the same
//! rows/series the paper reports) and the claims being checked are stated
//! inline.
//!
//! Reproduction protocol (Sec. 5): error is average *squared* error over 50
//! mechanism samples; `ε ∈ {1.0, 0.1, 0.01}`; universal-histogram queries
//! sweep sizes `2^i` with 1000 uniformly-located ranges per size.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod cli;
pub mod datasets;
pub mod experiments;
pub mod runner;
pub mod stats;
pub mod table;

pub use cli::RunConfig;
