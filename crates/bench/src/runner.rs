//! Parallel trial execution with deterministic per-trial seeding.

use hc_noise::SeedStream;
use rand::rngs::StdRng;

/// Runs `trials` independent repetitions of `body`, each with its own RNG
/// derived from `seeds`, spread across available cores with std's scoped
/// threads. Results are returned in trial order regardless of scheduling,
/// so parallel and serial runs are bit-identical.
pub fn run_trials<T, F>(trials: usize, seeds: SeedStream, body: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, StdRng) -> T + Sync,
{
    run_trials_with(trials, seeds, || (), |t, rng, ()| body(t, rng))
}

/// [`run_trials`] with per-worker reusable state: `init` runs once on each
/// worker thread (and once on the serial path) and the resulting state is
/// threaded through every trial that worker executes.
///
/// This is the hook for scratch reuse on the hot paths — e.g. one
/// [`hc_core::BatchInference`] per worker, so thousands of inference trials
/// share a handful of allocations instead of allocating per trial. Because
/// each trial's randomness comes only from its own seeded RNG, results are
/// still bit-identical regardless of thread count or scheduling.
///
/// Worker count defaults to the available parallelism; the `HC_THREADS`
/// environment variable overrides it ([`hc_core::effective_threads`]) so CI
/// and bench runs can pin the fan-out deterministically.
pub fn run_trials_with<T, S, I, F>(trials: usize, seeds: SeedStream, init: I, body: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(usize, StdRng, &mut S) -> T + Sync,
{
    let threads = hc_core::effective_threads(
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    )
    .min(trials.max(1));

    if threads <= 1 || trials <= 1 {
        let mut state = init();
        return (0..trials)
            .map(|t| body(t, seeds.rng(t as u64), &mut state))
            .collect();
    }

    // Work-stealing on an atomic counter; each worker collects its own
    // (trial index, result) pairs and the pairs are merged in trial order.
    let counter = std::sync::atomic::AtomicUsize::new(0);
    let body = &body;
    let init = &init;
    let counter = &counter;

    let mut tagged: Vec<(usize, T)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut state = init();
                    let mut local = Vec::new();
                    loop {
                        let t = counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if t >= trials {
                            break;
                        }
                        local.push((t, body(t, seeds.rng(t as u64), &mut state)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("trial workers do not panic"))
            .collect()
    });

    tagged.sort_by_key(|(t, _)| *t);
    tagged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn results_are_in_trial_order() {
        let seeds = SeedStream::new(1);
        let out = run_trials(64, seeds, |t, _rng| t * 2);
        assert_eq!(out, (0..64).map(|t| t * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_serial() {
        let seeds = SeedStream::new(2);
        let parallel = run_trials(32, seeds, |_t, mut rng| rng.random::<f64>());
        let serial: Vec<f64> = (0..32)
            .map(|t| seeds.rng(t as u64).random::<f64>())
            .collect();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn zero_and_one_trials() {
        let seeds = SeedStream::new(3);
        assert!(run_trials(0, seeds, |t, _| t).is_empty());
        assert_eq!(run_trials(1, seeds, |t, _| t + 10), vec![10]);
    }

    #[test]
    fn stateful_runner_matches_stateless() {
        // Per-worker engine reuse must not change any trial's result.
        use hc_core::BatchInference;
        use hc_mech::TreeShape;

        let shape = TreeShape::new(2, 6);
        let seeds = SeedStream::new(4);
        let plain = run_trials(24, seeds, |_t, mut rng| {
            let noisy: Vec<f64> = (0..shape.nodes()).map(|_| rng.random::<f64>()).collect();
            hc_core::hierarchical_inference(&shape, &noisy)
        });
        let stateful = run_trials_with(
            24,
            seeds,
            || BatchInference::for_shape(&shape),
            |_t, mut rng, engine| {
                let noisy: Vec<f64> = (0..shape.nodes()).map(|_| rng.random::<f64>()).collect();
                engine.infer(&noisy)
            },
        );
        assert_eq!(plain, stateful);
    }
}
