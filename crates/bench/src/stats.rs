//! Summary statistics over trial outcomes.

/// Mean of a sample (0 for empty input).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Unbiased (n−1) sample standard deviation.
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64;
    var.sqrt()
}

/// Mean with its standard error — what the experiment tables report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample mean.
    pub mean: f64,
    /// Standard error of the mean.
    pub std_err: f64,
    /// Number of samples.
    pub n: usize,
}

impl Summary {
    /// Summarizes a sample.
    pub fn of(values: &[f64]) -> Self {
        let n = values.len();
        Self {
            mean: mean(values),
            std_err: if n > 1 {
                std_dev(values) / (n as f64).sqrt()
            } else {
                0.0
            },
            n,
        }
    }
}

impl core::fmt::Display for Summary {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.4e} ± {:.1e}", self.mean, self.std_err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_dev_of_known_sample() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&v) - 5.0).abs() < 1e-12);
        // Sample std dev with n−1 = sqrt(32/7).
        assert!((std_dev(&v) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[3.0]), 0.0);
    }

    #[test]
    fn summary_std_err_shrinks_with_n() {
        let a = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        let many: Vec<f64> = (0..100).map(|i| 1.0 + (i % 4) as f64).collect();
        let b = Summary::of(&many);
        assert!(b.std_err < a.std_err);
    }
}
