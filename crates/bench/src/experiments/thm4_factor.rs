//! Theorem 4(iv): the query where `H̄` beats `H̃` by
//! `(2(ℓ−1)(k−1) − k)/3` — a factor of 9.33 in the paper's height-16
//! binary tree.

use hc_core::{
    theory, BatchInference, ConsistentSnapshot, HierarchicalUniversal, Rounding, SubtreeServer,
};
use hc_data::{Domain, Histogram};
use hc_mech::{Epsilon, TreeShape};
use hc_noise::SeedStream;

use crate::stats::mean;
use crate::table::{ratio, sci, Table};
use crate::RunConfig;

/// Measured vs predicted errors for the worst-case query.
#[derive(Debug, Clone, Copy)]
pub struct Thm4Outcome {
    /// Tree height ℓ.
    pub height: usize,
    /// Measured `error(H̃_q)`.
    pub subtree: f64,
    /// Measured `error(H̄_q)`.
    pub inferred: f64,
    /// Predicted `error(H̃_q)` = `(2(k−1)(ℓ−1)−k)·2ℓ²/ε²`.
    pub subtree_predicted: f64,
    /// Predicted upper bound on `error(H̄_q)` = `3·2ℓ²/ε²`.
    pub inferred_bound: f64,
    /// The theoretical advantage factor.
    pub predicted_factor: f64,
}

/// Runs the measurement at a given tree height.
pub fn compute_at_height(cfg: RunConfig, height: usize) -> Thm4Outcome {
    let shape = TreeShape::new(2, height);
    let n = shape.leaves();
    // Any histogram works (estimators are unbiased); a flat small count keeps
    // the rounding-free estimators honest.
    let histogram = Histogram::from_counts(Domain::new("x", n).expect("non-empty"), vec![1; n]);
    let q = theory::thm4_query(&shape);
    let truth = histogram.range_count(q) as f64;
    let eps_value = 1.0;
    let eps = Epsilon::new(eps_value).expect("valid ε");
    let pipeline = HierarchicalUniversal::binary(eps);

    let seeds = SeedStream::new(cfg.seed);
    let trials = cfg.trials.max(if cfg.quick { 30 } else { 200 });
    // The whole release→inference pipeline runs trial-parallel through the
    // engine batch in fixed waves (no rounding: Theorem 4 is about the
    // linear estimators themselves); scoring each trial is two range
    // answers served over the wave's batch slices: H̃ through the
    // `SubtreeServer`'s in-place decomposition fold, H̄ through a
    // `ConsistentSnapshot` rebuilt per trial (the raw inference is exactly
    // consistent, so O(1) prefix serving reproduces
    // ConsistentTree::range_query exactly).
    let prepared = pipeline.prepare(n);
    let mut engine = BatchInference::for_shape(&shape);
    let nodes = shape.nodes();
    let (mut noisy_batch, mut hbar_batch) = (Vec::new(), Vec::new());
    let server = SubtreeServer::new(&shape);
    let mut snapshot = ConsistentSnapshot::from_leaves(&[], 0);
    let mut subtree = Vec::with_capacity(trials);
    let mut inferred = Vec::with_capacity(trials);
    super::for_each_wave(trials, super::fig6::PIPELINE_WAVE, |start, wave| {
        engine.release_and_infer_batch_parallel(
            &prepared,
            &histogram,
            seeds.substream(start as u64),
            wave,
            false,
            super::fig6::pipeline_threads(),
            Some(&mut noisy_batch),
            &mut hbar_batch,
        );
        for t in 0..wave {
            let noisy = &noisy_batch[t * nodes..(t + 1) * nodes];
            let hbar = &hbar_batch[t * nodes..(t + 1) * nodes];
            let s = server.answer(noisy, Rounding::None, q);
            snapshot.rebuild_from_tree_values(&shape, hbar, n);
            let i = snapshot.answer(q);
            subtree.push((s - truth) * (s - truth));
            inferred.push((i - truth) * (i - truth));
        }
    });

    Thm4Outcome {
        height,
        subtree: mean(&subtree),
        inferred: mean(&inferred),
        subtree_predicted: theory::thm4_htilde_error(&shape, eps_value),
        inferred_bound: theory::thm4_hbar_upper(&shape, eps_value),
        predicted_factor: theory::thm4_gap_factor(&shape),
    }
}

/// Renders the Theorem 4(iv) report (heights 8 and 16; quick mode uses 8
/// and 10 to keep the trial count manageable).
pub fn run(cfg: RunConfig) -> String {
    let heights: &[usize] = if cfg.quick { &[8, 10] } else { &[8, 16] };
    let mut t = Table::new(
        "Theorem 4(iv): worst-case query q = [1, n−2] on a binary tree (ε = 1.0)",
        &[
            "ℓ",
            "H~ measured",
            "H~ predicted",
            "H̄ measured",
            "H̄ bound",
            "measured factor",
            "predicted factor",
        ],
    );
    let mut claims = String::new();
    for &height in heights {
        let o = compute_at_height(cfg, height);
        t.row(vec![
            format!("{height}"),
            sci(o.subtree),
            sci(o.subtree_predicted),
            sci(o.inferred),
            sci(o.inferred_bound),
            ratio(o.subtree / o.inferred.max(1e-12)),
            ratio(o.predicted_factor),
        ]);
        claims.push_str(&format!(
            "ℓ={height}: measured H~/H̄ = {:.2} vs predicted ≥ {:.2}\n",
            o.subtree / o.inferred.max(1e-12),
            o.predicted_factor
        ));
    }
    let mut out = t.render();
    out.push_str(&format!(
        "\nPaper: \"in a height 16 binary tree … H̄_q is more accurate than H~_q by a factor of {} = 9.33\".\n{}",
        "2(ℓ−1)(k−1)−k over 3", claims
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_errors_match_theory_at_small_height() {
        let o = compute_at_height(RunConfig::quick(), 8);
        // H~ error is an exact expectation: (2(ℓ−1)−2)·2ℓ² = 12·128 = 1536.
        assert!(
            (o.subtree - o.subtree_predicted).abs() / o.subtree_predicted < 0.35,
            "H~ measured {} vs predicted {}",
            o.subtree,
            o.subtree_predicted
        );
        // H̄ must beat its proof bound (it is the OLS optimum).
        assert!(o.inferred <= o.inferred_bound * 1.35);
        // And the measured advantage should be in the ballpark of theory.
        let measured = o.subtree / o.inferred;
        assert!(
            measured > 0.5 * o.predicted_factor,
            "measured {measured} vs predicted {}",
            o.predicted_factor
        );
    }
}
