//! Fig. 3: the illustrative sorted sequence — how `s̄` tracks the truth
//! where counts are uniform and falls back to `s̃` at unique counts.

use hc_core::{per_position_squared_error, SortedRelease};
use hc_mech::{Epsilon, LaplaceMechanism, QuerySequence, SortedQuery};
use hc_noise::SeedStream;

use crate::stats::mean;
use crate::table::Table;
use crate::RunConfig;

/// The figure's sequence: 20 uniform counts followed by 5 strictly
/// increasing ones (read off the plot: a flat stretch at 10, then a ramp).
pub fn figure_sequence() -> Vec<u64> {
    let mut s = vec![10u64; 20];
    s.extend([12, 14, 16, 18, 20]);
    s
}

/// Reproduces Fig. 3 (one sampled trial, ε = 1.0) and quantifies its message
/// over `cfg.trials` repetitions: inference wipes out error on the uniform
/// run but cannot improve isolated counts.
pub fn run(cfg: RunConfig) -> String {
    let truth_u64 = figure_sequence();
    let histogram = hc_data::Histogram::from_counts(
        hc_data::Domain::new("index", truth_u64.len()).expect("non-empty"),
        truth_u64,
    );
    let truth = SortedQuery.evaluate(&histogram);
    let eps = Epsilon::new(1.0).expect("valid ε");
    let seeds = SeedStream::new(cfg.seed);

    // One illustrative trial (the figure itself).
    let mut rng = seeds.rng(0);
    let mech = LaplaceMechanism::new(eps);
    let noisy = mech.release(&SortedQuery, &histogram, &mut rng);
    let release = SortedRelease::from_noisy(eps, noisy.values().to_vec());
    let inferred = release.inferred();

    let mut t = Table::new(
        "Fig. 3: S(I), one sample s~, inferred s̄ (ε = 1.0)",
        &["index", "S(I)", "s~", "s̄"],
    );
    for i in 0..truth.len() {
        t.row(vec![
            format!("{}", i + 1),
            format!("{:.0}", truth[i]),
            format!("{:.2}", release.baseline()[i]),
            format!("{:.2}", inferred[i]),
        ]);
    }

    // Aggregate the figure's qualitative claim over many trials.
    let results =
        crate::runner::run_trials(cfg.trials.max(20), seeds.substream(1), |_t, mut rng| {
            let noisy = mech.release(&SortedQuery, &histogram, &mut rng);
            let rel = SortedRelease::from_noisy(eps, noisy.values().to_vec());
            let inf = rel.inferred();
            let base_profile = per_position_squared_error(rel.baseline(), &truth);
            let inf_profile = per_position_squared_error(&inf, &truth);
            (base_profile, inf_profile)
        });
    let n = truth.len();
    let mut base_uniform = Vec::new();
    let mut inf_uniform = Vec::new();
    let mut base_distinct = Vec::new();
    let mut inf_distinct = Vec::new();
    for (b, f) in &results {
        base_uniform.push(mean(&b[..20]));
        inf_uniform.push(mean(&f[..20]));
        base_distinct.push(mean(&b[20..n]));
        inf_distinct.push(mean(&f[20..n]));
    }

    let mut out = t.render();
    out.push_str(&format!(
        "\nPer-position error, averaged over {} trials:\n\
         uniform run [1,20]:  s~ {:.3}  s̄ {:.3}  (reduction {:.1}x)\n\
         distinct tail [21,25]: s~ {:.3}  s̄ {:.3}  (reduction {:.1}x)\n\
         Claim (Sec. 3.2): inference averages noise away inside uniform runs; \
         at unique counts s̄[k] stays near s~[k].\n",
        results.len(),
        mean(&base_uniform),
        mean(&inf_uniform),
        mean(&base_uniform) / mean(&inf_uniform).max(1e-12),
        mean(&base_distinct),
        mean(&inf_distinct),
        mean(&base_distinct) / mean(&inf_distinct).max(1e-12),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_run_error_drops_much_more_than_distinct_tail() {
        let out = run(RunConfig::quick());
        assert!(out.contains("uniform run"));
        // The rendered table has one row per index (cells may be padded).
        let data_rows = out
            .lines()
            .filter(|l| l.trim_start().starts_with(char::is_numeric))
            .count();
        assert!(data_rows >= 25, "only {data_rows} data rows:\n{out}");
    }
}
