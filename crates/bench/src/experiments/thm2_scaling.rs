//! Theorem 2's scaling law: `error(S̄) = O(d·log³n/ε²)` versus
//! `error(S̃) = Θ(n/ε²)`, measured on synthetic sequences with controlled
//! `d` and `n`.

use hc_core::{sum_squared_error, theory, UnattributedHistogram};
use hc_data::{Domain, Histogram};
use hc_mech::Epsilon;
use hc_noise::SeedStream;

use crate::stats::mean;
use crate::table::{sci, Table};
use crate::RunConfig;

/// A sequence of length `n` with exactly `d` distinct values in equal runs
/// (values spaced far apart so runs never merge statistically).
fn staircase(n: usize, d: usize) -> Histogram {
    assert!(d >= 1 && d <= n);
    let run = n / d;
    let counts: Vec<u64> = (0..n)
        .map(|i| {
            let step = (i / run).min(d - 1);
            (step as u64) * 1000
        })
        .collect();
    Histogram::from_counts(Domain::new("x", n).expect("non-empty"), counts)
}

/// One measured point of the scaling sweep.
#[derive(Debug, Clone, Copy)]
pub struct ScalingPoint {
    /// Sequence length.
    pub n: usize,
    /// Number of distinct values.
    pub d: usize,
    /// Measured `error(S̄)`.
    pub inferred: f64,
    /// Measured `error(S̃)` (should be ≈ 2n/ε²).
    pub baseline: f64,
}

/// Measures the sweep over `d` at fixed `n`, then over `n` at `d = 1`.
pub fn compute(cfg: RunConfig) -> (Vec<ScalingPoint>, Vec<ScalingPoint>) {
    let eps = Epsilon::new(1.0).expect("valid ε");
    let seeds = SeedStream::new(cfg.seed);
    let task = UnattributedHistogram::new(eps);
    let n_fixed = if cfg.quick { 256 } else { 4096 };
    let trials = cfg.trials.max(if cfg.quick { 10 } else { 30 });

    let measure = |histogram: &Histogram, stream: SeedStream| -> (f64, f64) {
        let truth: Vec<f64> = histogram
            .sorted_counts()
            .into_iter()
            .map(|c| c as f64)
            .collect();
        let outcomes = crate::runner::run_trials(trials, stream, |_t, mut rng| {
            let release = task.release(histogram, &mut rng);
            (
                sum_squared_error(&release.inferred(), &truth),
                sum_squared_error(release.baseline(), &truth),
            )
        });
        let inf: Vec<f64> = outcomes.iter().map(|o| o.0).collect();
        let base: Vec<f64> = outcomes.iter().map(|o| o.1).collect();
        (mean(&inf), mean(&base))
    };

    let mut d_sweep = Vec::new();
    let mut d = 1usize;
    while d <= n_fixed / 4 {
        let h = staircase(n_fixed, d);
        let (inferred, baseline) = measure(&h, seeds.substream(d as u64));
        d_sweep.push(ScalingPoint {
            n: n_fixed,
            d,
            inferred,
            baseline,
        });
        d *= 4;
    }

    let mut n_sweep = Vec::new();
    let mut n = if cfg.quick { 64 } else { 256 };
    let n_max = if cfg.quick { 512 } else { 16_384 };
    while n <= n_max {
        let h = staircase(n, 1);
        let (inferred, baseline) = measure(&h, seeds.substream(1000 + n as u64));
        n_sweep.push(ScalingPoint {
            n,
            d: 1,
            inferred,
            baseline,
        });
        n *= 4;
    }

    (d_sweep, n_sweep)
}

/// Renders the Theorem 2 scaling report.
pub fn run(cfg: RunConfig) -> String {
    let (d_sweep, n_sweep) = compute(cfg);

    let mut t1 = Table::new(
        format!(
            "Theorem 2 sweep over d (n = {}, ε = 1.0)",
            d_sweep.first().map(|p| p.n).unwrap_or(0)
        ),
        &["d", "error(S̄)", "error(S~)", "bound ~ d·log³(n/d)"],
    );
    for p in &d_sweep {
        let truth: Vec<f64> = staircase(p.n, p.d)
            .sorted_counts()
            .into_iter()
            .map(|c| c as f64)
            .collect();
        t1.row(vec![
            format!("{}", p.d),
            sci(p.inferred),
            sci(p.baseline),
            sci(theory::thm2_bound(&truth, 1.0, 1.0, 1.0)),
        ]);
    }

    let mut t2 = Table::new(
        "Theorem 2 sweep over n (d = 1, ε = 1.0)",
        &["n", "error(S̄)", "error(S~)", "S~/S̄"],
    );
    for p in &n_sweep {
        t2.row(vec![
            format!("{}", p.n),
            sci(p.inferred),
            sci(p.baseline),
            format!("{:.0}", p.baseline / p.inferred.max(1e-12)),
        ]);
    }

    let mut out = t1.render();
    out.push('\n');
    out.push_str(&t2.render());
    out.push_str(
        "\nClaims: error(S̄) grows roughly linearly in d at fixed n while error(S~) stays Θ(n); \
         at d = 1, error(S̄) grows poly-logarithmically in n so the S~/S̄ gap widens without bound.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_grows_with_d_and_gap_widens_with_n() {
        let (d_sweep, n_sweep) = compute(RunConfig::quick());
        // More distinct values → more error for S̄.
        assert!(d_sweep.first().unwrap().inferred < d_sweep.last().unwrap().inferred);
        // Baseline unaffected by d.
        let b0 = d_sweep.first().unwrap().baseline;
        let b1 = d_sweep.last().unwrap().baseline;
        assert!(
            (b0 / b1 - 1.0).abs() < 0.5,
            "baseline drifted: {b0} vs {b1}"
        );
        // Gap S~/S̄ grows with n at d = 1.
        let g0 = n_sweep.first().unwrap().baseline / n_sweep.first().unwrap().inferred;
        let g1 = n_sweep.last().unwrap().baseline / n_sweep.last().unwrap().inferred;
        assert!(g1 > g0, "gap did not widen: {g0} vs {g1}");
    }

    #[test]
    fn staircase_has_requested_distinct_count() {
        let h = staircase(256, 4);
        assert_eq!(h.distinct_count_values(), 4);
        let h1 = staircase(256, 1);
        assert_eq!(h1.distinct_count_values(), 1);
    }
}
