//! Ablation (Appendix B): the geometric mechanism as the noise source for
//! the unattributed task — alternative noise, same inference.

use hc_core::{sum_squared_error, UnattributedHistogram};
use hc_ext::discrete::GeometricUnattributed;
use hc_mech::Epsilon;
use hc_noise::SeedStream;

use crate::datasets::{build, DatasetId};
use crate::stats::mean;
use crate::table::{sci, Table};
use crate::RunConfig;

/// Measured errors for one ε.
#[derive(Debug, Clone, Copy)]
pub struct GeometricPoint {
    /// Privacy parameter.
    pub epsilon: f64,
    /// Laplace baseline `S̃`.
    pub laplace_baseline: f64,
    /// Laplace + inference `S̄`.
    pub laplace_inferred: f64,
    /// Geometric baseline.
    pub geometric_baseline: f64,
    /// Geometric + inference.
    pub geometric_inferred: f64,
}

/// Measures on the Social Network degree sequence.
pub fn compute(cfg: RunConfig) -> Vec<GeometricPoint> {
    let seeds = SeedStream::new(cfg.seed);
    let histogram = build(DatasetId::SocialNetwork, cfg.quick, seeds);
    let truth: Vec<f64> = histogram
        .sorted_counts()
        .into_iter()
        .map(|c| c as f64)
        .collect();

    [1.0, 0.1]
        .into_iter()
        .enumerate()
        .map(|(idx, eps_value)| {
            let eps = Epsilon::new(eps_value).expect("valid ε");
            let laplace = UnattributedHistogram::new(eps);
            let geometric = GeometricUnattributed::new(eps);
            let outcomes = crate::runner::run_trials(
                cfg.trials,
                seeds.substream(idx as u64),
                |_t, mut rng| {
                    let l = laplace.release(&histogram, &mut rng);
                    let g = geometric.release(&histogram, &mut rng);
                    (
                        sum_squared_error(l.baseline(), &truth),
                        sum_squared_error(&l.inferred(), &truth),
                        sum_squared_error(g.baseline(), &truth),
                        sum_squared_error(&g.inferred(), &truth),
                    )
                },
            );
            GeometricPoint {
                epsilon: eps_value,
                laplace_baseline: mean(&outcomes.iter().map(|o| o.0).collect::<Vec<_>>()),
                laplace_inferred: mean(&outcomes.iter().map(|o| o.1).collect::<Vec<_>>()),
                geometric_baseline: mean(&outcomes.iter().map(|o| o.2).collect::<Vec<_>>()),
                geometric_inferred: mean(&outcomes.iter().map(|o| o.3).collect::<Vec<_>>()),
            }
        })
        .collect()
}

/// Renders the geometric-mechanism ablation.
pub fn run(cfg: RunConfig) -> String {
    let points = compute(cfg);
    let mut t = Table::new(
        "Ablation: Laplace vs geometric mechanism, unattributed Social Network degrees",
        &["ε", "Lap S~", "Lap S̄", "Geo S~", "Geo S̄"],
    );
    for p in &points {
        t.row(vec![
            format!("{}", p.epsilon),
            sci(p.laplace_baseline),
            sci(p.laplace_inferred),
            sci(p.geometric_baseline),
            sci(p.geometric_inferred),
        ]);
    }
    let mut out = t.render();
    out.push_str(
        "\nClaims (Appendix B): the geometric mechanism's integer noise has slightly lower \
         variance at equal ε (2e^(−ε)/(1−e^(−ε))² < 2/ε²), and constrained inference stacks on \
         top of either noise distribution — the gains are orthogonal.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_baseline_at_most_laplace_and_inference_always_helps() {
        for p in compute(RunConfig::quick()) {
            assert!(
                p.geometric_baseline < p.laplace_baseline * 1.1,
                "ε={}: geo {} vs lap {}",
                p.epsilon,
                p.geometric_baseline,
                p.laplace_baseline
            );
            assert!(p.laplace_inferred < p.laplace_baseline);
            assert!(p.geometric_inferred < p.geometric_baseline);
        }
    }
}
