//! Ablation (related work, Li et al.): exact expected errors of the
//! strategies as matrices — no sampling, pure linear algebra.

use hc_ext::matrix_mech::{
    expected_error_via_gram, strategy_hierarchical, strategy_identity, strategy_wavelet,
    workload_all_ranges_gram,
};

use crate::table::{sci, Table};
use crate::RunConfig;

/// Analytic per-query average errors for one domain size.
#[derive(Debug, Clone, Copy)]
pub struct MatrixPoint {
    /// Domain size.
    pub n: usize,
    /// Identity strategy (`L`).
    pub identity: f64,
    /// Binary hierarchy (`H₂`).
    pub hier2: f64,
    /// Quaternary hierarchy (`H₄`).
    pub hier4: f64,
    /// Haar wavelet.
    pub wavelet: f64,
}

/// Computes the analytic table over a grid of domain sizes.
pub fn compute(cfg: RunConfig) -> Vec<MatrixPoint> {
    let ns: &[usize] = if cfg.quick {
        &[16, 64, 256]
    } else {
        &[16, 64, 256, 1024]
    };
    let eps = 1.0;
    ns.iter()
        .map(|&n| {
            let wg = workload_all_ranges_gram(n);
            let queries = (n * (n + 1) / 2) as f64;
            let per_query = |total: f64| total / queries;
            MatrixPoint {
                n,
                identity: per_query(
                    expected_error_via_gram(&wg, &strategy_identity(n), eps).expect("full rank"),
                ),
                hier2: per_query(
                    expected_error_via_gram(&wg, &strategy_hierarchical(n, 2), eps)
                        .expect("full rank"),
                ),
                hier4: per_query(
                    expected_error_via_gram(&wg, &strategy_hierarchical(n, 4), eps)
                        .expect("full rank"),
                ),
                wavelet: per_query(
                    expected_error_via_gram(&wg, &strategy_wavelet(n), eps).expect("full rank"),
                ),
            }
        })
        .collect()
}

/// Renders the matrix-mechanism ablation.
pub fn run(cfg: RunConfig) -> String {
    let points = compute(cfg);
    let mut t = Table::new(
        "Ablation: exact per-range-query error of strategies (all-ranges workload, ε = 1.0)",
        &["n", "identity (L)", "H2 + OLS", "H4 + OLS", "wavelet + OLS"],
    );
    for p in &points {
        t.row(vec![
            format!("{}", p.n),
            sci(p.identity),
            sci(p.hier2),
            sci(p.hier4),
            sci(p.wavelet),
        ]);
    }
    let crossover = points.iter().find(|p| p.hier2 < p.identity).map(|p| p.n);
    let mut out = t.render();
    out.push_str(&format!(
        "\nClaims: identity wins tiny domains (sensitivity 1); the tree strategies take over as \
         n grows (measured crossover at n = {crossover:?}); the wavelet strategy matches the \
         binary hierarchy to within a small constant (the Li et al. equivalence — our \
         unnormalized Haar rows are mutually orthogonal, buying it a modest constant-factor \
         edge over H2 under the same sensitivity).\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wavelet_matches_binary_hierarchy_up_to_small_constant() {
        // Li et al.'s equivalence is up to constants; with unnormalized Haar
        // rows (orthogonal) the wavelet sits slightly below H2 but must stay
        // within a narrow band of it at every n.
        for p in compute(RunConfig::quick()) {
            let r = p.wavelet / p.hier2;
            assert!(
                (0.5..=1.2).contains(&r),
                "n = {}: wavelet {} vs H2 {} (ratio {r})",
                p.n,
                p.wavelet,
                p.hier2
            );
        }
    }

    #[test]
    fn identity_advantage_erodes_with_n() {
        let points = compute(RunConfig::quick());
        let ratios: Vec<f64> = points.iter().map(|p| p.hier2 / p.identity).collect();
        assert!(
            ratios.windows(2).all(|w| w[1] < w[0]),
            "H2/I not shrinking: {ratios:?}"
        );
    }
}
