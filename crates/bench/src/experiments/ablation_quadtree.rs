//! Ablation (Appendix B future work): 2-D universal histograms — Theorem 3
//! inference on a quadtree over a Morton-ordered grid.

use hc_ext::quadtree::{GridHistogram, QuadtreeUniversal, Rect};
use hc_mech::Epsilon;
use hc_noise::SeedStream;
use rand::Rng;

use crate::stats::mean;
use crate::table::{ratio, sci, Table};
use crate::RunConfig;

/// A clustered synthetic grid: a few dense blobs on an empty background
/// (spatial data is sparse and clustered, like the 1-D traces).
fn clustered_grid<R: Rng + ?Sized>(side: usize, rng: &mut R) -> GridHistogram {
    let mut rows = vec![vec![0u64; side]; side];
    let blobs = (side / 8).max(2);
    for _ in 0..blobs {
        let cx = rng.random_range(0..side) as i64;
        let cy = rng.random_range(0..side) as i64;
        let mass = rng.random_range(50..200);
        for _ in 0..mass {
            let dx = rng.random_range(-3..=3i64);
            let dy = rng.random_range(-3..=3i64);
            let x = (cx + dx).clamp(0, side as i64 - 1) as usize;
            let y = (cy + dy).clamp(0, side as i64 - 1) as usize;
            rows[y][x] += 1;
        }
    }
    GridHistogram::from_rows(&rows)
}

/// Measured rectangle-query error per rectangle side.
#[derive(Debug, Clone, Copy)]
pub struct QuadtreePoint {
    /// Query rectangle side length.
    pub rect_side: u32,
    /// Raw noisy quadtree (subtree sums).
    pub raw: f64,
    /// After Theorem 3 inference (k = 4).
    pub inferred: f64,
}

/// Measures raw vs inferred quadtree error across rectangle sizes.
pub fn compute(cfg: RunConfig) -> Vec<QuadtreePoint> {
    let side = if cfg.quick { 16 } else { 64 };
    let seeds = SeedStream::new(cfg.seed);
    let grid = clustered_grid(side, &mut seeds.rng(0));
    let eps = Epsilon::new(0.1).expect("valid ε");
    let pipeline = QuadtreeUniversal::new(eps);
    let rect_sides: Vec<u32> = [2u32, 4, 8, 16, 32]
        .into_iter()
        .filter(|&s| (s as usize) < side)
        .collect();
    let queries = if cfg.quick { 30 } else { 200 };

    let per_trial = crate::runner::run_trials(cfg.trials, seeds.substream(1), |_t, mut rng| {
        let release = pipeline.release(&grid, &mut rng);
        let inferred = release.infer();
        rect_sides
            .iter()
            .map(|&rs| {
                let (mut raw_err, mut inf_err) = (0.0, 0.0);
                for _ in 0..queries {
                    let x0 = rng.random_range(0..side as u32 - rs);
                    let y0 = rng.random_range(0..side as u32 - rs);
                    let rect = Rect::new(x0, y0, x0 + rs - 1, y0 + rs - 1);
                    let truth = grid.rect_count(rect) as f64;
                    raw_err += (release.rect_query_subtree(rect) - truth).powi(2);
                    inf_err += (inferred.rect_query(rect) - truth).powi(2);
                }
                (raw_err / queries as f64, inf_err / queries as f64)
            })
            .collect::<Vec<(f64, f64)>>()
    });

    rect_sides
        .iter()
        .enumerate()
        .map(|(idx, &rs)| {
            let raw: Vec<f64> = per_trial.iter().map(|t| t[idx].0).collect();
            let inf: Vec<f64> = per_trial.iter().map(|t| t[idx].1).collect();
            QuadtreePoint {
                rect_side: rs,
                raw: mean(&raw),
                inferred: mean(&inf),
            }
        })
        .collect()
}

/// Renders the quadtree ablation.
pub fn run(cfg: RunConfig) -> String {
    let points = compute(cfg);
    let mut t = Table::new(
        "Ablation: 2-D quadtree universal histogram, clustered grid (ε = 0.1)",
        &[
            "rect side",
            "raw quadtree",
            "inferred (Thm 3, k=4)",
            "raw/inferred",
        ],
    );
    for p in &points {
        t.row(vec![
            format!("{}×{}", p.rect_side, p.rect_side),
            sci(p.raw),
            sci(p.inferred),
            ratio(p.raw / p.inferred.max(1e-12)),
        ]);
    }
    let mut out = t.render();
    out.push_str(
        "\nClaim (Appendix B future work, realized): the constrained-inference machinery \
         carries to multi-dimensional range queries unchanged — a quadtree is the k = 4 \
         hierarchy over the Morton order, and inference again dominates raw subtree sums.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inference_dominates_raw_quadtree() {
        let points = compute(RunConfig::quick());
        let better = points.iter().filter(|p| p.inferred <= p.raw * 1.05).count();
        assert!(
            better * 10 >= points.len() * 8,
            "inference lost too often: {points:?}"
        );
    }
}
