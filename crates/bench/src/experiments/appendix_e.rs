//! Appendix E: `H̃` vs the Blum et al. equi-depth histogram as the database
//! grows — `H̃`'s absolute error is independent of `N`, the equi-depth
//! approach's grows like `N^(2/3)`.

use hc_core::{HierarchicalUniversal, Rounding};
use hc_data::{Domain, Histogram, Interval, RangeWorkload};
use hc_ext::blum::BlumEquiDepth;
use hc_mech::Epsilon;
use hc_noise::SeedStream;
use rand::Rng;

use crate::stats::mean;
use crate::table::{sci, Table};
use crate::RunConfig;

/// A skewed histogram over a fixed domain whose total mass is `scale` times
/// a base pattern — scaling `N` without changing the domain, as the
/// appendix's comparison requires.
fn skewed_histogram(n: usize, scale: u64) -> Histogram {
    let counts: Vec<u64> = (0..n)
        .map(|i| {
            // Heavy mass on a few spikes, light elsewhere: uniformity within
            // equi-depth buckets is maximally violated.
            if i % 32 == 7 {
                40 * scale
            } else if i % 8 == 3 {
                4 * scale
            } else {
                0
            }
        })
        .collect();
    Histogram::from_counts(Domain::new("x", n).expect("non-empty"), counts)
}

/// One measured point of the N-sweep.
#[derive(Debug, Clone, Copy)]
pub struct AppendixEPoint {
    /// Number of records.
    pub records: u64,
    /// Mean absolute range-query error of `H̃`.
    pub hier: f64,
    /// Mean absolute range-query error of the equi-depth baseline.
    pub blum: f64,
}

/// Measures the sweep.
pub fn compute(cfg: RunConfig) -> Vec<AppendixEPoint> {
    let n = if cfg.quick { 256 } else { 1024 };
    let eps = Epsilon::new(1.0).expect("valid ε");
    let seeds = SeedStream::new(cfg.seed);
    let scales: &[u64] = if cfg.quick {
        &[1, 8, 64]
    } else {
        &[1, 8, 64, 512]
    };
    let queries = if cfg.quick { 40 } else { 200 };
    let trials = cfg.trials.max(10);

    let mut out = Vec::new();
    for (idx, &scale) in scales.iter().enumerate() {
        let histogram = skewed_histogram(n, scale);
        let records = histogram.total();
        let hier_pipeline = HierarchicalUniversal::binary(eps);
        let blum_pipeline = BlumEquiDepth::new(eps);

        let outcomes =
            crate::runner::run_trials(trials, seeds.substream(idx as u64), |_t, mut rng| {
                let hier = hier_pipeline.release(&histogram, &mut rng);
                let blum = blum_pipeline.release(&histogram, &mut rng);
                let size = n / 8;
                let workload = RangeWorkload::new(n, size);
                let (mut he, mut be) = (0.0, 0.0);
                for _ in 0..queries {
                    let q: Interval = workload.sample(&mut rng);
                    let truth = histogram.range_count(q) as f64;
                    he += (hier.range_query_subtree(q, Rounding::None) - truth).abs();
                    be += (blum.range_query(q) - truth).abs();
                }
                (he / queries as f64, be / queries as f64)
            });
        let hier: Vec<f64> = outcomes.iter().map(|o| o.0).collect();
        let blum: Vec<f64> = outcomes.iter().map(|o| o.1).collect();
        out.push(AppendixEPoint {
            records,
            hier: mean(&hier),
            blum: mean(&blum),
        });
    }
    out
}

/// Renders the Appendix E report.
pub fn run(cfg: RunConfig) -> String {
    let points = compute(cfg);
    let first = points.first().expect("non-empty sweep");
    let mut t = Table::new(
        "Appendix E: absolute range-query error vs database size N (fixed domain, ε = 1.0)",
        &["N", "H~", "BLR equi-depth", "N^(2/3) reference"],
    );
    for p in &points {
        let reference = first.blum
            * (hc_core::theory::blum_error_scaling(p.records)
                / hc_core::theory::blum_error_scaling(first.records));
        t.row(vec![
            format!("{}", p.records),
            sci(p.hier),
            sci(p.blum),
            sci(reference),
        ]);
    }
    let last = points.last().expect("non-empty sweep");
    let mut out = t.render();
    out.push_str(&format!(
        "\nClaims: H~'s error is independent of N (measured drift {:.1}x across a {}x size range); \
         the equi-depth baseline's error grows with N at roughly the N^(2/3) rate ({:.0}x measured).\n",
        last.hier / first.hier.max(1e-9),
        last.records / first.records.max(1),
        last.blum / first.blum.max(1e-9),
    ));
    out
}

/// Exposes the random generator type used by closures above (documentation
/// helper so the module's public API is self-contained).
pub fn _rng_marker<R: Rng + ?Sized>(_: &mut R) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hier_error_flat_while_blum_grows() {
        let points = compute(RunConfig::quick());
        let first = points.first().unwrap();
        let last = points.last().unwrap();
        // H~ should not grow materially with N.
        assert!(
            last.hier < first.hier * 3.0,
            "H~ grew: {} → {}",
            first.hier,
            last.hier
        );
        // BLR must grow substantially (64x more records here).
        assert!(
            last.blum > first.blum * 5.0,
            "BLR flat: {} → {}",
            first.blum,
            last.blum
        );
    }
}
