//! Ablation (related work): the Haar-wavelet mechanism vs the binary
//! hierarchy — Li et al.'s equivalence claim, measured.

use hc_core::{HierarchicalUniversal, Rounding};
use hc_data::RangeWorkload;
use hc_ext::wavelet::WaveletUniversal;
use hc_mech::Epsilon;
use hc_noise::SeedStream;

use crate::datasets::{build, DatasetId};
use crate::stats::mean;
use crate::table::{ratio, sci, Table};
use crate::RunConfig;

/// Measured error per range size for the three estimators.
#[derive(Debug, Clone, Copy)]
pub struct WaveletPoint {
    /// Range size.
    pub size: usize,
    /// Haar-wavelet reconstruction error.
    pub wavelet: f64,
    /// `H̃` subtree-sum error.
    pub subtree: f64,
    /// `H̄` inference error.
    pub inferred: f64,
}

/// Measures on the Search Logs series at ε = 0.1.
pub fn compute(cfg: RunConfig) -> Vec<WaveletPoint> {
    let seeds = SeedStream::new(cfg.seed);
    let histogram = build(DatasetId::SearchLogsSeries, cfg.quick, seeds);
    let n = histogram.len();
    let eps = Epsilon::new(0.1).expect("valid ε");
    let wavelet_pipeline = WaveletUniversal::new(eps);
    let tree_pipeline = HierarchicalUniversal::binary(eps);
    let sizes: Vec<usize> = (1..)
        .map(|i| 1usize << i)
        .take_while(|&s| s <= n / 2)
        .step_by(2)
        .collect();
    let queries = if cfg.quick { 50 } else { 500 };

    let per_trial = crate::runner::run_trials(cfg.trials, seeds.substream(1), |_t, mut rng| {
        let wavelet = wavelet_pipeline.release(&histogram, &mut rng);
        let tree = tree_pipeline.release(&histogram, &mut rng);
        let consistent = tree.infer();
        sizes
            .iter()
            .map(|&size| {
                let workload = RangeWorkload::new(n, size);
                let (mut we, mut se, mut ie) = (0.0, 0.0, 0.0);
                for _ in 0..queries {
                    let q = workload.sample(&mut rng);
                    let truth = histogram.range_count(q) as f64;
                    we += (wavelet.range_query(q) - truth).powi(2);
                    se += (tree.range_query_subtree(q, Rounding::None) - truth).powi(2);
                    ie += (consistent.range_query(q) - truth).powi(2);
                }
                let scale = queries as f64;
                (we / scale, se / scale, ie / scale)
            })
            .collect::<Vec<(f64, f64, f64)>>()
    });

    sizes
        .iter()
        .enumerate()
        .map(|(idx, &size)| {
            let w: Vec<f64> = per_trial.iter().map(|t| t[idx].0).collect();
            let s: Vec<f64> = per_trial.iter().map(|t| t[idx].1).collect();
            let i: Vec<f64> = per_trial.iter().map(|t| t[idx].2).collect();
            WaveletPoint {
                size,
                wavelet: mean(&w),
                subtree: mean(&s),
                inferred: mean(&i),
            }
        })
        .collect()
}

/// Renders the wavelet ablation.
pub fn run(cfg: RunConfig) -> String {
    let points = compute(cfg);
    let mut t = Table::new(
        "Ablation: wavelet vs binary hierarchy on Search Logs (ε = 0.1)",
        &["range size", "wavelet", "H~", "H̄", "wavelet/H̄"],
    );
    for p in &points {
        t.row(vec![
            format!("{}", p.size),
            sci(p.wavelet),
            sci(p.subtree),
            sci(p.inferred),
            ratio(p.wavelet / p.inferred.max(1e-12)),
        ]);
    }
    let mut out = t.render();
    out.push_str(
        "\nClaim (Sec. 6, via Li et al.): the Haar technique has error equivalent to a binary H \
         query — wavelet error tracks H̄ (both are exact linear unbiased decoders of a \
         sensitivity-ℓ strategy), while H~ pays extra for summing unreconciled subtrees.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wavelet_tracks_inferred_hierarchy() {
        let points = compute(RunConfig::quick());
        for p in &points {
            let r = p.wavelet / p.inferred.max(1e-12);
            assert!(
                (0.3..=3.5).contains(&r),
                "size {}: wavelet {} vs H̄ {}",
                p.size,
                p.wavelet,
                p.inferred
            );
        }
    }
}
