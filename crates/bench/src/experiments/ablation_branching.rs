//! Ablation (Appendix B future work): the branching factor `k` of the
//! hierarchy trades sensitivity (`ℓ = log_k n + 1` shrinks with `k`) against
//! decomposition width (up to `2(k−1)` subtrees per level).

use hc_core::HierarchicalUniversal;
use hc_data::RangeWorkload;
use hc_mech::Epsilon;
use hc_noise::SeedStream;

use crate::datasets::{build, DatasetId};
use crate::stats::mean;
use crate::table::{sci, Table};
use crate::RunConfig;

/// Measured error for one branching factor at one range size.
#[derive(Debug, Clone, Copy)]
pub struct BranchingPoint {
    /// Branching factor `k`.
    pub branching: usize,
    /// Tree height ℓ (the sensitivity).
    pub height: usize,
    /// Range size.
    pub size: usize,
    /// Mean squared error of `H̄`.
    pub inferred: f64,
}

/// Measures `H̄` error across `k ∈ {2, 4, 8, 16}` on NetTrace at ε = 0.1.
pub fn compute(cfg: RunConfig) -> Vec<BranchingPoint> {
    let seeds = SeedStream::new(cfg.seed);
    let histogram = build(DatasetId::NetTrace, cfg.quick, seeds);
    let n = histogram.len();
    let eps = Epsilon::new(0.1).expect("valid ε");
    let sizes: Vec<usize> = [16usize, 256, n / 8]
        .into_iter()
        .filter(|&s| s >= 1 && s <= n)
        .collect();
    let queries = if cfg.quick { 50 } else { 500 };

    let mut out = Vec::new();
    for (k_idx, k) in [2usize, 4, 8, 16].into_iter().enumerate() {
        let pipeline = HierarchicalUniversal::new(eps, k);
        let per_trial = crate::runner::run_trials(
            cfg.trials,
            seeds.substream(10 + k_idx as u64),
            |_t, mut rng| {
                let release = pipeline.release(&histogram, &mut rng);
                let tree = release.infer_rounded();
                sizes
                    .iter()
                    .map(|&size| {
                        let workload = RangeWorkload::new(n, size);
                        let mut err = 0.0;
                        for _ in 0..queries {
                            let q = workload.sample(&mut rng);
                            let truth = histogram.range_count(q) as f64;
                            let est = tree.range_query(q);
                            err += (est - truth) * (est - truth);
                        }
                        err / queries as f64
                    })
                    .collect::<Vec<f64>>()
            },
        );
        let height = pipeline
            .release(&histogram, &mut seeds.rng(999))
            .shape()
            .height();
        for (s_idx, &size) in sizes.iter().enumerate() {
            let errs: Vec<f64> = per_trial.iter().map(|t| t[s_idx]).collect();
            out.push(BranchingPoint {
                branching: k,
                height,
                size,
                inferred: mean(&errs),
            });
        }
    }
    out
}

/// Renders the branching-factor ablation.
pub fn run(cfg: RunConfig) -> String {
    let points = compute(cfg);
    let mut t = Table::new(
        "Ablation: branching factor k for H̄ on NetTrace (ε = 0.1)",
        &["k", "ℓ (sensitivity)", "range size", "error(H̄)"],
    );
    for p in &points {
        t.row(vec![
            format!("{}", p.branching),
            format!("{}", p.height),
            format!("{}", p.size),
            sci(p.inferred),
        ]);
    }
    let mut out = t.render();
    out.push_str(
        "\nClaim (Appendix B): higher branching factors are a real optimization lever — \
         k > 2 lowers the tree height (and hence the noise per node) at the cost of wider \
         subtree decompositions; the sweet spot is data- and workload-dependent.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_branching_factors_with_decreasing_height() {
        let points = compute(RunConfig::quick());
        let ks: Vec<usize> = points.iter().map(|p| p.branching).collect();
        assert!(ks.contains(&2) && ks.contains(&16));
        let h2 = points.iter().find(|p| p.branching == 2).unwrap().height;
        let h16 = points.iter().find(|p| p.branching == 16).unwrap().height;
        assert!(h16 < h2, "height must fall with k: {h2} vs {h16}");
        assert!(points.iter().all(|p| p.inferred.is_finite()));
    }
}
