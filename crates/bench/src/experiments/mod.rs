//! One module per paper artifact. Every `run` function returns the rendered
//! report so integration tests can execute experiments in quick mode and
//! assert on the claims.

pub mod ablation_branching;
pub mod ablation_budget;
pub mod ablation_geometric;
pub mod ablation_matrix;
pub mod ablation_nonneg;
pub mod ablation_quadtree;
pub mod ablation_wavelet;
pub mod appendix_e;
pub mod fig2;
pub mod fig3;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod thm2_scaling;
pub mod thm4_factor;
