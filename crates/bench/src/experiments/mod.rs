//! One module per paper artifact. Every `run` function returns the rendered
//! report so integration tests can execute experiments in quick mode and
//! assert on the claims.

use hc_mech::TreeShape;

/// Rebuilds leaf prefix sums over a flat node vector into a reusable buffer
/// — the exact construction (`prefix[i+1] = prefix[i] + leaf[i]`, all
/// leaves, padding included) of `ConsistentTree::new`, so range queries via
/// [`prefix_range_sum`] reproduce `ConsistentTree::range_query` bit for bit.
/// Shared by the trial loops that answer queries straight from engine
/// buffers instead of allocating estimator types per trial.
pub(crate) fn leaf_prefix_into(shape: &TreeShape, values: &[f64], prefix: &mut Vec<f64>) {
    let first_leaf = shape.first_leaf();
    prefix.clear();
    prefix.push(0.0);
    for (i, &leaf) in values[first_leaf..].iter().enumerate() {
        let prev = prefix[i];
        prefix.push(prev + leaf);
    }
}

/// `c([lo, hi])` from leaf prefix sums — `ConsistentTree::range_query`'s
/// arithmetic.
pub(crate) fn prefix_range_sum(prefix: &[f64], q: hc_data::Interval) -> f64 {
    prefix[q.hi() + 1] - prefix[q.lo()]
}

/// Sums `values` over a subtree decomposition in node order — the summation
/// of `RoundedTree::range_query` / `range_query_subtree` (fold from 0.0 in
/// decomposition order), over whichever value vector the caller passes.
pub(crate) fn decomposition_sum(values: &[f64], decomposition: &[usize]) -> f64 {
    let mut total = 0.0;
    for &v in decomposition {
        total += values[v];
    }
    total
}

/// Drives `trials` in fixed-size waves: `body(start, wave)` runs once per
/// wave with the global index of its first trial and its length. One
/// implementation of the start/min/advance bookkeeping shared by every
/// experiment loop built on `release_and_infer_batch_parallel`, so wave
/// boundaries (which feed the per-wave seed substreams) cannot drift apart
/// between experiments.
pub(crate) fn for_each_wave(trials: usize, wave_size: usize, mut body: impl FnMut(usize, usize)) {
    let mut start = 0usize;
    while start < trials {
        let wave = wave_size.min(trials - start);
        body(start, wave);
        start += wave;
    }
}

pub mod ablation_branching;
pub mod ablation_budget;
pub mod ablation_geometric;
pub mod ablation_matrix;
pub mod ablation_nonneg;
pub mod ablation_quadtree;
pub mod ablation_wavelet;
pub mod appendix_e;
pub mod fig2;
pub mod fig3;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod thm2_scaling;
pub mod thm4_factor;
