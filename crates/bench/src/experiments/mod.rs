//! One module per paper artifact. Every `run` function returns the rendered
//! report so integration tests can execute experiments in quick mode and
//! assert on the claims.
//!
//! Range-query scoring goes through `hc_core::snapshot`'s serving layer:
//! `ConsistentSnapshot` (O(1) prefix lookups, bit-identical to the retired
//! local `leaf_prefix_into`/`prefix_range_sum` helpers) for exactly
//! consistent estimates and true counts, and `SubtreeServer` (in-place
//! decomposition folds, bit-identical to materializing
//! `TreeShape::subtree_decomposition` and summing) for the `H̃`-style and
//! zeroed/rounded estimators.

/// Drives `trials` in fixed-size waves: `body(start, wave)` runs once per
/// wave with the global index of its first trial and its length. One
/// implementation of the start/min/advance bookkeeping shared by every
/// experiment loop built on `release_and_infer_batch_parallel`, so wave
/// boundaries (which feed the per-wave seed substreams) cannot drift apart
/// between experiments.
pub(crate) fn for_each_wave(trials: usize, wave_size: usize, mut body: impl FnMut(usize, usize)) {
    let mut start = 0usize;
    while start < trials {
        let wave = wave_size.min(trials - start);
        body(start, wave);
        start += wave;
    }
}

pub mod ablation_branching;
pub mod ablation_budget;
pub mod ablation_geometric;
pub mod ablation_matrix;
pub mod ablation_nonneg;
pub mod ablation_quadtree;
pub mod ablation_wavelet;
pub mod accuracy_planner;
pub mod appendix_e;
pub mod fig2;
pub mod fig3;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod thm2_scaling;
pub mod thm4_factor;
