//! Ablation (Secs. 4.2 & 5.2): the non-negativity subtree-zeroing step.
//! On sparse data it is the reason `H̄` can beat `L̃` even at unit ranges.

use hc_core::{BatchInference, FlatRelease, FlatUniversal, HierarchicalUniversal, Rounding};
use hc_data::RangeWorkload;
use hc_mech::Epsilon;
use hc_mech::TreeShape;
use hc_noise::SeedStream;

use crate::datasets::{build, DatasetId};
use crate::stats::mean;
use crate::table::{sci, Table};
use crate::RunConfig;

/// Measured error per range size for the ablated estimators.
#[derive(Debug, Clone, Copy)]
pub struct NonNegPoint {
    /// Range size.
    pub size: usize,
    /// `L̃` with rounding (the flat baseline).
    pub flat: f64,
    /// `H̄` without the non-negativity step (pure Theorem 3).
    pub inferred_raw: f64,
    /// `H̄` with subtree zeroing + rounding (the Sec. 5.2 protocol).
    pub inferred_nonneg: f64,
}

/// Measures on sparse NetTrace at ε = 0.1 over small-to-medium ranges.
pub fn compute(cfg: RunConfig) -> Vec<NonNegPoint> {
    let seeds = SeedStream::new(cfg.seed);
    let histogram = build(DatasetId::NetTrace, cfg.quick, seeds);
    let n = histogram.len();
    let eps = Epsilon::new(0.1).expect("valid ε");
    let flat_pipeline = FlatUniversal::new(eps);
    let tree_pipeline = HierarchicalUniversal::binary(eps);
    let sizes: Vec<usize> = [1usize, 4, 16, 64, 256]
        .into_iter()
        .filter(|&s| s <= n)
        .collect();
    let queries = if cfg.quick { 100 } else { 1000 };

    // The tree pipeline (release + raw Theorem-3 inference) runs through the
    // engine's trial-parallel batch in fixed waves; each wave is then scored
    // by a second trial-parallel pass whose workers derive the ablated
    // variant (zeroing + rounding over a copy of the raw inference), release
    // L̃, and sample ranges. Worker state is reused within a wave (nothing
    // allocates per *trial*); each wave spins up fresh workers, so the
    // per-worker buffers are re-grown once per wave — bounded by
    // waves × workers, negligible against the per-trial query work.
    let shape = TreeShape::for_domain(n, 2);
    let nodes = shape.nodes();
    let prepared = tree_pipeline.prepare(n);
    let mut pipeline_engine = BatchInference::for_shape(&shape);
    let noise_seeds = seeds.substream(2);
    let aux_seeds = seeds.substream(1);
    let mut raw_batch = Vec::new();
    let eps_flat = eps;
    struct TrialState {
        flat: FlatRelease,
        raw_prefix: Vec<f64>,
        nonneg: Vec<f64>,
        decomp: Vec<usize>,
    }
    let mut per_trial: Vec<Vec<(f64, f64, f64)>> = Vec::with_capacity(cfg.trials);
    super::for_each_wave(cfg.trials, super::fig6::PIPELINE_WAVE, |start, wave| {
        pipeline_engine.release_and_infer_batch_parallel(
            &prepared,
            &histogram,
            noise_seeds.substream(start as u64),
            wave,
            false, // raw Theorem 3: the ablation applies the zeroing itself
            super::fig6::pipeline_threads(),
            None, // the ablation never reads the noisy release
            &mut raw_batch,
        );
        let raw_batch = &raw_batch;
        // The engine's own compiled tables drive the workers' zero/round
        // sweep — no shadow LevelTree to drift from them.
        let tree = pipeline_engine.tree();
        per_trial.extend(crate::runner::run_trials_with(
            wave,
            aux_seeds.substream(start as u64),
            || TrialState {
                flat: FlatRelease::from_noisy(eps_flat, vec![0.0; n]),
                raw_prefix: Vec::new(),
                nonneg: Vec::new(),
                decomp: Vec::new(),
            },
            |t, mut rng, st| {
                let raw = &raw_batch[t * nodes..(t + 1) * nodes];
                flat_pipeline.release_into(&histogram, &mut rng, &mut st.flat);
                // Leaf prefix sums reproduce ConsistentTree::range_query
                // exactly.
                super::leaf_prefix_into(&shape, raw, &mut st.raw_prefix);
                st.nonneg.clear();
                st.nonneg.extend_from_slice(raw);
                tree.zero_round_in_place(&mut st.nonneg);
                sizes
                    .iter()
                    .map(|&size| {
                        let workload = RangeWorkload::new(n, size);
                        let (mut fe, mut re, mut ne) = (0.0, 0.0, 0.0);
                        for _ in 0..queries {
                            let q = workload.sample(&mut rng);
                            let truth = histogram.range_count(q) as f64;
                            fe += (st.flat.range_query(q, Rounding::NonNegativeInteger) - truth)
                                .powi(2);
                            let raw_answer = super::prefix_range_sum(&st.raw_prefix, q);
                            re += (raw_answer - truth).powi(2);
                            shape.subtree_decomposition_into(q, &mut st.decomp);
                            let nn_answer = super::decomposition_sum(&st.nonneg, &st.decomp);
                            ne += (nn_answer - truth).powi(2);
                        }
                        let scale = queries as f64;
                        (fe / scale, re / scale, ne / scale)
                    })
                    .collect::<Vec<(f64, f64, f64)>>()
            },
        ));
    });

    sizes
        .iter()
        .enumerate()
        .map(|(idx, &size)| {
            let f: Vec<f64> = per_trial.iter().map(|t| t[idx].0).collect();
            let r: Vec<f64> = per_trial.iter().map(|t| t[idx].1).collect();
            let nn: Vec<f64> = per_trial.iter().map(|t| t[idx].2).collect();
            NonNegPoint {
                size,
                flat: mean(&f),
                inferred_raw: mean(&r),
                inferred_nonneg: mean(&nn),
            }
        })
        .collect()
}

/// Renders the non-negativity ablation.
pub fn run(cfg: RunConfig) -> String {
    let points = compute(cfg);
    let mut t = Table::new(
        "Ablation: Sec. 4.2 non-negativity step on sparse NetTrace (ε = 0.1)",
        &[
            "range size",
            "L~ (rounded)",
            "H̄ raw",
            "H̄ + nonneg",
            "raw/nonneg",
        ],
    );
    for p in &points {
        t.row(vec![
            format!("{}", p.size),
            sci(p.flat),
            sci(p.inferred_raw),
            sci(p.inferred_nonneg),
            format!("{:.1}", p.inferred_raw / p.inferred_nonneg.max(1e-12)),
        ]);
    }
    let small = points.first().expect("non-empty");
    let mut out = t.render();
    out.push_str(&format!(
        "\nClaims: on sparse domains the subtree-zeroing step slashes small-range error \
         (unit ranges: {:.1}x) because upper tree levels *observe* emptiness that leaf noise \
         hides; with it, H̄ challenges or beats L~ even at the smallest ranges (Sec. 5.2's \
         closing observation).\n",
        small.inferred_raw / small.inferred_nonneg.max(1e-12)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nonneg_step_helps_small_ranges_on_sparse_data() {
        let points = compute(RunConfig::quick());
        let unit = points.iter().find(|p| p.size == 1).unwrap();
        assert!(
            unit.inferred_nonneg < unit.inferred_raw,
            "nonneg {} vs raw {}",
            unit.inferred_nonneg,
            unit.inferred_raw
        );
    }
}
