//! Ablation (Secs. 4.2 & 5.2): the non-negativity subtree-zeroing step.
//! On sparse data it is the reason `H̄` can beat `L̃` even at unit ranges.

use hc_core::{
    BatchInference, ConsistentSnapshot, FlatRelease, FlatUniversal, HierarchicalUniversal,
    Rounding, SubtreeServer,
};
use hc_data::{Interval, RangeWorkload};
use hc_mech::Epsilon;
use hc_mech::TreeShape;
use hc_noise::SeedStream;

use crate::datasets::{build, DatasetId};
use crate::stats::mean;
use crate::table::{sci, Table};
use crate::RunConfig;

/// Measured error per range size for the ablated estimators.
#[derive(Debug, Clone, Copy)]
pub struct NonNegPoint {
    /// Range size.
    pub size: usize,
    /// `L̃` with rounding (the flat baseline).
    pub flat: f64,
    /// `H̄` without the non-negativity step (pure Theorem 3).
    pub inferred_raw: f64,
    /// `H̄` with subtree zeroing + rounding (the Sec. 5.2 protocol).
    pub inferred_nonneg: f64,
}

/// Measures on sparse NetTrace at ε = 0.1 over small-to-medium ranges.
pub fn compute(cfg: RunConfig) -> Vec<NonNegPoint> {
    let seeds = SeedStream::new(cfg.seed);
    let histogram = build(DatasetId::NetTrace, cfg.quick, seeds);
    let n = histogram.len();
    let eps = Epsilon::new(0.1).expect("valid ε");
    let flat_pipeline = FlatUniversal::new(eps);
    let tree_pipeline = HierarchicalUniversal::binary(eps);
    let sizes: Vec<usize> = [1usize, 4, 16, 64, 256]
        .into_iter()
        .filter(|&s| s <= n)
        .collect();
    let queries = if cfg.quick { 100 } else { 1000 };

    // The tree pipeline (release + raw Theorem-3 inference) runs through the
    // engine's trial-parallel batch in fixed waves; each wave is then scored
    // by a second trial-parallel pass whose workers derive the ablated
    // variant (zeroing + rounding over a copy of the raw inference), release
    // L̃, and sample ranges. Scoring goes through the serving layer: truth
    // from a run-wide `ConsistentSnapshot` of the true counts, L̃ from the
    // release's fused prefix arrays, the raw (exactly consistent) inference
    // from a per-worker snapshot rebuilt per trial, and the zeroed/rounded
    // variant — only approximately consistent — from a shared
    // `SubtreeServer` decomposition fold. Worker state is reused within a
    // wave (nothing allocates per *trial*); each wave spins up fresh
    // workers, so the per-worker buffers are re-grown once per wave —
    // bounded by waves × workers, negligible against the per-trial query
    // work.
    let shape = TreeShape::for_domain(n, 2);
    let nodes = shape.nodes();
    let workloads: Vec<RangeWorkload> = sizes.iter().map(|&s| RangeWorkload::new(n, s)).collect();
    let truth_snapshot = ConsistentSnapshot::from_histogram(&histogram);
    let server = SubtreeServer::new(&shape);
    let prepared = tree_pipeline.prepare(n);
    let mut pipeline_engine = BatchInference::for_shape(&shape);
    let noise_seeds = seeds.substream(2);
    let aux_seeds = seeds.substream(1);
    let mut raw_batch = Vec::new();
    let eps_flat = eps;
    struct TrialState {
        flat: FlatRelease,
        raw_snapshot: ConsistentSnapshot,
        nonneg: Vec<f64>,
        queries: Vec<Interval>,
        truth: Vec<f64>,
        flat_ans: Vec<f64>,
        raw_ans: Vec<f64>,
        nonneg_ans: Vec<f64>,
    }
    let mut per_trial: Vec<Vec<(f64, f64, f64)>> = Vec::with_capacity(cfg.trials);
    super::for_each_wave(cfg.trials, super::fig6::PIPELINE_WAVE, |start, wave| {
        pipeline_engine.release_and_infer_batch_parallel(
            &prepared,
            &histogram,
            noise_seeds.substream(start as u64),
            wave,
            false, // raw Theorem 3: the ablation applies the zeroing itself
            super::fig6::pipeline_threads(),
            None, // the ablation never reads the noisy release
            &mut raw_batch,
        );
        let raw_batch = &raw_batch;
        // The engine's own compiled tables drive the workers' zero/round
        // sweep — no shadow LevelTree to drift from them.
        let tree = pipeline_engine.tree();
        let (truth_snapshot, server, workloads, shape) =
            (&truth_snapshot, &server, &workloads, &shape);
        per_trial.extend(crate::runner::run_trials_with(
            wave,
            aux_seeds.substream(start as u64),
            || TrialState {
                flat: FlatRelease::from_noisy(eps_flat, vec![0.0; n]),
                raw_snapshot: ConsistentSnapshot::from_leaves(&[], 0),
                nonneg: Vec::new(),
                queries: Vec::new(),
                truth: Vec::new(),
                flat_ans: Vec::new(),
                raw_ans: Vec::new(),
                nonneg_ans: Vec::new(),
            },
            |t, mut rng, st| {
                let raw = &raw_batch[t * nodes..(t + 1) * nodes];
                flat_pipeline.release_into(&histogram, &mut rng, &mut st.flat);
                // The raw inference is exactly consistent, so O(1) prefix
                // serving reproduces ConsistentTree::range_query exactly.
                st.raw_snapshot.rebuild_from_tree_values(shape, raw, n);
                st.nonneg.clear();
                st.nonneg.extend_from_slice(raw);
                tree.zero_round_in_place(&mut st.nonneg);
                workloads
                    .iter()
                    .map(|workload| {
                        workload.sample_into(&mut rng, queries, &mut st.queries);
                        truth_snapshot.answer_into(&st.queries, &mut st.truth);
                        st.flat.answer_into(
                            Rounding::NonNegativeInteger,
                            &st.queries,
                            &mut st.flat_ans,
                        );
                        st.raw_snapshot.answer_into(&st.queries, &mut st.raw_ans);
                        server.answer_into(
                            &st.nonneg,
                            Rounding::None,
                            &st.queries,
                            &mut st.nonneg_ans,
                        );
                        let (mut fe, mut re, mut ne) = (0.0, 0.0, 0.0);
                        for j in 0..st.queries.len() {
                            let truth = st.truth[j];
                            fe += (st.flat_ans[j] - truth).powi(2);
                            re += (st.raw_ans[j] - truth).powi(2);
                            ne += (st.nonneg_ans[j] - truth).powi(2);
                        }
                        let scale = queries as f64;
                        (fe / scale, re / scale, ne / scale)
                    })
                    .collect::<Vec<(f64, f64, f64)>>()
            },
        ));
    });

    sizes
        .iter()
        .enumerate()
        .map(|(idx, &size)| {
            let f: Vec<f64> = per_trial.iter().map(|t| t[idx].0).collect();
            let r: Vec<f64> = per_trial.iter().map(|t| t[idx].1).collect();
            let nn: Vec<f64> = per_trial.iter().map(|t| t[idx].2).collect();
            NonNegPoint {
                size,
                flat: mean(&f),
                inferred_raw: mean(&r),
                inferred_nonneg: mean(&nn),
            }
        })
        .collect()
}

/// Renders the non-negativity ablation.
pub fn run(cfg: RunConfig) -> String {
    let points = compute(cfg);
    let mut t = Table::new(
        "Ablation: Sec. 4.2 non-negativity step on sparse NetTrace (ε = 0.1)",
        &[
            "range size",
            "L~ (rounded)",
            "H̄ raw",
            "H̄ + nonneg",
            "raw/nonneg",
        ],
    );
    for p in &points {
        t.row(vec![
            format!("{}", p.size),
            sci(p.flat),
            sci(p.inferred_raw),
            sci(p.inferred_nonneg),
            format!("{:.1}", p.inferred_raw / p.inferred_nonneg.max(1e-12)),
        ]);
    }
    let small = points.first().expect("non-empty");
    let mut out = t.render();
    out.push_str(&format!(
        "\nClaims: on sparse domains the subtree-zeroing step slashes small-range error \
         (unit ranges: {:.1}x) because upper tree levels *observe* emptiness that leaf noise \
         hides; with it, H̄ challenges or beats L~ even at the smallest ranges (Sec. 5.2's \
         closing observation).\n",
        small.inferred_raw / small.inferred_nonneg.max(1e-12)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nonneg_step_helps_small_ranges_on_sparse_data() {
        let points = compute(RunConfig::quick());
        let unit = points.iter().find(|p| p.size == 1).unwrap();
        assert!(
            unit.inferred_nonneg < unit.inferred_raw,
            "nonneg {} vs raw {}",
            unit.inferred_nonneg,
            unit.inferred_raw
        );
    }
}
