//! Accuracy-first planning: invert an (α, max-error) target into a ranked
//! strategy ladder, execute the winning plan end-to-end, and check the
//! measured error against the guaranteed α-width — for both noise backends.
//!
//! This is the demo for the `hc_core::accuracy` front door: the README's
//! worked example (α = 0.05, max error 50) is this experiment's full-size
//! configuration.

use hc_core::{AccuracyTarget, BudgetSplit, ReleaseStrategy, StrategyPlanner};
use hc_data::{Domain, Histogram, RangeWorkload};
use hc_noise::{NoiseBackend, SeedStream};
use rand::Rng;

use crate::stats::mean;
use crate::table::{sci, Table};
use crate::RunConfig;

/// One ranked plan, flattened for reporting.
#[derive(Debug, Clone)]
pub struct PlanRow {
    /// Human-readable strategy label.
    pub label: String,
    /// The solved minimal ε meeting the target.
    pub epsilon: f64,
    /// The plan's predicted α-confidence error at that ε.
    pub predicted_width: f64,
    /// The plan's predicted per-query mean squared error at that ε.
    pub mean_squared: f64,
}

/// Measured execution of the winning plan under one noise backend.
#[derive(Debug, Clone)]
pub struct ExecPoint {
    /// Backend label (`reference` / `fast-ln`).
    pub backend: &'static str,
    /// Mean absolute range error across trials × queries.
    pub mean_abs: f64,
    /// Worst absolute range error observed.
    pub worst_abs: f64,
    /// Share of answers exceeding the plan's guaranteed α-width (must stay
    /// near or below α).
    pub over_share: f64,
}

/// The full report: the target, the ranked ladder, and the measured runs.
#[derive(Debug, Clone)]
pub struct PlannerReport {
    /// Domain size the target was planned over.
    pub domain_size: usize,
    /// The guaranteed α-width of the winning plan.
    pub bound: f64,
    /// Winning strategy label.
    pub winner: String,
    /// Solved ε of the winning plan.
    pub winner_epsilon: f64,
    /// Ranked plans, cheapest ε first.
    pub plans: Vec<PlanRow>,
    /// Winning plan executed under each backend.
    pub execution: Vec<ExecPoint>,
}

fn strategy_label(strategy: &ReleaseStrategy) -> String {
    match strategy {
        ReleaseStrategy::Flat => "flat (L̃)".to_string(),
        ReleaseStrategy::Hierarchical { branching } => {
            format!("hierarchical (H̄, k = {branching})")
        }
        ReleaseStrategy::Budgeted { branching, split } => match split {
            BudgetSplit::Uniform => format!("budgeted uniform (k = {branching})"),
            BudgetSplit::Geometric { ratio } => {
                format!("budgeted geometric (ratio {ratio:.2})")
            }
            BudgetSplit::Custom(_) => format!("budgeted custom (k = {branching})"),
        },
    }
}

/// Plans and executes the README worked example: α = 0.05, max error 50,
/// short and long ranges over a 2²⁰-bin domain (2¹⁰ in `--quick`).
pub fn compute(cfg: RunConfig) -> PlannerReport {
    let seeds = SeedStream::new(cfg.seed);
    let n: usize = if cfg.quick { 1 << 10 } else { 1 << 20 };
    let domain = Domain::new("accuracy-planner", n).expect("non-empty domain");
    let mut data_rng = seeds.substream(0).rng(0);
    let counts: Vec<u64> = (0..n).map(|_| data_rng.random_range(0..100u64)).collect();
    let histogram = Histogram::from_counts(domain, counts);

    let workload = vec![RangeWorkload::new(n, 16), RangeWorkload::new(n, n / 16)];
    let target = AccuracyTarget::new(0.05, 50.0).with_workload(workload.clone());
    let ranked = StrategyPlanner::for_domain(n).plan_ranked(&target);
    let plans: Vec<PlanRow> = ranked
        .iter()
        .map(|p| PlanRow {
            label: strategy_label(&p.choice),
            epsilon: p.epsilon,
            predicted_width: p
                .guarantee
                .expect("accuracy plans carry a guarantee")
                .predicted,
            mean_squared: p.predicted_error,
        })
        .collect();

    let winner = &ranked[0];
    let bound = winner
        .guarantee
        .expect("accuracy plans carry a guarantee")
        .predicted;
    let queries = if cfg.quick { 64 } else { 512 };
    let truth = hc_core::ConsistentSnapshot::from_histogram(&histogram);

    let mut execution = Vec::new();
    for (b_idx, (backend, name)) in [
        (NoiseBackend::Reference, "reference"),
        (NoiseBackend::FastLn, "fast-ln"),
    ]
    .into_iter()
    .enumerate()
    {
        let per_trial = crate::runner::run_trials(
            cfg.trials,
            seeds.substream(10 + b_idx as u64),
            |_t, mut rng| {
                let snapshot = winner.run_with(&histogram, backend, &mut rng);
                let mut abs_errs = Vec::with_capacity(queries * workload.len());
                for w in &workload {
                    for _ in 0..queries {
                        let q = w.sample(&mut rng);
                        abs_errs.push((snapshot.answer(q) - truth.answer(q)).abs());
                    }
                }
                abs_errs
            },
        );
        let all: Vec<f64> = per_trial.into_iter().flatten().collect();
        let worst = all.iter().fold(0.0f64, |acc, &e| acc.max(e));
        let over = all.iter().filter(|&&e| e > bound).count();
        execution.push(ExecPoint {
            backend: name,
            mean_abs: mean(&all),
            worst_abs: worst,
            // `--trials 0` serves no queries; report 0 like the other
            // columns rather than 0/0.
            over_share: if all.is_empty() {
                0.0
            } else {
                over as f64 / all.len() as f64
            },
        });
    }

    PlannerReport {
        domain_size: n,
        bound,
        winner: strategy_label(&winner.choice),
        winner_epsilon: winner.epsilon,
        plans,
        execution,
    }
}

/// Renders the accuracy-first planning report.
pub fn run(cfg: RunConfig) -> String {
    let report = compute(cfg);
    let mut t = Table::new(
        format!(
            "Accuracy-first planning: α = 0.05, max error 50, n = {} (ranked by solved ε)",
            report.domain_size
        ),
        &["strategy", "solved ε", "predicted α-width", "predicted MSE"],
    );
    for p in &report.plans {
        t.row(vec![
            p.label.clone(),
            sci(p.epsilon),
            sci(p.predicted_width),
            sci(p.mean_squared),
        ]);
    }
    let mut out = t.render();

    let mut e = Table::new(
        format!(
            "Winning plan executed: {} at ε = {} (guaranteed α-width {})",
            report.winner,
            sci(report.winner_epsilon),
            sci(report.bound)
        ),
        &["backend", "mean |err|", "worst |err|", "share > bound"],
    );
    for x in &report.execution {
        e.row(vec![
            x.backend.to_string(),
            sci(x.mean_abs),
            sci(x.worst_abs),
            format!("{:.4}", x.over_share),
        ]);
    }
    out.push('\n');
    out.push_str(&e.render());
    out.push_str(
        "\nClaim: inverting the α-width closed forms yields the minimal ε per strategy; \
         the cheapest plan's measured error respects its guarantee (the share of \
         answers beyond the α-width stays at or below α = 0.05) under both noise \
         backends, and the ladder prices every candidate at its own solved ε so the \
         ranking is budget-for-budget fair.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn winning_plan_honours_its_guarantee_in_quick_mode() {
        let report = compute(RunConfig::quick());
        assert!(!report.plans.is_empty());
        // Ranked output is sorted by solved ε.
        for pair in report.plans.windows(2) {
            assert!(pair[0].epsilon <= pair[1].epsilon * (1.0 + 1e-12));
        }
        // Every plan's prediction meets the target.
        for p in &report.plans {
            assert!(
                p.predicted_width <= 50.0 * (1.0 + 1e-9),
                "{} predicts {} > 50",
                p.label,
                p.predicted_width
            );
        }
        // The α-guarantee holds empirically: at most an α share of answers
        // (plus sampling slack for 5 quick trials) exceeds the bound.
        for x in &report.execution {
            assert!(x.mean_abs.is_finite() && x.worst_abs.is_finite());
            assert!(
                x.over_share <= 0.05 + 0.05,
                "backend {} exceeded the bound on {} of answers",
                x.backend,
                x.over_share
            );
        }
    }
}
