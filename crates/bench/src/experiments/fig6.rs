//! Fig. 6: universal histograms — range-query error vs range size for `L̃`,
//! `H̃`, and `H̄` on NetTrace and Search Logs across ε.

use hc_core::{
    BatchInference, ConsistentSnapshot, FlatRelease, FlatUniversal, HierarchicalUniversal,
    Rounding, SubtreeServer,
};
use hc_data::{dyadic_sizes, Interval, RangeWorkload};
use hc_mech::{Epsilon, TreeShape};
use hc_noise::SeedStream;
use rand::Rng;

/// Trials per batch wave of the fused release→inference pipeline: bounds the
/// resident (noisy, inferred) batch to `2 · WAVE · nodes` doubles while
/// keeping every worker fed. A fixed constant — never derived from the
/// machine — so results are identical for any core count or `HC_THREADS`.
pub(crate) const PIPELINE_WAVE: usize = 16;

/// Worker cap handed to the batch pipeline (the `HC_THREADS` override
/// applies on top, inside `release_and_infer_batch_parallel`).
pub(crate) fn pipeline_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

use crate::datasets::{build, epsilon_grid, DatasetId};
use crate::stats::mean;
use crate::table::{sci, Table};
use crate::RunConfig;

/// One point of the Fig. 6 curves.
#[derive(Debug, Clone, Copy)]
pub struct Fig6Point {
    /// Dataset evaluated.
    pub dataset: &'static str,
    /// Privacy parameter.
    pub epsilon: f64,
    /// Range size (number of unit bins).
    pub size: usize,
    /// Mean squared error of `L̃` (rounded unit counts).
    pub flat: f64,
    /// Mean squared error of `H̃` (rounded subtree sums).
    pub subtree: f64,
    /// Mean squared error of `H̄` (constrained inference + Sec. 4.2 rounding).
    pub inferred: f64,
}

/// Number of random ranges per (trial, size) — 1000 in the paper's protocol.
fn ranges_per_size(cfg: RunConfig) -> usize {
    if cfg.quick {
        50
    } else {
        1000
    }
}

/// Computes the Fig. 6 curves for one dataset at one ε.
pub fn compute_curve(
    cfg: RunConfig,
    dataset: DatasetId,
    eps_value: f64,
    seeds: SeedStream,
) -> Vec<Fig6Point> {
    let histogram = build(dataset, cfg.quick, seeds);
    let n = histogram.len();
    let shape = TreeShape::for_domain(n, 2);
    let sizes: Vec<usize> = dyadic_sizes(shape.height())
        .into_iter()
        .filter(|&s| s <= n)
        .collect();
    let eps = Epsilon::new(eps_value).expect("valid ε");
    let flat_pipeline = FlatUniversal::new(eps);
    let tree_pipeline = HierarchicalUniversal::binary(eps);
    let queries_per_size = ranges_per_size(cfg);

    // The tree half of every trial — evaluate H, add Laplace noise, both
    // Theorem-3 passes, Sec. 4.2 zeroing + rounding — runs through the
    // engine's trial-parallel batch pipeline in fixed-size waves: one fused
    // pass per trial produces the noisy release (H̃'s input) and the
    // zeroed/rounded inferred tree (H̄'s) side by side, written straight
    // into the batch buffers (no per-trial scratch copy). Each wave's
    // batches are then scored by a second trial-parallel pass that releases
    // L̃ and samples the random ranges (its own seed substream — noise and
    // query randomness are decoupled). Scoring goes through the serving
    // layer: each trial samples a query batch per size, truth comes from a
    // curve-wide `ConsistentSnapshot` of the true counts (O(1) per query,
    // exact — integer prefix sums), L̃ answers from the release's fused
    // prefix arrays, and the two tree estimators from a shared
    // `SubtreeServer` (the zeroed/rounded H̄ is only approximately
    // consistent, so the subtree decomposition — folded in place — stays
    // its defined semantics). Workers carry one reusable state each:
    // nothing allocates per *trial*; the per-worker buffers are re-grown
    // once per wave (waves × workers total), negligible against the
    // thousands of range queries each trial answers.
    let workloads: Vec<RangeWorkload> = sizes.iter().map(|&s| RangeWorkload::new(n, s)).collect();
    let truth_snapshot = ConsistentSnapshot::from_histogram(&histogram);
    let server = SubtreeServer::new(&shape);
    let prepared = tree_pipeline.prepare(n);
    let mut pipeline_engine = BatchInference::for_shape(&shape);
    let nodes = shape.nodes();
    let noise_seeds = seeds.substream(2);
    let aux_seeds = seeds.substream(1);
    let (mut noisy_batch, mut hbar_batch) = (Vec::new(), Vec::new());
    struct TrialState {
        flat: FlatRelease,
        queries: Vec<Interval>,
        truth: Vec<f64>,
        flat_ans: Vec<f64>,
        subtree_ans: Vec<f64>,
        inferred_ans: Vec<f64>,
    }
    let mut per_trial: Vec<Vec<(f64, f64, f64)>> = Vec::with_capacity(cfg.trials);
    super::for_each_wave(cfg.trials, PIPELINE_WAVE, |start, wave| {
        pipeline_engine.release_and_infer_batch_parallel(
            &prepared,
            &histogram,
            noise_seeds.substream(start as u64),
            wave,
            true,
            pipeline_threads(),
            Some(&mut noisy_batch),
            &mut hbar_batch,
        );
        let noisy_batch = &noisy_batch;
        let hbar_batch = &hbar_batch;
        let (truth_snapshot, server, workloads) = (&truth_snapshot, &server, &workloads);
        per_trial.extend(crate::runner::run_trials_with(
            wave,
            aux_seeds.substream(start as u64),
            || TrialState {
                flat: FlatRelease::from_noisy(eps, vec![0.0; n]),
                queries: Vec::new(),
                truth: Vec::new(),
                flat_ans: Vec::new(),
                subtree_ans: Vec::new(),
                inferred_ans: Vec::new(),
            },
            |t, mut rng, st| {
                let noisy = &noisy_batch[t * nodes..(t + 1) * nodes];
                let hbar = &hbar_batch[t * nodes..(t + 1) * nodes];
                flat_pipeline.release_into(&histogram, &mut rng, &mut st.flat);
                let mut sums = Vec::with_capacity(workloads.len());
                for workload in workloads {
                    workload.sample_into(&mut rng, queries_per_size, &mut st.queries);
                    truth_snapshot.answer_into(&st.queries, &mut st.truth);
                    st.flat.answer_into(
                        Rounding::NonNegativeInteger,
                        &st.queries,
                        &mut st.flat_ans,
                    );
                    // H̃ sums the rounded noisy nodes, H̄ the zeroed/rounded
                    // inferred nodes — same node set, same summation order
                    // as the per-estimator query paths.
                    server.answer_into(
                        noisy,
                        Rounding::NonNegativeInteger,
                        &st.queries,
                        &mut st.subtree_ans,
                    );
                    server.answer_into(hbar, Rounding::None, &st.queries, &mut st.inferred_ans);
                    let (mut fe, mut se, mut ie) = (0.0, 0.0, 0.0);
                    for j in 0..st.queries.len() {
                        let truth = st.truth[j];
                        let f = st.flat_ans[j];
                        let s = st.subtree_ans[j];
                        let i = st.inferred_ans[j];
                        fe += (f - truth) * (f - truth);
                        se += (s - truth) * (s - truth);
                        ie += (i - truth) * (i - truth);
                    }
                    let scale = queries_per_size as f64;
                    sums.push((fe / scale, se / scale, ie / scale));
                }
                sums
            },
        ));
    });

    sizes
        .iter()
        .enumerate()
        .map(|(idx, &size)| {
            let flat: Vec<f64> = per_trial.iter().map(|t| t[idx].0).collect();
            let subtree: Vec<f64> = per_trial.iter().map(|t| t[idx].1).collect();
            let inferred: Vec<f64> = per_trial.iter().map(|t| t[idx].2).collect();
            Fig6Point {
                dataset: dataset.name(),
                epsilon: eps_value,
                size,
                flat: mean(&flat),
                subtree: mean(&subtree),
                inferred: mean(&inferred),
            }
        })
        .collect()
}

/// Computes all Fig. 6 curves (2 datasets × 3 ε).
pub fn compute(cfg: RunConfig) -> Vec<Fig6Point> {
    let seeds = SeedStream::new(cfg.seed);
    let mut out = Vec::new();
    for (d_idx, dataset) in [DatasetId::NetTrace, DatasetId::SearchLogsSeries]
        .into_iter()
        .enumerate()
    {
        for (e_idx, &eps_value) in epsilon_grid().iter().enumerate() {
            let sub = seeds.substream(200 + (d_idx * 10 + e_idx) as u64);
            out.extend(compute_curve(cfg, dataset, eps_value, sub));
        }
    }
    out
}

/// Renders the Fig. 6 report with the paper's claims quantified.
pub fn run(cfg: RunConfig) -> String {
    let points = compute(cfg);
    let mut out = String::new();
    let mut claims = String::new();

    let mut groups: Vec<(&str, f64)> = Vec::new();
    for p in &points {
        if !groups.contains(&(p.dataset, p.epsilon)) {
            groups.push((p.dataset, p.epsilon));
        }
    }

    for (dataset, eps_value) in groups {
        let curve: Vec<&Fig6Point> = points
            .iter()
            .filter(|p| p.dataset == dataset && p.epsilon == eps_value)
            .collect();
        let mut t = Table::new(
            format!(
                "Fig. 6: {dataset}, ε = {eps_value} — avg squared error over {} trials × {} ranges",
                cfg.trials,
                ranges_per_size(cfg)
            ),
            &["range size", "L~", "H~", "H̄", "H~/H̄"],
        );
        for p in &curve {
            t.row(vec![
                format!("{}", p.size),
                sci(p.flat),
                sci(p.subtree),
                sci(p.inferred),
                format!("{:.2}", p.subtree / p.inferred.max(1e-12)),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');

        // Crossover: first size where H~ beats L~.
        let crossover = curve.iter().find(|p| p.subtree < p.flat).map(|p| p.size);
        let last = curve.last().expect("non-empty curve");
        claims.push_str(&format!(
            "{dataset} ε={eps_value}: L~/H~ crossover at size {:?}; at largest range L~/H~ = {:.1}x; H̄≤H~ on {}/{} sizes\n",
            crossover,
            last.flat / last.subtree.max(1e-12),
            curve.iter().filter(|p| p.inferred <= p.subtree * 1.05).count(),
            curve.len(),
        ));
    }

    out.push_str("\nClaims (Sec. 5.2): error of L~ grows linearly with range size; H~ grows slowly; \
                  they cross near size ~2·10³ at paper scale with L~ 4–8x worse at the largest ranges; \
                  H̄ is uniformly at least as accurate as H~ and can beat L~ even at small ranges on sparse data.\n\n");
    out.push_str(&claims);
    out
}

/// Smaller helper used by the non-negativity ablation: error of a single
/// estimator closure over random ranges of one size.
pub fn error_over_ranges<R: Rng + ?Sized>(
    histogram: &hc_data::Histogram,
    size: usize,
    queries: usize,
    rng: &mut R,
    mut estimator: impl FnMut(hc_data::Interval) -> f64,
) -> f64 {
    let workload = RangeWorkload::new(histogram.len(), size);
    let mut total = 0.0;
    for _ in 0..queries {
        let q = workload.sample(rng);
        let truth = histogram.range_count(q) as f64;
        let est = estimator(q);
        total += (est - truth) * (est - truth);
    }
    total / queries as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_error_grows_linearly_and_tree_slowly() {
        let cfg = RunConfig::quick();
        let seeds = SeedStream::new(cfg.seed);
        let curve = compute_curve(cfg, DatasetId::SearchLogsSeries, 0.1, seeds);
        assert!(curve.len() >= 4);
        let first = curve.first().unwrap();
        let last = curve.last().unwrap();
        let flat_growth = last.flat / first.flat.max(1e-12);
        let tree_growth = last.subtree / first.subtree.max(1e-12);
        assert!(
            flat_growth > 4.0 * tree_growth,
            "flat {flat_growth} vs tree {tree_growth}"
        );
    }

    #[test]
    fn inference_no_worse_than_subtree_on_average() {
        let cfg = RunConfig::quick();
        let seeds = SeedStream::new(cfg.seed);
        let curve = compute_curve(cfg, DatasetId::NetTrace, 0.1, seeds);
        let better = curve
            .iter()
            .filter(|p| p.inferred <= p.subtree * 1.10)
            .count();
        assert!(
            better * 10 >= curve.len() * 8,
            "H̄ worse than H~ too often: {curve:?}"
        );
    }
}
