//! Fig. 2(b): the worked example — query variations `L`, `H`, `S` on the
//! four-address trace, with one sampled noisy release and its inferred
//! repair.

use hc_core::{SortedRelease, TreeRelease};
use hc_data::{Domain, Histogram};
use hc_mech::{Epsilon, HierarchicalQuery, QuerySequence, SortedQuery, TreeShape, UnitQuery};
use hc_noise::SeedStream;

use crate::table::Table;
use crate::RunConfig;

/// The paper's running-example histogram: counts ⟨2, 0, 10, 2⟩ over the four
/// source addresses of Fig. 2(a).
pub fn example_histogram() -> Histogram {
    let domain = Domain::new("src", 4).expect("non-empty domain");
    Histogram::from_counts(domain, vec![2, 0, 10, 2])
}

fn fmt_vec(v: &[f64]) -> String {
    let cells: Vec<String> = v
        .iter()
        .map(|x| {
            if (x - x.round()).abs() < 1e-9 {
                format!("{}", x.round() as i64)
            } else {
                format!("{x:.2}")
            }
        })
        .collect();
    format!("<{}>", cells.join(", "))
}

/// Reproduces Fig. 2(b). The "Private output" column is one Laplace sample
/// (the paper shows integer-looking samples for readability; ours are real
/// draws, so fractional), and "Inferred answer" applies the constrained
/// inference of Secs. 3.1/4.1.
pub fn run(cfg: RunConfig) -> String {
    let h = example_histogram();
    let eps = Epsilon::new(1.0).expect("valid ε");
    let seeds = SeedStream::new(cfg.seed);
    let mut rng = seeds.rng(0);

    let l_true = UnitQuery.evaluate(&h);
    let h_query = HierarchicalQuery::binary();
    let h_true = h_query.evaluate(&h);
    let s_true = SortedQuery.evaluate(&h);

    let mech = hc_mech::LaplaceMechanism::new(eps);
    let l_noisy = mech.release(&UnitQuery, &h, &mut rng);
    let h_noisy = mech.release(&h_query, &h, &mut rng);
    let s_noisy = mech.release(&SortedQuery, &h, &mut rng);

    let h_release =
        TreeRelease::from_noisy(eps, TreeShape::new(2, 3), 4, h_noisy.values().to_vec());
    let h_inferred = h_release.infer();
    let s_release = SortedRelease::from_noisy(eps, s_noisy.values().to_vec());
    let s_inferred = s_release.inferred();

    let mut t = Table::new(
        "Fig. 2(b): query variations on the example trace (ε = 1.0)",
        &["Query", "True answer", "Private output", "Inferred answer"],
    );
    t.row(vec![
        "L".into(),
        fmt_vec(&l_true),
        fmt_vec(l_noisy.values()),
        "(no constraints)".into(),
    ]);
    t.row(vec![
        "H".into(),
        fmt_vec(&h_true),
        fmt_vec(h_noisy.values()),
        fmt_vec(h_inferred.node_values()),
    ]);
    t.row(vec![
        "S".into(),
        fmt_vec(&s_true),
        fmt_vec(s_noisy.values()),
        fmt_vec(&s_inferred),
    ]);

    let mut out = t.render();
    out.push_str(&format!(
        "\nPaper's fixed sample: H~ = <13, 3, 11, 4, 1, 12, 1> infers to H̄ = <14, 3, 11, 3, 0, 11, 0> — reproduced exactly: {}\n",
        {
            let fixed = TreeRelease::from_noisy(
                eps,
                TreeShape::new(2, 3),
                4,
                vec![13.0, 3.0, 11.0, 4.0, 1.0, 12.0, 1.0],
            );
            fmt_vec(fixed.infer().node_values())
        }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_contains_true_answers_and_paper_inference() {
        let out = run(RunConfig::quick());
        assert!(out.contains("<2, 0, 10, 2>"), "L(I) missing:\n{out}");
        assert!(out.contains("<14, 2, 12, 2, 0, 10, 2>"), "H(I) missing");
        assert!(out.contains("<0, 2, 2, 10>"), "S(I) missing");
        // The paper's fixed noisy sample must infer to its printed answer.
        assert!(
            out.contains("<14, 3, 11, 3, 0, 11, 0>"),
            "H̄ mismatch:\n{out}"
        );
    }
}
