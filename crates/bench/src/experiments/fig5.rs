//! Fig. 5: unattributed-histogram error across datasets and ε for the three
//! estimators `S̃` (baseline), `S̃r` (sort + round), `S̄` (constrained
//! inference).

use hc_core::{sum_squared_error, UnattributedHistogram};
use hc_mech::Epsilon;
use hc_noise::SeedStream;

use crate::datasets::{build, epsilon_grid, DatasetId};
use crate::stats::Summary;
use crate::table::{sci, Table};
use crate::RunConfig;

/// Per-configuration outcome used by tests.
#[derive(Debug, Clone, Copy)]
pub struct Fig5Row {
    /// Dataset evaluated.
    pub dataset: &'static str,
    /// Privacy parameter.
    pub epsilon: f64,
    /// Mean squared error of the baseline `S̃`.
    pub baseline: f64,
    /// Mean squared error of sort-and-round `S̃r`.
    pub sort_round: f64,
    /// Mean squared error of constrained inference `S̄`.
    pub inferred: f64,
}

/// Computes the Fig. 5 grid.
pub fn compute(cfg: RunConfig) -> Vec<Fig5Row> {
    let seeds = SeedStream::new(cfg.seed);
    let datasets = [
        DatasetId::SocialNetwork,
        DatasetId::NetTrace,
        DatasetId::SearchLogsKeywords,
    ];
    let mut rows = Vec::new();
    for (d_idx, &dataset) in datasets.iter().enumerate() {
        let histogram = build(dataset, cfg.quick, seeds);
        let truth: Vec<f64> = histogram
            .sorted_counts()
            .into_iter()
            .map(|c| c as f64)
            .collect();
        for (e_idx, &eps_value) in epsilon_grid().iter().enumerate() {
            let eps = Epsilon::new(eps_value).expect("valid ε");
            let task = UnattributedHistogram::new(eps);
            let trial_seeds = seeds.substream(100 + (d_idx * 10 + e_idx) as u64);
            let outcomes = crate::runner::run_trials(cfg.trials, trial_seeds, |_t, mut rng| {
                let release = task.release(&histogram, &mut rng);
                let baseline = sum_squared_error(release.baseline(), &truth);
                let sort_round = sum_squared_error(&release.sorted_rounded(), &truth);
                let inferred = sum_squared_error(&release.inferred(), &truth);
                (baseline, sort_round, inferred)
            });
            let baselines: Vec<f64> = outcomes.iter().map(|o| o.0).collect();
            let sort_rounds: Vec<f64> = outcomes.iter().map(|o| o.1).collect();
            let inferreds: Vec<f64> = outcomes.iter().map(|o| o.2).collect();
            rows.push(Fig5Row {
                dataset: dataset.name(),
                epsilon: eps_value,
                baseline: Summary::of(&baselines).mean,
                sort_round: Summary::of(&sort_rounds).mean,
                inferred: Summary::of(&inferreds).mean,
            });
        }
    }
    rows
}

/// Renders the Fig. 5 report.
pub fn run(cfg: RunConfig) -> String {
    let rows = compute(cfg);
    let mut t = Table::new(
        format!(
            "Fig. 5: unattributed histograms — avg squared error over {} trials",
            cfg.trials
        ),
        &["Dataset", "ε", "S~", "S~r", "S̄", "S~/S̄"],
    );
    for r in &rows {
        t.row(vec![
            r.dataset.to_string(),
            format!("{}", r.epsilon),
            sci(r.baseline),
            sci(r.sort_round),
            sci(r.inferred),
            format!("{:.1}", r.baseline / r.inferred.max(1e-12)),
        ]);
    }
    let mut out = t.render();
    let min_gain = rows
        .iter()
        .map(|r| r.baseline / r.inferred.max(1e-12))
        .fold(f64::INFINITY, f64::min);
    out.push_str(&format!(
        "\nClaim (Sec. 5.1): S̄ reduces error by at least an order of magnitude \
         across all datasets and ε; relative accuracy improves as ε shrinks.\n\
         Minimum S~/S̄ gain observed: {min_gain:.1}x\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inference_dominates_both_baselines_everywhere() {
        let rows = compute(RunConfig::quick());
        assert_eq!(rows.len(), 9);
        for r in &rows {
            assert!(
                r.inferred < r.baseline,
                "{} ε={}: S̄ {} vs S~ {}",
                r.dataset,
                r.epsilon,
                r.inferred,
                r.baseline
            );
            assert!(
                r.inferred <= r.sort_round * 1.05,
                "{} ε={}: S̄ {} vs S~r {}",
                r.dataset,
                r.epsilon,
                r.inferred,
                r.sort_round
            );
        }
    }

    #[test]
    fn error_grows_as_epsilon_shrinks() {
        let rows = compute(RunConfig::quick());
        for chunk in rows.chunks(3) {
            assert!(chunk[0].baseline < chunk[1].baseline);
            assert!(chunk[1].baseline < chunk[2].baseline);
        }
    }
}
