//! Fig. 7: where the error lives — per-position error of `S̄` vs `S̃` along
//! the NetTrace unattributed histogram, averaged over many trials.

use hc_core::{per_position_squared_error, theory, UnattributedHistogram};
use hc_mech::Epsilon;
use hc_noise::SeedStream;

use crate::datasets::{build, DatasetId};
use crate::stats::mean;
use crate::table::Table;
use crate::RunConfig;

/// Per-position mean error profiles.
#[derive(Debug, Clone)]
pub struct Fig7Profile {
    /// The true sorted sequence.
    pub truth: Vec<f64>,
    /// Mean per-position squared error of `S̃`.
    pub baseline: Vec<f64>,
    /// Mean per-position squared error of `S̄`.
    pub inferred: Vec<f64>,
}

/// Computes the Fig. 7 profile (the paper uses 200 trials at ε = 1.0).
pub fn compute(cfg: RunConfig) -> Fig7Profile {
    let trials = if cfg.quick {
        cfg.trials.max(20)
    } else {
        cfg.trials.max(200)
    };
    let seeds = SeedStream::new(cfg.seed);
    let histogram = build(DatasetId::NetTrace, cfg.quick, seeds);
    let truth: Vec<f64> = histogram
        .sorted_counts()
        .into_iter()
        .map(|c| c as f64)
        .collect();
    let eps = Epsilon::new(1.0).expect("valid ε");
    let task = UnattributedHistogram::new(eps);

    let profiles = crate::runner::run_trials(trials, seeds.substream(1), |_t, mut rng| {
        let release = task.release(&histogram, &mut rng);
        let base = per_position_squared_error(release.baseline(), &truth);
        let inf = per_position_squared_error(&release.inferred(), &truth);
        (base, inf)
    });

    let n = truth.len();
    let mut baseline = vec![0.0; n];
    let mut inferred = vec![0.0; n];
    for (b, i) in &profiles {
        for k in 0..n {
            baseline[k] += b[k];
            inferred[k] += i[k];
        }
    }
    for k in 0..n {
        baseline[k] /= profiles.len() as f64;
        inferred[k] /= profiles.len() as f64;
    }
    Fig7Profile {
        truth,
        baseline,
        inferred,
    }
}

/// Splits positions into run-interior vs run-boundary (a position is a
/// boundary if the true count changes within `margin` positions of it).
fn boundary_mask(truth: &[f64], margin: usize) -> Vec<bool> {
    let n = truth.len();
    let mut mask = vec![false; n];
    for k in 0..n {
        let lo = k.saturating_sub(margin);
        let hi = (k + margin).min(n - 1);
        if truth[lo..=hi].iter().any(|&v| v != truth[k]) {
            mask[k] = true;
        }
    }
    mask
}

/// Renders the Fig. 7 report: error concentrated at count-change points,
/// near-zero in the interior of uniform runs.
pub fn run(cfg: RunConfig) -> String {
    let profile = compute(cfg);
    let mask = boundary_mask(&profile.truth, 2);

    let (mut interior_base, mut interior_inf) = (Vec::new(), Vec::new());
    let (mut boundary_base, mut boundary_inf) = (Vec::new(), Vec::new());
    for (k, &on_boundary) in mask.iter().enumerate() {
        if on_boundary {
            boundary_base.push(profile.baseline[k]);
            boundary_inf.push(profile.inferred[k]);
        } else {
            interior_base.push(profile.baseline[k]);
            interior_inf.push(profile.inferred[k]);
        }
    }

    let mut t = Table::new(
        "Fig. 7: NetTrace per-position error (ε = 1.0)",
        &["segment", "positions", "S~ error", "S̄ error", "S~/S̄"],
    );
    t.row(vec![
        "uniform-run interior".into(),
        format!("{}", interior_base.len()),
        format!("{:.4}", mean(&interior_base)),
        format!("{:.4}", mean(&interior_inf)),
        format!(
            "{:.1}",
            mean(&interior_base) / mean(&interior_inf).max(1e-9)
        ),
    ]);
    t.row(vec![
        "count-change boundary".into(),
        format!("{}", boundary_base.len()),
        format!("{:.4}", mean(&boundary_base)),
        format!("{:.4}", mean(&boundary_inf)),
        format!(
            "{:.1}",
            mean(&boundary_base) / mean(&boundary_inf).max(1e-9)
        ),
    ]);

    let d = theory::run_lengths(&profile.truth).len();
    let mut out = t.render();
    out.push_str(&format!(
        "\nTrue sequence: n = {}, d = {} distinct counts (d ≪ n is the Theorem 2 regime).\n\
         Claim (Appendix C): inference eliminates noise in the middle of uniform runs — \
         exactly where changing one tuple cannot change a count — and leaves residual \
         error only near the points where the count changes.\n",
        profile.truth.len(),
        d
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interior_error_is_far_below_baseline() {
        let profile = compute(RunConfig::quick());
        let mask = boundary_mask(&profile.truth, 2);
        let interior_inf: Vec<f64> = (0..profile.truth.len())
            .filter(|&k| !mask[k])
            .map(|k| profile.inferred[k])
            .collect();
        let interior_base: Vec<f64> = (0..profile.truth.len())
            .filter(|&k| !mask[k])
            .map(|k| profile.baseline[k])
            .collect();
        assert!(
            mean(&interior_inf) * 5.0 < mean(&interior_base),
            "interior: inferred {} vs baseline {}",
            mean(&interior_inf),
            mean(&interior_base)
        );
    }

    #[test]
    fn baseline_error_is_flat_at_laplace_variance() {
        let profile = compute(RunConfig::quick());
        // error(S~[k]) = Var(Lap(1/ε)) = 2 for ε = 1 at every position.
        let m = mean(&profile.baseline);
        assert!((m - 2.0).abs() < 0.4, "baseline mean {m}");
    }
}
