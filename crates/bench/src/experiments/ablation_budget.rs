//! Ablation: per-level privacy-budget allocation for the hierarchy, decoded
//! by generalized (weighted) constrained inference — a follow-up
//! optimization the paper's framework directly enables.

use hc_core::{BudgetSplit, BudgetedHierarchical};
use hc_data::RangeWorkload;
use hc_mech::Epsilon;
use hc_noise::SeedStream;

use crate::datasets::{build, DatasetId};
use crate::stats::mean;
use crate::table::{sci, Table};
use crate::RunConfig;

/// Measured error for one allocation at one range size.
#[derive(Debug, Clone, Copy)]
pub struct BudgetPoint {
    /// Geometric growth factor of the allocation (1.0 = paper's uniform).
    pub ratio: f64,
    /// Range size.
    pub size: usize,
    /// Mean squared error of the GLS-inferred estimate.
    pub inferred: f64,
}

/// Sweeps allocation ratios × range sizes on the Search Logs series.
pub fn compute(cfg: RunConfig) -> Vec<BudgetPoint> {
    let seeds = SeedStream::new(cfg.seed);
    let histogram = build(DatasetId::SearchLogsSeries, cfg.quick, seeds);
    let n = histogram.len();
    let eps = Epsilon::new(0.1).expect("valid ε");
    let sizes: Vec<usize> = [4usize, 64, 1024, n / 4]
        .into_iter()
        .filter(|&s| s >= 1 && s <= n)
        .collect();
    let queries = if cfg.quick { 50 } else { 400 };

    let mut out = Vec::new();
    for (r_idx, ratio) in [0.5f64, 1.0, 1.5, 2.0].into_iter().enumerate() {
        let split = if (ratio - 1.0).abs() < 1e-12 {
            BudgetSplit::Uniform
        } else {
            BudgetSplit::Geometric { ratio }
        };
        let pipeline = BudgetedHierarchical::binary(eps, split);
        let per_trial = crate::runner::run_trials(
            cfg.trials,
            seeds.substream(20 + r_idx as u64),
            |_t, mut rng| {
                let tree = pipeline.release(&histogram, &mut rng).infer();
                sizes
                    .iter()
                    .map(|&size| {
                        let workload = RangeWorkload::new(n, size);
                        let mut err = 0.0;
                        for _ in 0..queries {
                            let q = workload.sample(&mut rng);
                            let truth = histogram.range_count(q) as f64;
                            err += (tree.range_query(q) - truth).powi(2);
                        }
                        err / queries as f64
                    })
                    .collect::<Vec<f64>>()
            },
        );
        for (s_idx, &size) in sizes.iter().enumerate() {
            let errs: Vec<f64> = per_trial.iter().map(|t| t[s_idx]).collect();
            out.push(BudgetPoint {
                ratio,
                size,
                inferred: mean(&errs),
            });
        }
    }
    out
}

/// Renders the budget-allocation ablation.
pub fn run(cfg: RunConfig) -> String {
    let points = compute(cfg);
    let mut t = Table::new(
        "Ablation: per-level budget allocation + weighted inference (Search Logs, ε = 0.1)",
        &["allocation ratio", "range size", "error(H̄ weighted)"],
    );
    for p in &points {
        t.row(vec![
            if (p.ratio - 1.0).abs() < 1e-12 {
                "1.0 (uniform, paper)".to_string()
            } else {
                format!("{:.1}", p.ratio)
            },
            format!("{}", p.size),
            sci(p.inferred),
        ]);
    }
    let mut out = t.render();
    out.push_str(
        "\nClaim: the constrained-inference framework extends beyond the paper's uniform \
         calibration — per-level budgets with GLS decoding (verified against hc-linalg's \
         weighted least squares) shift accuracy between small and large ranges; \
         leaf-heavy allocations (ratio > 1) favour small ranges and vice versa.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_shifts_the_error_profile() {
        let points = compute(RunConfig::quick());
        let smallest = points.iter().map(|p| p.size).min().unwrap();
        let at = |ratio: f64, size: usize| {
            points
                .iter()
                .find(|p| (p.ratio - ratio).abs() < 1e-9 && p.size == size)
                .unwrap()
                .inferred
        };
        // Leaf-heavy must beat root-heavy on the smallest ranges.
        assert!(
            at(2.0, smallest) < at(0.5, smallest),
            "leaf-heavy {} vs root-heavy {} at size {}",
            at(2.0, smallest),
            at(0.5, smallest),
            smallest
        );
        assert!(points.iter().all(|p| p.inferred.is_finite()));
    }
}
