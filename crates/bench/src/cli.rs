//! Minimal argument parsing shared by the experiment binaries.

/// Configuration for one experiment run.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Reduced problem sizes for smoke tests (`--quick`).
    pub quick: bool,
    /// Number of mechanism samples per configuration (`--trials N`,
    /// paper default 50).
    pub trials: usize,
    /// Master seed (`--seed N`); every run with the same seed is identical.
    pub seed: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            quick: false,
            trials: 50,
            seed: 20100913, // VLDB 2010 conference date
        }
    }
}

impl RunConfig {
    /// A configuration for fast smoke runs (used by integration tests).
    pub fn quick() -> Self {
        Self {
            quick: true,
            trials: 5,
            ..Self::default()
        }
    }

    /// Parses `std::env::args`-style arguments. Unknown flags abort with a
    /// usage message — experiments have no other knobs by design (change the
    /// code, rerun, diff the tables).
    pub fn from_args(args: impl Iterator<Item = String>) -> Self {
        let mut cfg = Self::default();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => {
                    cfg.quick = true;
                    if cfg.trials == Self::default().trials {
                        cfg.trials = 5;
                    }
                }
                "--trials" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage("--trials needs a value"));
                    cfg.trials = v
                        .parse()
                        .unwrap_or_else(|_| usage("--trials must be an integer"));
                }
                "--seed" => {
                    let v = args.next().unwrap_or_else(|| usage("--seed needs a value"));
                    cfg.seed = v
                        .parse()
                        .unwrap_or_else(|_| usage("--seed must be an integer"));
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag {other}")),
            }
        }
        cfg
    }

    /// Parses the process arguments (skipping argv[0]).
    pub fn from_env() -> Self {
        Self::from_args(std::env::args().skip(1))
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!("usage: <experiment> [--quick] [--trials N] [--seed N]");
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> RunConfig {
        RunConfig::from_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_match_paper_protocol() {
        let cfg = parse(&[]);
        assert!(!cfg.quick);
        assert_eq!(cfg.trials, 50);
    }

    #[test]
    fn quick_reduces_trials() {
        let cfg = parse(&["--quick"]);
        assert!(cfg.quick);
        assert_eq!(cfg.trials, 5);
    }

    #[test]
    fn explicit_trials_and_seed() {
        let cfg = parse(&["--trials", "7", "--seed", "99"]);
        assert_eq!(cfg.trials, 7);
        assert_eq!(cfg.seed, 99);
    }

    #[test]
    fn quick_does_not_override_explicit_trials() {
        let cfg = parse(&["--trials", "7", "--quick"]);
        assert_eq!(cfg.trials, 7);
        assert!(cfg.quick);
    }
}
