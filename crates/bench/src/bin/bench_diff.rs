//! `bench_diff` — the CI perf-regression gate over `BENCH_*.json` records.
//!
//! The vendored criterion harness appends one JSON line per benchmark
//! (`{"label": ..., "ns_per_iter": ..., ...}`) to the file named by
//! `BENCH_JSON`; CI uploads that record as an artifact. Since the
//! min-of-N-windows change, `ns_per_iter` is the **minimum** time/iteration
//! over several independent measurement windows — a lower-envelope estimate
//! that cuts gate flicker on shared runners (the JSON schema is unchanged,
//! so older single-window baselines still compare). This tool compares a
//! fresh record against a baseline record label by label, prints the
//! comparison as a table, and exits non-zero when any shared label's
//! `ns_per_iter` regressed by more than the threshold (default 10%) — so a
//! perf regression fails the job instead of scrolling by.
//!
//! ```text
//! bench_diff BASELINE.json CURRENT.json [--max-regress PCT]
//! ```
//!
//! Labels present in only one record are listed but never fail the gate
//! (benchmarks are added and retired as the suite evolves); improvements
//! never fail. Records are expected to come from the *same class of runner*
//! at the same `HC_THREADS` — cross-machine ns are not comparable.

use std::process::ExitCode;

use hc_bench::table::Table;

/// Default regression threshold, percent.
const DEFAULT_MAX_REGRESS: f64 = 10.0;

/// One benchmark's timing, keyed by its criterion label.
#[derive(Debug, Clone, PartialEq)]
struct Entry {
    label: String,
    ns_per_iter: f64,
}

/// The text after `"key":` (any whitespace around the colon skipped) in one
/// JSON line. The records are machine-written by the vendored criterion, so
/// a targeted scan beats pulling in a JSON crate; tolerating optional
/// whitespace keeps hand-edited or pretty-printed baselines comparable.
fn json_field_value<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\"");
    let after_key = &line[line.find(&needle)? + needle.len()..];
    let after_key = after_key.trim_start();
    after_key.strip_prefix(':').map(str::trim_start)
}

/// Extracts the string value of `"key":"..."` from one JSON line (labels
/// escape only `"` and `\`).
fn json_string_field(line: &str, key: &str) -> Option<String> {
    let rest = json_field_value(line, key)?.strip_prefix('"')?;
    let mut value = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => value.push(chars.next()?),
            '"' => return Some(value),
            c => value.push(c),
        }
    }
    None
}

/// Extracts the numeric value of `"key":123.4` from one JSON line.
fn json_number_field(line: &str, key: &str) -> Option<f64> {
    let rest = json_field_value(line, key)?;
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses a whole record (one JSON object per line; blank lines skipped).
/// Later duplicates of a label win, matching "the record is appended to".
fn parse_record(text: &str) -> Vec<Entry> {
    let mut entries: Vec<Entry> = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (Some(label), Some(ns_per_iter)) = (
            json_string_field(line, "label"),
            json_number_field(line, "ns_per_iter"),
        ) else {
            continue;
        };
        if let Some(existing) = entries.iter_mut().find(|e| e.label == label) {
            existing.ns_per_iter = ns_per_iter;
        } else {
            entries.push(Entry { label, ns_per_iter });
        }
    }
    entries
}

/// The comparison of one shared label.
#[derive(Debug, Clone)]
struct Comparison {
    label: String,
    baseline_ns: f64,
    current_ns: f64,
    /// Positive = slower than baseline, in percent.
    delta_pct: f64,
    regressed: bool,
}

/// Everything the gate decides, separated from I/O so the unit tests can
/// exercise it directly (including the synthetic->regression negative test).
#[derive(Debug, Clone)]
struct Report {
    comparisons: Vec<Comparison>,
    only_in_baseline: Vec<String>,
    only_in_current: Vec<String>,
    max_regress_pct: f64,
}

impl Report {
    fn build(baseline: &[Entry], current: &[Entry], max_regress_pct: f64) -> Self {
        let mut comparisons = Vec::new();
        let mut only_in_baseline = Vec::new();
        for b in baseline {
            match current.iter().find(|c| c.label == b.label) {
                Some(c) => {
                    let delta_pct = (c.ns_per_iter - b.ns_per_iter) / b.ns_per_iter * 100.0;
                    comparisons.push(Comparison {
                        label: b.label.clone(),
                        baseline_ns: b.ns_per_iter,
                        current_ns: c.ns_per_iter,
                        delta_pct,
                        regressed: delta_pct > max_regress_pct,
                    });
                }
                None => only_in_baseline.push(b.label.clone()),
            }
        }
        let only_in_current = current
            .iter()
            .filter(|c| baseline.iter().all(|b| b.label != c.label))
            .map(|c| c.label.clone())
            .collect();
        Self {
            comparisons,
            only_in_baseline,
            only_in_current,
            max_regress_pct,
        }
    }

    fn regressions(&self) -> impl Iterator<Item = &Comparison> {
        self.comparisons.iter().filter(|c| c.regressed)
    }

    fn passed(&self) -> bool {
        self.regressions().next().is_none()
    }

    fn render(&self) -> String {
        let mut t = Table::new(
            format!(
                "bench_diff: ns/iter vs baseline (gate: >{:.0}% slower fails)",
                self.max_regress_pct
            ),
            &["label", "baseline ns", "current ns", "delta", "gate"],
        );
        for c in &self.comparisons {
            t.row(vec![
                c.label.clone(),
                format!("{:.1}", c.baseline_ns),
                format!("{:.1}", c.current_ns),
                format!("{:+.1}%", c.delta_pct),
                if c.regressed { "REGRESSED" } else { "ok" }.to_string(),
            ]);
        }
        let mut out = t.render();
        for label in &self.only_in_baseline {
            out.push_str(&format!("note: `{label}` only in baseline (retired?)\n"));
        }
        for label in &self.only_in_current {
            out.push_str(&format!("note: `{label}` only in current (new)\n"));
        }
        let regressed: Vec<&str> = self.regressions().map(|c| c.label.as_str()).collect();
        if regressed.is_empty() {
            out.push_str(&format!(
                "PASS: {} labels compared, none slower than the {:.0}% gate\n",
                self.comparisons.len(),
                self.max_regress_pct
            ));
        } else {
            out.push_str(&format!(
                "FAIL: {} label(s) regressed past {:.0}%: {}\n",
                regressed.len(),
                self.max_regress_pct,
                regressed.join(", ")
            ));
        }
        out
    }
}

fn usage() -> ! {
    eprintln!("usage: bench_diff BASELINE.json CURRENT.json [--max-regress PCT]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut baseline_path = None;
    let mut current_path = None;
    let mut max_regress = DEFAULT_MAX_REGRESS;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--max-regress" => {
                max_regress = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--help" | "-h" => usage(),
            _ if baseline_path.is_none() => baseline_path = Some(arg),
            _ if current_path.is_none() => current_path = Some(arg),
            _ => usage(),
        }
    }
    let (Some(baseline_path), Some(current_path)) = (baseline_path, current_path) else {
        usage();
    };
    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("bench_diff: cannot read {path}: {e}");
            std::process::exit(2);
        })
    };
    let baseline = parse_record(&read(&baseline_path));
    let current = parse_record(&read(&current_path));
    if baseline.is_empty() {
        eprintln!("bench_diff: baseline {baseline_path} has no benchmark lines");
        return ExitCode::from(2);
    }
    let report = Report::build(&baseline, &current, max_regress);
    print!("{}", report.render());
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASELINE: &str = concat!(
        "{\"label\":\"a/1024\",\"ns_per_iter\":1000.0,\"elements_per_iter\":2047}\n",
        "{\"label\":\"b/2048\",\"ns_per_iter\":500.0}\n",
        "{\"label\":\"retired\",\"ns_per_iter\":7.5}\n",
    );

    #[test]
    fn parses_labels_and_timings() {
        let entries = parse_record(BASELINE);
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].label, "a/1024");
        assert_eq!(entries[0].ns_per_iter, 1000.0);
        assert_eq!(entries[2].ns_per_iter, 7.5);
    }

    #[test]
    fn later_duplicate_lines_win() {
        let entries = parse_record(
            "{\"label\":\"x\",\"ns_per_iter\":1.0}\n{\"label\":\"x\",\"ns_per_iter\":2.0}\n",
        );
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].ns_per_iter, 2.0);
    }

    #[test]
    fn escaped_label_characters_round_trip() {
        let entries = parse_record("{\"label\":\"q\\\"uo\\\\te\",\"ns_per_iter\":3.0}\n");
        assert_eq!(entries[0].label, "q\"uo\\te");
    }

    #[test]
    fn malformed_lines_are_skipped() {
        let entries = parse_record("not json\n{\"label\":\"ok\",\"ns_per_iter\":1.0}\n{}\n");
        assert_eq!(entries.len(), 1);
    }

    #[test]
    fn whitespace_around_colons_is_tolerated() {
        // Hand-edited / pretty-printed baselines still compare.
        let entries = parse_record("{\"label\": \"x/1\", \"ns_per_iter\": 42.5}\n");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].label, "x/1");
        assert_eq!(entries[0].ns_per_iter, 42.5);
    }

    #[test]
    fn within_threshold_passes() {
        // +9.9% on one label, an improvement on the other: the 10% gate holds.
        let current = "{\"label\":\"a/1024\",\"ns_per_iter\":1099.0}\n\
                       {\"label\":\"b/2048\",\"ns_per_iter\":400.0}\n";
        let report = Report::build(
            &parse_record(BASELINE),
            &parse_record(current),
            DEFAULT_MAX_REGRESS,
        );
        assert!(report.passed());
        assert!(report.render().contains("PASS"));
        // The retired label is reported but does not fail the gate.
        assert_eq!(report.only_in_baseline, vec!["retired".to_string()]);
    }

    #[test]
    fn synthetic_regression_fails_the_gate() {
        // The negative test the CI gate relies on: a synthetic +25% on one
        // label must flip the exit decision and name the offender.
        let current = "{\"label\":\"a/1024\",\"ns_per_iter\":1250.0}\n\
                       {\"label\":\"b/2048\",\"ns_per_iter\":500.0}\n\
                       {\"label\":\"retired\",\"ns_per_iter\":7.5}\n";
        let report = Report::build(
            &parse_record(BASELINE),
            &parse_record(current),
            DEFAULT_MAX_REGRESS,
        );
        assert!(!report.passed());
        let regressed: Vec<&str> = report.regressions().map(|c| c.label.as_str()).collect();
        assert_eq!(regressed, vec!["a/1024"]);
        let rendered = report.render();
        assert!(rendered.contains("FAIL"));
        assert!(rendered.contains("REGRESSED"));
        assert!(rendered.contains("+25.0%"));
    }

    #[test]
    fn threshold_is_configurable() {
        let current = "{\"label\":\"a/1024\",\"ns_per_iter\":1150.0}\n";
        let baseline = parse_record(BASELINE);
        let current = parse_record(current);
        assert!(!Report::build(&baseline, &current, 10.0).passed());
        assert!(Report::build(&baseline, &current, 20.0).passed());
    }

    #[test]
    fn new_labels_never_fail() {
        let current = "{\"label\":\"brand_new\",\"ns_per_iter\":9.0}\n\
                       {\"label\":\"a/1024\",\"ns_per_iter\":1000.0}\n";
        let report = Report::build(
            &parse_record(BASELINE),
            &parse_record(current),
            DEFAULT_MAX_REGRESS,
        );
        assert!(report.passed());
        assert_eq!(report.only_in_current, vec!["brand_new".to_string()]);
    }
}
