//! Regenerates the `thm4_factor` artifact. Run with `--quick` for a smoke pass.

fn main() {
    let cfg = hc_bench::RunConfig::from_env();
    print!("{}", hc_bench::experiments::thm4_factor::run(cfg));
}
