//! Regenerates the `appendix_e` artifact. Run with `--quick` for a smoke pass.

fn main() {
    let cfg = hc_bench::RunConfig::from_env();
    print!("{}", hc_bench::experiments::appendix_e::run(cfg));
}
