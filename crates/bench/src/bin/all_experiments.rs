//! Runs every experiment in sequence — the full reproduction in one command.
//!
//! `cargo run --release -p hc-bench --bin all_experiments` (add `--quick`
//! for a minutes-long smoke pass of every artifact).

use hc_bench::experiments as exp;
use hc_bench::RunConfig;

type Experiment = fn(RunConfig) -> String;

fn main() {
    let cfg = RunConfig::from_env();
    let sections: &[(&str, Experiment)] = &[
        ("fig2", exp::fig2::run),
        ("fig3", exp::fig3::run),
        ("fig5", exp::fig5::run),
        ("fig6", exp::fig6::run),
        ("fig7", exp::fig7::run),
        ("thm2_scaling", exp::thm2_scaling::run),
        ("thm4_factor", exp::thm4_factor::run),
        ("appendix_e", exp::appendix_e::run),
        ("ablation_branching", exp::ablation_branching::run),
        ("ablation_budget", exp::ablation_budget::run),
        ("ablation_wavelet", exp::ablation_wavelet::run),
        ("ablation_matrix", exp::ablation_matrix::run),
        ("ablation_nonneg", exp::ablation_nonneg::run),
        ("ablation_geometric", exp::ablation_geometric::run),
        ("ablation_quadtree", exp::ablation_quadtree::run),
        ("accuracy_planner", exp::accuracy_planner::run),
    ];
    for (name, run) in sections {
        println!("########## {name} ##########");
        let started = std::time::Instant::now(); // hc-lint: allow(determinism) — progress timing in the harness log; not part of any experiment artifact
        print!("{}", run(cfg));
        println!("[{name} finished in {:.1?}]\n", started.elapsed());
    }
}
