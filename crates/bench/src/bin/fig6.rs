//! Regenerates the `fig6` artifact. Run with `--quick` for a smoke pass.

fn main() {
    let cfg = hc_bench::RunConfig::from_env();
    print!("{}", hc_bench::experiments::fig6::run(cfg));
}
