//! Regenerates the `fig3` artifact. Run with `--quick` for a smoke pass.

fn main() {
    let cfg = hc_bench::RunConfig::from_env();
    print!("{}", hc_bench::experiments::fig3::run(cfg));
}
