//! Regenerates the `ablation_budget` artifact. Run with `--quick` for a smoke pass.

fn main() {
    let cfg = hc_bench::RunConfig::from_env();
    print!("{}", hc_bench::experiments::ablation_budget::run(cfg));
}
