//! Open-loop load test of the `hc-serve` service layer.
//!
//! Default (timing) mode: one hierarchical tenant; reader threads answer a
//! precomputed query stream against an *open-loop* arrival schedule
//! (queries arrive on a fixed clock whether or not the service has kept
//! up, so queueing delay is charged to latency — closed-loop harnesses
//! hide exactly the overload behaviour a service layer exists to absorb)
//! while a writer publishes fresh epochs mid-run. Reported: p50/p99/p999
//! latency and queries/s, min-enveloped over repeats, with one
//! `BENCH_JSON` record per percentile so `bench_diff` gates serving
//! latency alongside the inference benchmarks.
//!
//! `--verify` mode: no timing at all. Readers race a publisher at full
//! speed and every answered batch must match one precomputed serial
//! snapshot bit for bit — never a torn mix of epochs. Stdout is a pure
//! function of the seed, so `tests/hc_threads.rs` pins it byte-identical
//! across `HC_THREADS` ∈ {1, 2, 4}.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use hc_core::{effective_threads, ShardPool};
use hc_data::Interval;
use hc_noise::SeedStream;
use hc_serve::{HistogramService, RangeQuery, TenantConfig, TenantId};
use rand::Rng;

struct Args {
    quick: bool,
    seed: u64,
    verify: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        seed: 20100913,
        verify: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--verify" => args.verify = true,
            "--seed" => {
                let v = iter.next().unwrap_or_else(|| usage("--seed needs a value"));
                args.seed = v
                    .parse()
                    .unwrap_or_else(|_| usage("--seed must be an integer"));
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    args
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!("usage: serve_load [--quick] [--seed N] [--verify]");
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}

/// A deterministic query stream over `domain_size` bins: mixed lengths,
/// plus the occasional empty and whole-domain query.
fn query_stream(domain_size: usize, count: usize, seed: u64) -> Vec<RangeQuery> {
    let mut rng = SeedStream::new(seed).substream(0x51).rng(0);
    (0..count)
        .map(|i| {
            if i % 64 == 0 {
                RangeQuery::new(0, domain_size) // whole domain
            } else if i % 97 == 0 {
                let at = rng.random_range(0..domain_size);
                RangeQuery::new(at, at) // empty
            } else {
                let lo = rng.random_range(0..domain_size);
                let hi = rng.random_range(lo..=domain_size);
                RangeQuery::new(lo, hi)
            }
        })
        .collect()
}

/// Deterministic per-epoch ingest deltas.
fn epoch_deltas(domain_size: usize, epoch: usize, seed: u64) -> Vec<(usize, u64)> {
    let mut rng = SeedStream::new(seed).substream(0xde).rng(epoch as u64);
    (0..32)
        .map(|_| (rng.random_range(0..domain_size), rng.random_range(1..20u64)))
        .collect()
}

fn tenant_config(name: &str, domain_size: usize, seed: u64) -> TenantConfig {
    TenantConfig::new(name, domain_size)
        .with_budget(16.0, 0.05)
        .with_refresh_every(0)
        .with_seed(seed)
}

/// Appends one `bench_diff`-compatible record line to `$BENCH_JSON`.
fn emit_json(label: &str, ns_per_iter: f64) {
    let Ok(path) = std::env::var("BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    use std::io::Write;
    if let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = writeln!(
            file,
            "{{\"label\":\"{label}\",\"ns_per_iter\":{ns_per_iter:.1}}}"
        );
    }
}

fn percentile(sorted_ns: &[u64], q: f64) -> u64 {
    let idx = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[idx]
}

/// Sleeps until shortly before `t`, then spins the rest: busy-waiting the
/// whole interval would oversubscribe small runners (every waiter burning a
/// core makes the scheduler quantum, not the service, the measured tail).
fn wait_until(t: Instant) {
    loop {
        let now = Instant::now(); // hc-lint: allow(determinism) — open-loop schedule clock
        if now >= t {
            return;
        }
        let remaining = t - now;
        if remaining > Duration::from_micros(200) {
            std::thread::sleep(remaining - Duration::from_micros(100));
        } else {
            std::hint::spin_loop();
        }
    }
}

/// One open-loop measurement pass: returns `(p50, p99, p999, mean)` in ns
/// and the achieved queries/s.
fn timing_pass(args: &Args, queries: &[RangeQuery], domain_size: usize) -> ([f64; 4], f64) {
    let mut service = HistogramService::new();
    let id = service
        .register(tenant_config("load", domain_size, args.seed))
        .expect("tenant registration");
    service
        .ingest(id, &epoch_deltas(domain_size, 0, args.seed))
        .expect("seed ingest");
    service.publish(id).expect("seed publish");

    let readers = effective_threads(4);
    let publishes = if args.quick { 4 } else { 8 };
    // Open-loop arrival clock: one query every `interval`, regardless of
    // service progress. 5 µs ≈ 200 k arrivals/s — far below the snapshot's
    // capacity, so measured latency is service time unless a publish stalls
    // readers (which the lock-free cell exists to prevent).
    let interval = Duration::from_micros(5);
    let next = AtomicUsize::new(0);
    let mut lat_ns: Vec<u64> = Vec::with_capacity(queries.len());
    let span = interval * queries.len() as u32;
    let start = Instant::now() + Duration::from_millis(1); // hc-lint: allow(determinism) — schedule epoch for the open-loop clock

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(readers);
        for _ in 0..readers {
            let service = &service;
            let next = &next;
            handles.push(scope.spawn(move || {
                let mut local = Vec::with_capacity(queries.len() / readers + 1);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= queries.len() {
                        return local;
                    }
                    let arrival = start + interval * i as u32;
                    wait_until(arrival);
                    let answer = service.answer(id, queries[i]).expect("serve answer");
                    assert!(answer.is_finite() || answer == 0.0);
                    let done = Instant::now(); // hc-lint: allow(determinism) — latency stamp
                    local.push((done - arrival).as_nanos() as u64);
                }
            }));
        }
        // The writer publishes fresh epochs spread across the run, so the
        // latency envelope includes reads landing mid-swap.
        for e in 1..=publishes {
            let at = start + span * e as u32 / (publishes + 1) as u32;
            wait_until(at);
            service
                .ingest(id, &epoch_deltas(domain_size, e, args.seed))
                .expect("ingest");
            service.publish(id).expect("publish");
        }
        for handle in handles {
            lat_ns.extend(handle.join().expect("reader thread"));
        }
    });

    let elapsed = (Instant::now() - start).as_secs_f64(); // hc-lint: allow(determinism) — throughput denominator
    lat_ns.sort_unstable();
    let mean = lat_ns.iter().sum::<u64>() as f64 / lat_ns.len() as f64;
    let metrics = [
        percentile(&lat_ns, 0.50) as f64,
        percentile(&lat_ns, 0.99) as f64,
        percentile(&lat_ns, 0.999) as f64,
        mean,
    ];
    (metrics, lat_ns.len() as f64 / elapsed)
}

fn run_timing(args: &Args) {
    let domain_size = if args.quick { 512 } else { 4096 };
    let count = if args.quick { 8_000 } else { 40_000 };
    let repeats = if args.quick { 5 } else { 7 };
    let queries = query_stream(domain_size, count, args.seed);

    // Measured first, before the open-loop phase's sleep/wake cycles have
    // dropped the CPU into idle states mid-run.
    let closed_ns = closed_loop_ns(args, &queries, domain_size);

    // Min envelope over repeats: scheduler noise only ever adds latency, so
    // the minimum is the reproducible part (same contract as the bench
    // harness's min-of-N windows).
    let mut best = [f64::INFINITY; 4];
    let mut best_qps = 0.0f64;
    for _ in 0..repeats {
        let (metrics, qps) = timing_pass(args, &queries, domain_size);
        for (b, m) in best.iter_mut().zip(metrics) {
            *b = b.min(m);
        }
        best_qps = best_qps.max(qps);
    }

    let threads = effective_threads(4);
    println!(
        "serve_load: open-loop, {count} queries, domain {domain_size}, {threads} reader thread(s)"
    );
    for (label, ns) in ["p50", "p99", "p999", "mean"].iter().zip(best) {
        println!("  latency {label:<5} {ns:>12.0} ns");
    }
    println!("  throughput {best_qps:>12.0} queries/s");

    // The gated records. Open-loop tail percentiles are printed above as
    // diagnostics but deliberately NOT emitted: on shared CI runners the
    // tail is owned by the scheduler (threads > cores), so gating it at
    // ±10% would make the job flaky without measuring the service. What is
    // gated is the closed-loop per-query service time — the part a serving
    // regression actually moves — serial and through the sharded pool.
    println!("  closed-loop {closed_ns:>12.1} ns/query");
    emit_json("serve_load/closed_ns", closed_ns);
    let sharded_ns = sharded_closed_loop_ns(args, &queries, domain_size);
    println!("  sharded     {sharded_ns:>12.1} ns/query");
    emit_json("serve_load/sharded_ns", sharded_ns);
}

/// Closed-loop per-query service time: batches through `answer_into`, min
/// over many short windows (the same min-envelope contract as the bench
/// harness), on an already-published snapshot.
fn closed_loop_ns(args: &Args, queries: &[RangeQuery], domain_size: usize) -> f64 {
    let mut service = HistogramService::new();
    let id = service
        .register(tenant_config("closed", domain_size, args.seed))
        .expect("tenant registration");
    service
        .ingest(id, &epoch_deltas(domain_size, 0, args.seed))
        .expect("seed ingest");
    service.publish(id).expect("seed publish");
    let mut out = Vec::with_capacity(queries.len());
    let warm = Instant::now(); // hc-lint: allow(determinism) — warm-up clock
    while warm.elapsed() < Duration::from_millis(25) {
        service.answer_into(id, queries, &mut out).expect("warm-up");
    }
    // Timed 5 ms windows (the vendored harness's --quick window size): a
    // single batch is only tens of µs, too close to timer and frequency
    // jitter for a ±10% gate, so each window loops the batch and the
    // envelope takes the fastest window.
    let windows = if args.quick { 40 } else { 80 };
    let window_len = Duration::from_millis(5);
    let mut best = f64::INFINITY;
    for _ in 0..windows {
        let t0 = Instant::now(); // hc-lint: allow(determinism) — closed-loop window clock
        let mut iters = 0u64;
        while t0.elapsed() < window_len {
            service.answer_into(id, queries, &mut out).expect("answers");
            iters += 1;
        }
        let per_query = t0.elapsed().as_nanos() as f64 / (iters * queries.len() as u64) as f64;
        best = best.min(per_query);
    }
    best
}

/// Non-empty intervals of the query stream, for the pool path (the pool
/// serves the core `Interval` type; empties are the service layer's job).
fn interval_batch(queries: &[RangeQuery]) -> Vec<Interval> {
    queries.iter().filter_map(|q| q.to_interval()).collect()
}

/// Closed-loop per-query service time through the persistent `ShardPool`:
/// the same min-of-windows envelope as [`closed_loop_ns`], but batches are
/// split across `effective_threads(4)` pool workers answering from
/// per-worker snapshot clones. Floor 0 keeps the hand-off path under
/// measurement even for the quick stream.
fn sharded_closed_loop_ns(args: &Args, queries: &[RangeQuery], domain_size: usize) -> f64 {
    let mut service = HistogramService::new();
    let id = service
        .register(tenant_config("sharded", domain_size, args.seed))
        .expect("tenant registration");
    service
        .ingest(id, &epoch_deltas(domain_size, 0, args.seed))
        .expect("seed ingest");
    service.publish(id).expect("seed publish");
    let pinned = service.snapshot(id).expect("pinned snapshot");
    let mut pool = ShardPool::with_floor(pinned.snapshot(), 4, 0);
    let intervals = interval_batch(queries);
    let mut out = Vec::with_capacity(intervals.len());
    let warm = Instant::now(); // hc-lint: allow(determinism) — warm-up clock
    while warm.elapsed() < Duration::from_millis(25) {
        pool.answer_into(&intervals, &mut out);
    }
    let windows = if args.quick { 40 } else { 80 };
    let window_len = Duration::from_millis(5);
    let mut best = f64::INFINITY;
    for _ in 0..windows {
        let t0 = Instant::now(); // hc-lint: allow(determinism) — closed-loop window clock
        let mut iters = 0u64;
        while t0.elapsed() < window_len {
            pool.answer_into(&intervals, &mut out);
            iters += 1;
        }
        let per_query = t0.elapsed().as_nanos() as f64 / (iters * intervals.len() as u64) as f64;
        best = best.min(per_query);
    }
    best
}

/// `--verify`: bit-exact serving under concurrency, with HC_THREADS-
/// invariant output.
fn run_verify(args: &Args) {
    let domain_size = if args.quick { 64 } else { 256 };
    let publishes = if args.quick { 6 } else { 12 };
    let queries = query_stream(domain_size, 32, args.seed);

    // Serial oracle: the same tenant configuration stepped through the same
    // ingest/publish sequence, recording every epoch's batch answers.
    let mut oracle = HistogramService::new();
    let oracle_id = oracle
        .register(tenant_config("verify", domain_size, args.seed))
        .expect("oracle registration");
    let mut expected: Vec<Vec<f64>> = Vec::with_capacity(publishes + 1);
    let mut batch = Vec::new();
    let epoch = oracle
        .answer_into(oracle_id, &queries, &mut batch)
        .expect("oracle epoch 0");
    assert_eq!(epoch, 0);
    expected.push(batch.clone());
    for e in 0..publishes {
        oracle
            .ingest(oracle_id, &epoch_deltas(domain_size, e, args.seed))
            .expect("oracle ingest");
        oracle.publish(oracle_id).expect("oracle publish");
        oracle
            .answer_into(oracle_id, &queries, &mut batch)
            .expect("oracle answers");
        expected.push(batch.clone());
    }

    // Live service: readers race the publisher; every batch they answer
    // must equal the oracle's batch for the epoch the cell reported.
    let mut service = HistogramService::new();
    let id = service
        .register(tenant_config("verify", domain_size, args.seed))
        .expect("registration");
    let readers = effective_threads(4);
    verify_concurrently(
        &service,
        id,
        domain_size,
        &queries,
        &expected,
        publishes,
        readers,
        args,
    );

    // The sharded pool over the final published snapshot: whatever width
    // HC_THREADS resolved, the stitched batch must equal the serial kernel
    // bit for bit. (The printed line below must stay HC_THREADS-invariant,
    // so the resolved worker count is asserted, never printed.)
    let pinned = service.snapshot(id).expect("pinned snapshot");
    let intervals = interval_batch(&queries);
    let mut serial = Vec::new();
    pinned.snapshot().answer_into(&intervals, &mut serial);
    let mut pool = ShardPool::with_floor(pinned.snapshot(), 4, 0);
    let mut pooled = Vec::new();
    pool.answer_into(&intervals, &mut pooled);
    assert_eq!(
        pooled.iter().map(|v| v.to_bits()).collect::<Vec<u64>>(),
        serial.iter().map(|v| v.to_bits()).collect::<Vec<u64>>(),
        "sharded pool diverged from serial serving"
    );

    // Everything printed below is a pure function of the seed — the
    // subprocess test diffs this byte-for-byte across HC_THREADS values.
    println!("serve_load --verify: domain {domain_size}, {publishes} publishes, 32-query batches");
    for (e, batch) in expected.iter().enumerate() {
        let total: f64 = batch.iter().sum();
        println!(
            "  epoch {e:>2}: batch answers sum {total:?}, first {:?}, last {:?}",
            batch[0],
            batch[batch.len() - 1]
        );
    }
    for entry in service.ledger(id).expect("ledger") {
        println!("  ledger {}: {:?}", entry.label, entry.epsilon);
    }
    println!(
        "  remaining budget: {:?}",
        service.remaining_budget(id).expect("budget")
    );
    println!("verify: every concurrent batch matched a published epoch bit-for-bit");
    println!("verify: sharded pool batch matched serial serving bit-for-bit");
}

#[allow(clippy::too_many_arguments)]
fn verify_concurrently(
    service: &HistogramService,
    id: TenantId,
    domain_size: usize,
    queries: &[RangeQuery],
    expected: &[Vec<f64>],
    publishes: usize,
    readers: usize,
    args: &Args,
) {
    std::thread::scope(|scope| {
        for _ in 0..readers {
            scope.spawn(move || {
                let mut out = Vec::with_capacity(queries.len());
                loop {
                    let epoch = service
                        .answer_into(id, queries, &mut out)
                        .expect("concurrent answers");
                    assert!(epoch < expected.len(), "epoch beyond publish count");
                    assert_eq!(
                        out, expected[epoch],
                        "torn or non-deterministic batch at epoch {epoch}"
                    );
                    if epoch == publishes {
                        return;
                    }
                }
            });
        }
        for e in 0..publishes {
            service
                .ingest(id, &epoch_deltas(domain_size, e, args.seed))
                .expect("ingest");
            service.publish(id).expect("publish");
        }
    });
}

fn main() {
    let args = parse_args();
    if args.verify {
        run_verify(&args);
    } else {
        run_timing(&args);
    }
}
