//! Regenerates the `ablation_quadtree` artifact. Run with `--quick` for a smoke pass.

fn main() {
    let cfg = hc_bench::RunConfig::from_env();
    print!("{}", hc_bench::experiments::ablation_quadtree::run(cfg));
}
