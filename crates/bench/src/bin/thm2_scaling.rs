//! Regenerates the `thm2_scaling` artifact. Run with `--quick` for a smoke pass.

fn main() {
    let cfg = hc_bench::RunConfig::from_env();
    print!("{}", hc_bench::experiments::thm2_scaling::run(cfg));
}
