//! Regenerates the `fig2` artifact. Run with `--quick` for a smoke pass.

fn main() {
    let cfg = hc_bench::RunConfig::from_env();
    print!("{}", hc_bench::experiments::fig2::run(cfg));
}
