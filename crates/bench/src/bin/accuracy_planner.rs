fn main() {
    let cfg = hc_bench::RunConfig::from_env();
    print!("{}", hc_bench::experiments::accuracy_planner::run(cfg));
}
