//! Aligned-table printing for experiment reports.

/// A simple column-aligned text table with a title, built row by row and
/// rendered to any `fmt::Write` (stdout in the binaries, strings in tests).
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str("== ");
        out.push_str(&self.title);
        out.push_str(" ==\n");
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                // Right-align numeric-looking cells, left-align labels.
                if cell.parse::<f64>().is_ok() || cell.contains('e') && cell.len() < *w + 1 {
                    line.push_str(&format!("{cell:>w$}"));
                } else {
                    line.push_str(&format!("{cell:<w$}"));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&render_row(&self.header, &widths));
        let rule_len = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
        }
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Renders as CSV (for downstream plotting).
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats an error value in compact scientific notation.
pub fn sci(v: f64) -> String {
    format!("{v:.3e}")
}

/// Formats a ratio/factor with two decimals.
pub fn ratio(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1.0".into()]);
        t.row(vec!["long-name".into(), "2.5".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.lines().count() >= 5);
        // All rendered rows are equally wide (columns are padded).
        let widths: Vec<usize> = s
            .lines()
            .skip(1) // title
            .filter(|l| !l.is_empty())
            .map(|l| l.len())
            .collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{widths:?}");
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1,5".into(), "q\"q".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"1,5\""));
        assert!(csv.contains("\"q\"\"q\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_row_width_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn sci_and_ratio_formatting() {
        assert_eq!(sci(12345.678), "1.235e4");
        assert_eq!(ratio(9.333), "9.33");
    }
}
