//! Paper-scale and quick-scale dataset construction for the experiments.

use hc_data::generators::{
    NetTrace, NetTraceConfig, SearchLogs, SearchLogsConfig, SocialNetwork, SocialNetworkConfig,
};
use hc_data::Histogram;
use hc_noise::SeedStream;

/// Which evaluation dataset an experiment uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetId {
    /// Gateway trace: per-external-host connection counts (≈65K hosts).
    NetTrace,
    /// Friendship-graph degree histogram (≈11K vertices).
    SocialNetwork,
    /// Top-keyword rank-frequency table (20K keywords) — Fig. 5's Search
    /// Logs input.
    SearchLogsKeywords,
    /// The "Obama" time series (2¹⁵ bins) — Fig. 6's Search Logs input.
    SearchLogsSeries,
}

impl DatasetId {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetId::NetTrace => "NetTrace",
            DatasetId::SocialNetwork => "Social Network",
            DatasetId::SearchLogsKeywords => "Search Logs",
            DatasetId::SearchLogsSeries => "Search Logs",
        }
    }
}

/// Builds a dataset's histogram. `quick` shrinks every dimension so smoke
/// tests finish in milliseconds while preserving each dataset's shape
/// (sparsity, tail, duplication structure).
///
/// Dataset synthesis is deterministic in `seeds` and *independent of the
/// mechanism trials*: experiments derive data from `seeds.substream(0)` and
/// noise from `seeds.substream(1)` onward.
pub fn build(id: DatasetId, quick: bool, seeds: SeedStream) -> Histogram {
    let mut rng = seeds.substream(0).rng(match id {
        DatasetId::NetTrace => 1,
        DatasetId::SocialNetwork => 2,
        DatasetId::SearchLogsKeywords => 3,
        DatasetId::SearchLogsSeries => 4,
    });
    match id {
        DatasetId::NetTrace => {
            let config = if quick {
                NetTraceConfig::small()
            } else {
                NetTraceConfig::default()
            };
            NetTrace::generate(config, &mut rng).histogram()
        }
        DatasetId::SocialNetwork => {
            let config = if quick {
                SocialNetworkConfig::small()
            } else {
                SocialNetworkConfig::default()
            };
            SocialNetwork::generate(config, &mut rng).degree_histogram()
        }
        DatasetId::SearchLogsKeywords => {
            let (top_k, volume) = if quick {
                (512, 20_000)
            } else {
                (20_000, 2_000_000)
            };
            SearchLogs::keyword_frequencies(&mut rng, top_k, volume)
        }
        DatasetId::SearchLogsSeries => {
            let config = if quick {
                SearchLogsConfig::small()
            } else {
                SearchLogsConfig::default()
            };
            SearchLogs::generate(config, &mut rng).histogram().clone()
        }
    }
}

/// The ε grid of Sec. 5.
pub fn epsilon_grid() -> [f64; 3] {
    [1.0, 0.1, 0.01]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_datasets_have_expected_sizes() {
        let seeds = SeedStream::new(7);
        assert_eq!(build(DatasetId::NetTrace, true, seeds).len(), 512);
        assert_eq!(build(DatasetId::SocialNetwork, true, seeds).len(), 400);
        assert_eq!(build(DatasetId::SearchLogsKeywords, true, seeds).len(), 512);
        assert_eq!(build(DatasetId::SearchLogsSeries, true, seeds).len(), 512);
    }

    #[test]
    fn datasets_are_deterministic_in_the_seed() {
        let seeds = SeedStream::new(8);
        let a = build(DatasetId::NetTrace, true, seeds);
        let b = build(DatasetId::NetTrace, true, seeds);
        assert_eq!(a, b);
        let c = build(DatasetId::NetTrace, true, SeedStream::new(9));
        assert_ne!(a, c);
    }

    #[test]
    fn names_match_paper_labels() {
        assert_eq!(DatasetId::NetTrace.name(), "NetTrace");
        assert_eq!(DatasetId::SearchLogsSeries.name(), "Search Logs");
    }
}
