//! Criterion bench: range-query answering — H̃ subtree decomposition vs
//! consistent-tree prefix sums vs the flat release.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hc_core::{FlatUniversal, HierarchicalUniversal, Rounding};
use hc_data::{Domain, Histogram, RangeWorkload};
use hc_mech::Epsilon;
use hc_noise::rng_from_seed;
use std::hint::black_box;

fn bench_range_queries(c: &mut Criterion) {
    let n = 1 << 16;
    let histogram = Histogram::from_counts(
        Domain::new("x", n).expect("non-empty"),
        (0..n).map(|i| (i % 5) as u64).collect(),
    );
    let eps = Epsilon::new(0.1).expect("valid ε");
    let mut rng = rng_from_seed(11);
    let flat = FlatUniversal::new(eps).release(&histogram, &mut rng);
    let tree = HierarchicalUniversal::binary(eps).release(&histogram, &mut rng);
    let consistent = tree.infer();
    let rounded = tree.infer_rounded();

    let workload = RangeWorkload::new(n, 4096);
    let queries: Vec<_> = workload.sample_many(&mut rng, 1000);

    let mut group = c.benchmark_group("range_query_4096_of_65536");
    group.throughput(Throughput::Elements(queries.len() as u64));

    group.bench_function("flat_prefix_sum", |b| {
        b.iter(|| {
            queries
                .iter()
                .map(|&q| flat.range_query(black_box(q), Rounding::NonNegativeInteger))
                .sum::<f64>()
        });
    });

    group.bench_function("subtree_decomposition", |b| {
        b.iter(|| {
            queries
                .iter()
                .map(|&q| tree.range_query_subtree(black_box(q), Rounding::None))
                .sum::<f64>()
        });
    });

    group.bench_function("consistent_prefix_sum", |b| {
        b.iter(|| {
            queries
                .iter()
                .map(|&q| consistent.range_query(black_box(q)))
                .sum::<f64>()
        });
    });

    group.bench_function("rounded_decomposition", |b| {
        b.iter(|| {
            queries
                .iter()
                .map(|&q| rounded.range_query(black_box(q)))
                .sum::<f64>()
        });
    });

    group.finish();
}

criterion_group!(benches, bench_range_queries);
criterion_main!(benches);
