//! Criterion bench: full release → inference pipelines at paper scale —
//! the cost of one Fig. 5 / Fig. 6 trial.

use criterion::{criterion_group, criterion_main, Criterion};
use hc_core::{HierarchicalUniversal, UnattributedHistogram};
use hc_data::{Domain, Histogram};
use hc_mech::Epsilon;
use hc_noise::{rng_from_seed, Zipf};
use std::hint::black_box;

fn paper_scale_histogram(n: usize) -> Histogram {
    let mut rng = rng_from_seed(5);
    let zipf = Zipf::new(n / 4, 1.3).expect("valid parameters");
    let mut counts = vec![0u64; n];
    let head = zipf.sample_histogram(&mut rng, 300_000);
    counts[..head.len()].copy_from_slice(&head);
    Histogram::from_counts(Domain::new("x", n).expect("non-empty"), counts)
}

fn bench_pipelines(c: &mut Criterion) {
    let histogram = paper_scale_histogram(1 << 16);
    let eps = Epsilon::new(0.1).expect("valid ε");

    let mut group = c.benchmark_group("end_to_end_65536");
    group.sample_size(20);

    group.bench_function("unattributed_release_and_infer", |b| {
        let task = UnattributedHistogram::new(eps);
        let mut rng = rng_from_seed(6);
        b.iter(|| {
            let release = task.release(black_box(&histogram), &mut rng);
            black_box(release.inferred())
        });
    });

    group.bench_function("universal_release_and_infer", |b| {
        let pipeline = HierarchicalUniversal::binary(eps);
        let mut rng = rng_from_seed(7);
        b.iter(|| {
            let release = pipeline.release(black_box(&histogram), &mut rng);
            black_box(release.infer_rounded())
        });
    });

    group.finish();
}

criterion_group!(benches, bench_pipelines);
criterion_main!(benches);
