//! Criterion bench: isotonic regression — linear-time PAVA vs the O(n²)
//! Theorem-1 min-max reference, across sequence lengths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hc_core::{isotonic_regression, minmax_reference};
use hc_noise::{rng_from_seed, Laplace};
use std::hint::black_box;

fn noisy_sorted_sequence(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = rng_from_seed(seed);
    let noise = Laplace::centered(10.0).expect("positive scale");
    // A power-law-ish sorted truth plus noise: the Fig. 5 workload shape.
    (0..n)
        .map(|i| ((i * i) as f64 / n as f64) + noise.sample(&mut rng))
        .collect()
}

fn bench_pava(c: &mut Criterion) {
    let mut group = c.benchmark_group("isotonic_pava");
    for &n in &[1usize << 10, 1 << 13, 1 << 16] {
        let data = noisy_sorted_sequence(n, 42);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, data| {
            b.iter(|| isotonic_regression(black_box(data)));
        });
    }
    group.finish();
}

fn bench_minmax_reference(c: &mut Criterion) {
    let mut group = c.benchmark_group("isotonic_minmax_reference");
    for &n in &[256usize, 1024, 2048] {
        let data = noisy_sorted_sequence(n, 43);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, data| {
            b.iter(|| minmax_reference(black_box(data)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pava, bench_minmax_reference);
criterion_main!(benches);
