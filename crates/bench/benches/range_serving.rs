//! Criterion bench: the read path — `ConsistentSnapshot` O(1) prefix
//! serving vs the `SubtreeServer` decomposition fold, across range lengths.
//!
//! The acceptance shape: snapshot throughput (queries/s, reported via
//! `Throughput::Elements`) must be flat in the range length — every answer
//! is two prefix lookups — while the decomposition fold's cost tracks the
//! tree height. The parallel group scales a large batch across cores
//! (`HC_THREADS`-pinned in CI). Records land in `$BENCH_JSON` alongside the
//! inference benches, so `bench_diff` gates serving throughput too.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hc_core::{BatchInference, ConsistentSnapshot, HierarchicalUniversal, Rounding, SubtreeServer};
use hc_data::{Domain, Histogram, Interval, RangeWorkload};
use hc_mech::{Epsilon, TreeShape};
use hc_noise::rng_from_seed;
use std::hint::black_box;

/// Serving domain: 2^16 bins (height-17 binary tree) — large enough that a
/// per-query subtree walk is visibly O(log n) while staying quick-mode
/// friendly.
const DOMAIN: usize = 1 << 16;

/// Queries per batch; per-query time is the reported number via
/// `Throughput::Elements`.
const BATCH: usize = 1 << 10;

/// Range lengths swept: the flat-in-length claim needs a short, a medium,
/// and a near-domain length.
const LENGTHS: [usize; 3] = [1 << 4, 1 << 10, 1 << 15];

fn served_release() -> (TreeShape, Vec<f64>, Vec<f64>) {
    let counts: Vec<u64> = (0..DOMAIN)
        .map(|i| if i % 5 == 0 { (i % 17) as u64 } else { 0 })
        .collect();
    let histogram = Histogram::from_counts(Domain::new("x", DOMAIN).expect("non-empty"), counts);
    let shape = TreeShape::for_domain(DOMAIN, 2);
    let pipeline = HierarchicalUniversal::binary(Epsilon::new(0.1).expect("valid ε"));
    let release = pipeline.release(&histogram, &mut rng_from_seed(17));
    let mut engine = BatchInference::for_shape(&shape);
    let mut hbar = Vec::new();
    release.infer_into(&mut engine, &mut hbar);
    (shape, release.noisy_values().to_vec(), hbar)
}

fn query_batch(len: usize, count: usize) -> Vec<Interval> {
    let workload = RangeWorkload::new(DOMAIN, len);
    workload.sample_many(&mut rng_from_seed(23), count)
}

/// O(1) prefix serving: per-query cost must be flat across range lengths.
fn bench_snapshot(c: &mut Criterion) {
    let (shape, _, hbar) = served_release();
    let snapshot = ConsistentSnapshot::from_tree_values(&shape, &hbar, DOMAIN);
    let mut group = c.benchmark_group("range_serving_snapshot");
    for &len in &LENGTHS {
        let queries = query_batch(len, BATCH);
        let mut out = Vec::new();
        snapshot.answer_into(&queries, &mut out); // warm the answer buffer
        group.throughput(Throughput::Elements(BATCH as u64));
        group.bench_with_input(BenchmarkId::new("len", len), &queries, |b, queries| {
            b.iter(|| {
                snapshot.answer_into(black_box(queries), &mut out);
                black_box(out[0])
            });
        });
    }
    group.finish();
}

/// The decomposition fold (H̃-style serving): O(log n) per query, the
/// comparison point that shows what the snapshot buys.
fn bench_subtree_fold(c: &mut Criterion) {
    let (shape, noisy, _) = served_release();
    let server = SubtreeServer::new(&shape);
    let mut group = c.benchmark_group("range_serving_subtree");
    for &len in &LENGTHS {
        let queries = query_batch(len, BATCH);
        let mut out = Vec::new();
        group.throughput(Throughput::Elements(BATCH as u64));
        group.bench_with_input(BenchmarkId::new("len", len), &queries, |b, queries| {
            b.iter(|| {
                server.answer_into(&noisy, Rounding::None, black_box(queries), &mut out);
                black_box(out[0])
            });
        });
    }
    group.finish();
}

/// Snapshot serving scaled across cores for a large batch (the query-flood
/// shape); bit-identical to serial, throughput is the point.
fn bench_snapshot_parallel(c: &mut Criterion) {
    let (shape, _, hbar) = served_release();
    let snapshot = ConsistentSnapshot::from_tree_values(&shape, &hbar, DOMAIN);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let big_batch = 1usize << 14;
    let queries = query_batch(1 << 10, big_batch);
    let mut out = Vec::new();
    let mut group = c.benchmark_group("range_serving_parallel");
    group.throughput(Throughput::Elements(big_batch as u64));
    group.bench_with_input(
        BenchmarkId::new("queries", big_batch),
        &queries,
        |b, queries| {
            b.iter(|| {
                snapshot.answer_parallel(black_box(queries), &mut out, threads);
                black_box(out[0])
            });
        },
    );
    group.finish();
}

/// One snapshot rebuild from a full tree vector — the per-trial cost the
/// experiment scoring loops pay before serving thousands of queries.
fn bench_snapshot_rebuild(c: &mut Criterion) {
    let (shape, _, hbar) = served_release();
    let mut snapshot = ConsistentSnapshot::from_tree_values(&shape, &hbar, DOMAIN);
    let mut group = c.benchmark_group("range_serving_rebuild");
    group.throughput(Throughput::Elements(shape.leaves() as u64));
    group.bench_with_input(
        BenchmarkId::new("leaves", shape.leaves()),
        &hbar,
        |b, hbar| {
            b.iter(|| {
                snapshot.rebuild_from_tree_values(&shape, black_box(hbar), DOMAIN);
                black_box(snapshot.total())
            });
        },
    );
    group.finish();
}

criterion_group!(
    benches,
    bench_snapshot,
    bench_subtree_fold,
    bench_snapshot_parallel,
    bench_snapshot_rebuild
);
criterion_main!(benches);
