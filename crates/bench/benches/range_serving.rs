//! Criterion bench: the read path — `ConsistentSnapshot` O(1) prefix
//! serving vs the `SubtreeServer` decomposition fold, across range lengths.
//!
//! The acceptance shape: snapshot throughput (queries/s, reported via
//! `Throughput::Elements`) must be flat in the range length — every answer
//! is two prefix lookups — while the decomposition fold's cost tracks the
//! tree height. The parallel group scales a large batch across cores
//! (`HC_THREADS`-pinned in CI). Records land in `$BENCH_JSON` alongside the
//! inference benches, so `bench_diff` gates serving throughput too.
//!
//! The `*_scale` groups and `range_serving_sharded` extend the grid to 2^20
//! and 2^26 leaves (synthetic values — the serving arithmetic is identical,
//! only cache residency changes), where the headline comparison is the
//! persistent `ShardPool` against the per-call scoped-thread split at the
//! same thread count: the pool amortizes the spawn/join cycle away.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hc_core::{
    AccuracyTarget, BatchInference, ConsistentSnapshot, HierarchicalUniversal, Rounding, ShardPool,
    StrategyPlanner, SubtreeServer,
};
use hc_data::{Domain, Histogram, Interval, RangeWorkload};
use hc_mech::{Epsilon, TreeShape};
use hc_noise::rng_from_seed;
use std::hint::black_box;

/// Serving domain: 2^16 bins (height-17 binary tree) — large enough that a
/// per-query subtree walk is visibly O(log n) while staying quick-mode
/// friendly.
const DOMAIN: usize = 1 << 16;

/// Queries per batch; per-query time is the reported number via
/// `Throughput::Elements`.
const BATCH: usize = 1 << 10;

/// Range lengths swept: the flat-in-length claim needs a short, a medium,
/// and a near-domain length.
const LENGTHS: [usize; 3] = [1 << 4, 1 << 10, 1 << 15];

fn served_release() -> (TreeShape, Vec<f64>, Vec<f64>) {
    let counts: Vec<u64> = (0..DOMAIN)
        .map(|i| if i % 5 == 0 { (i % 17) as u64 } else { 0 })
        .collect();
    let histogram = Histogram::from_counts(Domain::new("x", DOMAIN).expect("non-empty"), counts);
    let shape = TreeShape::for_domain(DOMAIN, 2);
    let pipeline = HierarchicalUniversal::binary(Epsilon::new(0.1).expect("valid ε"));
    let release = pipeline.release(&histogram, &mut rng_from_seed(17));
    let mut engine = BatchInference::for_shape(&shape);
    let mut hbar = Vec::new();
    release.infer_into(&mut engine, &mut hbar);
    (shape, release.noisy_values().to_vec(), hbar)
}

fn query_batch_over(domain: usize, len: usize, count: usize) -> Vec<Interval> {
    let workload = RangeWorkload::new(domain, len);
    workload.sample_many(&mut rng_from_seed(23), count)
}

fn query_batch(len: usize, count: usize) -> Vec<Interval> {
    query_batch_over(DOMAIN, len, count)
}

/// Deterministic leaf values for the large-domain grid: a cheap integer
/// hash keeps 2^26-leaf setup at memory-fill cost instead of a multi-second
/// release+inference (the grid measures *serving*, not inference — the
/// prefix arithmetic is the same whatever the leaves hold).
fn synthetic_leaves(domain: usize) -> Vec<f64> {
    (0..domain)
        .map(|i| (i.wrapping_mul(2654435761) % 97) as f64 * 0.25)
        .collect()
}

/// Matching deterministic per-node values for the decomposition fold.
fn synthetic_tree_values(nodes: usize) -> Vec<f64> {
    (0..nodes)
        .map(|i| (i.wrapping_mul(2654435761) % 89) as f64 * 0.5 - 11.0)
        .collect()
}

/// O(1) prefix serving: per-query cost must be flat across range lengths.
fn bench_snapshot(c: &mut Criterion) {
    let (shape, _, hbar) = served_release();
    let snapshot = ConsistentSnapshot::from_tree_values(&shape, &hbar, DOMAIN);
    let mut group = c.benchmark_group("range_serving_snapshot");
    for &len in &LENGTHS {
        let queries = query_batch(len, BATCH);
        let mut out = Vec::new();
        snapshot.answer_into(&queries, &mut out); // warm the answer buffer
        group.throughput(Throughput::Elements(BATCH as u64));
        group.bench_with_input(BenchmarkId::new("len", len), &queries, |b, queries| {
            b.iter(|| {
                snapshot.answer_into(black_box(queries), &mut out);
                black_box(out[0])
            });
        });
    }
    group.finish();
}

/// The decomposition fold (H̃-style serving): O(log n) per query, the
/// comparison point that shows what the snapshot buys. The `len_blocked`
/// rows are the opt-in lane-blocked fold over the same queries (bit-identical
/// here — the serving tree is binary — so the delta is pure kernel cost).
fn bench_subtree_fold(c: &mut Criterion) {
    let (shape, noisy, _) = served_release();
    let server = SubtreeServer::new(&shape);
    let mut group = c.benchmark_group("range_serving_subtree");
    for &len in &LENGTHS {
        let queries = query_batch(len, BATCH);
        let mut out = Vec::new();
        group.throughput(Throughput::Elements(BATCH as u64));
        group.bench_with_input(BenchmarkId::new("len", len), &queries, |b, queries| {
            b.iter(|| {
                server.answer_into(&noisy, Rounding::None, black_box(queries), &mut out);
                black_box(out[0])
            });
        });
        group.bench_with_input(
            BenchmarkId::new("len_blocked", len),
            &queries,
            |b, queries| {
                b.iter(|| {
                    server.answer_blocked_into(
                        &noisy,
                        Rounding::None,
                        black_box(queries),
                        &mut out,
                    );
                    black_box(out[0])
                });
            },
        );
    }
    group.finish();
}

/// Snapshot serving scaled across cores for a large batch (the query-flood
/// shape); bit-identical to serial, throughput is the point.
fn bench_snapshot_parallel(c: &mut Criterion) {
    let (shape, _, hbar) = served_release();
    let snapshot = ConsistentSnapshot::from_tree_values(&shape, &hbar, DOMAIN);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let big_batch = 1usize << 14;
    let queries = query_batch(1 << 10, big_batch);
    let mut out = Vec::new();
    let mut group = c.benchmark_group("range_serving_parallel");
    group.throughput(Throughput::Elements(big_batch as u64));
    group.bench_with_input(
        BenchmarkId::new("queries", big_batch),
        &queries,
        |b, queries| {
            b.iter(|| {
                snapshot.answer_parallel(black_box(queries), &mut out, threads);
                black_box(out[0])
            });
        },
    );
    group.finish();
}

/// The large-domain serving grid: 2^20 and 2^26 leaves, where the prefix
/// array (8 MB / 512 MB) no longer fits in cache and each answer is two
/// DRAM-resident loads. Per-query cost must stay flat in range length —
/// that is the whole point of prefix serving — while the absolute ns/query
/// tracks memory latency, not arithmetic.
fn bench_snapshot_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("range_serving_snapshot_scale");
    for &lg in &[20usize, 26] {
        let domain = 1usize << lg;
        let snapshot = {
            let leaves = synthetic_leaves(domain);
            ConsistentSnapshot::from_leaves(&leaves, domain)
        };
        for &len in &[1usize << 4, 1 << 10] {
            let queries = query_batch_over(domain, len, BATCH);
            let mut out = Vec::new();
            snapshot.answer_into(&queries, &mut out);
            group.throughput(Throughput::Elements(BATCH as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("d{lg}/len"), len),
                &queries,
                |b, queries| {
                    b.iter(|| {
                        snapshot.answer_into(black_box(queries), &mut out);
                        black_box(out[0])
                    });
                },
            );
        }
    }
    group.finish();
}

/// The iterative two-fringe fold at scale: O(log n) per query over a
/// DRAM-resident node vector (1 GB at 2^26 leaves) — the regime where the
/// fold's pointer-free arithmetic spans matter most.
fn bench_subtree_fold_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("range_serving_subtree_scale");
    for &lg in &[20usize, 26] {
        let shape = TreeShape::new(2, lg + 1);
        let domain = shape.leaves();
        let values = synthetic_tree_values(shape.nodes());
        let server = SubtreeServer::new(&shape);
        let queries = query_batch_over(domain, 1 << 10, BATCH);
        let mut out = Vec::new();
        server.answer_into(&values, Rounding::None, &queries, &mut out);
        group.throughput(Throughput::Elements(BATCH as u64));
        group.bench_with_input(
            BenchmarkId::new(format!("d{lg}/len"), 1 << 10),
            &queries,
            |b, queries| {
                b.iter(|| {
                    server.answer_into(&values, Rounding::None, black_box(queries), &mut out);
                    black_box(out[0])
                });
            },
        );
    }
    group.finish();
}

/// Batch sizes for the threaded-serving comparison: 2^12 is
/// dispatch-bound (the per-call spawn or hand-off cost is a visible
/// fraction of the batch), 2^14 is bandwidth-bound (the prefix loads
/// dominate and any dispatch scheme converges).
const THREADED_BATCHES: [usize; 2] = [1 << 12, 1 << 14];

/// The per-call scoped-thread split at scale — the baseline the persistent
/// pool is measured against. Every iteration pays the spawn/join cycle.
fn bench_snapshot_parallel_scale(c: &mut Criterion) {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut group = c.benchmark_group("range_serving_parallel_scale");
    for &lg in &[20usize, 26] {
        let domain = 1usize << lg;
        let snapshot = {
            let leaves = synthetic_leaves(domain);
            ConsistentSnapshot::from_leaves(&leaves, domain)
        };
        for &batch in &THREADED_BATCHES {
            let queries = query_batch_over(domain, 1 << 10, batch);
            let mut out = Vec::new();
            // Floor 0: the spawn-per-call split is the measured subject,
            // so the serial fallback must not absorb the smaller batch.
            snapshot.answer_parallel_with_floor(&queries, &mut out, threads, 0);
            group.throughput(Throughput::Elements(batch as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("d{lg}/queries"), batch),
                &queries,
                |b, queries| {
                    b.iter(|| {
                        snapshot.answer_parallel_with_floor(
                            black_box(queries),
                            &mut out,
                            threads,
                            0,
                        );
                        black_box(out[0])
                    });
                },
            );
        }
    }
    group.finish();
}

/// The persistent `ShardPool` over the same batches: no per-call spawn,
/// per-worker snapshot clones, recycled hand-off buffers. Compare each
/// `d*/queries` point against `range_serving_parallel_scale` — the
/// difference is the spawn/join cycle the pool amortizes away, most
/// visible on the dispatch-bound 2^12 batch; answers are bit-identical
/// either way.
fn bench_snapshot_sharded(c: &mut Criterion) {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut group = c.benchmark_group("range_serving_sharded");
    for &lg in &[16usize, 20, 26] {
        let domain = 1usize << lg;
        let snapshot = {
            let leaves = synthetic_leaves(domain);
            ConsistentSnapshot::from_leaves(&leaves, domain)
        };
        let mut pool = ShardPool::with_floor(&snapshot, threads, 0);
        for &batch in &THREADED_BATCHES {
            let queries = query_batch_over(domain, 1 << 10, batch);
            let mut out = Vec::new();
            pool.answer_into(&queries, &mut out);
            group.throughput(Throughput::Elements(batch as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("d{lg}/queries"), batch),
                &queries,
                |b, queries| {
                    b.iter(|| {
                        pool.answer_into(black_box(queries), &mut out);
                        black_box(out[0])
                    });
                },
            );
        }
    }
    group.finish();
}

/// Rebuild cost at scale: the write-side story of the 2^26 grid — one
/// pass of prefix accumulation over a DRAM-resident leaf vector.
fn bench_snapshot_rebuild_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("range_serving_rebuild_scale");
    for &lg in &[20usize, 26] {
        let domain = 1usize << lg;
        let leaves = synthetic_leaves(domain);
        let mut snapshot = ConsistentSnapshot::from_leaves(&leaves, domain);
        group.throughput(Throughput::Elements(domain as u64));
        group.bench_with_input(
            BenchmarkId::new(format!("d{lg}/leaves"), domain),
            &leaves,
            |b, leaves| {
                b.iter(|| {
                    snapshot.rebuild_from_leaves(black_box(leaves), domain);
                    black_box(snapshot.total())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new(format!("d{lg}/leaves_blocked"), domain),
            &leaves,
            |b, leaves| {
                b.iter(|| {
                    snapshot.rebuild_from_leaves_blocked(black_box(leaves), domain);
                    black_box(snapshot.total())
                });
            },
        );
    }
    group.finish();
}

/// One snapshot rebuild from a full tree vector — the per-trial cost the
/// experiment scoring loops pay before serving thousands of queries.
fn bench_snapshot_rebuild(c: &mut Criterion) {
    let (shape, _, hbar) = served_release();
    let mut snapshot = ConsistentSnapshot::from_tree_values(&shape, &hbar, DOMAIN);
    let mut group = c.benchmark_group("range_serving_rebuild");
    group.throughput(Throughput::Elements(shape.leaves() as u64));
    group.bench_with_input(
        BenchmarkId::new("leaves", shape.leaves()),
        &hbar,
        |b, hbar| {
            b.iter(|| {
                snapshot.rebuild_from_tree_values(&shape, black_box(hbar), DOMAIN);
                black_box(snapshot.total())
            });
        },
    );
    // The opt-in blocked rebuild (Hillis–Steele in-block scan + carry):
    // same leaf extraction, reassociated accumulation, own golden pins.
    group.bench_with_input(
        BenchmarkId::new("rebuild_blocked", shape.leaves()),
        &hbar,
        |b, hbar| {
            b.iter(|| {
                snapshot.rebuild_from_tree_values_blocked(&shape, black_box(hbar), DOMAIN);
                black_box(snapshot.total())
            });
        },
    );
    group.finish();
}

/// The strategy planner's two entry modes: forward workload pricing and the
/// accuracy-target inversion (monotone bisection over the sampled
/// decomposition profiles). This is the once-per-registration cost a tenant
/// pays — bounded here so the accuracy front door stays cheap enough to sit
/// on the service's register path.
fn bench_planner(c: &mut Criterion) {
    let planner = StrategyPlanner::new(DOMAIN, Epsilon::new(0.1).expect("valid ε"));
    let workload = [
        RangeWorkload::new(DOMAIN, 1 << 4),
        RangeWorkload::new(DOMAIN, 1 << 12),
    ];
    let target = AccuracyTarget::new(0.05, 50.0).with_workload(workload.to_vec());
    let mut group = c.benchmark_group("range_serving_planner");
    group.bench_function("forward_plan", |b| {
        b.iter(|| black_box(planner.plan(black_box(&workload))))
    });
    group.bench_function("accuracy_ranked", |b| {
        b.iter(|| black_box(planner.plan_ranked(black_box(&target))))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_snapshot,
    bench_subtree_fold,
    bench_snapshot_parallel,
    bench_snapshot_rebuild,
    bench_snapshot_scale,
    bench_subtree_fold_scale,
    bench_snapshot_parallel_scale,
    bench_snapshot_sharded,
    bench_snapshot_rebuild_scale,
    bench_planner
);
criterion_main!(benches);
