//! Criterion bench: hierarchical inference — the Theorem-3 closed form vs
//! generic solvers (dense OLS, sparse CG) on the same problem.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hc_core::hierarchical_inference;
use hc_linalg::{conjugate_gradient, CgOptions, CsrMatrix, Matrix};
use hc_mech::TreeShape;
use hc_noise::{rng_from_seed, Laplace};
use std::hint::black_box;

fn noisy_tree(shape: &TreeShape, seed: u64) -> Vec<f64> {
    let mut rng = rng_from_seed(seed);
    let noise = Laplace::centered(shape.height() as f64).expect("positive scale");
    (0..shape.nodes())
        .map(|_| 5.0 + noise.sample(&mut rng))
        .collect()
}

fn aggregation_triplets(shape: &TreeShape) -> Vec<(usize, usize, f64)> {
    let mut triplets = Vec::new();
    for v in 0..shape.nodes() {
        let span = shape.leaf_span(v);
        for leaf in span.lo()..=span.hi() {
            triplets.push((v, leaf, 1.0));
        }
    }
    triplets
}

fn bench_closed_form(c: &mut Criterion) {
    let mut group = c.benchmark_group("hier_infer_closed_form");
    for &height in &[11usize, 14, 17] {
        let shape = TreeShape::new(2, height);
        let noisy = noisy_tree(&shape, 7);
        group.throughput(Throughput::Elements(shape.nodes() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(shape.leaves()),
            &noisy,
            |b, noisy| {
                b.iter(|| hierarchical_inference(black_box(&shape), black_box(noisy)));
            },
        );
    }
    group.finish();
}

fn bench_sparse_cg(c: &mut Criterion) {
    let mut group = c.benchmark_group("hier_infer_sparse_cg");
    group.sample_size(10);
    for &height in &[7usize, 9] {
        let shape = TreeShape::new(2, height);
        let noisy = noisy_tree(&shape, 8);
        let a =
            CsrMatrix::from_triplets(shape.nodes(), shape.leaves(), aggregation_triplets(&shape));
        let rhs = a.transpose_matvec(&noisy).expect("dimensions match");
        group.bench_with_input(
            BenchmarkId::from_parameter(shape.leaves()),
            &rhs,
            |b, rhs| {
                b.iter(|| {
                    conjugate_gradient(a.gram_operator(), black_box(rhs), CgOptions::default())
                        .expect("SPD system converges")
                });
            },
        );
    }
    group.finish();
}

fn bench_dense_ols(c: &mut Criterion) {
    let mut group = c.benchmark_group("hier_infer_dense_ols");
    group.sample_size(10);
    for &height in &[5usize, 7] {
        let shape = TreeShape::new(2, height);
        let noisy = noisy_tree(&shape, 9);
        let a = Matrix::from_fn(shape.nodes(), shape.leaves(), |v, leaf| {
            if shape.leaf_span(v).contains(leaf) {
                1.0
            } else {
                0.0
            }
        });
        group.bench_with_input(
            BenchmarkId::from_parameter(shape.leaves()),
            &noisy,
            |b, noisy| {
                b.iter(|| hc_linalg::lstsq(black_box(&a), black_box(noisy)).expect("full rank"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_closed_form, bench_sparse_cg, bench_dense_ols);
criterion_main!(benches);
