//! Criterion bench: hierarchical inference — the Theorem-3 reference oracle
//! vs the level-indexed engine (single trial, batched trials, parallel
//! subtree passes), and both vs generic solvers (dense OLS, sparse CG).
//!
//! The headline comparison is the ISSUE-2 acceptance criterion: on a k = 2
//! tree with 2^20 leaves, batched engine trials must run ≥ 2× faster per
//! trial than `hierarchical_inference`. Pass `--quick` for a smoke run.
//!
//! The engine groups additionally carry a 2^26-leaf grid point
//! ([`SCALE_HEIGHT`]) where the node vector is DRAM-resident and rebuild
//! cost / memory bandwidth, not arithmetic, set the pace.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hc_core::{
    enforce_nonnegativity, hierarchical_inference, BatchInference, HierarchicalUniversal,
    LevelTree, Rounding,
};
use hc_data::{Domain, Histogram};
use hc_linalg::{conjugate_gradient, CgOptions, CsrMatrix, Matrix};
use hc_mech::{Epsilon, TreeShape};
use hc_noise::{rng_from_seed, Laplace, NoiseBackend, SeedStream};
use std::hint::black_box;

/// Heights compared head-to-head; 21 is the 2^20-leaf acceptance shape.
const HEADLINE_HEIGHTS: [usize; 3] = [11, 17, 21];

/// The production-scale grid point: a height-27 binary tree (2^26 leaves,
/// 2^27−1 nodes ≈ 1 GB of f64), where memory bandwidth — not arithmetic —
/// sets the pace. Only the engine paths run here: the reference oracle's
/// per-node allocation pattern would take minutes per iteration at this
/// size without saying anything new (the bit-identity pins already cover
/// it at every smaller height), and the 4-trial batch group would need a
/// 4 GB input batch.
const SCALE_HEIGHT: usize = 27;

/// Trials per iteration in the batched benchmarks (per-trial time is the
/// reported number via `Throughput::Elements`).
const BATCH_TRIALS: usize = 4;

fn noisy_tree(shape: &TreeShape, seed: u64) -> Vec<f64> {
    let mut rng = rng_from_seed(seed);
    let noise = Laplace::centered(shape.height() as f64).expect("positive scale");
    (0..shape.nodes())
        .map(|_| 5.0 + noise.sample(&mut rng))
        .collect()
}

fn aggregation_triplets(shape: &TreeShape) -> Vec<(usize, usize, f64)> {
    let mut triplets = Vec::new();
    for v in 0..shape.nodes() {
        let span = shape.leaf_span(v);
        for leaf in span.lo()..=span.hi() {
            triplets.push((v, leaf, 1.0));
        }
    }
    triplets
}

/// The reference oracle: per-node weights, allocating per call.
fn bench_reference(c: &mut Criterion) {
    let mut group = c.benchmark_group("hier_infer_reference");
    for &height in &HEADLINE_HEIGHTS {
        let shape = TreeShape::new(2, height);
        let noisy = noisy_tree(&shape, 7);
        group.throughput(Throughput::Elements(shape.nodes() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(shape.leaves()),
            &noisy,
            |b, noisy| {
                b.iter(|| hierarchical_inference(black_box(&shape), black_box(noisy)));
            },
        );
    }
    group.finish();
}

/// The engine, one trial per call (fresh output vector, reused tables).
fn bench_engine_single(c: &mut Criterion) {
    let mut group = c.benchmark_group("hier_infer_engine_single");
    for &height in HEADLINE_HEIGHTS.iter().chain(&[SCALE_HEIGHT]) {
        let shape = TreeShape::new(2, height);
        let noisy = noisy_tree(&shape, 7);
        let tree = LevelTree::new(&shape);
        group.throughput(Throughput::Elements(shape.nodes() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(shape.leaves()),
            &noisy,
            |b, noisy| {
                b.iter(|| tree.infer(black_box(noisy)));
            },
        );
    }
    group.finish();
}

/// The engine over a batch of trials with fully reused buffers; throughput
/// counts nodes × trials, so elem/s stays comparable with the single-trial
/// groups while the per-iteration time covers the whole batch.
fn bench_engine_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("hier_infer_engine_batch");
    for &height in &HEADLINE_HEIGHTS {
        let shape = TreeShape::new(2, height);
        let n = shape.nodes();
        let mut batch = Vec::with_capacity(BATCH_TRIALS * n);
        for t in 0..BATCH_TRIALS {
            batch.extend(noisy_tree(&shape, 7 + t as u64));
        }
        let mut engine = BatchInference::for_shape(&shape);
        let mut out = Vec::new();
        group.throughput(Throughput::Elements((n * BATCH_TRIALS) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(shape.leaves()),
            &batch,
            |b, batch| {
                b.iter(|| {
                    engine.infer_batch_into(black_box(batch), &mut out);
                    black_box(out.last().copied())
                });
            },
        );
    }
    group.finish();
}

/// The engine with the root's subtrees split across scoped threads (one
/// huge tree, single trial).
fn bench_engine_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("hier_infer_engine_parallel");
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    for &height in &[17usize, 21, SCALE_HEIGHT] {
        let shape = TreeShape::new(2, height);
        let noisy = noisy_tree(&shape, 7);
        let tree = LevelTree::new(&shape);
        let (mut z, mut out) = (Vec::new(), Vec::new());
        group.throughput(Throughput::Elements(shape.nodes() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(shape.leaves()),
            &noisy,
            |b, noisy| {
                b.iter(|| {
                    tree.infer_parallel_into(black_box(noisy), &mut z, &mut out, threads);
                    black_box(out[0])
                });
            },
        );
    }
    group.finish();
}

/// A sparse-ish histogram over `n` bins for the end-to-end pipeline runs.
fn pipeline_histogram(n: usize) -> Histogram {
    let counts: Vec<u64> = (0..n)
        .map(|i| if i % 7 == 0 { (i % 23) as u64 } else { 0 })
        .collect();
    Histogram::from_counts(Domain::new("x", n).expect("non-empty"), counts)
}

/// The PR-2-era tree evaluation: reverse-BFS per-node `parent()` walk (one
/// integer division per node), zero-padded histogram copy and all —
/// reconstructed here so the baseline trial measures what the old code
/// actually paid, independent of this crate's current implementation.
fn pr2_evaluate(shape: &TreeShape, histogram: &Histogram) -> Vec<f64> {
    let padded;
    let counts: &[u64] = if histogram.len() == shape.leaves() {
        histogram.counts()
    } else {
        padded = histogram.zero_padded(shape.leaves());
        padded.counts()
    };
    let mut values = vec![0.0f64; shape.nodes()];
    let first_leaf = shape.leaf_node(0);
    for (i, &c) in counts.iter().enumerate() {
        values[first_leaf + i] = c as f64;
    }
    for v in (1..shape.nodes()).rev() {
        let parent = shape.parent(v).expect("non-root has parent");
        values[parent] += values[v];
    }
    values
}

/// End-to-end trial through the PR-2-era path, reconstructed component by
/// component: per-node-walk evaluation, an owned noisy vector perturbed one
/// sample at a time, the untiled level sweeps allocating their buffers, the
/// reference per-node `parent()` zeroing walk, then a separate rounding
/// pass. This is the baseline the batched pipeline is measured against.
fn bench_pipeline_pr2_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("hier_pipeline_pr2_path");
    for &height in &[17usize, 21] {
        let shape = TreeShape::new(2, height);
        let n = shape.leaves();
        let histogram = pipeline_histogram(n);
        let noise = Laplace::centered(height as f64 / 0.1).expect("positive scale");
        let mut rng = rng_from_seed(11);
        let tree = LevelTree::new(&shape);
        group.throughput(Throughput::Elements(shape.nodes() as u64));
        group.bench_with_input(BenchmarkId::new("k2", n), &histogram, |b, h| {
            b.iter(|| {
                let mut noisy = pr2_evaluate(&shape, h);
                for v in &mut noisy {
                    *v += noise.sample(&mut rng);
                }
                let inferred = tree.infer_untiled(&noisy);
                let mut values = enforce_nonnegativity(&shape, &inferred);
                for v in &mut values {
                    *v = Rounding::NonNegativeInteger.apply(*v);
                }
                black_box(values[0])
            });
        });
    }
    group.finish();
}

/// End-to-end trial through the allocation-free batched pipeline:
/// `release_and_infer_rounded` over a prepared mechanism and warm engine
/// scratch — evaluate, noise, both Theorem-3 passes, fused zeroing +
/// rounding, zero allocations per trial.
fn bench_pipeline_batched(c: &mut Criterion) {
    let mut group = c.benchmark_group("hier_pipeline_batched");
    for &height in &[17usize, 21, SCALE_HEIGHT] {
        let shape = TreeShape::new(2, height);
        let n = shape.leaves();
        let histogram = pipeline_histogram(n);
        let pipeline = HierarchicalUniversal::binary(Epsilon::new(0.1).expect("valid ε"));
        let prepared = pipeline.prepare(n);
        let mut rng = rng_from_seed(11);
        let mut engine = BatchInference::for_shape(&shape);
        let mut out = Vec::new();
        group.throughput(Throughput::Elements(shape.nodes() as u64));
        group.bench_with_input(BenchmarkId::new("k2", n), &histogram, |b, h| {
            b.iter(|| {
                engine.release_and_infer_rounded(&prepared, h, &mut rng, &mut out);
                black_box(out[0])
            });
        });
        if height <= 21 {
            // The same fused trial under the wide-lane backend — the
            // end-to-end payoff of killing the draw floor (the ISSUE-10
            // acceptance compares this against the default-backend row).
            let prepared_wide = pipeline.with_backend(NoiseBackend::FastLnWide).prepare(n);
            let mut rng = rng_from_seed(11);
            group.bench_with_input(BenchmarkId::new("k2_wide", n), &histogram, |b, h| {
                b.iter(|| {
                    engine.release_and_infer_rounded(&prepared_wide, h, &mut rng, &mut out);
                    black_box(out[0])
                });
            });
        }
    }
    group.finish();
}

/// The Laplace-draw phase in isolation, per noise backend: the ISSUE-4
/// acceptance criterion is `fast_ln` ≥ 2× faster than `reference` at the
/// pipeline's 2^21-draw scale (one draw per node of the 2^20-leaf tree),
/// and the ISSUE-10 criterion is `fast_ln_wide` ≥ 1.5× faster again than
/// `fast_ln` at the same scale.
fn bench_laplace_fill(c: &mut Criterion) {
    let mut group = c.benchmark_group("laplace_fill");
    let noise = Laplace::centered(210.0).expect("positive scale");
    for &n in &[1usize << 17, (1 << 21) - 1, (1 << 27) - 1] {
        // −1 keeps the 2^21 and 2^27 cases honest about the scalar tail.
        let mut buf = vec![0.0f64; n];
        for backend in [
            NoiseBackend::Reference,
            NoiseBackend::FastLn,
            NoiseBackend::FastLnWide,
        ] {
            let mut rng = rng_from_seed(31);
            group.throughput(Throughput::Elements(n as u64));
            group.bench_with_input(BenchmarkId::new(backend.name(), n + n % 2), &n, |b, _| {
                b.iter(|| {
                    noise.fill_with(backend, &mut rng, black_box(&mut buf));
                    black_box(buf[0])
                });
            });
        }
    }
    group.finish();
}

/// The full fused trial scaled across cores by `release_and_infer_batch_parallel`
/// — per-trial time for a batch of 4, at the thread cap CI pins via
/// `HC_THREADS`. Compare against `hier_pipeline_batched` (the same trial,
/// serial) for the multi-core end-to-end speedup.
fn bench_pipeline_batch_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("hier_pipeline_batch_parallel");
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    for &height in &[17usize, 21] {
        let shape = TreeShape::new(2, height);
        let n = shape.leaves();
        let histogram = pipeline_histogram(n);
        let pipeline = HierarchicalUniversal::binary(Epsilon::new(0.1).expect("valid ε"));
        let prepared = pipeline.prepare(n);
        let seeds = SeedStream::new(11);
        let mut engine = BatchInference::for_shape(&shape);
        let (mut noisy_batch, mut out_batch) = (Vec::new(), Vec::new());
        group.throughput(Throughput::Elements((shape.nodes() * BATCH_TRIALS) as u64));
        group.bench_with_input(BenchmarkId::new("k2", n), &histogram, |b, h| {
            b.iter(|| {
                engine.release_and_infer_batch_parallel(
                    &prepared,
                    h,
                    seeds,
                    BATCH_TRIALS,
                    true,
                    threads,
                    Some(&mut noisy_batch),
                    &mut out_batch,
                );
                black_box(out_batch[0])
            });
        });
    }
    group.finish();
}

fn bench_sparse_cg(c: &mut Criterion) {
    let mut group = c.benchmark_group("hier_infer_sparse_cg");
    group.sample_size(10);
    for &height in &[7usize, 9] {
        let shape = TreeShape::new(2, height);
        let noisy = noisy_tree(&shape, 8);
        let a =
            CsrMatrix::from_triplets(shape.nodes(), shape.leaves(), aggregation_triplets(&shape));
        let rhs = a.transpose_matvec(&noisy).expect("dimensions match");
        group.bench_with_input(
            BenchmarkId::from_parameter(shape.leaves()),
            &rhs,
            |b, rhs| {
                b.iter(|| {
                    conjugate_gradient(a.gram_operator(), black_box(rhs), CgOptions::default())
                        .expect("SPD system converges")
                });
            },
        );
    }
    group.finish();
}

fn bench_dense_ols(c: &mut Criterion) {
    let mut group = c.benchmark_group("hier_infer_dense_ols");
    group.sample_size(10);
    for &height in &[5usize, 7] {
        let shape = TreeShape::new(2, height);
        let noisy = noisy_tree(&shape, 9);
        let a = Matrix::from_fn(shape.nodes(), shape.leaves(), |v, leaf| {
            if shape.leaf_span(v).contains(leaf) {
                1.0
            } else {
                0.0
            }
        });
        group.bench_with_input(
            BenchmarkId::from_parameter(shape.leaves()),
            &noisy,
            |b, noisy| {
                b.iter(|| hc_linalg::lstsq(black_box(&a), black_box(noisy)).expect("full rank"));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_reference,
    bench_engine_single,
    bench_engine_batch,
    bench_engine_parallel,
    bench_laplace_fill,
    bench_pipeline_pr2_path,
    bench_pipeline_batched,
    bench_pipeline_batch_parallel,
    bench_sparse_cg,
    bench_dense_ols
);
criterion_main!(benches);
