//! Criterion bench: noise sampling throughput (Laplace, geometric, Zipf).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hc_noise::{rng_from_seed, Laplace, NoiseBackend, TwoSidedGeometric, Zipf};
use std::hint::black_box;

fn bench_laplace(c: &mut Criterion) {
    let mut group = c.benchmark_group("noise_sampling");
    let n = 65_536usize;
    group.throughput(Throughput::Elements(n as u64));

    group.bench_function("laplace_65536", |b| {
        let d = Laplace::centered(10.0).expect("positive scale");
        let mut rng = rng_from_seed(1);
        let mut buf = vec![0.0f64; n];
        b.iter(|| {
            d.sample_into(&mut rng, black_box(&mut buf));
        });
    });

    group.bench_function("laplace_65536_fast_ln", |b| {
        let d = Laplace::centered(10.0).expect("positive scale");
        let mut rng = rng_from_seed(1);
        let mut buf = vec![0.0f64; n];
        b.iter(|| {
            d.fill_with(NoiseBackend::FastLn, &mut rng, black_box(&mut buf));
        });
    });

    group.bench_function("geometric_65536", |b| {
        let d = TwoSidedGeometric::with_budget(0.1, 1.0).expect("valid budget");
        let mut rng = rng_from_seed(2);
        b.iter(|| black_box(d.sample_vec(&mut rng, n)));
    });

    group.bench_function("zipf_65536_draws", |b| {
        let z = Zipf::new(20_000, 1.05).expect("valid parameters");
        let mut rng = rng_from_seed(3);
        b.iter(|| black_box(z.sample_histogram(&mut rng, n)));
    });

    group.finish();
}

criterion_group!(benches, bench_laplace);
criterion_main!(benches);
