//! End-to-end `HC_THREADS` determinism: the experiment binaries whose trial
//! loops run through `release_and_infer_batch_parallel` (fig6, thm4_factor —
//! plus `run_trials_with` for their scoring passes) must emit byte-identical
//! reports for `HC_THREADS` ∈ {1, 2, unset}. This is the environment-variable
//! half of the serial≡parallel contract; the in-process half (explicit
//! thread counts) lives in `tests/noise_backends.rs` and the engine's unit
//! tests. Spawning real processes is the only race-free way to vary an
//! environment variable under the multithreaded test harness.

use std::process::Command;

/// Runs one experiment binary with the given `HC_THREADS` setting (None =
/// unset) and returns its stdout.
fn run(bin: &str, args: &[&str], hc_threads: Option<&str>) -> String {
    let mut cmd = Command::new(bin);
    cmd.args(args);
    cmd.env_remove("HC_THREADS");
    if let Some(v) = hc_threads {
        cmd.env("HC_THREADS", v);
    }
    let out = cmd
        .output()
        .unwrap_or_else(|e| panic!("spawning {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} failed under HC_THREADS={hc_threads:?}: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("reports are UTF-8")
}

fn assert_thread_count_invariant(bin: &str, args: &[&str]) {
    let unset = run(bin, args, None);
    assert!(!unset.trim().is_empty(), "{bin} produced no output");
    for threads in ["1", "2"] {
        let pinned = run(bin, args, Some(threads));
        assert_eq!(
            pinned, unset,
            "{bin} output changed under HC_THREADS={threads}"
        );
    }
}

#[test]
fn fig6_is_bit_identical_across_hc_threads() {
    assert_thread_count_invariant(
        env!("CARGO_BIN_EXE_fig6"),
        &["--quick", "--trials", "3", "--seed", "7"],
    );
}

#[test]
fn thm4_factor_is_bit_identical_across_hc_threads() {
    assert_thread_count_invariant(
        env!("CARGO_BIN_EXE_thm4_factor"),
        &["--quick", "--trials", "3", "--seed", "7"],
    );
}

#[test]
fn ablation_nonneg_is_bit_identical_across_hc_threads() {
    assert_thread_count_invariant(
        env!("CARGO_BIN_EXE_ablation_nonneg"),
        &["--quick", "--trials", "3", "--seed", "7"],
    );
}

/// The serving layer's half of the contract (PR 7): `serve_load --verify`
/// races reader threads against a publisher and asserts every answered
/// batch matches one precomputed serial snapshot bit for bit — never a
/// torn mix of epochs — then prints only seed-determined facts. Running
/// the subprocess across `HC_THREADS` ∈ {1, 2, 4} (single reader, even
/// split, over-subscribed on small runners) pins both halves: no torn
/// reads at any width, and byte-identical output regardless of width.
#[test]
fn serve_load_verify_is_bit_identical_across_hc_threads() {
    let bin = env!("CARGO_BIN_EXE_serve_load");
    let args = &["--verify", "--quick", "--seed", "7"];
    let unset = run(bin, args, None);
    assert!(
        unset.contains("matched a published epoch bit-for-bit"),
        "verify mode did not reach its final check:\n{unset}"
    );
    for threads in ["1", "2", "4"] {
        let pinned = run(bin, args, Some(threads));
        assert_eq!(
            pinned, unset,
            "serve_load --verify output changed under HC_THREADS={threads}"
        );
    }
}
