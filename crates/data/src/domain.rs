//! Ordered domains and intervals over them.

use crate::DataError;

/// An ordered, finite domain for the histogram's range attribute.
///
/// Domain elements are identified by their index `0..size`; the paper's
/// `dom = ⟨x₁ … xₙ⟩` maps to indices `0..n`. A human-readable name is kept
/// for reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Domain {
    name: String,
    size: usize,
}

impl Domain {
    /// Creates a domain with `size` ordered elements.
    pub fn new(name: impl Into<String>, size: usize) -> Result<Self, DataError> {
        if size == 0 {
            return Err(DataError::EmptyDomain);
        }
        Ok(Self {
            name: name.into(),
            size,
        })
    }

    /// The domain's label (e.g. `"src"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of elements.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// The full interval `[0, size-1]`.
    pub fn full_interval(&self) -> Interval {
        Interval {
            lo: 0,
            hi: self.size - 1,
        }
    }

    /// Validates and builds an interval `[lo, hi]` (inclusive).
    pub fn interval(&self, lo: usize, hi: usize) -> Result<Interval, DataError> {
        if lo > hi || hi >= self.size {
            return Err(DataError::InvalidInterval {
                lo,
                hi,
                domain: self.size,
            });
        }
        Ok(Interval { lo, hi })
    }

    /// The unit interval `[x, x]`.
    pub fn unit(&self, x: usize) -> Result<Interval, DataError> {
        self.interval(x, x)
    }
}

/// A closed interval `[lo, hi]` of domain indices — the paper's `c([x, y])`
/// predicate range.
///
/// # Range-vocabulary convention
///
/// The workspace has exactly two range types and one conversion boundary:
///
/// * `Interval` (this type) — **inclusive** `[lo, hi]`, structurally
///   non-empty. The inference/serving core speaks only this.
/// * `hc_serve::RangeQuery` — **half-open** `[lo, hi)`, empties allowed.
///   The service boundary speaks only that.
///
/// All conversions route through [`Interval::half_open`] /
/// [`Interval::to_half_open`] (the serve layer's `From`/`TryFrom` impls
/// delegate here), so the `hi − 1` / `hi + 1` arithmetic lives in exactly
/// one audited place.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    lo: usize,
    hi: usize,
}

impl Interval {
    /// Creates an interval without domain validation (bounds must satisfy
    /// `lo <= hi`). Prefer [`Domain::interval`] where a domain is at hand.
    pub fn new(lo: usize, hi: usize) -> Self {
        assert!(lo <= hi, "interval bounds reversed: [{lo}, {hi}]");
        Self { lo, hi }
    }

    /// Builds the inclusive interval covering the half-open range
    /// `[lo, hi)` — `None` when the range is empty (`lo == hi`), since
    /// intervals are structurally non-empty.
    ///
    /// # Panics
    ///
    /// If `lo > hi` (reversed half-open bounds are malformed, not empty).
    pub fn half_open(lo: usize, hi: usize) -> Option<Self> {
        assert!(lo <= hi, "half-open bounds reversed: [{lo}, {hi})");
        (lo < hi).then(|| Self { lo, hi: hi - 1 })
    }

    /// This interval as half-open `(lo, hi_exclusive)` bounds.
    #[inline]
    pub fn to_half_open(&self) -> (usize, usize) {
        (self.lo, self.hi + 1)
    }

    /// Inclusive lower bound.
    #[inline]
    pub fn lo(&self) -> usize {
        self.lo
    }

    /// Inclusive upper bound.
    #[inline]
    pub fn hi(&self) -> usize {
        self.hi
    }

    /// Number of domain elements covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.hi - self.lo + 1
    }

    /// Intervals are never empty; provided for clippy-idiomatic pairing with
    /// [`Interval::len`].
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `x` lies inside.
    #[inline]
    pub fn contains(&self, x: usize) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Whether `other` is fully inside `self`.
    pub fn covers(&self, other: &Interval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Intersection, if non-empty.
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }
}

impl core::fmt::Display for Interval {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_domain() {
        assert_eq!(Domain::new("x", 0), Err(DataError::EmptyDomain));
    }

    #[test]
    fn half_open_round_trips_and_rejects_empties() {
        let i = Interval::half_open(2, 6).unwrap();
        assert_eq!(i, Interval::new(2, 5));
        assert_eq!(i.to_half_open(), (2, 6));
        assert_eq!(Interval::half_open(4, 4), None);
        assert_eq!(Interval::half_open(0, 1), Some(Interval::new(0, 0)));
    }

    #[test]
    #[should_panic(expected = "half-open bounds reversed")]
    fn half_open_rejects_reversed_bounds() {
        let _ = Interval::half_open(5, 2);
    }

    #[test]
    fn interval_validation() {
        let d = Domain::new("src", 4).unwrap();
        assert!(d.interval(0, 3).is_ok());
        assert!(d.interval(2, 1).is_err());
        assert!(d.interval(0, 4).is_err());
        assert_eq!(d.full_interval(), Interval::new(0, 3));
    }

    #[test]
    fn interval_len_and_contains() {
        let i = Interval::new(2, 5);
        assert_eq!(i.len(), 4);
        assert!(i.contains(2) && i.contains(5));
        assert!(!i.contains(1) && !i.contains(6));
        assert!(!i.is_empty());
    }

    #[test]
    fn unit_interval() {
        let d = Domain::new("x", 10).unwrap();
        let u = d.unit(7).unwrap();
        assert_eq!((u.lo(), u.hi(), u.len()), (7, 7, 1));
    }

    #[test]
    fn covers_and_intersect() {
        let outer = Interval::new(0, 7);
        let inner = Interval::new(2, 5);
        assert!(outer.covers(&inner));
        assert!(!inner.covers(&outer));
        assert_eq!(inner.intersect(&outer), Some(inner));
        assert_eq!(
            Interval::new(0, 3).intersect(&Interval::new(2, 6)),
            Some(Interval::new(2, 3))
        );
        assert_eq!(Interval::new(0, 1).intersect(&Interval::new(3, 4)), None);
    }

    #[test]
    #[should_panic(expected = "reversed")]
    fn reversed_bounds_panic() {
        let _ = Interval::new(3, 2);
    }
}
