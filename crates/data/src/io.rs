//! Plain-text import/export so real datasets can be dropped in.
//!
//! The synthetic generators stand in for the paper's private traces; a
//! downstream user with an actual dataset loads it here. Formats are
//! deliberately trivial (no dependency footprint):
//!
//! * **counts CSV** — one `index,count` pair per line, header optional;
//!   missing indices are zero. This is a histogram.
//! * **records file** — one domain index per line. This is a relation.

use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

use crate::{DataError, Domain, Histogram, Relation};

/// Errors arising while reading datasets from disk.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// A line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// The parsed data violated a domain invariant.
    Data(DataError),
}

impl core::fmt::Display for IoError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse { line, content } => {
                write!(f, "parse error at line {line}: {content:?}")
            }
            IoError::Data(e) => write!(f, "data error: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<DataError> for IoError {
    fn from(e: DataError) -> Self {
        IoError::Data(e)
    }
}

/// Reads a histogram from an `index,count` CSV.
///
/// Lines starting with `#`, blank lines, and a leading non-numeric header
/// row are skipped. The domain size is `max index + 1` unless
/// `domain_size` forces a larger (never smaller) domain.
pub fn read_counts_csv(
    path: impl AsRef<Path>,
    name: &str,
    domain_size: Option<usize>,
) -> Result<Histogram, IoError> {
    let file = std::fs::File::open(path)?;
    let reader = std::io::BufReader::new(file);
    let mut pairs: Vec<(usize, u64)> = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.split(',');
        let (a, b) = (fields.next(), fields.next());
        match (a, b) {
            (Some(i), Some(c)) => {
                match (i.trim().parse::<usize>(), c.trim().parse::<u64>()) {
                    (Ok(i), Ok(c)) => pairs.push((i, c)),
                    _ if idx == 0 => continue, // header row
                    _ => {
                        return Err(IoError::Parse {
                            line: idx + 1,
                            content: line,
                        })
                    }
                }
            }
            _ => {
                return Err(IoError::Parse {
                    line: idx + 1,
                    content: line,
                })
            }
        }
    }
    let needed = pairs.iter().map(|&(i, _)| i + 1).max().unwrap_or(1);
    let size = domain_size.unwrap_or(needed).max(needed);
    let mut counts = vec![0u64; size];
    for (i, c) in pairs {
        counts[i] += c;
    }
    let domain = Domain::new(name, size)?;
    Ok(Histogram::from_counts(domain, counts))
}

/// Writes a histogram as `index,count` CSV (all bins, including zeros).
pub fn write_counts_csv(histogram: &Histogram, path: impl AsRef<Path>) -> Result<(), IoError> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(w, "index,count")?;
    for (i, c) in histogram.counts().iter().enumerate() {
        writeln!(w, "{i},{c}")?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a relation from a file of one record value per line.
pub fn read_records(
    path: impl AsRef<Path>,
    name: &str,
    domain_size: usize,
) -> Result<Relation, IoError> {
    let file = std::fs::File::open(path)?;
    let reader = std::io::BufReader::new(file);
    let mut records = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let value: usize = trimmed.parse().map_err(|_| IoError::Parse {
            line: idx + 1,
            content: line.clone(),
        })?;
        records.push(value);
    }
    let domain = Domain::new(name, domain_size)?;
    Ok(Relation::from_records(domain, records)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("hc_data_io_{tag}_{}", std::process::id()))
    }

    #[test]
    fn counts_csv_round_trips() {
        let path = temp_path("roundtrip");
        let domain = Domain::new("x", 5).unwrap();
        let h = Histogram::from_counts(domain, vec![3, 0, 7, 1, 0]);
        write_counts_csv(&h, &path).unwrap();
        let back = read_counts_csv(&path, "x", None).unwrap();
        assert_eq!(back.counts(), h.counts());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn reader_skips_comments_blanks_and_header() {
        let path = temp_path("skips");
        std::fs::write(&path, "index,count\n# comment\n\n0,4\n3,2\n").unwrap();
        let h = read_counts_csv(&path, "x", None).unwrap();
        assert_eq!(h.counts(), &[4, 0, 0, 2]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn duplicate_indices_accumulate() {
        let path = temp_path("dups");
        std::fs::write(&path, "1,2\n1,3\n").unwrap();
        let h = read_counts_csv(&path, "x", None).unwrap();
        assert_eq!(h.counts(), &[0, 5]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn forced_domain_size_pads() {
        let path = temp_path("pad");
        std::fs::write(&path, "0,1\n").unwrap();
        let h = read_counts_csv(&path, "x", Some(8)).unwrap();
        assert_eq!(h.len(), 8);
        assert_eq!(h.total(), 1);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn malformed_line_is_reported_with_position() {
        let path = temp_path("bad");
        std::fs::write(&path, "0,1\nnot-a-row\n").unwrap();
        let err = read_counts_csv(&path, "x", None).unwrap_err();
        match err {
            IoError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other}"),
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn records_file_round_trips_through_histogram() {
        let path = temp_path("records");
        std::fs::write(&path, "# trace\n2\n2\n0\n3\n").unwrap();
        let r = read_records(&path, "x", 4).unwrap();
        assert_eq!(Histogram::from_relation(&r).counts(), &[1, 0, 2, 1]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn out_of_domain_record_is_a_data_error() {
        let path = temp_path("oob");
        std::fs::write(&path, "9\n").unwrap();
        let err = read_records(&path, "x", 4).unwrap_err();
        assert!(matches!(err, IoError::Data(_)));
        std::fs::remove_file(path).ok();
    }
}
