//! A minimal undirected graph for degree-sequence extraction.

/// An undirected simple graph with vertices `0..n`.
///
/// The Social Network dataset is a friendship graph whose *degree sequence*
/// is the unattributed histogram under study; the generator materializes a
/// real graph here (adjacency lists, no multi-edges) and then extracts
/// degrees, so the pipeline matches the paper's "graph → degree sequence"
/// derivation instead of fabricating degrees directly.
#[derive(Debug, Clone)]
pub struct Graph {
    adjacency: Vec<Vec<usize>>,
    edges: usize,
}

impl Graph {
    /// An edgeless graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            adjacency: vec![Vec::new(); n],
            edges: 0,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Whether the edge `{u, v}` exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        // Scan the smaller adjacency list.
        let (a, b) = if self.adjacency[u].len() <= self.adjacency[v].len() {
            (u, v)
        } else {
            (v, u)
        };
        self.adjacency[a].contains(&b)
    }

    /// Adds the undirected edge `{u, v}`. Self-loops and duplicate edges are
    /// rejected (returns `false`).
    pub fn add_edge(&mut self, u: usize, v: usize) -> bool {
        assert!(
            u < self.vertex_count() && v < self.vertex_count(),
            "vertex out of range"
        );
        if u == v || self.has_edge(u, v) {
            return false;
        }
        self.adjacency[u].push(v);
        self.adjacency[v].push(u);
        self.edges += 1;
        true
    }

    /// The degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.adjacency[v].len()
    }

    /// Neighbours of `v`.
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adjacency[v]
    }

    /// All vertex degrees, in vertex order (an *attributed* histogram).
    pub fn degrees(&self) -> Vec<u64> {
        self.adjacency.iter().map(|a| a.len() as u64).collect()
    }

    /// The degree sequence in ascending order (the *unattributed* histogram,
    /// i.e. the true answer to the paper's sorted query `S`).
    pub fn degree_sequence(&self) -> Vec<u64> {
        let mut d = self.degrees();
        d.sort_unstable();
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_pendant() -> Graph {
        // 0-1, 1-2, 2-0 triangle, 3 attached to 0.
        let mut g = Graph::new(4);
        assert!(g.add_edge(0, 1));
        assert!(g.add_edge(1, 2));
        assert!(g.add_edge(2, 0));
        assert!(g.add_edge(0, 3));
        g
    }

    #[test]
    fn edge_bookkeeping() {
        let g = triangle_plus_pendant();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert!(!g.has_edge(1, 3));
    }

    #[test]
    fn rejects_self_loops_and_duplicates() {
        let mut g = triangle_plus_pendant();
        assert!(!g.add_edge(1, 1));
        assert!(!g.add_edge(0, 1));
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn degrees_and_sequence() {
        let g = triangle_plus_pendant();
        assert_eq!(g.degrees(), vec![3, 2, 2, 1]);
        assert_eq!(g.degree_sequence(), vec![1, 2, 2, 3]);
    }

    #[test]
    fn handshake_lemma_holds() {
        let g = triangle_plus_pendant();
        let degree_sum: u64 = g.degrees().iter().sum();
        assert_eq!(degree_sum, 2 * g.edge_count() as u64);
    }

    #[test]
    #[should_panic(expected = "vertex out of range")]
    fn out_of_range_vertex_panics() {
        let mut g = Graph::new(2);
        g.add_edge(0, 2);
    }
}
