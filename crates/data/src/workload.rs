//! Range-query workload generators for the universal-histogram experiments.

use rand::Rng;

use crate::Interval;

/// The range sizes evaluated in Fig. 6: `2^i` for `i = 1 … ℓ−2`, where `ℓ`
/// is the height (in nodes) of the binary tree over the domain.
pub fn dyadic_sizes(tree_height: usize) -> Vec<usize> {
    assert!(tree_height >= 3, "tree must have at least 3 levels");
    (1..=tree_height - 2).map(|i| 1usize << i).collect()
}

/// A generator of uniformly-located range queries of a fixed size, matching
/// the experimental protocol of Sec. 5.2 ("for each fixed size, we select
/// the location uniformly at random").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeWorkload {
    domain_size: usize,
    range_size: usize,
}

impl RangeWorkload {
    /// Creates a workload of ranges of `range_size` over `0..domain_size`.
    ///
    /// Panics if the range does not fit in the domain (caller bug: sizes are
    /// derived from the same tree as the domain).
    pub fn new(domain_size: usize, range_size: usize) -> Self {
        assert!(range_size >= 1, "range size must be positive");
        assert!(
            range_size <= domain_size,
            "range size {range_size} exceeds domain {domain_size}"
        );
        Self {
            domain_size,
            range_size,
        }
    }

    /// The fixed query size.
    #[inline]
    pub fn range_size(&self) -> usize {
        self.range_size
    }

    /// The domain the ranges live in.
    #[inline]
    pub fn domain_size(&self) -> usize {
        self.domain_size
    }

    /// Number of distinct range locations (`domain − size + 1`).
    #[inline]
    pub fn positions(&self) -> usize {
        self.domain_size - self.range_size + 1
    }

    /// The range anchored at location `lo` — deterministic workload
    /// iteration for planners and exhaustive sweeps.
    #[inline]
    pub fn interval_at(&self, lo: usize) -> Interval {
        assert!(lo < self.positions(), "location {lo} out of range");
        Interval::new(lo, lo + self.range_size - 1)
    }

    /// Every range location in order — the exhaustive counterpart of
    /// [`Self::sample`].
    pub fn iter_all(&self) -> impl Iterator<Item = Interval> + '_ {
        (0..self.positions()).map(|lo| self.interval_at(lo))
    }

    /// Draws one uniformly-located interval.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Interval {
        let lo = rng.random_range(0..=self.domain_size - self.range_size);
        Interval::new(lo, lo + self.range_size - 1)
    }

    /// Draws `count` intervals.
    pub fn sample_many<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<Interval> {
        (0..count).map(|_| self.sample(rng)).collect()
    }

    /// Draws `count` intervals into a caller-owned buffer (cleared first) —
    /// the allocation-free form serving loops use. The RNG consumption and
    /// the drawn intervals are identical to `count` [`Self::sample`] calls.
    pub fn sample_into<R: Rng + ?Sized>(&self, rng: &mut R, count: usize, out: &mut Vec<Interval>) {
        out.clear();
        out.reserve(count);
        for _ in 0..count {
            out.push(self.sample(rng));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_noise::rng_from_seed;

    #[test]
    fn dyadic_sizes_match_fig6_protocol() {
        // ℓ = 16 (the Search Logs tree): sizes 2^1 … 2^14.
        let sizes = dyadic_sizes(16);
        assert_eq!(sizes.first(), Some(&2));
        assert_eq!(sizes.last(), Some(&16384));
        assert_eq!(sizes.len(), 14);
    }

    #[test]
    fn samples_stay_in_domain_with_exact_size() {
        let w = RangeWorkload::new(1024, 64);
        let mut rng = rng_from_seed(51);
        for q in w.sample_many(&mut rng, 500) {
            assert_eq!(q.len(), 64);
            assert!(q.hi() < 1024);
        }
    }

    #[test]
    fn full_domain_range_is_allowed() {
        let w = RangeWorkload::new(256, 256);
        let mut rng = rng_from_seed(52);
        let q = w.sample(&mut rng);
        assert_eq!((q.lo(), q.hi()), (0, 255));
    }

    #[test]
    fn locations_are_spread_out() {
        let w = RangeWorkload::new(10_000, 10);
        let mut rng = rng_from_seed(53);
        let qs = w.sample_many(&mut rng, 1000);
        let mean_lo = qs.iter().map(|q| q.lo() as f64).sum::<f64>() / 1000.0;
        // Uniform over [0, 9990]: mean ≈ 4995.
        assert!((mean_lo - 4995.0).abs() < 500.0, "mean lo {mean_lo}");
    }

    #[test]
    #[should_panic(expected = "exceeds domain")]
    fn oversized_range_panics() {
        let _ = RangeWorkload::new(8, 16);
    }

    #[test]
    fn deterministic_iteration_tiles_every_location() {
        let w = RangeWorkload::new(10, 3);
        assert_eq!(w.positions(), 8);
        assert_eq!(w.domain_size(), 10);
        let all: Vec<Interval> = w.iter_all().collect();
        assert_eq!(all.len(), 8);
        assert_eq!(all[0], Interval::new(0, 2));
        assert_eq!(all[7], Interval::new(7, 9));
        assert_eq!(w.interval_at(4), Interval::new(4, 6));
    }

    #[test]
    fn sample_into_matches_repeated_sample() {
        let w = RangeWorkload::new(512, 9);
        let singles: Vec<Interval> = {
            let mut rng = rng_from_seed(54);
            (0..100).map(|_| w.sample(&mut rng)).collect()
        };
        let mut rng = rng_from_seed(54);
        let mut buf = vec![Interval::new(0, 0)]; // stale content must vanish
        w.sample_into(&mut rng, 100, &mut buf);
        assert_eq!(buf, singles);
    }
}
