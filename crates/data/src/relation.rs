//! A minimal row store over a single range attribute.

use crate::{DataError, Domain, Interval};

/// A relation `R(A, …)` projected onto its range attribute `A`.
///
/// The paper's counting queries only inspect the range attribute, so a
/// relation here is a multiset of domain indices. Records are kept sorted,
/// which makes `c([x, y])` a pair of binary searches and keeps
/// neighbouring-database construction (add/remove one record) cheap — the
/// sensitivity tests in `hc-mech` lean on that.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    domain: Domain,
    /// Sorted multiset of record values.
    records: Vec<usize>,
}

impl Relation {
    /// An empty relation over `domain`.
    pub fn new(domain: Domain) -> Self {
        Self {
            domain,
            records: Vec::new(),
        }
    }

    /// Builds a relation from an unsorted list of record values.
    pub fn from_records(domain: Domain, mut records: Vec<usize>) -> Result<Self, DataError> {
        if let Some(&bad) = records.iter().find(|&&v| v >= domain.size()) {
            return Err(DataError::ValueOutOfDomain {
                value: bad,
                domain: domain.size(),
            });
        }
        records.sort_unstable();
        Ok(Self { domain, records })
    }

    /// Builds a relation whose unit-count histogram equals `counts`.
    ///
    /// This is the inverse of [`crate::Histogram::from_relation`] and is how
    /// generators that produce histograms directly (e.g. the time-series
    /// generator) materialize an actual database instance.
    pub fn from_counts(domain: Domain, counts: &[u64]) -> Result<Self, DataError> {
        if counts.len() != domain.size() {
            return Err(DataError::InvalidInterval {
                lo: 0,
                hi: counts.len().saturating_sub(1),
                domain: domain.size(),
            });
        }
        let total: u64 = counts.iter().sum();
        let mut records = Vec::with_capacity(total as usize);
        for (value, &c) in counts.iter().enumerate() {
            records.extend(std::iter::repeat_n(value, c as usize));
        }
        Ok(Self { domain, records })
    }

    /// The relation's domain.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// Number of records (the paper's `N`).
    #[inline]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the relation holds no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The sorted record values.
    pub fn records(&self) -> &[usize] {
        &self.records
    }

    /// The counting query `c([x, y])`: number of records with value in the
    /// interval.
    pub fn range_count(&self, interval: Interval) -> u64 {
        let lo = self.records.partition_point(|&v| v < interval.lo());
        let hi = self.records.partition_point(|&v| v <= interval.hi());
        (hi - lo) as u64
    }

    /// Inserts one record (used to form neighbouring databases).
    pub fn insert(&mut self, value: usize) -> Result<(), DataError> {
        if value >= self.domain.size() {
            return Err(DataError::ValueOutOfDomain {
                value,
                domain: self.domain.size(),
            });
        }
        let pos = self.records.partition_point(|&v| v < value);
        self.records.insert(pos, value);
        Ok(())
    }

    /// Removes one record with the given value, if present. Returns whether a
    /// record was removed.
    pub fn remove(&mut self, value: usize) -> bool {
        let pos = self.records.partition_point(|&v| v < value);
        if self.records.get(pos) == Some(&value) {
            self.records.remove(pos);
            true
        } else {
            false
        }
    }

    /// A neighbouring database (`nbrs(I)` in Definition 2.1): a clone with
    /// one extra record of the given value.
    pub fn neighbor_with_insertion(&self, value: usize) -> Result<Relation, DataError> {
        let mut n = self.clone();
        n.insert(value)?;
        Ok(n)
    }

    /// A neighbouring database with one record of `value` removed, if any.
    pub fn neighbor_with_removal(&self, value: usize) -> Option<Relation> {
        let mut n = self.clone();
        n.remove(value).then_some(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_example() -> Relation {
        // Fig. 2: src counts ⟨2, 0, 10, 2⟩ over domain {000, 001, 010, 011}.
        let domain = Domain::new("src", 4).unwrap();
        Relation::from_counts(domain, &[2, 0, 10, 2]).unwrap()
    }

    #[test]
    fn from_counts_round_trips_range_counts() {
        let r = paper_example();
        assert_eq!(r.len(), 14);
        let d = r.domain().clone();
        assert_eq!(r.range_count(d.unit(0).unwrap()), 2);
        assert_eq!(r.range_count(d.unit(1).unwrap()), 0);
        assert_eq!(r.range_count(d.unit(2).unwrap()), 10);
        assert_eq!(r.range_count(d.unit(3).unwrap()), 2);
    }

    #[test]
    fn range_counts_match_paper_hierarchy() {
        // H(I) = ⟨14, 2, 12, 2, 0, 10, 2⟩ for the Fig. 2 tree.
        let r = paper_example();
        let d = r.domain().clone();
        assert_eq!(r.range_count(d.interval(0, 3).unwrap()), 14);
        assert_eq!(r.range_count(d.interval(0, 1).unwrap()), 2);
        assert_eq!(r.range_count(d.interval(2, 3).unwrap()), 12);
    }

    #[test]
    fn from_records_validates_domain() {
        let d = Domain::new("x", 3).unwrap();
        assert!(Relation::from_records(d.clone(), vec![0, 1, 2]).is_ok());
        assert!(matches!(
            Relation::from_records(d, vec![0, 3]),
            Err(DataError::ValueOutOfDomain { value: 3, .. })
        ));
    }

    #[test]
    fn insert_and_remove_maintain_sorted_order() {
        let d = Domain::new("x", 5).unwrap();
        let mut r = Relation::new(d);
        for v in [4, 0, 2, 2, 1] {
            r.insert(v).unwrap();
        }
        assert_eq!(r.records(), &[0, 1, 2, 2, 4]);
        assert!(r.remove(2));
        assert_eq!(r.records(), &[0, 1, 2, 4]);
        assert!(!r.remove(3));
    }

    #[test]
    fn neighbors_differ_by_exactly_one_record() {
        let r = paper_example();
        let plus = r.neighbor_with_insertion(1).unwrap();
        assert_eq!(plus.len(), r.len() + 1);
        let minus = r.neighbor_with_removal(2).unwrap();
        assert_eq!(minus.len(), r.len() - 1);
        assert!(r.neighbor_with_removal(1).is_none()); // no records of value 1
    }

    #[test]
    fn empty_relation_counts_zero() {
        let d = Domain::new("x", 8).unwrap();
        let r = Relation::new(d.clone());
        assert!(r.is_empty());
        assert_eq!(r.range_count(d.full_interval()), 0);
    }
}
