//! Synthetic dataset generators standing in for the paper's private data.
//!
//! Each generator documents which published property of the original dataset
//! it reproduces and why that property is the one the experiments depend on
//! (see `DESIGN.md` §3). All generators are deterministic given an RNG and
//! expose a `small()` configuration for fast tests alongside the
//! paper-scale default.

mod nettrace;
mod powerlaw;
mod searchlogs;
mod socialnet;

pub use nettrace::{NetTrace, NetTraceConfig};
pub use powerlaw::zipf_histogram;
pub use searchlogs::{SearchLogs, SearchLogsConfig};
pub use socialnet::{SocialNetwork, SocialNetworkConfig};
