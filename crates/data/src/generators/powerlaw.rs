//! Shared power-law count machinery.

use hc_noise::Zipf;
use rand::seq::SliceRandom;
use rand::Rng;

/// Draws `records` items over `bins` bins where bin popularity follows a
/// Zipf law with the given exponent, then shuffles bin positions.
///
/// The shuffle matters: rank-ordered Zipf counts would make the *attributed*
/// histogram artificially smooth, while real traces scatter heavy hitters
/// across the keyspace. The unattributed tasks are invariant to the shuffle.
pub fn zipf_histogram<R: Rng + ?Sized>(
    rng: &mut R,
    bins: usize,
    records: usize,
    exponent: f64,
) -> Vec<u64> {
    let zipf = Zipf::new(bins, exponent).expect("validated generator parameters");
    let mut counts = zipf.sample_histogram(rng, records);
    counts.shuffle(rng);
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_noise::rng_from_seed;

    #[test]
    fn conserves_record_count() {
        let mut rng = rng_from_seed(1);
        let h = zipf_histogram(&mut rng, 256, 10_000, 1.2);
        assert_eq!(h.len(), 256);
        assert_eq!(h.iter().sum::<u64>(), 10_000);
    }

    #[test]
    fn is_heavy_tailed() {
        let mut rng = rng_from_seed(2);
        let h = zipf_histogram(&mut rng, 1024, 50_000, 1.3);
        let max = *h.iter().max().unwrap();
        let median = {
            let mut s = h.clone();
            s.sort_unstable();
            s[s.len() / 2]
        };
        assert!(max > 50 * median.max(1), "max {max} median {median}");
    }

    #[test]
    fn positions_are_shuffled() {
        let mut rng = rng_from_seed(3);
        let h = zipf_histogram(&mut rng, 4096, 100_000, 1.5);
        // If unshuffled, the max would sit at index 0 with overwhelming
        // probability; after shuffling it is uniform.
        let argmax = h
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)
            .map(|(i, _)| i)
            .unwrap();
        assert!(argmax != 0, "heavy hitter left at rank position");
    }
}
