//! Synthetic Social Network: a preferential-attachment friendship graph.

use rand::Rng;

use crate::{Domain, Graph, Histogram};

/// Configuration for the synthetic social-network generator.
///
/// The original dataset is a friendship graph over ≈11K students of one
/// university. The experiments use only its *degree sequence*, whose relevant
/// published property is the power-law shape: most vertices have small,
/// heavily duplicated degrees (long uniform runs in sorted order — exactly
/// where Theorem 2 predicts constrained inference wins). Preferential
/// attachment (Barabási–Albert) is the canonical generator with that degree
/// law.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SocialNetworkConfig {
    /// Number of vertices (students).
    pub nodes: usize,
    /// Edges added per arriving vertex (BA parameter `m`).
    pub edges_per_node: usize,
}

impl Default for SocialNetworkConfig {
    fn default() -> Self {
        Self {
            nodes: 11_000,
            edges_per_node: 5,
        }
    }
}

impl SocialNetworkConfig {
    /// A reduced-size configuration for fast tests.
    pub fn small() -> Self {
        Self {
            nodes: 400,
            edges_per_node: 3,
        }
    }
}

/// The synthetic social network.
#[derive(Debug, Clone)]
pub struct SocialNetwork {
    graph: Graph,
}

impl SocialNetwork {
    /// Generates a Barabási–Albert graph.
    ///
    /// Vertices arrive one at a time; each connects `m` edges to existing
    /// vertices chosen proportionally to their current degree (implemented
    /// with the standard repeated-endpoints urn). The seed graph is a clique
    /// on `m + 1` vertices.
    pub fn generate<R: Rng + ?Sized>(config: SocialNetworkConfig, rng: &mut R) -> Self {
        let m = config.edges_per_node.max(1);
        let n = config.nodes.max(m + 2);
        let mut graph = Graph::new(n);

        // Urn of edge endpoints: each vertex appears once per incident edge,
        // so uniform draws from the urn are degree-proportional.
        let mut urn: Vec<usize> = Vec::with_capacity(2 * m * n);

        // Seed clique on m + 1 vertices.
        for u in 0..=m {
            for v in (u + 1)..=m {
                if graph.add_edge(u, v) {
                    urn.push(u);
                    urn.push(v);
                }
            }
        }

        for v in (m + 1)..n {
            let mut attached = 0usize;
            // Rejection loop: resample on duplicate targets. Degree-skewed
            // urns make duplicates common for small m, rare overall.
            let mut guard = 0usize;
            while attached < m {
                let target = urn[rng.random_range(0..urn.len())];
                if graph.add_edge(v, target) {
                    urn.push(v);
                    urn.push(target);
                    attached += 1;
                }
                guard += 1;
                if guard > 100 * m {
                    // Degenerate micro-graph (all targets already attached);
                    // accept fewer edges rather than loop forever.
                    break;
                }
            }
        }

        Self { graph }
    }

    /// Generates at paper scale with defaults.
    pub fn generate_default<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self::generate(SocialNetworkConfig::default(), rng)
    }

    /// The generated graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Per-vertex degrees as a histogram over the vertex domain.
    ///
    /// Differential privacy for graphs here is edge-level: adding/removing
    /// one friendship changes two unit counts by one each, matching the
    /// relational sensitivity model once each edge is recorded by both
    /// endpoints.
    pub fn degree_histogram(&self) -> Histogram {
        let domain = Domain::new("vertex", self.graph.vertex_count()).expect("non-empty graph");
        Histogram::from_counts(domain, self.graph.degrees())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_noise::rng_from_seed;

    #[test]
    fn builds_requested_size() {
        let mut rng = rng_from_seed(21);
        let s = SocialNetwork::generate(SocialNetworkConfig::small(), &mut rng);
        assert_eq!(s.graph().vertex_count(), 400);
        // Clique(4) = 6 edges + 396 arrivals × 3 edges.
        assert_eq!(s.graph().edge_count(), 6 + 396 * 3);
    }

    #[test]
    fn min_degree_is_m() {
        let mut rng = rng_from_seed(22);
        let s = SocialNetwork::generate(SocialNetworkConfig::small(), &mut rng);
        let min = *s.degree_histogram().counts().iter().min().unwrap();
        assert!(min >= 3, "min degree {min}");
    }

    #[test]
    fn degree_sequence_is_heavy_tailed_with_duplicates() {
        let mut rng = rng_from_seed(23);
        let s = SocialNetwork::generate(SocialNetworkConfig::small(), &mut rng);
        let h = s.degree_histogram();
        let d = h.distinct_count_values();
        assert!(d * 4 < h.len(), "d = {d} vs n = {}", h.len());
        let max = *h.counts().iter().max().unwrap();
        assert!(max > 20, "hub degree {max}");
    }

    #[test]
    fn handshake_lemma() {
        let mut rng = rng_from_seed(24);
        let s = SocialNetwork::generate(SocialNetworkConfig::small(), &mut rng);
        assert_eq!(
            s.degree_histogram().total(),
            2 * s.graph().edge_count() as u64
        );
    }

    #[test]
    fn reproducible_for_fixed_seed() {
        let a = SocialNetwork::generate(SocialNetworkConfig::small(), &mut rng_from_seed(25));
        let b = SocialNetwork::generate(SocialNetworkConfig::small(), &mut rng_from_seed(25));
        assert_eq!(a.degree_histogram(), b.degree_histogram());
    }
}
