//! Synthetic NetTrace: a bipartite gateway connection trace.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::{Domain, Histogram, Relation};
use hc_noise::Zipf;

/// Configuration for the synthetic NetTrace generator.
///
/// The original dataset is an IP-level trace at a university gateway with
/// ≈65K external hosts; the histogram counts, per external host, the number
/// of internal hosts it connected to. The published properties the
/// experiments rely on are: (a) strong sparsity (most external hosts touch
/// nothing), (b) a heavy Zipf tail among active hosts so a few counts are
/// huge while most are 1 or 2, giving an unattributed histogram with long
/// uniform runs (`d ≪ n`, the Theorem 2 regime), and (c) *clustered*
/// activity — external IPs concentrate in subnet blocks, leaving long empty
/// stretches of the keyspace. (c) is what the Sec. 4.2 non-negativity
/// heuristic exploits: empty *dyadic regions* let high tree levels observe
/// emptiness, so the zeroing cascades.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetTraceConfig {
    /// Domain size: number of external hosts (2¹⁶ at paper scale).
    pub hosts: usize,
    /// Fraction of hosts with at least one connection.
    pub active_fraction: f64,
    /// Number of contiguous "subnet" blocks the active hosts occupy.
    pub subnet_blocks: usize,
    /// Total connection records to distribute among active hosts.
    pub connections: usize,
    /// Zipf exponent over the active hosts.
    pub exponent: f64,
}

impl Default for NetTraceConfig {
    fn default() -> Self {
        Self {
            hosts: 1 << 16,
            active_fraction: 0.3,
            subnet_blocks: 48,
            connections: 300_000,
            exponent: 1.3,
        }
    }
}

impl NetTraceConfig {
    /// A reduced-size configuration for fast tests (same shape, 2⁹ hosts).
    pub fn small() -> Self {
        Self {
            hosts: 1 << 9,
            active_fraction: 0.3,
            subnet_blocks: 5,
            connections: 2_000,
            exponent: 1.3,
        }
    }
}

/// The synthetic NetTrace dataset.
#[derive(Debug, Clone)]
pub struct NetTrace {
    relation: Relation,
}

impl NetTrace {
    /// Generates a trace with the given configuration.
    pub fn generate<R: Rng + ?Sized>(config: NetTraceConfig, rng: &mut R) -> Self {
        assert!(config.hosts > 0, "hosts must be positive");
        assert!(
            (0.0..=1.0).contains(&config.active_fraction),
            "active_fraction must be a fraction"
        );
        assert!(config.subnet_blocks >= 1, "need at least one subnet block");
        let active = ((config.hosts as f64 * config.active_fraction) as usize).max(1);

        // Active hosts live in contiguous subnet blocks: real gateway
        // traffic concentrates in a handful of address blocks, leaving long
        // empty keyspace stretches. Like CIDR subnets, blocks are aligned to
        // a power-of-two boundary and never overlap (distinct aligned slots
        // are chosen without replacement), so the clustering — and with it
        // the empty dyadic regions the Sec. 4.2 heuristic exploits — is a
        // structural guarantee rather than a property of one random draw.
        let blocks = config.subnet_blocks.min(active);
        let block_len = active.div_ceil(blocks).max(1);
        let align = block_len.next_power_of_two().min(config.hosts.max(1));
        // Include the partial tail slot when `hosts` is not a multiple of
        // `align`, so total slot capacity is exactly `hosts` and every
        // active host can be placed.
        let slots = config.hosts.div_ceil(align);
        let mut slot_order: Vec<usize> = (0..slots).collect();
        slot_order.shuffle(rng);
        let mut taken = vec![0usize; slots];
        let mut remaining = active;
        // One block per chosen slot; a second sweep (reachable only when the
        // requested block geometry cannot hold all active hosts) tops the
        // chosen slots up to their full aligned capacity.
        for block_cap in [block_len, align] {
            for &slot in &slot_order {
                if remaining == 0 {
                    break;
                }
                let start = slot * align;
                let capacity = ((slot + 1) * align).min(config.hosts) - start;
                let take = block_cap
                    .min(capacity)
                    .saturating_sub(taken[slot])
                    .min(remaining);
                taken[slot] += take;
                remaining -= take;
            }
        }
        debug_assert_eq!(remaining, 0, "slot capacity always covers the active set");
        let mut active_ids: Vec<usize> = Vec::with_capacity(active);
        for (slot, &count) in taken.iter().enumerate() {
            let start = slot * align;
            active_ids.extend(start..start + count);
        }

        // Zipf popularity ranks are assigned to random positions within the
        // blocks (heavy hitters sit anywhere inside a subnet).
        let mut ranked = active_ids.clone();
        ranked.shuffle(rng);
        let zipf = Zipf::new(ranked.len(), config.exponent).expect("validated parameters");
        let mut records = Vec::with_capacity(config.connections);
        for _ in 0..config.connections {
            let rank = zipf.sample(rng);
            records.push(ranked[rank - 1]);
        }

        let domain = Domain::new("external_host", config.hosts).expect("hosts > 0");
        let relation = Relation::from_records(domain, records).expect("records in domain");
        Self { relation }
    }

    /// Generates at paper scale with defaults.
    pub fn generate_default<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self::generate(NetTraceConfig::default(), rng)
    }

    /// The underlying connection relation.
    pub fn relation(&self) -> &Relation {
        &self.relation
    }

    /// Per-host connection counts (the attributed histogram of Fig. 6's
    /// NetTrace row).
    pub fn histogram(&self) -> Histogram {
        Histogram::from_relation(&self.relation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_noise::rng_from_seed;

    #[test]
    fn conserves_connections() {
        let mut rng = rng_from_seed(11);
        let t = NetTrace::generate(NetTraceConfig::small(), &mut rng);
        assert_eq!(t.histogram().total(), 2_000);
        assert_eq!(t.relation().len(), 2_000);
    }

    #[test]
    fn is_sparse() {
        let mut rng = rng_from_seed(12);
        let t = NetTrace::generate(NetTraceConfig::small(), &mut rng);
        let sparsity = t.histogram().sparsity();
        // At least the inactive fraction must be zero.
        assert!(sparsity >= 0.65, "sparsity {sparsity}");
    }

    #[test]
    fn unattributed_histogram_has_long_uniform_runs() {
        let mut rng = rng_from_seed(13);
        let t = NetTrace::generate(NetTraceConfig::small(), &mut rng);
        let h = t.histogram();
        let d = h.distinct_count_values();
        // Theorem 2 regime: d must be far below n.
        assert!(d * 10 < h.len(), "d = {d}, n = {}", h.len());
    }

    #[test]
    fn heavy_hitter_exists() {
        let mut rng = rng_from_seed(14);
        let t = NetTrace::generate(NetTraceConfig::small(), &mut rng);
        let max = *t.histogram().counts().iter().max().unwrap();
        assert!(max > 100, "max count {max}");
    }

    #[test]
    fn reproducible_for_fixed_seed() {
        let a = NetTrace::generate(NetTraceConfig::small(), &mut rng_from_seed(15));
        let b = NetTrace::generate(NetTraceConfig::small(), &mut rng_from_seed(15));
        assert_eq!(a.histogram(), b.histogram());
    }

    #[test]
    fn activity_is_clustered_leaving_large_empty_dyadic_regions() {
        // The Sec. 4.2 heuristic needs empty aligned regions; check that a
        // decent share of 32-leaf aligned blocks are completely empty.
        let mut rng = rng_from_seed(16);
        let t = NetTrace::generate(NetTraceConfig::small(), &mut rng);
        let counts = t.histogram().counts().to_vec();
        let empty_blocks = counts
            .chunks(32)
            .filter(|c| c.iter().all(|&x| x == 0))
            .count();
        let total_blocks = counts.len() / 32;
        // ≥ 40%: the ~5 subnet blocks can each straddle two aligned chunks.
        assert!(
            empty_blocks * 5 >= total_blocks * 2,
            "only {empty_blocks}/{total_blocks} empty 32-blocks"
        );
    }
}
