//! Synthetic Search Logs: keyword-frequency time series and rank tables.

use rand::Rng;

use crate::{Domain, Histogram};
use hc_noise::{Poisson, Zipf};

/// Configuration for the synthetic search-log generator.
///
/// The original dataset covers Jan 1 2004 → "present" at 16 bins/day
/// (≈2¹⁵ bins for the paper's timeframe). Two derived artifacts are used:
///
/// * Fig. 6 uses the *time series* for one term ("Obama"): near-zero base
///   interest, daily/weekly periodicity, news bursts, and a huge election
///   ramp — i.e. a sparse, bursty series with localized mass.
/// * Fig. 5 uses the *rank-frequency vector* of the top 20K keywords over
///   three months, which is Zipf by construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchLogsConfig {
    /// Number of time bins (2¹⁵ at paper scale: 16/day × ~5.6 years).
    pub bins: usize,
    /// Mean searches per bin in quiet periods.
    pub base_rate: f64,
    /// Number of random news bursts.
    pub bursts: usize,
    /// Peak mean rate during the election spike.
    pub election_peak: f64,
}

impl Default for SearchLogsConfig {
    fn default() -> Self {
        Self {
            bins: 1 << 15,
            base_rate: 0.2,
            bursts: 40,
            election_peak: 400.0,
        }
    }
}

impl SearchLogsConfig {
    /// A reduced-size configuration for fast tests.
    pub fn small() -> Self {
        Self {
            bins: 1 << 9,
            base_rate: 0.2,
            bursts: 6,
            election_peak: 120.0,
        }
    }
}

/// The synthetic search-log dataset.
#[derive(Debug, Clone)]
pub struct SearchLogs {
    series: Histogram,
}

impl SearchLogs {
    /// Generates the time series for the tracked term.
    pub fn generate<R: Rng + ?Sized>(config: SearchLogsConfig, rng: &mut R) -> Self {
        assert!(config.bins > 0, "bins must be positive");
        let n = config.bins;
        let mut intensity = vec![config.base_rate; n];

        // Interest grows slowly over time (term becomes newsworthy).
        for (i, lambda) in intensity.iter_mut().enumerate() {
            let t = i as f64 / n as f64;
            *lambda *= 1.0 + 3.0 * t * t;
        }

        // Daily periodicity: 16 bins/day, quiet nights. Weekly modulation.
        for (i, lambda) in intensity.iter_mut().enumerate() {
            let hour_of_day = (i % 16) as f64 / 16.0;
            // hc-lint: allow(frozen-bits) — synthetic intensity shape; dataset fidelity is pinned by the data goldens, not cross-libm
            let day_factor = 0.4 + 0.6 * (std::f64::consts::PI * hour_of_day).sin().max(0.0);
            let week_phase = ((i / 16) % 7) as f64;
            let week_factor = if week_phase >= 5.0 { 0.7 } else { 1.0 };
            *lambda *= day_factor * week_factor;
        }

        // News bursts: short exponential-decay spikes at random times within
        // the *newsworthy era* — the tracked term draws no coverage in the
        // first third of the window (the published series is flat before the
        // term enters the news), which keeps the early quiet period sparse
        // by construction. Widths scale with the series length (1–5 days at
        // paper scale) so the small test configuration keeps the same
        // quiet/bursty morphology.
        let base_width = (n / 2048).max(2);
        for _ in 0..config.bursts {
            let center = rng.random_range(n / 3..n);
            let height = config.election_peak * 0.05 * (1.0 + rng.random::<f64>());
            let width = base_width + rng.random_range(0..4 * base_width);
            apply_decay_spike(&mut intensity, center, height, width);
        }

        // Election season: a broad ramp peaking ~85% through the series
        // (Nov 2008 within Jan 2004 → mid 2009).
        let center = (n as f64 * 0.85) as usize;
        apply_decay_spike(&mut intensity, center, config.election_peak, n / 20 + 1);

        let counts: Vec<u64> = intensity
            .iter()
            .map(|&lambda| {
                // Intensity may be ~0 in quiet bins; Poisson::new rejects 0.
                if lambda <= 1e-9 {
                    0
                } else {
                    Poisson::new(lambda).expect("positive lambda").sample(rng)
                }
            })
            .collect();

        let domain = Domain::new("time_bin", n).expect("bins > 0");
        Self {
            series: Histogram::from_counts(domain, counts),
        }
    }

    /// Generates at paper scale with defaults.
    pub fn generate_default<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self::generate(SearchLogsConfig::default(), rng)
    }

    /// The time-series histogram (Fig. 6's Search Logs row).
    pub fn histogram(&self) -> &Histogram {
        &self.series
    }

    /// The rank-frequency table of the `top_k` keywords over a quarter —
    /// Fig. 5's Search Logs input. Position `i` holds the number of searches
    /// of the `i`-th ranked keyword.
    pub fn keyword_frequencies<R: Rng + ?Sized>(
        rng: &mut R,
        top_k: usize,
        total_searches: usize,
    ) -> Histogram {
        let zipf = Zipf::new(top_k, 1.05).expect("validated parameters");
        let counts = zipf.sample_histogram(rng, total_searches);
        // Rank order (descending) as published.
        let mut counts = counts;
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let domain = Domain::new("keyword_rank", top_k).expect("top_k > 0");
        Histogram::from_counts(domain, counts)
    }
}

/// Adds a two-sided exponential-decay spike to the intensity curve.
fn apply_decay_spike(intensity: &mut [f64], center: usize, height: f64, width: usize) {
    let n = intensity.len();
    let w = width.max(1) as f64;
    let lo = center.saturating_sub(8 * width);
    let hi = (center + 8 * width).min(n - 1);
    for (i, lambda) in intensity.iter_mut().enumerate().take(hi + 1).skip(lo) {
        let dist = (i as f64 - center as f64).abs();
        *lambda += height * (-dist / w).exp(); // hc-lint: allow(frozen-bits) — synthetic spike shape; pinned by the data goldens, not cross-libm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_noise::rng_from_seed;

    #[test]
    fn produces_requested_bins() {
        let mut rng = rng_from_seed(41);
        let s = SearchLogs::generate(SearchLogsConfig::small(), &mut rng);
        assert_eq!(s.histogram().len(), 512);
    }

    #[test]
    fn mass_is_localized_around_election() {
        let mut rng = rng_from_seed(42);
        let s = SearchLogs::generate(SearchLogsConfig::small(), &mut rng);
        let counts = s.histogram().counts();
        let n = counts.len();
        let spike_zone: u64 = counts[(n * 3 / 4)..].iter().sum();
        let early: u64 = counts[..(n / 4)].iter().sum();
        assert!(
            spike_zone > 5 * early.max(1),
            "spike {spike_zone} early {early}"
        );
    }

    #[test]
    fn series_is_sparse_in_quiet_periods() {
        let mut rng = rng_from_seed(43);
        let s = SearchLogs::generate(SearchLogsConfig::small(), &mut rng);
        let quiet_zeros = s.histogram().counts()[..128]
            .iter()
            .filter(|&&c| c == 0)
            .count();
        assert!(quiet_zeros > 50, "zeros in quiet period: {quiet_zeros}");
    }

    #[test]
    fn keyword_table_is_rank_ordered_and_conserves_volume() {
        let mut rng = rng_from_seed(44);
        let h = SearchLogs::keyword_frequencies(&mut rng, 1000, 100_000);
        assert_eq!(h.total(), 100_000);
        let c = h.counts();
        assert!(c.windows(2).all(|w| w[0] >= w[1]), "not rank-ordered");
        assert!(c[0] > c[999] * 10);
    }

    #[test]
    fn reproducible_for_fixed_seed() {
        let a = SearchLogs::generate(SearchLogsConfig::small(), &mut rng_from_seed(45));
        let b = SearchLogs::generate(SearchLogsConfig::small(), &mut rng_from_seed(45));
        assert_eq!(a.histogram(), b.histogram());
    }
}
