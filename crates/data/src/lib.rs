//! Data substrate: domains, relations, histograms, graphs, and the synthetic
//! dataset generators used by the experiments.
//!
//! The paper evaluates on three private datasets (NetTrace, Social Network,
//! Search Logs) that cannot be redistributed. This crate builds *synthetic
//! substitutes* that match the published, behaviour-relevant structure of
//! each (see `DESIGN.md` §3 for the substitution argument):
//!
//! * [`generators::NetTrace`] — per-host connection counts of a bipartite
//!   gateway trace (sparse, heavy-tailed, ≈65K hosts).
//! * [`generators::SocialNetwork`] — the degree sequence of an ≈11K-node
//!   preferential-attachment friendship graph.
//! * [`generators::SearchLogs`] — a 2¹⁵-bin time series of query-term
//!   frequencies with periodicity and news bursts, plus a Zipf
//!   rank-frequency variant for the unattributed task.
//!
//! The substrate is real database machinery, not hard-coded vectors: a
//! [`Relation`] is a multiset of records over an ordered [`Domain`];
//! histograms are derived by counting, and the graph generator materializes
//! an actual edge list before extracting degrees.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

mod domain;
pub mod generators;
mod graph;
mod histogram;
pub mod io;
mod relation;
mod workload;

pub use domain::{Domain, Interval};
pub use graph::Graph;
pub use histogram::Histogram;
pub use relation::Relation;
pub use workload::{dyadic_sizes, RangeWorkload};

/// Errors produced by data-layer constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// An interval's bounds were reversed or out of the domain.
    InvalidInterval {
        /// Lower index requested.
        lo: usize,
        /// Upper index requested.
        hi: usize,
        /// Domain size.
        domain: usize,
    },
    /// A record referenced a value outside the domain.
    ValueOutOfDomain {
        /// The offending value.
        value: usize,
        /// Domain size.
        domain: usize,
    },
    /// An empty domain was requested.
    EmptyDomain,
}

impl core::fmt::Display for DataError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DataError::InvalidInterval { lo, hi, domain } => {
                write!(
                    f,
                    "invalid interval [{lo}, {hi}] for domain of size {domain}"
                )
            }
            DataError::ValueOutOfDomain { value, domain } => {
                write!(f, "value {value} outside domain of size {domain}")
            }
            DataError::EmptyDomain => write!(f, "domain must be non-empty"),
        }
    }
}

impl std::error::Error for DataError {}
