//! Histograms: unit-length counts over an ordered domain.

use crate::{Domain, Interval, Relation};

/// A histogram of unit-length counts — the true answer `L(I)` to the paper's
/// unit query sequence `L`.
///
/// This is the canonical in-memory representation of a dataset for the
/// estimators: `counts[i]` is `c([xᵢ])`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    domain: Domain,
    counts: Vec<u64>,
}

impl Histogram {
    /// Builds a histogram directly from counts.
    ///
    /// Panics if `counts.len() != domain.size()` (construction bug).
    pub fn from_counts(domain: Domain, counts: Vec<u64>) -> Self {
        assert_eq!(
            counts.len(),
            domain.size(),
            "count vector must cover the domain"
        );
        Self { domain, counts }
    }

    /// Computes the histogram of a relation by evaluating all unit counts.
    pub fn from_relation(relation: &Relation) -> Self {
        let mut counts = vec![0u64; relation.domain().size()];
        for &v in relation.records() {
            counts[v] += 1;
        }
        Self {
            domain: relation.domain().clone(),
            counts,
        }
    }

    /// The domain.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// Number of bins `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True when the domain has no bins (impossible by construction, but
    /// provided for idiomatic pairing with [`Histogram::len`]).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// The unit counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Unit counts as `f64` — the numeric form consumed by mechanisms.
    pub fn counts_f64(&self) -> Vec<f64> {
        self.counts.iter().map(|&c| c as f64).collect()
    }

    /// Total number of records.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The true range count over `interval`.
    pub fn range_count(&self, interval: Interval) -> u64 {
        self.counts[interval.lo()..=interval.hi()].iter().sum()
    }

    /// The *unattributed* histogram: the multiset of counts in sorted order —
    /// the true answer `S(I)` to the paper's sorted query sequence.
    pub fn sorted_counts(&self) -> Vec<u64> {
        let mut s = self.counts.clone();
        s.sort_unstable();
        s
    }

    /// Number of distinct count values `d` (the quantity driving Theorem 2).
    pub fn distinct_count_values(&self) -> usize {
        let mut s = self.sorted_counts();
        s.dedup();
        s.len()
    }

    /// Fraction of bins that are zero — the sparsity the universal-histogram
    /// experiments exploit.
    pub fn sparsity(&self) -> f64 {
        let zeros = self.counts.iter().filter(|&&c| c == 0).count();
        zeros as f64 / self.len() as f64
    }

    /// Zero-pads the histogram on the right up to `target` bins, renaming the
    /// domain. Used to embed arbitrary domains into complete k-ary trees.
    pub fn zero_padded(&self, target: usize) -> Histogram {
        assert!(target >= self.len(), "target smaller than histogram");
        if target == self.len() {
            return self.clone();
        }
        let mut counts = self.counts.clone();
        counts.resize(target, 0);
        let domain = Domain::new(format!("{}+pad", self.domain.name()), target)
            .expect("target > 0 because it is >= an existing domain");
        Histogram { domain, counts }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> Histogram {
        let d = Domain::new("src", 4).unwrap();
        Histogram::from_counts(d, vec![2, 0, 10, 2])
    }

    #[test]
    fn from_relation_matches_manual_counts() {
        let d = Domain::new("src", 4).unwrap();
        let r = Relation::from_records(d, vec![0, 0, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 3, 3]).unwrap();
        assert_eq!(Histogram::from_relation(&r), example());
    }

    #[test]
    fn totals_and_ranges() {
        let h = example();
        assert_eq!(h.total(), 14);
        assert_eq!(h.range_count(Interval::new(2, 3)), 12);
        assert_eq!(h.range_count(Interval::new(0, 0)), 2);
    }

    #[test]
    fn sorted_counts_is_the_unattributed_histogram() {
        // Paper Example 3: L(I) = ⟨2,0,10,2⟩, S(I) = ⟨0,2,2,10⟩.
        assert_eq!(example().sorted_counts(), vec![0, 2, 2, 10]);
    }

    #[test]
    fn distinct_values_and_sparsity() {
        let h = example();
        assert_eq!(h.distinct_count_values(), 3); // {0, 2, 10}
        assert!((h.sparsity() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_padding_preserves_prefix() {
        let h = example().zero_padded(8);
        assert_eq!(h.len(), 8);
        assert_eq!(&h.counts()[..4], &[2, 0, 10, 2]);
        assert_eq!(&h.counts()[4..], &[0, 0, 0, 0]);
        assert_eq!(h.total(), 14);
    }

    #[test]
    #[should_panic(expected = "cover the domain")]
    fn mismatched_counts_panic() {
        let d = Domain::new("x", 3).unwrap();
        let _ = Histogram::from_counts(d, vec![1, 2]);
    }
}
