//! Noise and sampling substrate for the `hist-consistency` workspace.
//!
//! Everything randomized in the reproduction flows through this crate:
//!
//! * [`Laplace`] — the continuous Laplace distribution used by the Laplace
//!   mechanism (Dwork et al., TCC 2006), with exact pdf/cdf/quantile and
//!   inverse-CDF sampling.
//! * [`TwoSidedGeometric`] — the discrete analogue ("geometric mechanism",
//!   Ghosh et al., STOC 2009), provided as an alternative noise source.
//! * [`Zipf`] — a table-based Zipf sampler used by the synthetic dataset
//!   generators.
//! * [`SeedStream`] — deterministic derivation of independent per-trial seeds
//!   from a master seed, so every experiment in the repository is exactly
//!   reproducible.
//! * [`NoiseBackend`] — versioned sampling algorithms for the batch Laplace
//!   paths: the frozen [`NoiseBackend::Reference`] scalar sampler, the
//!   vectorized-[`fast_ln`] [`NoiseBackend::FastLn`] sampler, and the fused
//!   wide-lane [`NoiseBackend::FastLnWide`] sampler, each with its own
//!   golden-release pins (see [`backend`] for the versioning policy).
//!
//! The `rand` crate supplies only the uniform bit stream; all distribution
//! logic lives here so it can be tested against closed forms.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod backend;
mod geometric;
mod laplace;
mod poisson;
mod seeds;
mod zipf;

pub use backend::{fast_ln, NoiseBackend, FAST_LN_MAX_ULP};
pub use geometric::TwoSidedGeometric;
pub use laplace::Laplace;
pub use poisson::Poisson;
pub use seeds::{rng_from_seed, SeedStream};
pub use zipf::Zipf;

/// Errors produced when constructing a distribution from invalid parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum NoiseError {
    /// A scale (or exponent) parameter was zero, negative, NaN or infinite.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
}

impl core::fmt::Display for NoiseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            NoiseError::InvalidParameter { name, value } => {
                write!(f, "invalid distribution parameter {name} = {value}")
            }
        }
    }
}

impl std::error::Error for NoiseError {}

#[cfg(test)]
mod tests {
    use super::rng_from_seed;
    use rand::Rng;

    #[test]
    fn fill_u64_matches_per_call_draws() {
        // The StdRng override keeps the xoshiro state in registers for the
        // whole block; this pins that it produces exactly the per-call
        // stream, for every length (including 0) and when resumed mid-way.
        for len in [0usize, 1, 7, 8, 9, 63, 256, 1000] {
            let mut bulk_rng = rng_from_seed(4242);
            let mut call_rng = rng_from_seed(4242);
            let mut bulk = vec![0u64; len];
            bulk_rng.fill_u64(&mut bulk);
            let calls: Vec<u64> = (0..len).map(|_| call_rng.next_u64()).collect();
            assert_eq!(bulk, calls, "len = {len}");
            // The state after the block matches too, so bulk and per-call
            // draws can be interleaved freely.
            assert_eq!(bulk_rng.next_u64(), call_rng.next_u64(), "len = {len}");
        }
        // The `&mut R` forwarding impl routes to the same override: a
        // generic caller handed `&mut StdRng` resolves `fill_u64` through
        // `impl Rng for &mut R`, not the concrete override directly.
        fn fill_generic<R: Rng>(mut rng: R, out: &mut [u64]) {
            rng.fill_u64(out);
        }
        let mut a = rng_from_seed(77);
        let mut b = rng_from_seed(77);
        let mut via_ref = [0u64; 16];
        fill_generic(&mut a, &mut via_ref);
        let mut direct = [0u64; 16];
        b.fill_u64(&mut direct);
        assert_eq!(via_ref, direct);
    }
}
