//! Noise and sampling substrate for the `hist-consistency` workspace.
//!
//! Everything randomized in the reproduction flows through this crate:
//!
//! * [`Laplace`] — the continuous Laplace distribution used by the Laplace
//!   mechanism (Dwork et al., TCC 2006), with exact pdf/cdf/quantile and
//!   inverse-CDF sampling.
//! * [`TwoSidedGeometric`] — the discrete analogue ("geometric mechanism",
//!   Ghosh et al., STOC 2009), provided as an alternative noise source.
//! * [`Zipf`] — a table-based Zipf sampler used by the synthetic dataset
//!   generators.
//! * [`SeedStream`] — deterministic derivation of independent per-trial seeds
//!   from a master seed, so every experiment in the repository is exactly
//!   reproducible.
//! * [`NoiseBackend`] — versioned sampling algorithms for the batch Laplace
//!   paths: the frozen [`NoiseBackend::Reference`] scalar sampler and the
//!   vectorized-[`fast_ln`] [`NoiseBackend::FastLn`] sampler, each with its
//!   own golden-release pins (see [`backend`] for the versioning policy).
//!
//! The `rand` crate supplies only the uniform bit stream; all distribution
//! logic lives here so it can be tested against closed forms.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod backend;
mod geometric;
mod laplace;
mod poisson;
mod seeds;
mod zipf;

pub use backend::{fast_ln, NoiseBackend, FAST_LN_MAX_ULP};
pub use geometric::TwoSidedGeometric;
pub use laplace::Laplace;
pub use poisson::Poisson;
pub use seeds::{rng_from_seed, SeedStream};
pub use zipf::Zipf;

/// Errors produced when constructing a distribution from invalid parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum NoiseError {
    /// A scale (or exponent) parameter was zero, negative, NaN or infinite.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
}

impl core::fmt::Display for NoiseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            NoiseError::InvalidParameter { name, value } => {
                write!(f, "invalid distribution parameter {name} = {value}")
            }
        }
    }
}

impl std::error::Error for NoiseError {}
