//! A Poisson sampler for the synthetic data generators.

use rand::Rng;

use crate::NoiseError;

/// A Poisson distribution with rate `λ > 0`.
///
/// The dataset generators model bin counts as Poisson around a deterministic
/// intensity curve (base rate + periodicity + bursts). Sampling uses Knuth's
/// multiplication method for small `λ` and a normal approximation with
/// continuity correction for large `λ` (the generators only need counts, not
/// tail-exact samples, above λ ≈ 30).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

/// Threshold above which the normal approximation is used.
const NORMAL_APPROX_THRESHOLD: f64 = 30.0;

impl Poisson {
    /// Creates a Poisson distribution with rate `lambda`.
    pub fn new(lambda: f64) -> Result<Self, NoiseError> {
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(NoiseError::InvalidParameter {
                name: "lambda",
                value: lambda,
            });
        }
        Ok(Self { lambda })
    }

    /// The rate parameter.
    #[inline]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.lambda < NORMAL_APPROX_THRESHOLD {
            self.sample_knuth(rng)
        } else {
            self.sample_normal_approx(rng)
        }
    }

    fn sample_knuth<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let limit = (-self.lambda).exp();
        let mut product: f64 = rng.random();
        let mut count = 0u64;
        while product > limit {
            product *= rng.random::<f64>();
            count += 1;
        }
        count
    }

    fn sample_normal_approx<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        // Box–Muller standard normal.
        let u1: f64 = 1.0 - rng.random::<f64>();
        let u2: f64 = rng.random();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let x = self.lambda + self.lambda.sqrt() * z + 0.5;
        if x < 0.0 {
            0
        } else {
            x.floor() as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;

    #[test]
    fn rejects_bad_lambda() {
        assert!(Poisson::new(0.0).is_err());
        assert!(Poisson::new(-2.0).is_err());
        assert!(Poisson::new(f64::NAN).is_err());
    }

    fn check_moments(lambda: f64, seed: u64) {
        let p = Poisson::new(lambda).unwrap();
        let mut rng = rng_from_seed(seed);
        let n = 100_000;
        let samples: Vec<u64> = (0..n).map(|_| p.sample(&mut rng)).collect();
        let mean = samples.iter().map(|&x| x as f64).sum::<f64>() / n as f64;
        let var = samples
            .iter()
            .map(|&x| (x as f64 - mean) * (x as f64 - mean))
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean - lambda).abs() < 0.05 * lambda.max(1.0),
            "lambda {lambda}: mean {mean}"
        );
        assert!(
            (var - lambda).abs() < 0.08 * lambda.max(1.0),
            "lambda {lambda}: var {var}"
        );
    }

    #[test]
    fn small_lambda_moments() {
        check_moments(0.5, 31);
        check_moments(4.0, 32);
    }

    #[test]
    fn large_lambda_moments() {
        check_moments(80.0, 33);
        check_moments(400.0, 34);
    }

    #[test]
    fn zero_probability_mass_is_reachable() {
        let p = Poisson::new(0.1).unwrap();
        let mut rng = rng_from_seed(35);
        let zeros = (0..10_000).filter(|_| p.sample(&mut rng) == 0).count();
        // P(0) = e^-0.1 ≈ 0.905.
        assert!(zeros > 8_800 && zeros < 9_300, "zeros = {zeros}");
    }
}
