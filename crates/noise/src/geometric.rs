//! The two-sided geometric distribution (discrete Laplace).

use rand::Rng;

use crate::NoiseError;

/// A two-sided geometric distribution over the integers.
///
/// `P(X = k) = (1 - α) / (1 + α) · α^|k|` with `α = exp(-ε / Δ)`.
///
/// This is the noise of the *geometric mechanism* (Ghosh, Roughgarden,
/// Sundararajan, STOC 2009), which the paper cites as the optimal mechanism
/// for a single counting query. It is provided as an alternative to
/// [`crate::Laplace`] so integer-valued releases can be produced directly;
/// the ablation benches compare the two.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoSidedGeometric {
    alpha: f64,
}

impl TwoSidedGeometric {
    /// Creates the distribution from the decay parameter `α ∈ (0, 1)`.
    pub fn new(alpha: f64) -> Result<Self, NoiseError> {
        if !alpha.is_finite() || alpha <= 0.0 || alpha >= 1.0 {
            return Err(NoiseError::InvalidParameter {
                name: "alpha",
                value: alpha,
            });
        }
        Ok(Self { alpha })
    }

    /// Creates the distribution calibrated to privacy budget `epsilon` and
    /// query sensitivity `sensitivity`, i.e. `α = exp(-ε / Δ)`.
    pub fn with_budget(epsilon: f64, sensitivity: f64) -> Result<Self, NoiseError> {
        if !epsilon.is_finite() || epsilon <= 0.0 {
            return Err(NoiseError::InvalidParameter {
                name: "epsilon",
                value: epsilon,
            });
        }
        if !sensitivity.is_finite() || sensitivity <= 0.0 {
            return Err(NoiseError::InvalidParameter {
                name: "sensitivity",
                value: sensitivity,
            });
        }
        Self::new((-epsilon / sensitivity).exp())
    }

    /// The decay parameter `α`.
    #[inline]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Probability mass at integer `k`.
    pub fn pmf(&self, k: i64) -> f64 {
        let a = self.alpha;
        (1.0 - a) / (1.0 + a) * a.powi(k.unsigned_abs().min(i32::MAX as u64) as i32)
    }

    /// The variance, `2α / (1 − α)²`.
    pub fn variance(&self) -> f64 {
        let a = self.alpha;
        2.0 * a / ((1.0 - a) * (1.0 - a))
    }

    /// Draws one sample.
    ///
    /// Sampling is by the difference of two independent one-sided geometric
    /// variables `G1 − G2`, each with success probability `1 − α`: the
    /// difference law is exactly the two-sided geometric above.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> i64 {
        let g1 = self.sample_one_sided(rng);
        let g2 = self.sample_one_sided(rng);
        g1 - g2
    }

    /// Samples a one-sided geometric (number of failures before success) via
    /// inversion: `floor(ln U / ln α)`.
    fn sample_one_sided<R: Rng + ?Sized>(&self, rng: &mut R) -> i64 {
        // Avoid ln(0): u in (0, 1].
        let u = 1.0 - rng.random::<f64>();
        (u.ln() / self.alpha.ln()).floor() as i64
    }

    /// Draws `n` i.i.d. samples.
    pub fn sample_vec<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<i64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;

    #[test]
    fn rejects_bad_alpha() {
        assert!(TwoSidedGeometric::new(0.0).is_err());
        assert!(TwoSidedGeometric::new(1.0).is_err());
        assert!(TwoSidedGeometric::new(-0.5).is_err());
        assert!(TwoSidedGeometric::new(f64::NAN).is_err());
    }

    #[test]
    fn with_budget_matches_alpha_formula() {
        let d = TwoSidedGeometric::with_budget(0.5, 2.0).unwrap();
        assert!((d.alpha() - (-0.25f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn pmf_sums_to_one() {
        let d = TwoSidedGeometric::new(0.8).unwrap();
        let total: f64 = (-400..=400).map(|k| d.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-10, "sum = {total}");
    }

    #[test]
    fn pmf_is_symmetric() {
        let d = TwoSidedGeometric::new(0.6).unwrap();
        for k in 0..20 {
            assert!((d.pmf(k) - d.pmf(-k)).abs() < 1e-15);
        }
    }

    #[test]
    fn sample_moments_match_theory() {
        let d = TwoSidedGeometric::with_budget(1.0, 1.0).unwrap();
        let mut rng = rng_from_seed(21);
        let n = 200_000;
        let samples = d.sample_vec(&mut rng, n);
        let mean = samples.iter().map(|&x| x as f64).sum::<f64>() / n as f64;
        let var = samples
            .iter()
            .map(|&x| (x as f64 - mean) * (x as f64 - mean))
            .sum::<f64>()
            / n as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!(
            (var - d.variance()).abs() / d.variance() < 0.05,
            "var = {var}, expected {}",
            d.variance()
        );
    }

    #[test]
    fn satisfies_dp_ratio_on_pmf() {
        // The geometric mechanism promise: pmf(k)/pmf(k+1) <= e^eps for the
        // calibrated alpha (sensitivity-1 counting query).
        let eps = 0.7;
        let d = TwoSidedGeometric::with_budget(eps, 1.0).unwrap();
        for k in -30i64..30 {
            let ratio = d.pmf(k) / d.pmf(k + 1);
            assert!(
                ratio <= eps.exp() + 1e-9 && ratio >= (-eps).exp() - 1e-9,
                "k = {k}, ratio = {ratio}"
            );
        }
    }
}
