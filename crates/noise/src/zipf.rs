//! A table-based Zipf sampler for the synthetic dataset generators.

use rand::Rng;

use crate::NoiseError;

/// A Zipf distribution over ranks `1..=n` with exponent `s > 0`:
/// `P(X = r) ∝ r^(-s)`.
///
/// The constructor precomputes the normalized CDF (O(n) space); sampling is a
/// binary search (O(log n)). The dataset generators draw millions of ranks
/// from domains up to 2¹⁶, for which this is the right trade-off.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
    exponent: f64,
}

impl Zipf {
    /// Creates a Zipf distribution over `1..=n`.
    pub fn new(n: usize, exponent: f64) -> Result<Self, NoiseError> {
        if n == 0 {
            return Err(NoiseError::InvalidParameter {
                name: "n",
                value: 0.0,
            });
        }
        if !exponent.is_finite() || exponent <= 0.0 {
            return Err(NoiseError::InvalidParameter {
                name: "exponent",
                value: exponent,
            });
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 1..=n {
            acc += (r as f64).powf(-exponent);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating error leaving the last entry below 1.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Ok(Self { cdf, exponent })
    }

    /// Number of ranks.
    #[inline]
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// The exponent `s`.
    #[inline]
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Probability mass of rank `r` (1-based).
    pub fn pmf(&self, r: usize) -> f64 {
        assert!(r >= 1 && r <= self.n(), "rank out of range");
        let lo = if r == 1 { 0.0 } else { self.cdf[r - 2] };
        self.cdf[r - 1] - lo
    }

    /// Draws one rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        // partition_point returns the count of entries < u, i.e. the first
        // index with cdf >= u; +1 converts to a 1-based rank.
        self.cdf.partition_point(|&c| c < u) + 1
    }

    /// Draws `count` ranks and tallies them into a histogram of length `n`
    /// (index `r − 1` holds the number of times rank `r` was drawn).
    pub fn sample_histogram<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<u64> {
        let mut hist = vec![0u64; self.n()];
        for _ in 0..count {
            hist[self.sample(rng) - 1] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, 0.0).is_err());
        assert!(Zipf::new(10, -1.0).is_err());
        assert!(Zipf::new(10, f64::NAN).is_err());
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 1.1).unwrap();
        let total: f64 = (1..=100).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pmf_is_decreasing_in_rank() {
        let z = Zipf::new(50, 1.5).unwrap();
        for r in 1..50 {
            assert!(z.pmf(r) > z.pmf(r + 1), "rank {r}");
        }
    }

    #[test]
    fn ratio_follows_power_law() {
        let z = Zipf::new(1000, 2.0).unwrap();
        // pmf(1)/pmf(2) should be 2^s = 4.
        assert!((z.pmf(1) / z.pmf(2) - 4.0).abs() < 1e-9);
        assert!((z.pmf(2) / z.pmf(4) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn samples_are_in_range_and_skewed() {
        let z = Zipf::new(64, 1.2).unwrap();
        let mut rng = rng_from_seed(5);
        let hist = z.sample_histogram(&mut rng, 100_000);
        assert_eq!(hist.len(), 64);
        assert_eq!(hist.iter().sum::<u64>(), 100_000);
        // Rank 1 should dominate rank 64 by roughly 64^1.2 ≈ 147.
        assert!(
            hist[0] > hist[63] * 20,
            "head {} tail {}",
            hist[0],
            hist[63]
        );
    }

    #[test]
    fn empirical_frequencies_match_pmf() {
        let z = Zipf::new(16, 1.0).unwrap();
        let mut rng = rng_from_seed(6);
        let n = 400_000;
        let hist = z.sample_histogram(&mut rng, n);
        for r in 1..=16 {
            let emp = hist[r - 1] as f64 / n as f64;
            assert!(
                (emp - z.pmf(r)).abs() < 0.005,
                "rank {r}: {emp} vs {}",
                z.pmf(r)
            );
        }
    }

    #[test]
    fn single_rank_degenerate_case() {
        let z = Zipf::new(1, 1.0).unwrap();
        let mut rng = rng_from_seed(7);
        assert_eq!(z.sample(&mut rng), 1);
        assert!((z.pmf(1) - 1.0).abs() < 1e-15);
    }
}
