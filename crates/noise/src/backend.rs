//! Versioned noise backends: named, frozen sampling algorithms.
//!
//! Every DP release in this workspace is reproducible from a seed, and the
//! golden-release tests pin exact output bits. That makes the *sampling
//! algorithm* part of the public contract: changing how a Laplace draw turns
//! uniform bits into a sample silently invalidates every pinned release.
//! Backends make that contract explicit — each variant of [`NoiseBackend`]
//! names one frozen algorithm with its own golden snapshots:
//!
//! * [`NoiseBackend::Reference`] — the original scalar inverse-CDF sampler
//!   using the platform `ln`. Its bits are frozen forever: all pre-backend
//!   golden pins were recorded against it and must never change.
//! * [`NoiseBackend::FastLn`] — the same inverse-CDF transform with the
//!   platform `ln` replaced by [`fast_ln`], a branch-free polynomial
//!   evaluated in blocks so the compiler vectorizes it. Different bits
//!   (within [`FAST_LN_MAX_ULP`] of the reference per sample, and exactly
//!   Laplace-distributed either way), pinned by its own golden snapshots.
//! * [`NoiseBackend::FastLnWide`] — the fused wide-lane pass: raw RNG bits
//!   go straight through a branch-free bits→uniform→ln→sign→scale kernel
//!   written over fixed-width lanes, with no staging buffer and no boundary
//!   select (the uniform is constructed as an odd multiple of 2⁻⁵², so the
//!   `ln` argument is always a positive normal). Its logarithm is a fused
//!   variant of [`fast_ln`] that folds the uniform's 2⁻⁵² scale into the
//!   range-reduction constant and keeps the reduced exponent in float form
//!   throughout — same [`FAST_LN_MAX_ULP`] accuracy contract, fewer
//!   cross-domain moves. It consumes one `u64` per draw in index order like
//!   the others, but *transforms* those bits differently — a new frozen
//!   algorithm with its own pins.
//!
//! The versioning policy, in full:
//!
//! 1. A backend's output at a fixed seed is frozen the day it lands. Any
//!    change to its draw order, uniform-to-sample transform, or arithmetic
//!    is a *new backend*, not an edit.
//! 2. Adding a backend means: a new [`NoiseBackend`] variant, a sampler
//!    that consumes exactly one `u64` of the stream per draw in index
//!    order (so backends stay interchangeable mid-stream even when, like
//!    `FastLnWide`, they map those bits to a sample differently),
//!    accuracy/moment tests, and seed-pinned golden snapshots in
//!    `tests/golden_releases.rs` *and* `tests/snapshot_serving.rs` (the
//!    hc-lint `backend-pins` rule enforces both).
//! 3. `Reference` is the default everywhere; faster backends are opt-in via
//!    `with_backend` constructors on the mechanism and pipeline types.

/// Identifies one frozen sampling algorithm for the batch noise paths.
///
/// Carried by `hc_mech::LaplaceMechanism`/`PreparedMechanism` and consumed
/// by [`crate::Laplace::fill_with`]/[`crate::Laplace::add_noise_with`]; the
/// per-release choice is recorded nowhere else, so holding a prepared
/// mechanism is holding the full reproducibility contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NoiseBackend {
    /// v1 — scalar inverse-CDF sampling through the platform `ln`.
    /// Bit-identical to the pre-backend sampler; all historical golden pins
    /// are `Reference` pins.
    #[default]
    Reference,
    /// v2 — inverse-CDF sampling through the vectorizable [`fast_ln`]
    /// polynomial, evaluated over 256-sample blocks with a scalar tail.
    /// ≥ 2× faster per draw on an AVX2 target; samples differ from
    /// `Reference` by at most a few ulp and carry their own golden pins.
    FastLn,
    /// v3 — the fused wide-lane pass: one `u64` of raw RNG bits per draw is
    /// mapped to the sign (bit 0) and a uniform that is an odd multiple of
    /// 2⁻⁵² in (0, 1) (bits 12…63), then pushed through the kernel's own
    /// fused `ln` (the [`fast_ln`] range reduction with the 2⁻⁵² scale
    /// folded into the integer offset, accurate to [`FAST_LN_MAX_ULP`] ulp
    /// of `f64::ln`) — all straight-line lane arithmetic with no staging
    /// copy and no boundary select, so the whole draw pipeline, RNG block
    /// included, vectorizes at the pinned `x86-64-v3` target. Uniform
    /// *bits* differ from the other backends (same stream position,
    /// different transform), so its samples are not ulp-close to theirs;
    /// it is an exact Laplace sampler with its own frozen golden pins.
    FastLnWide,
}

impl NoiseBackend {
    /// Stable lowercase name, used in bench labels and CI matrix filters.
    pub fn name(self) -> &'static str {
        match self {
            NoiseBackend::Reference => "reference",
            NoiseBackend::FastLn => "fast_ln",
            NoiseBackend::FastLnWide => "fast_ln_wide",
        }
    }
}

/// Documented accuracy bound for [`fast_ln`]: the result is within this many
/// ulp of `f64::ln` for every positive normal input (the unit tests verify a
/// stricter 2 ulp empirically over adversarial and random points; the extra
/// headroom keeps the contract stable across platforms).
pub const FAST_LN_MAX_ULP: u64 = 4;

/// `ln 2` split hi/lo (the fdlibm constants, given by their exact bits): the
/// high part's 20 trailing mantissa bits are zero, so `k·LN2_HI` is exact
/// for every exponent `|k| ≤ 1074`, and the residual lands in the low part.
pub(crate) const LN2_HI: f64 = f64::from_bits(0x3FE6_2E42_FEE0_0000); // 6.93147180369123816490e-1
pub(crate) const LN2_LO: f64 = f64::from_bits(0x3DEA_39EF_3579_3C76); // 1.90821492927058770002e-10

/// Bias offset for the branch-free range reduction (musl's `log` trick):
/// subtracting it in integer space splits `x = z · 2^k` with
/// `z ∈ [0.6875, 1.375)` without a compare on the mantissa.
pub(crate) const REDUCTION_OFF: u64 = 0x3FE6_0000_0000_0000;

/// Natural logarithm via branch-free range reduction and a fixed-degree
/// polynomial — the kernel of [`NoiseBackend::FastLn`].
///
/// The computation is pure straight-line f64/integer arithmetic (no table,
/// no branch, no platform call), so it auto-vectorizes when evaluated over a
/// block. Every multiply-add is an explicit [`f64::mul_add`] — fused
/// multiply-add is *exactly rounded* by IEEE 754, on FMA hardware and in the
/// software fallback alike — so the function returns *identical bits* for a
/// given input on every target, scalar or SIMD. That is what lets `FastLn`
/// golden snapshots be pinned once and checked everywhere. (Speed, unlike
/// bits, does assume FMA hardware: the workspace pins
/// `target-cpu = x86-64-v3` in `.cargo/config.toml`; without it each
/// `mul_add` becomes a libm call and `Reference` is the faster backend.)
///
/// Algorithm: reduce `x = z·2^k` with `z ∈ [0.6875, 1.375)`, set
/// `s = (z−1)/(z+1)` (so `|s| ≤ 0.1852` at the left edge, `w = s² < 0.0344`),
/// and evaluate
/// `ln z = 2s·(1 + w·P(w))` where `P` carries the exact Taylor coefficients
/// `1/3 … 1/23` of `atanh` in Estrin form (truncation < 1.1e−16 relative at
/// the radius, below one ulp; the shallow Estrin tree lets independent
/// lanes overlap where Horner's 10-deep chain would serialize). Recombine
/// as `k·ln2 + ln z` with `ln2` split hi/lo. Accuracy: within
/// [`FAST_LN_MAX_ULP`] ulp of `f64::ln` on every **positive normal** input;
/// zero, subnormal, infinite, or NaN inputs are outside the contract (the
/// Laplace sampler guards its one reachable boundary case, `x = 0`,
/// explicitly).
#[inline]
pub fn fast_ln(x: f64) -> f64 {
    debug_assert!(
        x.is_normal() && x > 0.0,
        "fast_ln domain is positive normal f64, got {x:e}"
    );
    let ix = x.to_bits();
    let tmp = ix.wrapping_sub(REDUCTION_OFF);
    let k = ((tmp as i64) >> 52) as f64;
    let z = f64::from_bits(ix.wrapping_sub(tmp & (0xFFFu64 << 52)));
    let s = (z - 1.0) / (z + 1.0);
    let w = s * s;
    let w2 = w * w;
    let w4 = w2 * w2;
    let a0 = w.mul_add(1.0 / 5.0, 1.0 / 3.0);
    let a1 = w.mul_add(1.0 / 9.0, 1.0 / 7.0);
    let a2 = w.mul_add(1.0 / 13.0, 1.0 / 11.0);
    let a3 = w.mul_add(1.0 / 17.0, 1.0 / 15.0);
    let a4 = w.mul_add(1.0 / 21.0, 1.0 / 19.0);
    let b0 = w2.mul_add(a1, a0);
    let b1 = w2.mul_add(a3, a2);
    let c1 = w2.mul_add(1.0 / 23.0, a4);
    let p = w4.mul_add(w4.mul_add(c1, b1), b0);
    let t = (2.0 * s).mul_add(w * p, 2.0 * s);
    k.mul_add(LN2_HI, k.mul_add(LN2_LO, t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;
    use rand::Rng;

    fn ulp_distance(a: f64, b: f64) -> u64 {
        (a.to_bits() as i64 - b.to_bits() as i64).unsigned_abs()
    }

    #[test]
    fn backend_names_are_stable() {
        assert_eq!(NoiseBackend::Reference.name(), "reference");
        assert_eq!(NoiseBackend::FastLn.name(), "fast_ln");
        assert_eq!(NoiseBackend::FastLnWide.name(), "fast_ln_wide");
        assert_eq!(NoiseBackend::default(), NoiseBackend::Reference);
    }

    #[test]
    fn fast_ln_matches_library_ln_within_documented_ulp() {
        let mut rng = rng_from_seed(2027);
        let mut max_ulp = 0u64;
        let mut worst = 1.0f64;
        let mut check = |x: f64| {
            let got = fast_ln(x);
            let want = x.ln();
            let ulp = ulp_distance(got, want);
            if ulp > max_ulp {
                max_ulp = ulp;
                worst = x;
            }
        };
        // The sampler's exact input set is {2m·2^-53 : m ∈ 1..=2^52}; cover
        // it plus magnitudes far outside (the documented domain is all
        // positive normals).
        for i in 0..200_000u64 {
            let r: f64 = rng.random();
            match i % 5 {
                0 => check(r.max(f64::MIN_POSITIVE)),
                1 => check((r * 1e-6).max(1e-12)),
                2 => check(1.0 - r * 1e-9 - 1e-12), // just below the x = 1 kink
                3 => check(1.0 + r * 1e-9 + 1e-12), // just above it
                _ => check(r * 1e18 + 0.5),
            }
        }
        // Reduction boundaries and extremes of the normal range.
        for x in [
            f64::MIN_POSITIVE,
            f64::MAX,
            1.0,
            2.0,
            0.5,
            0.6875,
            1.375,
            0.687_499_999_999_999_9,
            1.374_999_999_999_999_8,
            f64::from_bits(1.0f64.to_bits() - 1),
            f64::from_bits(1.0f64.to_bits() + 1),
            2.0f64.powi(-52), // the sampler's smallest reachable argument
        ] {
            check(x);
        }
        assert!(
            max_ulp <= FAST_LN_MAX_ULP,
            "max ulp {max_ulp} at x = {worst:e} exceeds the documented bound"
        );
        // The empirical bound is tighter than the documented one; record it
        // so a regression inside the documented envelope is still visible.
        assert!(max_ulp <= 2, "empirical bound drifted: {max_ulp} ulp");
    }

    #[test]
    fn fast_ln_exact_anchors() {
        // ln 1 = 0 exactly (s = 0, k = 0 — every term vanishes).
        assert_eq!(fast_ln(1.0), 0.0);
        // Powers of two reduce to k·ln2 with z = 1.
        assert_eq!(fast_ln(2.0), 2.0f64.ln());
        assert_eq!(fast_ln(0.25), 0.25f64.ln());
        assert_eq!(fast_ln(2.0f64.powi(40)), (2.0f64.powi(40)).ln());
    }
}
