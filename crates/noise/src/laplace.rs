//! The continuous Laplace (double-exponential) distribution.

use rand::Rng;

use crate::backend::fast_ln;
use crate::backend::{LN2_HI, LN2_LO, REDUCTION_OFF};
use crate::{NoiseBackend, NoiseError};

/// Samples per block in the [`NoiseBackend::FastLn`] batch paths: the
/// uniforms for one block land in the output slice itself (fill) or in a
/// stack buffer (add-noise, where the output holds the values being
/// perturbed), then the branch-free `fast_ln` transform runs over the block
/// so the compiler can vectorize it. 256 × 8 B = 2 KiB — resident in L1
/// alongside the output. Block size never affects sample bits (the
/// transform is elementwise and consumes exactly one uniform per sample, in
/// index order).
const FAST_BLOCK: usize = 256;

/// Lane width of the [`NoiseBackend::FastLnWide`] fused kernel: the RNG
/// bits for one step live in a `[u64; WIDE_LANES]` register block and the
/// samples are written straight into the output. The fill loop alternates
/// between *two* such blocks so the generator's serial
/// state recurrence for the next block and the vector transform of the
/// current one never touch the same memory — with a single block the
/// out-of-order core must order the new draws' stores behind the old
/// transform's loads and the two phases serialize; double-buffered they
/// overlap. Lane width never affects sample bits (every per-lane operation
/// is exactly rounded, so scalar and SIMD evaluation agree to the bit; the
/// scalar tail and [`Laplace::sample_with`] run the identical per-sample
/// transform).
const WIDE_LANES: usize = 8;

/// Exponent pattern of `2^52`: OR-ing a value `v < 2^52` into the mantissa
/// field gives exactly `2^52 + v`, so `from_bits(WIDE_EXP | v) - 2^52` is
/// the exact integer-to-f64 conversion for 52-bit values — pure bitwise OR
/// plus one subtract, which AVX2 vectorizes (packed `u64 → f64` conversion
/// is AVX-512-only; this trick is how the wide kernel stays `x86-64-v3`).
const WIDE_EXP: u64 = 0x4330_0000_0000_0000;

/// [`WIDE_EXP`] with the low mantissa bit pre-set: OR-ing `bits >> 12` into
/// it builds `2^52 + v` with `v` odd in a single operation (the `| 1` and
/// the exponent OR touch disjoint bit positions, so they fuse).
const WIDE_SEED: u64 = WIDE_EXP | 1;

/// `2^52` (an exact power of two) for the wide kernel's bits→integer
/// conversion, and the bias used by its exponent extraction (`2^52 + 64`,
/// see [`Laplace::sample_from_bits`]).
const TWO_POW_52: f64 = 4_503_599_627_370_496.0;
const WIDE_K_BIAS: f64 = TWO_POW_52 + 64.0;

/// The fused range-reduction offset: [`REDUCTION_OFF`] plus a 52-step
/// exponent decrement. The kernel's uniform is `x = y · 2⁻⁵²` with `y` the
/// raw 52-bit integer as an f64; because the scale is an exact power of
/// two, `bits(x) = bits(y) − (52 << 52)`, so subtracting `WIDE_OFF` from
/// `bits(y)` lands exactly on `bits(x) − REDUCTION_OFF` — the multiply by
/// 2⁻⁵² never has to happen.
const WIDE_OFF: u64 = REDUCTION_OFF + (52u64 << 52);

/// A Laplace distribution with location `mu` and scale `b > 0`.
///
/// The density is `f(x) = exp(-|x - mu| / b) / (2b)`; the variance is `2 b²`.
/// The Laplace mechanism releases `q(I) + Lap(Δq / ε)` noise per answer
/// (Proposition 1 of the paper), so the workspace constructs this type with
/// `b = sensitivity / epsilon` and `mu = 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Laplace {
    mu: f64,
    b: f64,
}

impl Laplace {
    /// Creates a Laplace distribution centred at `mu` with scale `b`.
    ///
    /// # Errors
    ///
    /// Returns [`NoiseError::InvalidParameter`] unless `b` is finite and
    /// strictly positive.
    pub fn new(mu: f64, b: f64) -> Result<Self, NoiseError> {
        if !b.is_finite() || b <= 0.0 {
            return Err(NoiseError::InvalidParameter {
                name: "scale",
                value: b,
            });
        }
        if !mu.is_finite() {
            return Err(NoiseError::InvalidParameter {
                name: "location",
                value: mu,
            });
        }
        Ok(Self { mu, b })
    }

    /// A zero-mean Laplace with scale `b` — the shape used by the mechanism.
    pub fn centered(b: f64) -> Result<Self, NoiseError> {
        Self::new(0.0, b)
    }

    /// The location parameter `mu`.
    #[inline]
    pub fn location(&self) -> f64 {
        self.mu
    }

    /// The scale parameter `b`.
    #[inline]
    pub fn scale(&self) -> f64 {
        self.b
    }

    /// The variance, `2 b²`. This is the per-count `error` contribution used
    /// throughout the paper's analysis (e.g. `error(L̃) = 2n/ε²`).
    #[inline]
    pub fn variance(&self) -> f64 {
        2.0 * self.b * self.b
    }

    /// Probability density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        (-(x - self.mu).abs() / self.b).exp() / (2.0 * self.b)
    }

    /// Cumulative distribution function at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.b;
        if z < 0.0 {
            0.5 * z.exp()
        } else {
            1.0 - 0.5 * (-z).exp()
        }
    }

    /// Quantile (inverse CDF) at probability `p ∈ (0, 1)`.
    ///
    /// Out-of-range `p` saturates to ±∞, matching the usual convention.
    pub fn quantile(&self, p: f64) -> f64 {
        if p <= 0.0 {
            return f64::NEG_INFINITY;
        }
        if p >= 1.0 {
            return f64::INFINITY;
        }
        if p < 0.5 {
            self.mu + self.b * (2.0 * p).ln()
        } else {
            self.mu - self.b * (2.0 * (1.0 - p)).ln()
        }
    }

    /// Draws one sample by inverse-CDF transform of a uniform variate.
    ///
    /// Uses `u ~ Uniform(-1/2, 1/2)` and returns
    /// `mu - b * sign(u) * ln(1 - 2|u|)`, which is exact and branchless:
    /// the sign transfer is a `copysign` rather than a 50/50 branch the
    /// predictor cannot learn (`u` is never `-0.0` — `0.5 − x` for
    /// `x ∈ [0, 1)` only hits zero at `x = 0.5`, which gives `+0.0` — and
    /// `a + (-m)` is IEEE-identical to `a − m`, so the samples match the
    /// branching formulation bit for bit).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // `random::<f64>()` is uniform on [0, 1); shift to (-1/2, 1/2].
        let u = 0.5 - rng.random::<f64>();
        let magnitude = -self.b * (1.0 - 2.0 * u.abs()).ln();
        self.mu + magnitude.copysign(u)
    }

    /// One sample through the named backend.
    ///
    /// Consumes exactly one uniform draw either way, so a stream of
    /// `sample_with` calls stays draw-for-draw aligned with [`Self::sample`]
    /// (and with the batch paths) regardless of backend; only the `ln`
    /// arithmetic — and therefore the low bits of the sample — differs.
    pub fn sample_with<R: Rng + ?Sized>(&self, backend: NoiseBackend, rng: &mut R) -> f64 {
        match backend {
            NoiseBackend::Reference => self.sample(rng),
            NoiseBackend::FastLn => {
                let u = 0.5 - rng.random::<f64>();
                self.mu + self.fast_magnitude(u).copysign(u)
            }
            NoiseBackend::FastLnWide => self.sample_from_bits(rng.next_u64()),
        }
    }

    /// The `FastLnWide` per-sample transform: one `u64` of raw RNG bits to
    /// one Laplace sample, with no branch and no boundary case.
    ///
    /// * **Sign** comes from bit 0, applied by XOR-ing it into the sign bit
    ///   of the (always-positive) magnitude — equivalent to `copysign`.
    /// * **Uniform** comes from bits 12…63: `x = ((bits >> 12) | 1) · 2⁻⁵²`,
    ///   an *odd* multiple of 2⁻⁵² in (0, 1). Odd means `x` is never zero
    ///   (no `±∞` guard — the one select `FastLn` needs) and never 1, and
    ///   every value is a positive normal.
    /// * **Logarithm** is the kernel's own fused `ln`, not a call to
    ///   [`fast_ln`]: the same `z ∈ [0.6875, 1.375)` range reduction and
    ///   `2·atanh`-series evaluation, but operating on the raw integer
    ///   `y = 2⁵² + v` directly. Because the 2⁻⁵² scale is an exact power
    ///   of two it is folded into the reduction constant ([`WIDE_OFF`]) —
    ///   the uniform is never materialized — and the reduced exponent `k`
    ///   is rebuilt through the same `from_bits(2⁵² | m) − bias` trick
    ///   ([`WIDE_K_BIAS`]; `k + 64 ∈ [12, 64]` always fits the low 12 bits)
    ///   instead of a cross-lane integer→f64 conversion. The reduction is
    ///   bit-for-bit the one `fast_ln` performs (the tests pin this); the
    ///   polynomial drops `fast_ln`'s final 1/23 term, whose contribution
    ///   over this kernel's input set (`|s| ≤ 0.1852`, `w < 0.0344`) is far
    ///   below one ulp — the audited bound is
    ///   [`crate::backend::FAST_LN_MAX_ULP`], measured ≤ 2
    ///   (`wide_kernel_ln_stays_within_documented_ulp`).
    ///
    /// Everything is straight-line lane arithmetic — OR, integer subtract,
    /// one divide, and explicit `mul_add`s, every step exactly rounded — so
    /// scalar and SIMD evaluation produce identical bits.
    ///
    /// The distribution is exactly Laplace: sign is an independent fair bit
    /// and `x` is uniform on the 2⁵² odd multiples of 2⁻⁵², a standard
    /// equidistributed discretization of (0, 1) — the same family of
    /// approximation every 53-bit-uniform sampler makes.
    #[inline]
    fn sample_from_bits(&self, bits: u64) -> f64 {
        // y = 2^52 + v exactly, v = (bits >> 12) | 1; subtracting 2^52
        // normalizes v into a f64 without a packed u64→f64 conversion.
        let y = f64::from_bits((bits >> 12) | WIDE_SEED) - TWO_POW_52;
        let ybits = y.to_bits();
        // tmp == bits(x) - REDUCTION_OFF for x = y·2^-52 (exact fold).
        let tmp = ybits.wrapping_sub(WIDE_OFF);
        let e = tmp >> 52;
        // Low 12 bits of e are k in two's complement, k ∈ [-52, 0]; bias by
        // +64 so the value is always positive, then convert via from_bits.
        let k = f64::from_bits(WIDE_EXP | (e.wrapping_add(64) & 0xFFF)) - WIDE_K_BIAS;
        // z = x · 2^-k ∈ [0.6875, 1.375): clear k from the exponent field.
        let z = f64::from_bits(ybits.wrapping_sub(e.wrapping_add(52) << 52));
        let s = (z - 1.0) / (z + 1.0);
        let w = s * s;
        let w2 = w * w;
        let w4 = w2 * w2;
        let a0 = w.mul_add(1.0 / 5.0, 1.0 / 3.0);
        let a1 = w.mul_add(1.0 / 9.0, 1.0 / 7.0);
        let a2 = w.mul_add(1.0 / 13.0, 1.0 / 11.0);
        let a3 = w.mul_add(1.0 / 17.0, 1.0 / 15.0);
        let a4 = w.mul_add(1.0 / 21.0, 1.0 / 19.0);
        let b0 = w2.mul_add(a1, a0);
        let b1 = w2.mul_add(a3, a2);
        let p = w4.mul_add(w4.mul_add(a4, b1), b0);
        // The scale is folded into the recombination: with s' = (−2b)·s and
        // −b·ln2 pre-scaled (hoisted out of the fill loop), the magnitude
        // −b·(k·ln2 + 2s(1 + w·P)) falls out of the same three FMAs that
        // would have produced the ln — the final multiply disappears. At
        // b = 1 every folded constant is exact (−2, −LN2_HI, −LN2_LO), so
        // the ulp audit below measures the unscaled kernel ln itself.
        let sb = (-2.0 * self.b) * s;
        let t = sb.mul_add(w * p, sb);
        let magnitude = k.mul_add(-self.b * LN2_HI, k.mul_add(-self.b * LN2_LO, t));
        self.mu + f64::from_bits(magnitude.to_bits() ^ ((bits & 1) << 63))
    }

    /// The `FastLn` magnitude `−b · fast_ln(1 − 2|u|)` for `u ∈ (−1/2, 1/2]`.
    ///
    /// The argument `1 − 2|u|` is an even multiple of 2⁻⁵³ in `(0, 1]`, so
    /// it is a positive normal — inside [`fast_ln`]'s domain — except for
    /// the single point `u = 1/2` (uniform draw exactly 0, probability
    /// 2⁻⁵³), which the select maps to the reference answer `+∞`.
    #[inline]
    fn fast_magnitude(&self, u: f64) -> f64 {
        let x = 1.0 - 2.0 * u.abs();
        let l = if x == 0.0 {
            f64::NEG_INFINITY
        } else {
            fast_ln(x)
        };
        -self.b * l
    }

    /// Fills `out` with i.i.d. samples, overwriting its contents.
    ///
    /// This is the buffer-reuse primitive behind the allocation-free release
    /// paths: the caller owns `out` and recycles it across trials.
    pub fn fill<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        for slot in out {
            *slot = self.sample(rng);
        }
    }

    /// [`Self::fill`] through the named backend.
    ///
    /// `Reference` is exactly [`Self::fill`]. `FastLn` draws each block's
    /// uniforms first and then runs the polynomial transform over the block
    /// (vectorized), with a scalar tail; its output is bit-identical to
    /// calling [`Self::sample_with`]`(FastLn)` once per slot, so sample
    /// values never depend on buffer length or block boundaries.
    pub fn fill_with<R: Rng + ?Sized>(&self, backend: NoiseBackend, rng: &mut R, out: &mut [f64]) {
        match backend {
            NoiseBackend::Reference => self.fill(rng, out),
            NoiseBackend::FastLn => self.fast_ln_pass::<false, R>(rng, out),
            NoiseBackend::FastLnWide => self.fill_wide::<false, R>(rng, out),
        }
    }

    /// The shared `FastLn` block loop behind [`Self::fill_with`] and
    /// [`Self::add_noise_with`] — one implementation so the draw order, the
    /// blocking, and the per-sample transform cannot drift apart between
    /// the two entry points. `ACCUMULATE` selects write (`=`, fill) versus
    /// perturb (`+=`, add-noise); the sample value expression is identical,
    /// so both stay bit-aligned with the scalar [`Self::sample_with`] path.
    ///
    /// The fill case stages nothing: the block's uniforms are drawn into
    /// the output slots themselves and transformed in place (same draw
    /// order, same per-sample arithmetic, identical bits — the golden pins
    /// are the regression net). Only add-noise keeps the stack `us` buffer,
    /// because there the output holds the values being perturbed.
    fn fast_ln_pass<const ACCUMULATE: bool, R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        values: &mut [f64],
    ) {
        let mut us = [0.0f64; FAST_BLOCK];
        let mut blocks = values.chunks_exact_mut(FAST_BLOCK);
        for block in &mut blocks {
            if ACCUMULATE {
                for u in us.iter_mut() {
                    *u = 0.5 - rng.random::<f64>();
                }
                for (slot, &u) in block.iter_mut().zip(&us) {
                    *slot += self.mu + self.fast_magnitude(u).copysign(u);
                }
            } else {
                for slot in block.iter_mut() {
                    *slot = 0.5 - rng.random::<f64>();
                }
                for slot in block.iter_mut() {
                    let u = *slot;
                    *slot = self.mu + self.fast_magnitude(u).copysign(u);
                }
            }
        }
        for slot in blocks.into_remainder() {
            let sample = self.sample_with(NoiseBackend::FastLn, rng);
            if ACCUMULATE {
                *slot += sample;
            } else {
                *slot = sample;
            }
        }
    }

    /// The fused `FastLnWide` kernel behind [`Self::fill_with`] and
    /// [`Self::add_noise_with`]: the raw `u64`s for each
    /// [`WIDE_LANES`]-draw strip come from one [`Self::draw_strip`] call
    /// (the generator's state words and the drawn bits stay in registers
    /// across the strip instead of round-tripping through memory once per
    /// draw; stream-identical to a bulk [`Rng::fill_u64`]), then
    /// [`Self::sample_from_bits`] runs over the strip as one
    /// autovectorized pass, writing finished samples straight into the
    /// output — the only scratch is two 64 B raw-bits register blocks; no
    /// `f64` uniform staging buffer anywhere. The loop is software-
    /// pipelined one strip-pair deep: each iteration transforms the bits
    /// drawn on the *previous* iteration while issuing the next two
    /// strips' draws, so the generator's serial state recurrence and the
    /// vector transform — which share no data — overlap in the
    /// out-of-order core instead of serializing. Pipelining reorders only
    /// *when* a strip is transformed, never when it is drawn: `fill_u64`
    /// calls still happen in strip order, so the draw stream — and with
    /// it every sample bit — is identical to the unpipelined loop. Every
    /// per-lane operation is exactly rounded, so the strips, the scalar
    /// tail, and the per-sample [`Self::sample_with`] path produce
    /// identical bits: sample values never depend on buffer length, lane
    /// position, or how a fill is split across calls.
    fn fill_wide<const ACCUMULATE: bool, R: Rng + ?Sized>(&self, rng: &mut R, values: &mut [f64]) {
        let mut pairs = values.chunks_exact_mut(2 * WIDE_LANES);
        if let Some(first) = pairs.next() {
            let mut bits_a = Self::draw_strip(rng);
            let mut bits_b = Self::draw_strip(rng);
            let mut pending = first;
            for pair in &mut pairs {
                let (lo, hi) = pending.split_at_mut(WIDE_LANES);
                self.transform_strip::<ACCUMULATE>(&bits_a, lo);
                bits_a = Self::draw_strip(rng);
                self.transform_strip::<ACCUMULATE>(&bits_b, hi);
                bits_b = Self::draw_strip(rng);
                pending = pair;
            }
            let (lo, hi) = pending.split_at_mut(WIDE_LANES);
            self.transform_strip::<ACCUMULATE>(&bits_a, lo);
            self.transform_strip::<ACCUMULATE>(&bits_b, hi);
        }
        for slot in pairs.into_remainder() {
            let sample = self.sample_from_bits(rng.next_u64());
            if ACCUMULATE {
                *slot += sample;
            } else {
                *slot = sample;
            }
        }
    }

    /// One [`WIDE_LANES`]-draw strip of raw generator output: one scalar
    /// step per lane, in lane order — the identical stream to a bulk
    /// [`Rng::fill_u64`] over the strip (one `u64` per draw, draw order is
    /// index order; pinned by the call-splitting proptests). Returned *by
    /// value* as an array literal of SSA scalars deliberately: handing the
    /// strip over through a `&mut [u64]` out-parameter left the register
    /// promotion to the caller's codegen context, and in some binaries a
    /// few lanes round-tripped through the stack, stalling the vector
    /// transform behind store-forwarding (~25% on the fill).
    /// The elementwise [`Self::sample_from_bits`] transform over one strip,
    /// write (`=`) or perturb (`+=`) selected by `ACCUMULATE`. All eight
    /// lanes are explicit statements rather than a lane loop: each lane's
    /// bits and sample stay SSA scalars the SLP vectorizer packs directly
    /// (`vmovq`/`vpunpcklqdq`), never a stack array whose vector reload
    /// would stall behind the scalar draw stores.
    #[inline(always)]
    fn transform_strip<const ACCUMULATE: bool>(&self, bits: &[u64; WIDE_LANES], out: &mut [f64]) {
        let out: &mut [f64; WIDE_LANES] = out.try_into().expect("strip width");
        let s0 = self.sample_from_bits(bits[0]);
        let s1 = self.sample_from_bits(bits[1]);
        let s2 = self.sample_from_bits(bits[2]);
        let s3 = self.sample_from_bits(bits[3]);
        let s4 = self.sample_from_bits(bits[4]);
        let s5 = self.sample_from_bits(bits[5]);
        let s6 = self.sample_from_bits(bits[6]);
        let s7 = self.sample_from_bits(bits[7]);
        if ACCUMULATE {
            out[0] += s0;
            out[1] += s1;
            out[2] += s2;
            out[3] += s3;
            out[4] += s4;
            out[5] += s5;
            out[6] += s6;
            out[7] += s7;
        } else {
            out[0] = s0;
            out[1] = s1;
            out[2] = s2;
            out[3] = s3;
            out[4] = s4;
            out[5] = s5;
            out[6] = s6;
            out[7] = s7;
        }
    }

    #[inline(always)]
    fn draw_strip<R: Rng + ?Sized>(rng: &mut R) -> [u64; WIDE_LANES] {
        [
            rng.next_u64(),
            rng.next_u64(),
            rng.next_u64(),
            rng.next_u64(),
            rng.next_u64(),
            rng.next_u64(),
            rng.next_u64(),
            rng.next_u64(),
        ]
    }

    /// Fills `out` with i.i.d. samples (alias of [`Self::fill`]).
    pub fn sample_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        self.fill(rng, out);
    }

    /// Adds one i.i.d. sample to each element of `values` in place — the
    /// `q̃ = Q(I) + ⟨Lap(b)⟩` perturbation of Proposition 1 without the
    /// intermediate noise vector.
    ///
    /// Draws exactly one sample per element in slice order, so a release
    /// built on this consumes the RNG stream identically to one that calls
    /// [`Self::sample`] per answer.
    pub fn add_noise<R: Rng + ?Sized>(&self, rng: &mut R, values: &mut [f64]) {
        for v in values {
            *v += self.sample(rng);
        }
    }

    /// [`Self::add_noise`] through the named backend (see
    /// [`Self::fill_with`] for the `FastLn` blocking; the perturbation adds
    /// the same samples, so `v + sample` bits match the per-sample path).
    pub fn add_noise_with<R: Rng + ?Sized>(
        &self,
        backend: NoiseBackend,
        rng: &mut R,
        values: &mut [f64],
    ) {
        match backend {
            NoiseBackend::Reference => self.add_noise(rng, values),
            NoiseBackend::FastLn => self.fast_ln_pass::<true, R>(rng, values),
            NoiseBackend::FastLnWide => self.fill_wide::<true, R>(rng, values),
        }
    }

    /// Draws `n` i.i.d. samples — the `⟨Lap(σ)⟩ᵈ` vector of Proposition 1.
    pub fn sample_vec<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;

    #[test]
    fn rejects_bad_scale() {
        assert!(Laplace::new(0.0, 0.0).is_err());
        assert!(Laplace::new(0.0, -1.0).is_err());
        assert!(Laplace::new(0.0, f64::NAN).is_err());
        assert!(Laplace::new(0.0, f64::INFINITY).is_err());
        assert!(Laplace::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn pdf_integrates_to_one() {
        let d = Laplace::centered(1.5).unwrap();
        // Trapezoidal integration over a wide interval.
        let (lo, hi, steps) = (-40.0f64, 40.0f64, 200_000usize);
        let h = (hi - lo) / steps as f64;
        let mut total = 0.0;
        for i in 0..=steps {
            let x = lo + h * i as f64;
            let w = if i == 0 || i == steps { 0.5 } else { 1.0 };
            total += w * d.pdf(x);
        }
        total *= h;
        // Trapezoid error is dominated by the kink at the mode; 1e-7 is the
        // right tolerance for this step size.
        assert!((total - 1.0).abs() < 1e-7, "integral = {total}");
    }

    #[test]
    fn cdf_matches_known_values() {
        let d = Laplace::centered(1.0).unwrap();
        assert!((d.cdf(0.0) - 0.5).abs() < 1e-12);
        // P(X <= -ln 2) = 0.5 * exp(-ln 2) = 0.25
        assert!((d.cdf(-(2.0f64.ln())) - 0.25).abs() < 1e-12);
        assert!((d.cdf(2.0f64.ln()) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let d = Laplace::new(3.0, 0.7).unwrap();
        for &p in &[0.001, 0.1, 0.25, 0.5, 0.75, 0.9, 0.999] {
            let x = d.quantile(p);
            assert!((d.cdf(x) - p).abs() < 1e-10, "p = {p}");
        }
    }

    #[test]
    fn quantile_saturates_outside_unit_interval() {
        let d = Laplace::centered(1.0).unwrap();
        assert_eq!(d.quantile(0.0), f64::NEG_INFINITY);
        assert_eq!(d.quantile(1.0), f64::INFINITY);
    }

    #[test]
    fn sample_moments_match_theory() {
        let d = Laplace::centered(2.0).unwrap();
        let mut rng = rng_from_seed(7);
        let n = 200_000;
        let samples = d.sample_vec(&mut rng, n);
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        // std of the sample mean is sqrt(2*4/200000) ~ 0.0063; allow 5 sigma.
        assert!(mean.abs() < 0.05, "mean = {mean}");
        assert!(
            (var - d.variance()).abs() / d.variance() < 0.05,
            "var = {var}"
        );
    }

    #[test]
    fn sample_respects_location() {
        let d = Laplace::new(10.0, 0.5).unwrap();
        let mut rng = rng_from_seed(8);
        let n = 100_000;
        let mean = d.sample_vec(&mut rng, n).iter().sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean = {mean}");
    }

    #[test]
    fn empirical_cdf_matches_analytic() {
        let d = Laplace::centered(1.0).unwrap();
        let mut rng = rng_from_seed(9);
        let n = 100_000;
        let samples = d.sample_vec(&mut rng, n);
        for &x in &[-2.0, -0.5, 0.0, 0.5, 2.0] {
            let emp = samples.iter().filter(|&&s| s <= x).count() as f64 / n as f64;
            assert!(
                (emp - d.cdf(x)).abs() < 0.01,
                "x = {x}: empirical {emp} vs {}",
                d.cdf(x)
            );
        }
    }

    #[test]
    fn sample_into_fills_whole_slice() {
        let d = Laplace::centered(1.0).unwrap();
        let mut rng = rng_from_seed(10);
        let mut buf = vec![f64::NAN; 64];
        d.sample_into(&mut rng, &mut buf);
        assert!(buf.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn fill_matches_per_sample_draws() {
        let d = Laplace::centered(2.5).unwrap();
        let mut filled = vec![0.0f64; 33];
        d.fill(&mut rng_from_seed(11), &mut filled);
        let mut rng = rng_from_seed(11);
        let singles: Vec<f64> = (0..33).map(|_| d.sample(&mut rng)).collect();
        assert_eq!(filled, singles);
    }

    #[test]
    fn add_noise_consumes_the_same_stream_as_per_sample_addition() {
        let d = Laplace::centered(0.7).unwrap();
        let base: Vec<f64> = (0..50).map(|i| i as f64 * 0.5 - 3.0).collect();
        let mut perturbed = base.clone();
        d.add_noise(&mut rng_from_seed(12), &mut perturbed);
        let mut rng = rng_from_seed(12);
        let reference: Vec<f64> = base.iter().map(|v| v + d.sample(&mut rng)).collect();
        assert_eq!(perturbed, reference);
    }

    #[test]
    fn reference_backend_is_the_plain_paths_bit_for_bit() {
        let d = Laplace::new(1.5, 0.8).unwrap();
        let mut a = vec![0.0f64; 100];
        let mut b = vec![0.0f64; 100];
        d.fill(&mut rng_from_seed(13), &mut a);
        d.fill_with(NoiseBackend::Reference, &mut rng_from_seed(13), &mut b);
        assert_eq!(a, b);
        d.add_noise(&mut rng_from_seed(14), &mut a);
        d.add_noise_with(NoiseBackend::Reference, &mut rng_from_seed(14), &mut b);
        assert_eq!(a, b);
        assert_eq!(
            d.sample(&mut rng_from_seed(15)),
            d.sample_with(NoiseBackend::Reference, &mut rng_from_seed(15))
        );
    }

    #[test]
    fn fast_backend_is_block_boundary_independent() {
        // Sizes straddling the 256-sample block: bits must equal the scalar
        // per-sample path at every length, remainder included.
        let d = Laplace::new(-2.0, 3.1).unwrap();
        for len in [0usize, 1, 255, 256, 257, 512, 700] {
            let mut filled = vec![f64::NAN; len];
            d.fill_with(NoiseBackend::FastLn, &mut rng_from_seed(16), &mut filled);
            let mut rng = rng_from_seed(16);
            let singles: Vec<f64> = (0..len)
                .map(|_| d.sample_with(NoiseBackend::FastLn, &mut rng))
                .collect();
            assert_eq!(filled, singles, "len = {len}");

            let base: Vec<f64> = (0..len).map(|i| i as f64 * 0.25 - 8.0).collect();
            let mut perturbed = base.clone();
            d.add_noise_with(NoiseBackend::FastLn, &mut rng_from_seed(17), &mut perturbed);
            let mut rng = rng_from_seed(17);
            let expect: Vec<f64> = base
                .iter()
                .map(|v| v + d.sample_with(NoiseBackend::FastLn, &mut rng))
                .collect();
            assert_eq!(perturbed, expect, "len = {len}");
        }
    }

    #[test]
    fn backends_stay_draw_aligned_and_close() {
        // Same seed ⇒ same uniforms ⇒ samples agree to fast_ln's accuracy:
        // relatively for the magnitude, hence to ~1e-14 relative per sample.
        let d = Laplace::centered(4.0).unwrap();
        let n = 4096;
        let mut reference = vec![0.0f64; n];
        let mut fast = vec![0.0f64; n];
        d.fill(&mut rng_from_seed(18), &mut reference);
        d.fill_with(NoiseBackend::FastLn, &mut rng_from_seed(18), &mut fast);
        for (i, (r, f)) in reference.iter().zip(&fast).enumerate() {
            assert_eq!(r.signum(), f.signum(), "sample {i} changed sign");
            let rel = (r - f).abs() / r.abs().max(f64::MIN_POSITIVE);
            assert!(rel < 1e-12, "sample {i}: {r} vs {f} (rel {rel:e})");
        }
    }

    #[test]
    fn fast_backend_moments_match_theory() {
        let d = Laplace::centered(2.0).unwrap();
        let mut rng = rng_from_seed(19);
        let n = 200_000;
        let mut samples = vec![0.0f64; n];
        d.fill_with(NoiseBackend::FastLn, &mut rng, &mut samples);
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean = {mean}");
        assert!(
            (var - d.variance()).abs() / d.variance() < 0.05,
            "var = {var}"
        );
    }

    #[test]
    fn wide_backend_is_lane_boundary_independent() {
        // Sizes straddling the 8-lane step: bits must equal the scalar
        // per-sample path at every length, remainder included.
        let d = Laplace::new(1.25, 0.9).unwrap();
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 255, 256, 257, 700] {
            let mut filled = vec![f64::NAN; len];
            d.fill_with(
                NoiseBackend::FastLnWide,
                &mut rng_from_seed(20),
                &mut filled,
            );
            let mut rng = rng_from_seed(20);
            let singles: Vec<f64> = (0..len)
                .map(|_| d.sample_with(NoiseBackend::FastLnWide, &mut rng))
                .collect();
            assert_eq!(filled, singles, "len = {len}");

            let base: Vec<f64> = (0..len).map(|i| i as f64 * 0.25 - 8.0).collect();
            let mut perturbed = base.clone();
            d.add_noise_with(
                NoiseBackend::FastLnWide,
                &mut rng_from_seed(21),
                &mut perturbed,
            );
            let mut rng = rng_from_seed(21);
            let expect: Vec<f64> = base
                .iter()
                .map(|v| v + d.sample_with(NoiseBackend::FastLnWide, &mut rng))
                .collect();
            assert_eq!(perturbed, expect, "len = {len}");
        }
    }

    #[test]
    fn wide_backend_consumes_one_u64_per_draw() {
        // Stream alignment: after n wide draws the RNG sits exactly where n
        // reference draws leave it, so backends stay interchangeable
        // mid-stream (the versioning policy's stream contract).
        let d = Laplace::centered(1.0).unwrap();
        let n = 37;
        let mut wide_rng = rng_from_seed(22);
        let mut ref_rng = rng_from_seed(22);
        let mut buf = vec![0.0f64; n];
        d.fill_with(NoiseBackend::FastLnWide, &mut wide_rng, &mut buf);
        for _ in 0..n {
            d.sample(&mut ref_rng);
        }
        assert_eq!(wide_rng.next_u64(), ref_rng.next_u64());
    }

    #[test]
    fn wide_backend_moments_match_theory() {
        let d = Laplace::centered(2.0).unwrap();
        let mut rng = rng_from_seed(23);
        let n = 200_000;
        let mut samples = vec![0.0f64; n];
        d.fill_with(NoiseBackend::FastLnWide, &mut rng, &mut samples);
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean = {mean}");
        assert!(
            (var - d.variance()).abs() / d.variance() < 0.05,
            "var = {var}"
        );
    }

    #[test]
    fn wide_transform_never_leaves_the_ln_domain() {
        // The adversarial bit patterns: all-zero bits give the smallest
        // uniform (2^-52, a positive normal — no ±∞ case at all), all-one
        // bits the largest (1 − 2^-52). Both must produce finite samples
        // through the branch-free fused kernel.
        let d = Laplace::centered(3.0).unwrap();
        for bits in [0u64, u64::MAX, 1, 1 << 63, (1 << 12) - 1] {
            let s = d.sample_from_bits(bits);
            assert!(s.is_finite(), "bits = {bits:#x} gave {s}");
        }
        // Sign bit: bit 0 set flips the magnitude's sign exactly.
        let pos = d.sample_from_bits(0b10 << 12);
        let neg = d.sample_from_bits((0b10 << 12) | 1);
        assert_eq!(pos, -neg);
        assert!(pos > 0.0);
    }

    #[test]
    fn wide_kernel_ln_stays_within_documented_ulp() {
        // With mu = 0 and b = 1 every step outside the fused ln is exact
        // (`-1.0 * l` flips only the sign bit, `0.0 + x` is the identity for
        // finite nonzero x), so |sample_from_bits(bits)| *is* the kernel's
        // ln magnitude and can be audited against `f64::ln` of the
        // reconstructed uniform without any extra API.
        let d = Laplace::new(0.0, 1.0).unwrap();
        let mut rng = rng_from_seed(24);
        let mut max_ulp = 0u64;
        let mut worst = 0u64;
        let mut check = |bits: u64| {
            let got = d.sample_from_bits(bits).abs();
            let x = ((bits >> 12) | 1) as f64 * 2.0f64.powi(-52);
            let want = x.ln().abs();
            let ulp = (got.to_bits() as i64 - want.to_bits() as i64).unsigned_abs();
            if ulp > max_ulp {
                max_ulp = ulp;
                worst = bits;
            }
        };
        for _ in 0..300_000 {
            check(rng.next_u64());
        }
        // Adversarial corners: domain extremes, reduction boundaries (the
        // uniforms nearest 0.6875·2^k and 1.375·2^k), and x near 1.
        for bits in [
            0u64,
            u64::MAX,
            1 << 12,
            (1 << 12) - 1,
            0xB000_0000_0000_0000,           // x just below 0.6875
            0xB000_0000_0000_1000,           // x at/above 0.6875
            u64::MAX << 13,                  // x just below 1 − 2^-52
            (0x5800_0000_0000_0000u64) << 1, // x near 0.6875/2
        ] {
            check(bits);
        }
        assert!(
            max_ulp <= crate::backend::FAST_LN_MAX_ULP,
            "max ulp {max_ulp} at bits = {worst:#x} exceeds the documented bound"
        );
        // Empirically the fused kernel matches fast_ln's ≤ 2 ulp envelope
        // (measured max 1); record the tighter bound so drift is visible.
        assert!(max_ulp <= 2, "empirical bound drifted: {max_ulp} ulp");
    }

    #[test]
    fn fast_backend_guards_the_zero_uniform() {
        // A uniform draw of exactly 0 maps to u = 1/2 and a +∞ magnitude in
        // the reference; fast_ln's domain excludes the zero argument, so the
        // sampler's select must reproduce the ±∞ answer rather than feed 0
        // into the polynomial.
        let d = Laplace::centered(1.0).unwrap();
        assert_eq!(d.fast_magnitude(0.5), f64::INFINITY);
        assert_eq!(d.fast_magnitude(-0.5), f64::INFINITY);
        assert!(d.fast_magnitude(0.25).is_finite());
    }
}
