//! The continuous Laplace (double-exponential) distribution.

use rand::Rng;

use crate::backend::fast_ln;
use crate::{NoiseBackend, NoiseError};

/// Samples per block in the [`NoiseBackend::FastLn`] batch paths: the
/// uniforms for one block are drawn into a stack buffer first, then the
/// branch-free `fast_ln` transform runs over the buffer so the compiler can
/// vectorize it. 256 × 8 B = 2 KiB — resident in L1 alongside the output.
/// Block size never affects sample bits (the transform is elementwise and
/// consumes exactly one uniform per sample, in index order).
const FAST_BLOCK: usize = 256;

/// A Laplace distribution with location `mu` and scale `b > 0`.
///
/// The density is `f(x) = exp(-|x - mu| / b) / (2b)`; the variance is `2 b²`.
/// The Laplace mechanism releases `q(I) + Lap(Δq / ε)` noise per answer
/// (Proposition 1 of the paper), so the workspace constructs this type with
/// `b = sensitivity / epsilon` and `mu = 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Laplace {
    mu: f64,
    b: f64,
}

impl Laplace {
    /// Creates a Laplace distribution centred at `mu` with scale `b`.
    ///
    /// # Errors
    ///
    /// Returns [`NoiseError::InvalidParameter`] unless `b` is finite and
    /// strictly positive.
    pub fn new(mu: f64, b: f64) -> Result<Self, NoiseError> {
        if !b.is_finite() || b <= 0.0 {
            return Err(NoiseError::InvalidParameter {
                name: "scale",
                value: b,
            });
        }
        if !mu.is_finite() {
            return Err(NoiseError::InvalidParameter {
                name: "location",
                value: mu,
            });
        }
        Ok(Self { mu, b })
    }

    /// A zero-mean Laplace with scale `b` — the shape used by the mechanism.
    pub fn centered(b: f64) -> Result<Self, NoiseError> {
        Self::new(0.0, b)
    }

    /// The location parameter `mu`.
    #[inline]
    pub fn location(&self) -> f64 {
        self.mu
    }

    /// The scale parameter `b`.
    #[inline]
    pub fn scale(&self) -> f64 {
        self.b
    }

    /// The variance, `2 b²`. This is the per-count `error` contribution used
    /// throughout the paper's analysis (e.g. `error(L̃) = 2n/ε²`).
    #[inline]
    pub fn variance(&self) -> f64 {
        2.0 * self.b * self.b
    }

    /// Probability density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        (-(x - self.mu).abs() / self.b).exp() / (2.0 * self.b)
    }

    /// Cumulative distribution function at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.b;
        if z < 0.0 {
            0.5 * z.exp()
        } else {
            1.0 - 0.5 * (-z).exp()
        }
    }

    /// Quantile (inverse CDF) at probability `p ∈ (0, 1)`.
    ///
    /// Out-of-range `p` saturates to ±∞, matching the usual convention.
    pub fn quantile(&self, p: f64) -> f64 {
        if p <= 0.0 {
            return f64::NEG_INFINITY;
        }
        if p >= 1.0 {
            return f64::INFINITY;
        }
        if p < 0.5 {
            self.mu + self.b * (2.0 * p).ln()
        } else {
            self.mu - self.b * (2.0 * (1.0 - p)).ln()
        }
    }

    /// Draws one sample by inverse-CDF transform of a uniform variate.
    ///
    /// Uses `u ~ Uniform(-1/2, 1/2)` and returns
    /// `mu - b * sign(u) * ln(1 - 2|u|)`, which is exact and branchless:
    /// the sign transfer is a `copysign` rather than a 50/50 branch the
    /// predictor cannot learn (`u` is never `-0.0` — `0.5 − x` for
    /// `x ∈ [0, 1)` only hits zero at `x = 0.5`, which gives `+0.0` — and
    /// `a + (-m)` is IEEE-identical to `a − m`, so the samples match the
    /// branching formulation bit for bit).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // `random::<f64>()` is uniform on [0, 1); shift to (-1/2, 1/2].
        let u = 0.5 - rng.random::<f64>();
        let magnitude = -self.b * (1.0 - 2.0 * u.abs()).ln();
        self.mu + magnitude.copysign(u)
    }

    /// One sample through the named backend.
    ///
    /// Consumes exactly one uniform draw either way, so a stream of
    /// `sample_with` calls stays draw-for-draw aligned with [`Self::sample`]
    /// (and with the batch paths) regardless of backend; only the `ln`
    /// arithmetic — and therefore the low bits of the sample — differs.
    pub fn sample_with<R: Rng + ?Sized>(&self, backend: NoiseBackend, rng: &mut R) -> f64 {
        match backend {
            NoiseBackend::Reference => self.sample(rng),
            NoiseBackend::FastLn => {
                let u = 0.5 - rng.random::<f64>();
                self.mu + self.fast_magnitude(u).copysign(u)
            }
        }
    }

    /// The `FastLn` magnitude `−b · fast_ln(1 − 2|u|)` for `u ∈ (−1/2, 1/2]`.
    ///
    /// The argument `1 − 2|u|` is an even multiple of 2⁻⁵³ in `(0, 1]`, so
    /// it is a positive normal — inside [`fast_ln`]'s domain — except for
    /// the single point `u = 1/2` (uniform draw exactly 0, probability
    /// 2⁻⁵³), which the select maps to the reference answer `+∞`.
    #[inline]
    fn fast_magnitude(&self, u: f64) -> f64 {
        let x = 1.0 - 2.0 * u.abs();
        let l = if x == 0.0 {
            f64::NEG_INFINITY
        } else {
            fast_ln(x)
        };
        -self.b * l
    }

    /// Fills `out` with i.i.d. samples, overwriting its contents.
    ///
    /// This is the buffer-reuse primitive behind the allocation-free release
    /// paths: the caller owns `out` and recycles it across trials.
    pub fn fill<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        for slot in out {
            *slot = self.sample(rng);
        }
    }

    /// [`Self::fill`] through the named backend.
    ///
    /// `Reference` is exactly [`Self::fill`]. `FastLn` draws each block's
    /// uniforms first and then runs the polynomial transform over the block
    /// (vectorized), with a scalar tail; its output is bit-identical to
    /// calling [`Self::sample_with`]`(FastLn)` once per slot, so sample
    /// values never depend on buffer length or block boundaries.
    pub fn fill_with<R: Rng + ?Sized>(&self, backend: NoiseBackend, rng: &mut R, out: &mut [f64]) {
        match backend {
            NoiseBackend::Reference => self.fill(rng, out),
            NoiseBackend::FastLn => self.fast_ln_pass::<false, R>(rng, out),
        }
    }

    /// The shared `FastLn` block loop behind [`Self::fill_with`] and
    /// [`Self::add_noise_with`] — one implementation so the draw order, the
    /// blocking, and the per-sample transform cannot drift apart between
    /// the two entry points. `ACCUMULATE` selects write (`=`, fill) versus
    /// perturb (`+=`, add-noise); the sample value expression is identical,
    /// so both stay bit-aligned with the scalar [`Self::sample_with`] path.
    fn fast_ln_pass<const ACCUMULATE: bool, R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        values: &mut [f64],
    ) {
        let mut us = [0.0f64; FAST_BLOCK];
        let mut blocks = values.chunks_exact_mut(FAST_BLOCK);
        for block in &mut blocks {
            for u in us.iter_mut() {
                *u = 0.5 - rng.random::<f64>();
            }
            for (slot, &u) in block.iter_mut().zip(&us) {
                let sample = self.mu + self.fast_magnitude(u).copysign(u);
                if ACCUMULATE {
                    *slot += sample;
                } else {
                    *slot = sample;
                }
            }
        }
        for slot in blocks.into_remainder() {
            let sample = self.sample_with(NoiseBackend::FastLn, rng);
            if ACCUMULATE {
                *slot += sample;
            } else {
                *slot = sample;
            }
        }
    }

    /// Fills `out` with i.i.d. samples (alias of [`Self::fill`]).
    pub fn sample_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        self.fill(rng, out);
    }

    /// Adds one i.i.d. sample to each element of `values` in place — the
    /// `q̃ = Q(I) + ⟨Lap(b)⟩` perturbation of Proposition 1 without the
    /// intermediate noise vector.
    ///
    /// Draws exactly one sample per element in slice order, so a release
    /// built on this consumes the RNG stream identically to one that calls
    /// [`Self::sample`] per answer.
    pub fn add_noise<R: Rng + ?Sized>(&self, rng: &mut R, values: &mut [f64]) {
        for v in values {
            *v += self.sample(rng);
        }
    }

    /// [`Self::add_noise`] through the named backend (see
    /// [`Self::fill_with`] for the `FastLn` blocking; the perturbation adds
    /// the same samples, so `v + sample` bits match the per-sample path).
    pub fn add_noise_with<R: Rng + ?Sized>(
        &self,
        backend: NoiseBackend,
        rng: &mut R,
        values: &mut [f64],
    ) {
        match backend {
            NoiseBackend::Reference => self.add_noise(rng, values),
            NoiseBackend::FastLn => self.fast_ln_pass::<true, R>(rng, values),
        }
    }

    /// Draws `n` i.i.d. samples — the `⟨Lap(σ)⟩ᵈ` vector of Proposition 1.
    pub fn sample_vec<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;

    #[test]
    fn rejects_bad_scale() {
        assert!(Laplace::new(0.0, 0.0).is_err());
        assert!(Laplace::new(0.0, -1.0).is_err());
        assert!(Laplace::new(0.0, f64::NAN).is_err());
        assert!(Laplace::new(0.0, f64::INFINITY).is_err());
        assert!(Laplace::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn pdf_integrates_to_one() {
        let d = Laplace::centered(1.5).unwrap();
        // Trapezoidal integration over a wide interval.
        let (lo, hi, steps) = (-40.0f64, 40.0f64, 200_000usize);
        let h = (hi - lo) / steps as f64;
        let mut total = 0.0;
        for i in 0..=steps {
            let x = lo + h * i as f64;
            let w = if i == 0 || i == steps { 0.5 } else { 1.0 };
            total += w * d.pdf(x);
        }
        total *= h;
        // Trapezoid error is dominated by the kink at the mode; 1e-7 is the
        // right tolerance for this step size.
        assert!((total - 1.0).abs() < 1e-7, "integral = {total}");
    }

    #[test]
    fn cdf_matches_known_values() {
        let d = Laplace::centered(1.0).unwrap();
        assert!((d.cdf(0.0) - 0.5).abs() < 1e-12);
        // P(X <= -ln 2) = 0.5 * exp(-ln 2) = 0.25
        assert!((d.cdf(-(2.0f64.ln())) - 0.25).abs() < 1e-12);
        assert!((d.cdf(2.0f64.ln()) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let d = Laplace::new(3.0, 0.7).unwrap();
        for &p in &[0.001, 0.1, 0.25, 0.5, 0.75, 0.9, 0.999] {
            let x = d.quantile(p);
            assert!((d.cdf(x) - p).abs() < 1e-10, "p = {p}");
        }
    }

    #[test]
    fn quantile_saturates_outside_unit_interval() {
        let d = Laplace::centered(1.0).unwrap();
        assert_eq!(d.quantile(0.0), f64::NEG_INFINITY);
        assert_eq!(d.quantile(1.0), f64::INFINITY);
    }

    #[test]
    fn sample_moments_match_theory() {
        let d = Laplace::centered(2.0).unwrap();
        let mut rng = rng_from_seed(7);
        let n = 200_000;
        let samples = d.sample_vec(&mut rng, n);
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        // std of the sample mean is sqrt(2*4/200000) ~ 0.0063; allow 5 sigma.
        assert!(mean.abs() < 0.05, "mean = {mean}");
        assert!(
            (var - d.variance()).abs() / d.variance() < 0.05,
            "var = {var}"
        );
    }

    #[test]
    fn sample_respects_location() {
        let d = Laplace::new(10.0, 0.5).unwrap();
        let mut rng = rng_from_seed(8);
        let n = 100_000;
        let mean = d.sample_vec(&mut rng, n).iter().sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean = {mean}");
    }

    #[test]
    fn empirical_cdf_matches_analytic() {
        let d = Laplace::centered(1.0).unwrap();
        let mut rng = rng_from_seed(9);
        let n = 100_000;
        let samples = d.sample_vec(&mut rng, n);
        for &x in &[-2.0, -0.5, 0.0, 0.5, 2.0] {
            let emp = samples.iter().filter(|&&s| s <= x).count() as f64 / n as f64;
            assert!(
                (emp - d.cdf(x)).abs() < 0.01,
                "x = {x}: empirical {emp} vs {}",
                d.cdf(x)
            );
        }
    }

    #[test]
    fn sample_into_fills_whole_slice() {
        let d = Laplace::centered(1.0).unwrap();
        let mut rng = rng_from_seed(10);
        let mut buf = vec![f64::NAN; 64];
        d.sample_into(&mut rng, &mut buf);
        assert!(buf.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn fill_matches_per_sample_draws() {
        let d = Laplace::centered(2.5).unwrap();
        let mut filled = vec![0.0f64; 33];
        d.fill(&mut rng_from_seed(11), &mut filled);
        let mut rng = rng_from_seed(11);
        let singles: Vec<f64> = (0..33).map(|_| d.sample(&mut rng)).collect();
        assert_eq!(filled, singles);
    }

    #[test]
    fn add_noise_consumes_the_same_stream_as_per_sample_addition() {
        let d = Laplace::centered(0.7).unwrap();
        let base: Vec<f64> = (0..50).map(|i| i as f64 * 0.5 - 3.0).collect();
        let mut perturbed = base.clone();
        d.add_noise(&mut rng_from_seed(12), &mut perturbed);
        let mut rng = rng_from_seed(12);
        let reference: Vec<f64> = base.iter().map(|v| v + d.sample(&mut rng)).collect();
        assert_eq!(perturbed, reference);
    }

    #[test]
    fn reference_backend_is_the_plain_paths_bit_for_bit() {
        let d = Laplace::new(1.5, 0.8).unwrap();
        let mut a = vec![0.0f64; 100];
        let mut b = vec![0.0f64; 100];
        d.fill(&mut rng_from_seed(13), &mut a);
        d.fill_with(NoiseBackend::Reference, &mut rng_from_seed(13), &mut b);
        assert_eq!(a, b);
        d.add_noise(&mut rng_from_seed(14), &mut a);
        d.add_noise_with(NoiseBackend::Reference, &mut rng_from_seed(14), &mut b);
        assert_eq!(a, b);
        assert_eq!(
            d.sample(&mut rng_from_seed(15)),
            d.sample_with(NoiseBackend::Reference, &mut rng_from_seed(15))
        );
    }

    #[test]
    fn fast_backend_is_block_boundary_independent() {
        // Sizes straddling the 256-sample block: bits must equal the scalar
        // per-sample path at every length, remainder included.
        let d = Laplace::new(-2.0, 3.1).unwrap();
        for len in [0usize, 1, 255, 256, 257, 512, 700] {
            let mut filled = vec![f64::NAN; len];
            d.fill_with(NoiseBackend::FastLn, &mut rng_from_seed(16), &mut filled);
            let mut rng = rng_from_seed(16);
            let singles: Vec<f64> = (0..len)
                .map(|_| d.sample_with(NoiseBackend::FastLn, &mut rng))
                .collect();
            assert_eq!(filled, singles, "len = {len}");

            let base: Vec<f64> = (0..len).map(|i| i as f64 * 0.25 - 8.0).collect();
            let mut perturbed = base.clone();
            d.add_noise_with(NoiseBackend::FastLn, &mut rng_from_seed(17), &mut perturbed);
            let mut rng = rng_from_seed(17);
            let expect: Vec<f64> = base
                .iter()
                .map(|v| v + d.sample_with(NoiseBackend::FastLn, &mut rng))
                .collect();
            assert_eq!(perturbed, expect, "len = {len}");
        }
    }

    #[test]
    fn backends_stay_draw_aligned_and_close() {
        // Same seed ⇒ same uniforms ⇒ samples agree to fast_ln's accuracy:
        // relatively for the magnitude, hence to ~1e-14 relative per sample.
        let d = Laplace::centered(4.0).unwrap();
        let n = 4096;
        let mut reference = vec![0.0f64; n];
        let mut fast = vec![0.0f64; n];
        d.fill(&mut rng_from_seed(18), &mut reference);
        d.fill_with(NoiseBackend::FastLn, &mut rng_from_seed(18), &mut fast);
        for (i, (r, f)) in reference.iter().zip(&fast).enumerate() {
            assert_eq!(r.signum(), f.signum(), "sample {i} changed sign");
            let rel = (r - f).abs() / r.abs().max(f64::MIN_POSITIVE);
            assert!(rel < 1e-12, "sample {i}: {r} vs {f} (rel {rel:e})");
        }
    }

    #[test]
    fn fast_backend_moments_match_theory() {
        let d = Laplace::centered(2.0).unwrap();
        let mut rng = rng_from_seed(19);
        let n = 200_000;
        let mut samples = vec![0.0f64; n];
        d.fill_with(NoiseBackend::FastLn, &mut rng, &mut samples);
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean = {mean}");
        assert!(
            (var - d.variance()).abs() / d.variance() < 0.05,
            "var = {var}"
        );
    }

    #[test]
    fn fast_backend_guards_the_zero_uniform() {
        // A uniform draw of exactly 0 maps to u = 1/2 and a +∞ magnitude in
        // the reference; fast_ln's domain excludes the zero argument, so the
        // sampler's select must reproduce the ±∞ answer rather than feed 0
        // into the polynomial.
        let d = Laplace::centered(1.0).unwrap();
        assert_eq!(d.fast_magnitude(0.5), f64::INFINITY);
        assert_eq!(d.fast_magnitude(-0.5), f64::INFINITY);
        assert!(d.fast_magnitude(0.25).is_finite());
    }
}
