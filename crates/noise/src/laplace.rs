//! The continuous Laplace (double-exponential) distribution.

use rand::Rng;

use crate::NoiseError;

/// A Laplace distribution with location `mu` and scale `b > 0`.
///
/// The density is `f(x) = exp(-|x - mu| / b) / (2b)`; the variance is `2 b²`.
/// The Laplace mechanism releases `q(I) + Lap(Δq / ε)` noise per answer
/// (Proposition 1 of the paper), so the workspace constructs this type with
/// `b = sensitivity / epsilon` and `mu = 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Laplace {
    mu: f64,
    b: f64,
}

impl Laplace {
    /// Creates a Laplace distribution centred at `mu` with scale `b`.
    ///
    /// # Errors
    ///
    /// Returns [`NoiseError::InvalidParameter`] unless `b` is finite and
    /// strictly positive.
    pub fn new(mu: f64, b: f64) -> Result<Self, NoiseError> {
        if !b.is_finite() || b <= 0.0 {
            return Err(NoiseError::InvalidParameter {
                name: "scale",
                value: b,
            });
        }
        if !mu.is_finite() {
            return Err(NoiseError::InvalidParameter {
                name: "location",
                value: mu,
            });
        }
        Ok(Self { mu, b })
    }

    /// A zero-mean Laplace with scale `b` — the shape used by the mechanism.
    pub fn centered(b: f64) -> Result<Self, NoiseError> {
        Self::new(0.0, b)
    }

    /// The location parameter `mu`.
    #[inline]
    pub fn location(&self) -> f64 {
        self.mu
    }

    /// The scale parameter `b`.
    #[inline]
    pub fn scale(&self) -> f64 {
        self.b
    }

    /// The variance, `2 b²`. This is the per-count `error` contribution used
    /// throughout the paper's analysis (e.g. `error(L̃) = 2n/ε²`).
    #[inline]
    pub fn variance(&self) -> f64 {
        2.0 * self.b * self.b
    }

    /// Probability density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        (-(x - self.mu).abs() / self.b).exp() / (2.0 * self.b)
    }

    /// Cumulative distribution function at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.b;
        if z < 0.0 {
            0.5 * z.exp()
        } else {
            1.0 - 0.5 * (-z).exp()
        }
    }

    /// Quantile (inverse CDF) at probability `p ∈ (0, 1)`.
    ///
    /// Out-of-range `p` saturates to ±∞, matching the usual convention.
    pub fn quantile(&self, p: f64) -> f64 {
        if p <= 0.0 {
            return f64::NEG_INFINITY;
        }
        if p >= 1.0 {
            return f64::INFINITY;
        }
        if p < 0.5 {
            self.mu + self.b * (2.0 * p).ln()
        } else {
            self.mu - self.b * (2.0 * (1.0 - p)).ln()
        }
    }

    /// Draws one sample by inverse-CDF transform of a uniform variate.
    ///
    /// Uses `u ~ Uniform(-1/2, 1/2)` and returns
    /// `mu - b * sign(u) * ln(1 - 2|u|)`, which is exact and branchless:
    /// the sign transfer is a `copysign` rather than a 50/50 branch the
    /// predictor cannot learn (`u` is never `-0.0` — `0.5 − x` for
    /// `x ∈ [0, 1)` only hits zero at `x = 0.5`, which gives `+0.0` — and
    /// `a + (-m)` is IEEE-identical to `a − m`, so the samples match the
    /// branching formulation bit for bit).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // `random::<f64>()` is uniform on [0, 1); shift to (-1/2, 1/2].
        let u = 0.5 - rng.random::<f64>();
        let magnitude = -self.b * (1.0 - 2.0 * u.abs()).ln();
        self.mu + magnitude.copysign(u)
    }

    /// Fills `out` with i.i.d. samples, overwriting its contents.
    ///
    /// This is the buffer-reuse primitive behind the allocation-free release
    /// paths: the caller owns `out` and recycles it across trials.
    pub fn fill<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        for slot in out {
            *slot = self.sample(rng);
        }
    }

    /// Fills `out` with i.i.d. samples (alias of [`Self::fill`]).
    pub fn sample_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        self.fill(rng, out);
    }

    /// Adds one i.i.d. sample to each element of `values` in place — the
    /// `q̃ = Q(I) + ⟨Lap(b)⟩` perturbation of Proposition 1 without the
    /// intermediate noise vector.
    ///
    /// Draws exactly one sample per element in slice order, so a release
    /// built on this consumes the RNG stream identically to one that calls
    /// [`Self::sample`] per answer.
    pub fn add_noise<R: Rng + ?Sized>(&self, rng: &mut R, values: &mut [f64]) {
        for v in values {
            *v += self.sample(rng);
        }
    }

    /// Draws `n` i.i.d. samples — the `⟨Lap(σ)⟩ᵈ` vector of Proposition 1.
    pub fn sample_vec<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;

    #[test]
    fn rejects_bad_scale() {
        assert!(Laplace::new(0.0, 0.0).is_err());
        assert!(Laplace::new(0.0, -1.0).is_err());
        assert!(Laplace::new(0.0, f64::NAN).is_err());
        assert!(Laplace::new(0.0, f64::INFINITY).is_err());
        assert!(Laplace::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn pdf_integrates_to_one() {
        let d = Laplace::centered(1.5).unwrap();
        // Trapezoidal integration over a wide interval.
        let (lo, hi, steps) = (-40.0f64, 40.0f64, 200_000usize);
        let h = (hi - lo) / steps as f64;
        let mut total = 0.0;
        for i in 0..=steps {
            let x = lo + h * i as f64;
            let w = if i == 0 || i == steps { 0.5 } else { 1.0 };
            total += w * d.pdf(x);
        }
        total *= h;
        // Trapezoid error is dominated by the kink at the mode; 1e-7 is the
        // right tolerance for this step size.
        assert!((total - 1.0).abs() < 1e-7, "integral = {total}");
    }

    #[test]
    fn cdf_matches_known_values() {
        let d = Laplace::centered(1.0).unwrap();
        assert!((d.cdf(0.0) - 0.5).abs() < 1e-12);
        // P(X <= -ln 2) = 0.5 * exp(-ln 2) = 0.25
        assert!((d.cdf(-(2.0f64.ln())) - 0.25).abs() < 1e-12);
        assert!((d.cdf(2.0f64.ln()) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let d = Laplace::new(3.0, 0.7).unwrap();
        for &p in &[0.001, 0.1, 0.25, 0.5, 0.75, 0.9, 0.999] {
            let x = d.quantile(p);
            assert!((d.cdf(x) - p).abs() < 1e-10, "p = {p}");
        }
    }

    #[test]
    fn quantile_saturates_outside_unit_interval() {
        let d = Laplace::centered(1.0).unwrap();
        assert_eq!(d.quantile(0.0), f64::NEG_INFINITY);
        assert_eq!(d.quantile(1.0), f64::INFINITY);
    }

    #[test]
    fn sample_moments_match_theory() {
        let d = Laplace::centered(2.0).unwrap();
        let mut rng = rng_from_seed(7);
        let n = 200_000;
        let samples = d.sample_vec(&mut rng, n);
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        // std of the sample mean is sqrt(2*4/200000) ~ 0.0063; allow 5 sigma.
        assert!(mean.abs() < 0.05, "mean = {mean}");
        assert!(
            (var - d.variance()).abs() / d.variance() < 0.05,
            "var = {var}"
        );
    }

    #[test]
    fn sample_respects_location() {
        let d = Laplace::new(10.0, 0.5).unwrap();
        let mut rng = rng_from_seed(8);
        let n = 100_000;
        let mean = d.sample_vec(&mut rng, n).iter().sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean = {mean}");
    }

    #[test]
    fn empirical_cdf_matches_analytic() {
        let d = Laplace::centered(1.0).unwrap();
        let mut rng = rng_from_seed(9);
        let n = 100_000;
        let samples = d.sample_vec(&mut rng, n);
        for &x in &[-2.0, -0.5, 0.0, 0.5, 2.0] {
            let emp = samples.iter().filter(|&&s| s <= x).count() as f64 / n as f64;
            assert!(
                (emp - d.cdf(x)).abs() < 0.01,
                "x = {x}: empirical {emp} vs {}",
                d.cdf(x)
            );
        }
    }

    #[test]
    fn sample_into_fills_whole_slice() {
        let d = Laplace::centered(1.0).unwrap();
        let mut rng = rng_from_seed(10);
        let mut buf = vec![f64::NAN; 64];
        d.sample_into(&mut rng, &mut buf);
        assert!(buf.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn fill_matches_per_sample_draws() {
        let d = Laplace::centered(2.5).unwrap();
        let mut filled = vec![0.0f64; 33];
        d.fill(&mut rng_from_seed(11), &mut filled);
        let mut rng = rng_from_seed(11);
        let singles: Vec<f64> = (0..33).map(|_| d.sample(&mut rng)).collect();
        assert_eq!(filled, singles);
    }

    #[test]
    fn add_noise_consumes_the_same_stream_as_per_sample_addition() {
        let d = Laplace::centered(0.7).unwrap();
        let base: Vec<f64> = (0..50).map(|i| i as f64 * 0.5 - 3.0).collect();
        let mut perturbed = base.clone();
        d.add_noise(&mut rng_from_seed(12), &mut perturbed);
        let mut rng = rng_from_seed(12);
        let reference: Vec<f64> = base.iter().map(|v| v + d.sample(&mut rng)).collect();
        assert_eq!(perturbed, reference);
    }
}
