//! Deterministic seed derivation for reproducible experiments.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a [`StdRng`] from a 64-bit seed.
///
/// All randomness in the workspace should originate from a seed passed through
/// this function (directly or via [`SeedStream`]), never from OS entropy, so
/// every figure and test is bit-reproducible.
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A stream of independent 64-bit seeds derived from a master seed.
///
/// Experiments run many trials (often in parallel); giving each trial
/// `stream.nth(trial)` decouples the trial's randomness from execution order
/// and thread scheduling. Derivation uses the SplitMix64 finalizer, whose
/// output is equidistributed and passes BigCrush — more than adequate for
/// decorrelating seeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedStream {
    master: u64,
}

impl SeedStream {
    /// Creates a stream rooted at `master`.
    pub fn new(master: u64) -> Self {
        Self { master }
    }

    /// The `i`-th derived seed. Pure function of `(master, i)`.
    pub fn nth(&self, i: u64) -> u64 {
        splitmix64(self.master ^ splitmix64(i.wrapping_add(0x9E37_79B9_7F4A_7C15)))
    }

    /// A child stream, for nesting (e.g. per-dataset then per-trial).
    pub fn substream(&self, label: u64) -> SeedStream {
        SeedStream::new(self.nth(label ^ 0xA5A5_A5A5_A5A5_A5A5))
    }

    /// Convenience: the `i`-th derived RNG.
    pub fn rng(&self, i: u64) -> StdRng {
        rng_from_seed(self.nth(i))
    }
}

/// The SplitMix64 finalizer (Steele, Lea, Flood; JPDC 2014).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
// HashSet here only asserts distinctness (is_disjoint/len) — no iteration
// order ever reaches an assertion, so the determinism ban does not apply.
#[allow(clippy::disallowed_types)]
mod tests {
    use super::*;
    use rand::Rng;
    use std::collections::HashSet;

    #[test]
    fn same_seed_same_stream() {
        let a = SeedStream::new(42);
        let b = SeedStream::new(42);
        for i in 0..100 {
            assert_eq!(a.nth(i), b.nth(i));
        }
    }

    #[test]
    fn different_masters_decorrelate() {
        let a = SeedStream::new(1);
        let b = SeedStream::new(2);
        let overlap = (0..1000).filter(|&i| a.nth(i) == b.nth(i)).count();
        assert_eq!(overlap, 0);
    }

    #[test]
    fn seeds_are_distinct_within_stream() {
        let s = SeedStream::new(7);
        let seen: HashSet<u64> = (0..10_000).map(|i| s.nth(i)).collect();
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn substreams_do_not_collide_with_parent() {
        let s = SeedStream::new(9);
        let sub = s.substream(3);
        let parent: HashSet<u64> = (0..1000).map(|i| s.nth(i)).collect();
        let child: HashSet<u64> = (0..1000).map(|i| sub.nth(i)).collect();
        assert!(parent.is_disjoint(&child));
    }

    #[test]
    fn rng_reproducible() {
        let s = SeedStream::new(11);
        let x: f64 = s.rng(5).random();
        let y: f64 = s.rng(5).random();
        assert_eq!(x, y);
    }
}
