//! End-to-end checks of the `hc-lint` binary: every positive fixture fails,
//! every negative fixture passes, the JSON mode is machine-readable, and —
//! the self-check that makes the pass trustworthy — the live workspace is
//! lint-clean.

use std::path::Path;
use std::process::{Command, Output};

fn fixtures_root() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures")
}

fn workspace_root() -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
        .to_string_lossy()
        .into_owned()
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_hc-lint"))
        .args(args)
        .output()
        .expect("hc-lint binary runs")
}

fn lint_fixture(file: &str) -> Output {
    run(&["--root", fixtures_root(), file])
}

fn assert_fails_with(file: &str, rule: &str) {
    let out = lint_fixture(file);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(1),
        "{file} should fail the pass; stdout:\n{stdout}"
    );
    assert!(
        stdout.contains(&format!("[{rule}]")),
        "{file} should report [{rule}]; stdout:\n{stdout}"
    );
}

fn assert_clean(file: &str) {
    let out = lint_fixture(file);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{file} should be clean; stdout:\n{stdout}"
    );
}

#[test]
fn positive_fixtures_fail() {
    assert_fails_with("frozen_bits_bad.rs", "frozen-bits");
    assert_fails_with("determinism_bad.rs", "determinism");
    assert_fails_with("hot_alloc_bad.rs", "hot-path-alloc");
    assert_fails_with("thread_bad.rs", "thread-discipline");
    assert_fails_with("float_fold_bad.rs", "float-fold");
    assert_fails_with("stale_allow.rs", "stale-allow");
    assert_fails_with("unknown_rule.rs", "bad-annotation");
}

#[test]
fn negative_fixtures_pass() {
    assert_clean("frozen_bits_ok.rs");
    assert_clean("determinism_ok.rs");
    assert_clean("hot_alloc_ok.rs");
    assert_clean("thread_ok.rs");
    assert_clean("float_fold_ok.rs");
}

#[test]
fn allow_without_reason_reports_both_findings() {
    let out = lint_fixture("missing_reason.rs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout:\n{stdout}");
    assert!(stdout.contains("[frozen-bits]"), "stdout:\n{stdout}");
    assert!(stdout.contains("[bad-annotation]"), "stdout:\n{stdout}");
}

#[test]
fn backend_pins_mode_checks_prefix_coverage() {
    let ok = run(&[
        "--root",
        fixtures_root(),
        "--pins",
        "backend_enum.rs",
        "backend_pins_ok.rs",
    ]);
    assert_eq!(ok.status.code(), Some(0));
    let bad = run(&[
        "--root",
        fixtures_root(),
        "--pins",
        "backend_enum.rs",
        "backend_pins_bad.rs",
    ]);
    let stdout = String::from_utf8_lossy(&bad.stdout);
    assert_eq!(bad.status.code(), Some(1), "stdout:\n{stdout}");
    assert!(stdout.contains("[backend-pins]"), "stdout:\n{stdout}");
    assert!(stdout.contains("fast_ln_"), "stdout:\n{stdout}");
}

#[test]
fn json_mode_is_machine_readable() {
    let out = run(&["--root", fixtures_root(), "--json", "frozen_bits_bad.rs"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout:\n{stdout}");
    assert!(stdout.trim_start().starts_with('{'), "stdout:\n{stdout}");
    assert!(
        stdout.contains("\"rule\": \"frozen-bits\""),
        "stdout:\n{stdout}"
    );
    assert!(stdout.contains("\"count\": 1"), "stdout:\n{stdout}");
    assert!(stdout.trim_end().ends_with('}'), "stdout:\n{stdout}");
}

#[test]
fn list_rules_names_all_six_families() {
    let out = run(&["--list-rules"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "frozen-bits",
        "determinism",
        "hot-path-alloc",
        "thread-discipline",
        "float-fold",
        "backend-pins",
    ] {
        assert!(stdout.lines().any(|l| l == rule), "missing {rule}");
    }
}

/// The self-check: the live workspace must be lint-clean. This is the same
/// invocation CI runs; if a rule regresses or an annotation goes stale,
/// this test fails locally before CI does.
#[test]
fn live_workspace_is_lint_clean() {
    let out = run(&["--root", &workspace_root()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "workspace should be lint-clean; findings:\n{stdout}"
    );
    assert!(stdout.contains("hc-lint: clean"), "stdout:\n{stdout}");
}

/// Library-level sanity on the real tree: the backend-pins rule sees the
/// actual `NoiseBackend` enum and finds pins for every variant.
#[test]
fn real_backend_enum_is_fully_pinned() {
    let findings = hc_lint::backend_pins_on_disk(Path::new(&workspace_root()));
    assert!(
        findings.is_empty(),
        "backend pins incomplete: {:?}",
        findings.iter().map(|f| f.render()).collect::<Vec<_>>()
    );
}
