//! Positive fixture: a marked hot-path kernel that allocates.

// hc-lint: hot-path
pub fn sweep(values: &[f64], out: &mut [f64]) {
    let scratch: Vec<f64> = values.to_vec();
    for (o, s) in out.iter_mut().zip(&scratch) {
        *o = *s * 2.0;
    }
}
