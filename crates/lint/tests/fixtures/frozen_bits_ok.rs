//! Negative fixture: the method name appears only in prose, strings, and
//! test code — and the one real call carries a justified allow.

pub fn describe() -> &'static str {
    // .ln() in a comment is invisible to the lexer-backed rules.
    "computes x.ln() the slow way"
}

pub fn bound(x: f64) -> f64 {
    x.ln() // hc-lint: allow(frozen-bits) — advisory bound for plots; never released
}

#[cfg(test)]
mod tests {
    #[test]
    fn reference_math_in_tests_is_fine() {
        assert!((2.0f64).ln() > 0.0);
    }
}
