//! Backend-pins fixture: a two-variant backend enum.

pub enum NoiseBackend {
    Reference,
    FastLn,
}
