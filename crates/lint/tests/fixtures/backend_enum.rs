//! Backend-pins fixture: a three-variant backend enum.

pub enum NoiseBackend {
    Reference,
    FastLn,
    FastLnWide,
}
