//! Positive fixture: implicit-order `.sum::<f64>()` in serving-path code.

pub fn total(values: &[f64]) -> f64 {
    values.iter().sum::<f64>()
}
