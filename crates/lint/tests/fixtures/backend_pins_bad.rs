//! Backend-pins fixture: `FastLn` has no `fast_ln_*` pin here.

#[test]
fn reference_golden_release() {}
