//! Backend-pins fixture: every variant has a prefixed golden-pin test.

#[test]
fn reference_golden_release() {}

#[test]
fn fast_ln_golden_release() {}

#[test]
fn fast_ln_wide_golden_release() {}
