//! Negative fixture: the fold order is explicit (and engine-compatible:
//! seeded `-0.0`, left to right).

pub fn total(values: &[f64]) -> f64 {
    values.iter().fold(-0.0, |acc, &v| acc + v)
}
