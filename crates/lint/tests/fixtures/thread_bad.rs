//! Positive fixture: spawning without routing through `effective_threads`.

pub fn fan_out(jobs: usize) {
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| {});
        }
    });
}
