//! Positive fixture: randomized iteration order and a wall-clock read in
//! result-affecting code.

use std::collections::HashMap;

pub fn tally(keys: &[u32]) -> HashMap<u32, u64> {
    let started = std::time::Instant::now();
    let mut m = HashMap::new();
    for &k in keys {
        *m.entry(k).or_insert(0) += 1;
    }
    let _ = started.elapsed();
    m
}
