//! Negative fixture: the worker count is routed through
//! `effective_threads`, so the HC_THREADS contract holds.

fn effective_threads(requested: usize) -> usize {
    requested.max(1)
}

pub fn fan_out(jobs: usize) {
    let workers = effective_threads(jobs);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {});
        }
    });
}
