//! Positive fixture: an allow without a reason neither parses nor
//! suppresses — both the bad annotation and the underlying finding fire.

pub fn scale(x: f64) -> f64 {
    x.ln() // hc-lint: allow(frozen-bits)
}
