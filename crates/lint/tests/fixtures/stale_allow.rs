//! Positive fixture: a well-formed allow that suppresses nothing.

// hc-lint: allow(frozen-bits) — left behind after the call was removed
pub fn add(a: f64, b: f64) -> f64 {
    a + b
}
