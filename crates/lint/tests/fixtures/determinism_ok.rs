//! Negative fixture: ordered containers in live code; hash containers and
//! timing confined to test code.

use std::collections::BTreeMap;

pub fn tally(keys: &[u32]) -> BTreeMap<u32, u64> {
    let mut m = BTreeMap::new();
    for &k in keys {
        *m.entry(k).or_insert(0) += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn dedup_in_tests_is_fine() {
        let s: HashSet<u32> = [1, 2, 2].into_iter().collect();
        assert_eq!(s.len(), 2);
    }
}
