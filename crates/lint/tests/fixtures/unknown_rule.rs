//! Positive fixture: an allow naming a rule that does not exist.

// hc-lint: allow(no-such-rule) — typos must not silently disable rules
pub fn add(a: f64, b: f64) -> f64 {
    a + b
}
