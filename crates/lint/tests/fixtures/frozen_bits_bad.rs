//! Positive fixture: transcendental call outside an oracle module.

pub fn scale(x: f64) -> f64 {
    x.ln() + 1.0
}
