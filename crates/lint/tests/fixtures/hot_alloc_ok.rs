//! Negative fixture: a marked hot-path kernel that writes into the caller's
//! buffer, plus an unmarked cold function that is free to allocate.

// hc-lint: hot-path
pub fn sweep(values: &[f64], out: &mut [f64]) {
    for (o, v) in out.iter_mut().zip(values) {
        *o = *v * 2.0;
    }
}

// hc-lint: hot-path
pub fn warm(buf: &mut Vec<f64>, n: usize) {
    // Capacity growth to the high-water mark is warm-path legal.
    buf.reserve(n);
    buf.resize(n, 0.0);
}

pub fn cold(values: &[f64]) -> Vec<f64> {
    values.to_vec()
}
