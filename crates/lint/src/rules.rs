//! The six rule families. Each rule walks the token stream of one file
//! (already stripped of comments and string contents by the lexer, so no
//! rule can be tripped by prose) and emits [`Finding`]s; suppression via
//! `hc-lint: allow(…)` annotations happens later, in the driver.

use crate::annot::HotMark;
use crate::config;
use crate::lexer::{Lexed, TokKind, Token};
use crate::scope::{FnScope, Scopes};
use crate::Finding;

/// What kind of file a path is — rules about *result-affecting* code only
/// run on [`FileClass::Source`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library / binary code that can affect released numbers.
    Source,
    /// Integration tests (a `tests/` path component).
    Test,
    /// Criterion benches (a `benches/` path component).
    Bench,
    /// Examples (an `examples/` path component).
    Example,
}

/// Classifies a workspace-relative path by its directory components.
pub fn classify(rel_path: &str) -> FileClass {
    for comp in rel_path.split('/') {
        match comp {
            "tests" => return FileClass::Test,
            "benches" => return FileClass::Bench,
            "examples" => return FileClass::Example,
            _ => {}
        }
    }
    FileClass::Source
}

/// Everything a per-file rule needs to run.
pub struct RuleCtx<'a> {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: &'a str,
    /// The file's class.
    pub class: FileClass,
    /// The lexed token stream.
    pub lexed: &'a Lexed,
    /// Function scopes and test spans.
    pub scopes: &'a Scopes,
}

fn tok_matches(t: &Token, pat: &str) -> bool {
    let mut chars = pat.chars();
    match (chars.next(), chars.next()) {
        (Some(c), None) if !c.is_alphanumeric() => t.is_punct(c),
        _ => t.is_ident(pat),
    }
}

/// True if `tokens[i..]` starts with the pattern (idents and single-char
/// puncts, whitespace-immune by construction).
fn seq_at(tokens: &[Token], i: usize, pat: &[&str]) -> bool {
    pat.len() <= tokens.len() - i && pat.iter().zip(&tokens[i..]).all(|(p, t)| tok_matches(t, p))
}

fn finding(rule: &'static str, ctx: &RuleCtx<'_>, t: &Token, message: String) -> Finding {
    Finding {
        rule,
        path: ctx.rel_path.to_string(),
        line: t.line,
        col: t.col,
        message,
    }
}

/// Rule `frozen-bits`: transcendental method calls (`.ln()`, `.exp()`,
/// `.powf(…)`, …) are confined to the sanctioned oracle modules, because
/// their bit patterns are libm-dependent and everything else must stay
/// bit-reproducible across platforms.
pub fn frozen_bits(ctx: &RuleCtx<'_>, out: &mut Vec<Finding>) {
    if ctx.class != FileClass::Source
        || config::path_in(ctx.rel_path, config::TRANSCENDENTAL_ORACLE_PATHS)
    {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len() {
        if !toks[i].is_punct('.') {
            continue;
        }
        let Some(name) = toks.get(i + 1) else {
            continue;
        };
        if name.kind != TokKind::Ident
            || !config::TRANSCENDENTAL_METHODS.contains(&name.text.as_str())
            || !toks.get(i + 2).is_some_and(|t| t.is_punct('('))
            || ctx.scopes.is_test_line(name.line)
        {
            continue;
        }
        out.push(finding(
            "frozen-bits",
            ctx,
            name,
            format!(
                "transcendental call `.{}()` outside an oracle module — its bits are \
                 libm-dependent; route through hc-noise/hc-linalg or annotate why this \
                 value never reaches a release",
                name.text
            ),
        ));
    }
}

/// Rule `determinism`: no randomized-iteration containers, wall-clock
/// reads, or entropy-seeded RNG construction in result-affecting code.
pub fn determinism(ctx: &RuleCtx<'_>, out: &mut Vec<Finding>) {
    if ctx.class != FileClass::Source {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || ctx.scopes.is_test_line(t.line) {
            continue;
        }
        if config::NONDETERMINISTIC_IDENTS.contains(&t.text.as_str()) {
            let why = match t.text.as_str() {
                "HashMap" | "HashSet" => {
                    "iteration order is randomized per process — use BTreeMap/BTreeSet \
                     or an index-keyed Vec"
                }
                "SystemTime" => "wall-clock reads make runs unreproducible",
                _ => "entropy-based seeding bypasses the SeedStream substream contract",
            };
            out.push(finding(
                "determinism",
                ctx,
                t,
                format!(
                    "nondeterministic `{}` in result-affecting code: {why}",
                    t.text
                ),
            ));
        } else if t.is_ident("Instant") && seq_at(toks, i, &["Instant", ":", ":", "now"]) {
            out.push(finding(
                "determinism",
                ctx,
                t,
                "wall-clock read `Instant::now()` in result-affecting code — timing \
                 belongs in benches or the measurement harness"
                    .to_string(),
            ));
        }
    }
}

/// The resolved hot-path kernel set for one file: the function scopes to
/// scan, plus any config/marker staleness findings.
pub struct HotSet {
    /// Hot function scopes (from the registry and in-source markers).
    pub fns: Vec<FnScope>,
    /// `stale-config` / `bad-annotation` findings produced while resolving.
    pub findings: Vec<Finding>,
}

/// Resolves the hot-function set for `ctx` from the registry in
/// [`config::HOT_FUNCTIONS`] plus `// hc-lint: hot-path` markers.
pub fn collect_hot(ctx: &RuleCtx<'_>, marks: &[HotMark]) -> HotSet {
    let mut set = HotSet {
        fns: Vec::new(),
        findings: Vec::new(),
    };
    for &(file, fns) in config::HOT_FUNCTIONS {
        if file != ctx.rel_path {
            continue;
        }
        for &name in fns {
            let mut found = false;
            for f in ctx.scopes.fns_named(name) {
                set.fns.push(f.clone());
                found = true;
            }
            if !found {
                set.findings.push(Finding {
                    rule: "stale-config",
                    path: ctx.rel_path.to_string(),
                    line: 1,
                    col: 1,
                    message: format!(
                        "hot-path registry names `{name}` but no such function exists in \
                         this file — update crates/lint/src/config.rs alongside the rename"
                    ),
                });
            }
        }
    }
    for m in marks {
        // A marker attaches to the nearest `fn` at or below it.
        let attached = ctx
            .scopes
            .fns
            .iter()
            .filter(|f| f.fn_line >= m.line)
            .min_by_key(|f| f.fn_line);
        match attached {
            Some(f) => set.fns.push(f.clone()),
            None => set.findings.push(Finding {
                rule: "bad-annotation",
                path: ctx.rel_path.to_string(),
                line: m.line,
                col: m.col,
                message: "`hc-lint: hot-path` marker attaches to no function".to_string(),
            }),
        }
    }
    set
}

/// Rule `hot-path-alloc`: the registered kernels must not construct fresh
/// owned values (`Vec::new`, `.collect()`, `.clone()`, `format!`, …).
/// Capacity growth (`reserve`/`resize`/`push`) is deliberately allowed —
/// the warm-path contract is "amortized allocation-free", pinned at runtime
/// by the counting-allocator test.
pub fn hot_path_alloc(ctx: &RuleCtx<'_>, hot: &HotSet, out: &mut Vec<Finding>) {
    let toks = &ctx.lexed.tokens;
    for f in &hot.fns {
        for i in f.body.0..f.body.1 {
            for pat in config::HOT_FORBIDDEN {
                if seq_at(toks, i, pat) {
                    // The anchor token for `.method` patterns is the method
                    // ident; for `Type::fn` patterns the leading ident.
                    let anchor = if pat[0] == "." {
                        &toks[i + 1]
                    } else {
                        &toks[i]
                    };
                    out.push(finding(
                        "hot-path-alloc",
                        ctx,
                        anchor,
                        format!(
                            "`{}` inside hot-path kernel `{}` — kernels must write into \
                             caller-provided buffers, not allocate",
                            pat.join(""),
                            f.name
                        ),
                    ));
                    break;
                }
            }
        }
    }
}

/// Rule `thread-discipline`: `std::thread::spawn`/`scope` may only appear
/// in files that route their worker count through `effective_threads`, so
/// the `HC_THREADS` contract (and the thread-count-invariant golden tests)
/// can't be bypassed.
pub fn thread_discipline(ctx: &RuleCtx<'_>, out: &mut Vec<Finding>) {
    if ctx.class != FileClass::Source {
        return;
    }
    let toks = &ctx.lexed.tokens;
    let routes = toks.iter().any(|t| t.is_ident("effective_threads"));
    if routes {
        return;
    }
    for i in 0..toks.len() {
        let spawny = seq_at(toks, i, &["thread", ":", ":", "spawn"])
            || seq_at(toks, i, &["thread", ":", ":", "scope"]);
        if spawny && !ctx.scopes.is_test_line(toks[i].line) {
            out.push(finding(
                "thread-discipline",
                ctx,
                &toks[i + 3],
                format!(
                    "`thread::{}` in a module that never consults `effective_threads` — \
                     all parallelism must honor the HC_THREADS contract",
                    toks[i + 3].text
                ),
            ));
        }
    }
}

/// Rule `float-fold`: `.sum::<f64>()` outside the fold-oracle modules.
/// Iterator summation bakes in one association order; the engine's fused
/// sweeps must own that order explicitly (the `-0.0`-seeded folds), so ad
/// hoc `sum` folds in serving/engine code are bit-compat hazards.
pub fn float_fold(ctx: &RuleCtx<'_>, out: &mut Vec<Finding>) {
    if ctx.class != FileClass::Source || config::path_in(ctx.rel_path, config::FOLD_ORACLE_PATHS) {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len() {
        if seq_at(toks, i, &[".", "sum", ":", ":", "<", "f64", ">"])
            && !ctx.scopes.is_test_line(toks[i + 1].line)
        {
            out.push(finding(
                "float-fold",
                ctx,
                &toks[i + 1],
                "`.sum::<f64>()` outside a fold-oracle module — the association order is \
                 implicit; use an explicit fold (seeded `-0.0` if it must match the \
                 engine) or annotate why bit-compat is not at stake"
                    .to_string(),
            ));
        }
    }
}

/// Rule `backend-pins`, testable core: given the backend enum's source and
/// the `(label, source)` pin-test files, require every `NoiseBackend`
/// variant to have at least one `fn <snake_case_variant>_*` test in each
/// file (CI filters per-backend by that prefix).
pub fn backend_pins_from_sources(enum_src: &str, pins: &[(&str, &str)]) -> Vec<Finding> {
    let mut out = Vec::new();
    let lexed = crate::lexer::lex(enum_src);
    let toks = &lexed.tokens;
    let mut variants: Vec<(String, u32, u32)> = Vec::new();
    for i in 0..toks.len() {
        if !seq_at(toks, i, &["enum", "NoiseBackend"]) {
            continue;
        }
        let Some(open) = (i..toks.len()).find(|&j| toks[j].is_punct('{')) else {
            break;
        };
        let mut depth = 0usize;
        for j in open..toks.len() {
            let t = &toks[j];
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if depth == 1
                && t.kind == TokKind::Ident
                && t.text.chars().next().is_some_and(char::is_uppercase)
                && toks
                    .get(j + 1)
                    .is_some_and(|n| n.is_punct(',') || n.is_punct('}') || n.is_punct('='))
            {
                variants.push((t.text.clone(), t.line, t.col));
            }
        }
        break;
    }
    if variants.is_empty() {
        out.push(Finding {
            rule: "stale-config",
            path: config::BACKEND_ENUM_PATH.to_string(),
            line: 1,
            col: 1,
            message: "could not find `enum NoiseBackend` variants — the backend-pins rule \
                      has nothing to check; update crates/lint/src/config.rs"
                .to_string(),
        });
        return out;
    }
    for (label, src) in pins {
        let pin_lexed = crate::lexer::lex(src);
        let ptoks = &pin_lexed.tokens;
        for (variant, line, col) in &variants {
            let prefix = format!("{}_", config::snake_case(variant));
            let covered = (0..ptoks.len()).any(|i| {
                ptoks[i].is_ident("fn")
                    && ptoks
                        .get(i + 1)
                        .is_some_and(|n| n.kind == TokKind::Ident && n.text.starts_with(&prefix))
            });
            if !covered {
                out.push(Finding {
                    rule: "backend-pins",
                    path: config::BACKEND_ENUM_PATH.to_string(),
                    line: *line,
                    col: *col,
                    message: format!(
                        "NoiseBackend::{variant} has no `{prefix}*` golden-pin test in \
                         {label} — every backend variant ships with pins in each CI pin \
                         suite (backend versioning policy)"
                    ),
                });
            }
        }
    }
    out
}

/// Runs all per-file rules over one file.
pub fn run_file_rules(ctx: &RuleCtx<'_>, marks: &[HotMark], out: &mut Vec<Finding>) {
    frozen_bits(ctx, out);
    determinism(ctx, out);
    let hot = collect_hot(ctx, marks);
    hot_path_alloc(ctx, &hot, out);
    out.extend(hot.findings);
    thread_discipline(ctx, out);
    float_fold(ctx, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scope::analyze;

    fn run_on(rel_path: &str, src: &str) -> Vec<Finding> {
        let lexed = lex(src);
        let scopes = analyze(&lexed);
        let ctx = RuleCtx {
            rel_path,
            class: classify(rel_path),
            lexed: &lexed,
            scopes: &scopes,
        };
        let annots = crate::annot::parse(&lexed, crate::RULES);
        let mut out = Vec::new();
        run_file_rules(&ctx, &annots.hot_marks, &mut out);
        out
    }

    #[test]
    fn ln_outside_oracle_is_flagged() {
        let f = run_on(
            "crates/core/src/theory_extra.rs",
            "fn f(x: f64) -> f64 { x.ln() }\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "frozen-bits");
    }

    #[test]
    fn ln_inside_noise_is_sanctioned() {
        let f = run_on(
            "crates/noise/src/laplace_extra.rs",
            "fn f(x: f64) -> f64 { x.ln() }\n",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn ln_in_a_string_or_comment_is_invisible() {
        let src = "fn f() { let s = \"x.ln()\"; /* x.ln() */ }\n";
        assert!(run_on("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn ln_in_test_code_is_fine() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(x: f64) -> f64 { x.ln() }\n}\n";
        assert!(run_on("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn hashmap_is_flagged_in_source_not_tests_dir() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(run_on("crates/core/src/x.rs", src).len(), 1);
        assert!(run_on("crates/core/tests/x.rs", src).is_empty());
    }

    #[test]
    fn instant_now_is_flagged_but_duration_is_not() {
        let flagged = run_on(
            "crates/core/src/x.rs",
            "fn f() { let t = Instant::now(); }\n",
        );
        assert_eq!(flagged.len(), 1);
        assert_eq!(flagged[0].rule, "determinism");
        let ok = run_on("crates/core/src/x.rs", "fn f(d: std::time::Duration) {}\n");
        assert!(ok.is_empty());
    }

    #[test]
    fn hot_marker_makes_a_fn_allocation_checked() {
        let src = "// hc-lint: hot-path\nfn kernel(out: &mut Vec<f64>) { let v = vec![0.0]; }\n";
        let f = run_on("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "hot-path-alloc");
        assert!(f[0].message.contains("kernel"));
    }

    #[test]
    fn registry_hot_fn_is_checked_without_marker() {
        let src = "fn up_kernel(buf: &mut [f64]) { let v = buf.to_vec(); }\nfn cold() { let v = vec![1]; }\n";
        let f = run_on("crates/core/src/engine.rs", src);
        // `up_kernel` violation + stale-config for every other registered
        // engine fn that this synthetic file lacks.
        assert!(f
            .iter()
            .any(|x| x.rule == "hot-path-alloc" && x.message.contains("up_kernel")));
        assert!(!f
            .iter()
            .any(|x| x.rule == "hot-path-alloc" && x.message.contains("cold")));
        assert!(f.iter().any(|x| x.rule == "stale-config"));
    }

    #[test]
    fn push_and_reserve_are_warm_path_legal() {
        let src = "// hc-lint: hot-path\nfn kernel(buf: &mut Vec<f64>) { buf.reserve(8); buf.push(0.0); buf.resize(4, 0.0); }\n";
        assert!(run_on("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn spawn_without_effective_threads_is_flagged() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        let f = run_on("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "thread-discipline");
    }

    #[test]
    fn spawn_with_effective_threads_routing_is_fine() {
        let src = "fn f(n: usize) { let k = effective_threads(n); std::thread::scope(|s| {}); }\n";
        assert!(run_on("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn sum_f64_outside_oracle_is_flagged() {
        let src = "fn f(v: &[f64]) -> f64 { v.iter().sum::<f64>() }\n";
        let f = run_on("crates/core/src/snapshot_extra.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "float-fold");
        assert!(run_on("crates/core/src/error.rs", src).is_empty());
    }

    #[test]
    fn backend_pins_detects_missing_prefix() {
        let enum_src = "pub enum NoiseBackend { Reference, FastLn }\n";
        let good = "#[test]\nfn reference_golden() {}\n#[test]\nfn fast_ln_golden() {}\n";
        let bad = "#[test]\nfn reference_golden() {}\n";
        assert!(backend_pins_from_sources(enum_src, &[("good.rs", good)]).is_empty());
        let f = backend_pins_from_sources(enum_src, &[("bad.rs", bad)]);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("FastLn"));
        assert!(f[0].message.contains("fast_ln_"));
    }

    #[test]
    fn backend_pins_checks_every_pin_file() {
        let enum_src = "pub enum NoiseBackend { Reference }\n";
        let with = "fn reference_x() {}\n";
        let without = "fn other() {}\n";
        let f = backend_pins_from_sources(enum_src, &[("a.rs", with), ("b.rs", without)]);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("b.rs"));
    }
}
