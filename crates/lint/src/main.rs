//! The `hc-lint` binary. Exit codes: 0 clean, 1 findings, 2 usage/IO error.
//!
//! ```text
//! hc-lint [--root DIR] [--json]              lint the whole workspace
//! hc-lint [--root DIR] [--json] FILE...      lint explicit files (as source)
//! hc-lint --pins ENUM.rs PIN.rs...           run only the backend-pins rule
//! hc-lint --list-rules                       print the rule names
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

use std::path::PathBuf;
use std::process::ExitCode;

use hc_lint::{lint_paths, lint_workspace, render_json, render_text, rules, Finding, RULES};

struct Args {
    root: PathBuf,
    json: bool,
    list_rules: bool,
    pins: Option<Vec<String>>,
    paths: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        json: false,
        list_rules: false,
        pins: None,
        paths: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => args.json = true,
            "--list-rules" => args.list_rules = true,
            "--root" => {
                args.root = PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--root needs a directory".to_string())?,
                );
            }
            "--pins" => {
                // All remaining arguments: the enum file, then pin files.
                let rest: Vec<String> = it.by_ref().collect();
                if rest.len() < 2 {
                    return Err("--pins needs ENUM.rs and at least one PIN.rs".to_string());
                }
                args.pins = Some(rest);
            }
            "--help" | "-h" => {
                return Err("usage: hc-lint [--root DIR] [--json] [--list-rules] \
                            [--pins ENUM.rs PIN.rs...] [FILE...]"
                    .to_string());
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}` (see --help)"));
            }
            other => args.paths.push(other.to_string()),
        }
    }
    Ok(args)
}

fn run_pins(args: &Args, files: &[String]) -> Result<Vec<Finding>, String> {
    let enum_src = std::fs::read_to_string(args.root.join(&files[0]))
        .map_err(|e| format!("reading {}: {e}", files[0]))?;
    let mut pins = Vec::new();
    for p in &files[1..] {
        let src =
            std::fs::read_to_string(args.root.join(p)).map_err(|e| format!("reading {p}: {e}"))?;
        pins.push((p.clone(), src));
    }
    let pins_ref: Vec<(&str, &str)> = pins.iter().map(|(l, s)| (l.as_str(), s.as_str())).collect();
    Ok(rules::backend_pins_from_sources(&enum_src, &pins_ref))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("hc-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        for r in RULES {
            println!("{r}");
        }
        return ExitCode::SUCCESS;
    }
    let result = if let Some(files) = &args.pins {
        run_pins(&args, files)
    } else if args.paths.is_empty() {
        lint_workspace(&args.root)
    } else {
        lint_paths(&args.root, &args.paths)
    };
    let findings = match result {
        Ok(f) => f,
        Err(msg) => {
            eprintln!("hc-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    if args.json {
        print!("{}", render_json(&findings));
    } else {
        print!("{}", render_text(&findings));
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
