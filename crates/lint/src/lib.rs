//! `hc-lint`: a repo-specific static-analysis pass that proves the
//! workspace's determinism, hot-path, and threading invariants at lint time.
//!
//! The runtime test suite pins *observed* behaviour (golden releases, the
//! counting allocator, thread-count invariance); this crate pins the
//! *source-level discipline* those tests rely on, so a regression is caught
//! at the offending line instead of as a mysterious golden-hash mismatch:
//!
//! - **frozen-bits** — transcendental calls only in sanctioned oracle
//!   modules (their bit patterns are libm-dependent).
//! - **determinism** — no `HashMap`/`HashSet`, wall-clock reads, or
//!   entropy-based seeding in result-affecting code.
//! - **hot-path-alloc** — the registered sweep/serving kernels never
//!   construct fresh owned values.
//! - **thread-discipline** — `thread::spawn`/`scope` only in modules that
//!   route worker counts through `effective_threads`.
//! - **float-fold** — no implicit-order `.sum::<f64>()` outside the fold
//!   oracles.
//! - **backend-pins** — every `NoiseBackend` variant has golden-pin tests
//!   under its snake-case prefix in each CI pin suite.
//!
//! The only escape hatch is `// hc-lint: allow(<rule>) — <reason>` with a
//! mandatory reason; an allow that suppresses nothing is itself a failure
//! (`stale-allow`), as is a hot-function registry entry that no longer
//! matches the tree (`stale-config`). The lexer is hand-rolled and
//! dependency-free: the build container is offline, and a comment/string/
//! char-literal-aware token stream is all the rules need.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod annot;
pub mod config;
pub mod lexer;
pub mod rules;
pub mod scope;

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

use rules::{FileClass, RuleCtx};

/// The suppressible rule families, in documentation order. Meta-findings
/// (`stale-allow`, `stale-config`, `bad-annotation`) are deliberately not
/// listed: the escape hatch cannot be used on the escape-hatch police.
pub const RULES: &[&str] = &[
    "frozen-bits",
    "determinism",
    "hot-path-alloc",
    "thread-discipline",
    "float-fold",
    "backend-pins",
];

/// One diagnostic.
#[derive(Debug)]
pub struct Finding {
    /// Rule identifier (one of [`RULES`] or a meta rule).
    pub rule: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    /// Clickable single-line rendering: `path:line:col: [rule] message`.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: [{}] {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
}

/// Lints one file's source. `force_source` makes explicitly-passed paths
/// (fixtures live under a `tests/` directory) rank as result-affecting
/// code; `seed` carries workspace-level findings (backend-pins) that should
/// be suppressible by annotations in this file.
pub fn lint_one(rel_path: &str, src: &str, force_source: bool, seed: Vec<Finding>) -> Vec<Finding> {
    let lexed = lexer::lex(src);
    let scopes = scope::analyze(&lexed);
    let mut annots = annot::parse(&lexed, RULES);
    let class = if force_source {
        FileClass::Source
    } else {
        rules::classify(rel_path)
    };
    let ctx = RuleCtx {
        rel_path,
        class,
        lexed: &lexed,
        scopes: &scopes,
    };
    let mut raw = seed;
    rules::run_file_rules(&ctx, &annots.hot_marks, &mut raw);

    let mut kept = Vec::new();
    for f in raw {
        let mut suppressed = false;
        if RULES.contains(&f.rule) {
            for a in annots.allows.iter_mut() {
                if a.rule == f.rule && a.target_line == f.line {
                    a.used = true;
                    suppressed = true;
                }
            }
        }
        if !suppressed {
            kept.push(f);
        }
    }
    for a in &annots.allows {
        if !a.used {
            kept.push(Finding {
                rule: "stale-allow",
                path: rel_path.to_string(),
                line: a.line,
                col: a.col,
                message: format!(
                    "`allow({})` suppresses nothing on line {} — remove the annotation \
                     (dead escape hatches hide real regressions)",
                    a.rule, a.target_line
                ),
            });
        }
    }
    for b in annots.bad {
        kept.push(Finding {
            rule: "bad-annotation",
            path: rel_path.to_string(),
            line: b.line,
            col: b.col,
            message: b.message,
        });
    }
    sort_findings(&mut kept);
    kept
}

fn skip_component(name: &str) -> bool {
    config::SKIP_DIRS
        .iter()
        .any(|s| !s.contains('/') && *s == name)
}

fn skip_rel(rel: &str) -> bool {
    config::SKIP_DIRS
        .iter()
        .any(|s| s.contains('/') && (rel == *s || rel.starts_with(&format!("{s}/"))))
}

fn walk(root: &Path, dir: &Path, files: &mut Vec<String>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("reading {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if path.is_dir() {
            if skip_component(&name) || skip_rel(&rel) {
                continue;
            }
            walk(root, &path, files)?;
        } else if name.ends_with(".rs") && !skip_rel(&rel) {
            files.push(rel);
        }
    }
    Ok(())
}

/// Runs the backend-pins rule against the tree on disk.
pub fn backend_pins_on_disk(root: &Path) -> Vec<Finding> {
    let enum_path = root.join(config::BACKEND_ENUM_PATH);
    let enum_src = match fs::read_to_string(&enum_path) {
        Ok(s) => s,
        Err(e) => {
            return vec![Finding {
                rule: "stale-config",
                path: config::BACKEND_ENUM_PATH.to_string(),
                line: 1,
                col: 1,
                message: format!(
                    "backend enum file is unreadable ({e}) — update BACKEND_ENUM_PATH in \
                     crates/lint/src/config.rs"
                ),
            }];
        }
    };
    let mut out = Vec::new();
    let mut pins: Vec<(&str, String)> = Vec::new();
    for &pf in config::BACKEND_PIN_FILES {
        match fs::read_to_string(root.join(pf)) {
            Ok(s) => pins.push((pf, s)),
            Err(e) => out.push(Finding {
                rule: "stale-config",
                path: pf.to_string(),
                line: 1,
                col: 1,
                message: format!(
                    "golden-pin suite is unreadable ({e}) — update BACKEND_PIN_FILES in \
                     crates/lint/src/config.rs"
                ),
            }),
        }
    }
    let pins_ref: Vec<(&str, &str)> = pins.iter().map(|(l, s)| (*l, s.as_str())).collect();
    out.extend(rules::backend_pins_from_sources(&enum_src, &pins_ref));
    out
}

/// Lints the whole workspace rooted at `root`. Returns all findings sorted
/// by `(path, line, col, rule)`.
pub fn lint_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort();

    // Workspace-level findings, grouped by the file whose annotations may
    // suppress them.
    let mut seeds: BTreeMap<String, Vec<Finding>> = BTreeMap::new();
    for f in backend_pins_on_disk(root) {
        seeds.entry(f.path.clone()).or_default().push(f);
    }
    // The hot-function registry must point at files that exist.
    for &(file, _) in config::HOT_FUNCTIONS {
        if !files.iter().any(|rel| rel == file) {
            seeds.entry(file.to_string()).or_default().push(Finding {
                rule: "stale-config",
                path: file.to_string(),
                line: 1,
                col: 1,
                message: "hot-path registry names this file but it is not in the tree — \
                          update crates/lint/src/config.rs"
                    .to_string(),
            });
        }
    }

    let mut out = Vec::new();
    for rel in &files {
        let src = fs::read_to_string(root.join(rel)).map_err(|e| format!("reading {rel}: {e}"))?;
        let seed = seeds.remove(rel).unwrap_or_default();
        out.extend(lint_one(rel, &src, false, seed));
    }
    // Seeds whose file was never walked (deleted files, unreadable pins).
    for (_, v) in seeds {
        out.extend(v);
    }
    sort_findings(&mut out);
    Ok(out)
}

/// Lints an explicit list of files (fixture mode): every path is classified
/// as result-affecting source regardless of directory.
pub fn lint_paths(root: &Path, paths: &[String]) -> Result<Vec<Finding>, String> {
    let mut out = Vec::new();
    for p in paths {
        let full = root.join(p);
        let src = fs::read_to_string(&full).map_err(|e| format!("reading {p}: {e}"))?;
        let rel = p.replace('\\', "/");
        out.extend(lint_one(&rel, &src, true, Vec::new()));
    }
    sort_findings(&mut out);
    Ok(out)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as a stable JSON document (for the CI artifact).
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"col\": {}, \
             \"message\": \"{}\"}}",
            f.rule,
            json_escape(&f.path),
            f.line,
            f.col,
            json_escape(&f.message)
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!("],\n  \"count\": {}\n}}\n", findings.len()));
    out
}

/// Renders findings as clickable text plus a one-line summary.
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.render());
        out.push('\n');
    }
    if findings.is_empty() {
        out.push_str("hc-lint: clean\n");
    } else {
        out.push_str(&format!("hc-lint: {} finding(s)\n", findings.len()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_suppresses_and_is_marked_used() {
        let src = "fn f(x: f64) -> f64 { x.ln() } // hc-lint: allow(frozen-bits) — advisory bound, never released\n";
        let f = lint_one("crates/core/src/x.rs", src, false, Vec::new());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn stale_allow_is_a_finding() {
        let src = "// hc-lint: allow(frozen-bits) — nothing here needs it\nfn f() {}\n";
        let f = lint_one("crates/core/src/x.rs", src, false, Vec::new());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "stale-allow");
    }

    #[test]
    fn allow_without_reason_does_not_suppress() {
        let src = "fn f(x: f64) -> f64 { x.ln() } // hc-lint: allow(frozen-bits)\n";
        let f = lint_one("crates/core/src/x.rs", src, false, Vec::new());
        let rules: Vec<_> = f.iter().map(|x| x.rule).collect();
        assert!(rules.contains(&"frozen-bits"), "{f:?}");
        assert!(rules.contains(&"bad-annotation"), "{f:?}");
    }

    #[test]
    fn meta_findings_cannot_be_allowed() {
        // `allow(stale-allow)` names an unknown (non-suppressible) rule.
        let src = "// hc-lint: allow(stale-allow) — trying to silence the police\nfn f() {}\n";
        let f = lint_one("crates/core/src/x.rs", src, false, Vec::new());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "bad-annotation");
    }

    #[test]
    fn json_is_well_formed_enough() {
        let f = vec![Finding {
            rule: "determinism",
            path: "a/b.rs".to_string(),
            line: 3,
            col: 7,
            message: "say \"no\"".to_string(),
        }];
        let j = render_json(&f);
        assert!(j.contains("\"count\": 1"));
        assert!(j.contains("\\\"no\\\""));
    }
}
