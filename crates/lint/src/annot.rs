//! The `hc-lint` annotation grammar — the *only* escape hatch.
//!
//! ```text
//! // hc-lint: allow(<rule>) — <reason>
//! // hc-lint: hot-path
//! ```
//!
//! `allow` suppresses findings of `<rule>` on the annotated line: its own
//! line for a trailing comment, the next code line for a standalone comment.
//! The reason is mandatory — an allow without one is itself a finding — and
//! an allow that suppresses nothing is *stale* and fails the pass, so dead
//! annotations cannot accumulate.
//!
//! `hot-path` marks the next `fn` as a hot-path kernel (the in-source
//! counterpart of the repo-specific kernel list in [`crate::config`]); a
//! marker that attaches to no function is stale and fails the pass.

use crate::lexer::{Comment, Lexed};

/// One parsed `allow` annotation.
#[derive(Debug)]
pub struct Allow {
    /// The rule name inside `allow(…)`.
    pub rule: String,
    /// The justification after the separator; `None` if missing/empty.
    pub reason: Option<String>,
    /// Line of the comment itself.
    pub line: u32,
    /// Column of the comment.
    pub col: u32,
    /// The code line this annotation covers.
    pub target_line: u32,
    /// Set by the driver when the annotation suppresses a finding.
    pub used: bool,
}

/// One parsed `hot-path` marker.
#[derive(Debug)]
pub struct HotMark {
    /// Line of the comment itself.
    pub line: u32,
    /// Column of the comment.
    pub col: u32,
}

/// A malformed `hc-lint:` comment (unknown directive, unknown rule, missing
/// reason) — reported as a finding so typos cannot silently disable a rule.
#[derive(Debug)]
pub struct BadAnnotation {
    /// What is wrong, in one sentence.
    pub message: String,
    /// Line of the comment.
    pub line: u32,
    /// Column of the comment.
    pub col: u32,
}

/// Everything annotation-shaped found in one file.
#[derive(Debug, Default)]
pub struct Annotations {
    /// Valid `allow` annotations.
    pub allows: Vec<Allow>,
    /// Valid `hot-path` markers.
    pub hot_marks: Vec<HotMark>,
    /// Malformed annotations.
    pub bad: Vec<BadAnnotation>,
}

/// The directive marker that introduces every annotation.
pub const MARKER: &str = "hc-lint:";

/// Parses all annotations out of a lexed file. `known_rules` is the set of
/// rule names `allow` may reference.
pub fn parse(lexed: &Lexed, known_rules: &[&str]) -> Annotations {
    let mut out = Annotations::default();
    for comment in &lexed.comments {
        // Doc comments (`///` → text starts with `/`, `//!`/`/*!` → `!`,
        // `/**` → `*`) are prose, not directives — the annotation grammar
        // can be *discussed* in docs without being parsed.
        if matches!(comment.text.chars().next(), Some('/' | '!' | '*')) {
            continue;
        }
        let Some(pos) = comment.text.find(MARKER) else {
            continue;
        };
        let directive = comment.text[pos + MARKER.len()..].trim();
        if let Some(rest) = directive.strip_prefix("allow") {
            parse_allow(rest, comment, lexed, known_rules, &mut out);
        } else if directive == "hot-path" {
            out.hot_marks.push(HotMark {
                line: comment.line,
                col: comment.col,
            });
        } else {
            out.bad.push(BadAnnotation {
                message: format!(
                    "unknown hc-lint directive `{}` (expected `allow(<rule>) — <reason>` \
                     or `hot-path`)",
                    directive.split_whitespace().next().unwrap_or("")
                ),
                line: comment.line,
                col: comment.col,
            });
        }
    }
    out
}

fn parse_allow(
    rest: &str,
    comment: &Comment,
    lexed: &Lexed,
    known_rules: &[&str],
    out: &mut Annotations,
) {
    let rest = rest.trim_start();
    let Some(inner) = rest.strip_prefix('(') else {
        out.bad.push(BadAnnotation {
            message: "malformed allow: expected `allow(<rule>)`".to_string(),
            line: comment.line,
            col: comment.col,
        });
        return;
    };
    let Some(close) = inner.find(')') else {
        out.bad.push(BadAnnotation {
            message: "malformed allow: missing `)`".to_string(),
            line: comment.line,
            col: comment.col,
        });
        return;
    };
    let rule = inner[..close].trim().to_string();
    if !known_rules.contains(&rule.as_str()) {
        out.bad.push(BadAnnotation {
            message: format!(
                "allow names unknown rule `{rule}` (known rules: {})",
                known_rules.join(", ")
            ),
            line: comment.line,
            col: comment.col,
        });
        return;
    }
    // Reason: everything after the `)`, with the leading separator (an em
    // dash, hyphens, or a colon) stripped. Mandatory, and more than a word.
    let reason = inner[close + 1..]
        .trim_start()
        .trim_start_matches(['—', '–', '-', ':'])
        .trim();
    let reason = if reason.chars().count() >= 4 {
        Some(reason.to_string())
    } else {
        None
    };
    if reason.is_none() {
        out.bad.push(BadAnnotation {
            message: format!(
                "allow({rule}) has no reason — the annotation grammar is \
                 `hc-lint: allow({rule}) — <why this site is sound>`"
            ),
            line: comment.line,
            col: comment.col,
        });
        // Fall through: an allow without a reason suppresses nothing, so the
        // underlying finding still fires alongside this one.
        return;
    }
    let target_line = if comment.trailing {
        comment.line
    } else {
        // Standalone comment: covers the next line that carries a token.
        lexed
            .tokens
            .iter()
            .map(|t| t.line)
            .find(|&l| l > comment.line)
            .unwrap_or(comment.line)
    };
    out.allows.push(Allow {
        rule,
        reason,
        line: comment.line,
        col: comment.col,
        target_line,
        used: false,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    const RULES: &[&str] = &["frozen-bits", "determinism"];

    #[test]
    fn trailing_allow_covers_its_own_line() {
        let lexed = lex("let y = x.ln(); // hc-lint: allow(frozen-bits) — spec'd closed form\n");
        let a = parse(&lexed, RULES);
        assert_eq!(a.allows.len(), 1);
        assert!(a.bad.is_empty());
        assert_eq!(a.allows[0].target_line, 1);
    }

    #[test]
    fn standalone_allow_covers_next_code_line() {
        let lexed = lex("// hc-lint: allow(determinism) — harness timing only\nlet t = now();\n");
        let a = parse(&lexed, RULES);
        assert_eq!(a.allows[0].target_line, 2);
    }

    #[test]
    fn missing_reason_is_rejected() {
        let lexed = lex("x.ln(); // hc-lint: allow(frozen-bits)\n");
        let a = parse(&lexed, RULES);
        assert!(a.allows.is_empty());
        assert_eq!(a.bad.len(), 1);
        assert!(a.bad[0].message.contains("no reason"));
    }

    #[test]
    fn unknown_rule_is_rejected() {
        let lexed = lex("// hc-lint: allow(no-such-rule) — because\nx();\n");
        let a = parse(&lexed, RULES);
        assert!(a.allows.is_empty());
        assert!(a.bad[0].message.contains("unknown rule"));
    }

    #[test]
    fn plain_ascii_separator_works() {
        let lexed = lex("x.ln(); // hc-lint: allow(frozen-bits) -- advisory pricing path\n");
        let a = parse(&lexed, RULES);
        assert_eq!(a.allows.len(), 1);
        assert_eq!(a.allows[0].reason.as_deref(), Some("advisory pricing path"));
    }

    #[test]
    fn hot_path_marker_parses() {
        let lexed = lex("// hc-lint: hot-path\nfn kernel() {}\n");
        let a = parse(&lexed, RULES);
        assert_eq!(a.hot_marks.len(), 1);
    }
}
