//! Structural views over the token stream: function scopes (so the hot-path
//! rule can confine itself to named kernels) and `#[cfg(test)]` / `#[test]`
//! spans (so rules about *result-affecting* code skip test code).

use crate::lexer::{Lexed, TokKind, Token};

/// One `fn` item: its name, the line of the `fn` keyword, and the token
/// range of its body (exclusive of the braces themselves).
#[derive(Debug, Clone)]
pub struct FnScope {
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub fn_line: u32,
    /// Token index range `(start, end)` of the body: `tokens[start..end]`
    /// are the tokens strictly inside the outermost braces.
    pub body: (usize, usize),
    /// 1-based line range `(first, last)` covered by the body braces.
    pub lines: (u32, u32),
}

/// Line spans (1-based, inclusive) of code that is compiled only under
/// `cfg(test)` or is itself a `#[test]` item.
#[derive(Debug, Default)]
pub struct Scopes {
    /// All function items, in source order (nested functions included).
    pub fns: Vec<FnScope>,
    test_spans: Vec<(u32, u32)>,
}

impl Scopes {
    /// True if `line` belongs to test-only code.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_spans
            .iter()
            .any(|&(lo, hi)| lo <= line && line <= hi)
    }

    /// Function scopes named `name` (there may be several — one per impl).
    pub fn fns_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a FnScope> {
        self.fns.iter().filter(move |f| f.name == name)
    }
}

/// Finds the token index of the `}` matching the `{` at `open` (which must
/// be a `{` punct). Returns the last index on unbalanced input.
fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// Builds the structural view of one lexed file.
pub fn analyze(lexed: &Lexed) -> Scopes {
    let tokens = &lexed.tokens;
    let mut scopes = Scopes::default();

    // Function scopes: `fn` keyword followed by an identifier (skipping the
    // bare-function-type form `fn(…)`), body = first `{` before a `;`.
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_ident("fn") {
            if let Some(name_tok) = tokens.get(i + 1) {
                if name_tok.kind == TokKind::Ident {
                    let mut j = i + 2;
                    let mut body = None;
                    // Array types in the signature (`[u64; LANES]`) contain a
                    // `;` that must not be read as "declaration, no body" —
                    // only a `;` outside square brackets terminates the item.
                    let mut bracket_depth = 0usize;
                    while let Some(t) = tokens.get(j) {
                        if t.is_punct('{') {
                            body = Some(j);
                            break;
                        }
                        if t.is_punct('[') {
                            bracket_depth += 1;
                        } else if t.is_punct(']') {
                            bracket_depth = bracket_depth.saturating_sub(1);
                        } else if t.is_punct(';') && bracket_depth == 0 {
                            break; // trait method declaration, no body
                        }
                        j += 1;
                    }
                    if let Some(open) = body {
                        let close = matching_brace(tokens, open);
                        scopes.fns.push(FnScope {
                            name: name_tok.text.clone(),
                            fn_line: tokens[i].line,
                            body: (open + 1, close),
                            lines: (tokens[open].line, tokens[close].line),
                        });
                    }
                }
            }
        }
        i += 1;
    }

    // Test spans: an outer attribute containing the ident `test` or `bench`
    // (and not `not`, so `#[cfg(not(test))]` stays live code) marks the item
    // that follows — through its first brace block, or to the `;` of a
    // braceless item.
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let open = i + 1;
            let mut depth = 0usize;
            let mut close = open;
            for (j, t) in tokens.iter().enumerate().skip(open) {
                if t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        close = j;
                        break;
                    }
                }
            }
            let attr = &tokens[open + 1..close];
            let is_test = attr
                .iter()
                .any(|t| t.is_ident("test") || t.is_ident("bench"))
                && !attr.iter().any(|t| t.is_ident("not"));
            if is_test {
                // Skip any further attributes between this one and the item.
                let mut j = close + 1;
                while tokens.get(j).is_some_and(|t| t.is_punct('#'))
                    && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
                {
                    let mut depth = 0usize;
                    let mut k = j + 1;
                    while let Some(t) = tokens.get(k) {
                        if t.is_punct('[') {
                            depth += 1;
                        } else if t.is_punct(']') {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        k += 1;
                    }
                    j = k + 1;
                }
                // Item extent: first `{ … }` block, or a braceless `…;`.
                let mut end_line = tokens.get(j).map_or(tokens[i].line, |t| t.line);
                while let Some(t) = tokens.get(j) {
                    if t.is_punct('{') {
                        let closeb = matching_brace(tokens, j);
                        end_line = tokens[closeb].line;
                        break;
                    }
                    if t.is_punct(';') {
                        end_line = t.line;
                        break;
                    }
                    j += 1;
                }
                scopes.test_spans.push((tokens[i].line, end_line));
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    scopes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn finds_functions_and_bodies() {
        let src = "impl X { fn hot(&self) -> f64 { self.walk() } }\nfn free() {}\n";
        let lexed = lex(src);
        let s = analyze(&lexed);
        assert_eq!(s.fns.len(), 2);
        assert_eq!(s.fns[0].name, "hot");
        assert_eq!(s.fns[1].name, "free");
    }

    #[test]
    fn trait_declarations_have_no_body() {
        let lexed = lex("trait T { fn decl(&self) -> f64; fn with_default(&self) { } }");
        let s = analyze(&lexed);
        assert_eq!(s.fns.len(), 1);
        assert_eq!(s.fns[0].name, "with_default");
    }

    #[test]
    fn array_types_in_signature_do_not_end_the_item() {
        let src =
            "fn strip(bits: &[u64; 8]) -> [f64; 8] { t(bits) }\ntrait T { fn d(x: [u64; 4]); }";
        let lexed = lex(src);
        let s = analyze(&lexed);
        assert_eq!(s.fns.len(), 1);
        assert_eq!(s.fns[0].name, "strip");
    }

    #[test]
    fn cfg_test_mod_is_a_test_span() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n";
        let lexed = lex(src);
        let s = analyze(&lexed);
        assert!(!s.is_test_line(1));
        assert!(s.is_test_line(3));
        assert!(s.is_test_line(4));
    }

    #[test]
    fn cfg_not_test_is_live_code() {
        let src = "#[cfg(not(test))]\nfn live() { x() }\n";
        let lexed = lex(src);
        let s = analyze(&lexed);
        assert!(!s.is_test_line(2));
    }

    #[test]
    fn test_attribute_with_following_attributes() {
        let src = "#[test]\n#[should_panic]\nfn boom() {\n    panic!()\n}\n";
        let lexed = lex(src);
        let s = analyze(&lexed);
        assert!(s.is_test_line(4));
    }
}
