//! A minimal hand-rolled Rust lexer: just enough structure for invariant
//! linting, with the two properties the rules cannot live without —
//!
//! 1. **comments, string literals, char literals, and raw strings are never
//!    mistaken for code** (a `".ln("` inside a diagnostic message or a doc
//!    comment must not trip the frozen-bits rule), and
//! 2. **comments are captured**, because the `// hc-lint: allow(...)`
//!    escape-hatch grammar lives in them.
//!
//! The lexer is *not* a full Rust grammar: it produces a flat token stream
//! (identifiers, single-char punctuation, literals) plus a comment list.
//! Rules match token *sequences* (`.` `ln` `(`), which makes them immune to
//! whitespace and line breaks between tokens.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `ln`, `HashMap`, …).
    Ident,
    /// A single punctuation character (`.`, `:`, `{`, …). Multi-character
    /// operators arrive as consecutive tokens; sequence matching handles
    /// them.
    Punct,
    /// A lifetime (`'a`, `'static`) — lexed as one token so the apostrophe
    /// can never be confused with a char literal.
    Lifetime,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`). The token
    /// text is the raw source slice; rules never look inside.
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// Numeric literal, including suffixes (`2.0f64`, `0x3FE6_2E42`).
    Num,
}

/// One lexed token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Source text of the token (for [`TokKind::Punct`], one character).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

impl Token {
    /// True if this token is the given punctuation character.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokKind::Punct && self.text.as_bytes().first() == Some(&(ch as u8))
    }

    /// True if this token is the given identifier.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }
}

/// One comment (line or block) with its source position.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text *without* the `//` / `/*` framing.
    pub text: String,
    /// 1-based line of the comment's first character.
    pub line: u32,
    /// 1-based column of the `/` that opened the comment.
    pub col: u32,
    /// Whether any token precedes the comment on its starting line (a
    /// *trailing* comment annotates its own line; a standalone comment
    /// annotates the next code line).
    pub trailing: bool,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order (comments and whitespace removed).
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    src: &'a [char],
    i: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<char> {
        self.src.get(self.i).copied()
    }

    fn peek_at(&self, off: usize) -> Option<char> {
        self.src.get(self.i + off).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens and comments. Never fails: unterminated literals
/// simply run to end-of-file (the lint must not panic on in-progress code).
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut cur = Cursor {
        src: &chars,
        i: 0,
        line: 1,
        col: 1,
    };
    let mut out = Lexed::default();
    let mut line_has_token = false;
    let mut token_line = 0u32;

    while let Some(c) = cur.peek() {
        if token_line != cur.line {
            // `line_has_token` tracks the *current* source line only.
            line_has_token = false;
            token_line = cur.line;
        }
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        if c == '/' && cur.peek_at(1) == Some('/') {
            cur.bump();
            cur.bump();
            let mut text = String::new();
            while let Some(ch) = cur.peek() {
                if ch == '\n' {
                    break;
                }
                text.push(ch);
                cur.bump();
            }
            out.comments.push(Comment {
                text,
                line,
                col,
                trailing: line_has_token,
            });
            continue;
        }
        if c == '/' && cur.peek_at(1) == Some('*') {
            cur.bump();
            cur.bump();
            let mut text = String::new();
            let mut depth = 1usize;
            while let Some(ch) = cur.peek() {
                if ch == '/' && cur.peek_at(1) == Some('*') {
                    depth += 1;
                    cur.bump();
                    cur.bump();
                    text.push_str("/*");
                    continue;
                }
                if ch == '*' && cur.peek_at(1) == Some('/') {
                    depth -= 1;
                    cur.bump();
                    cur.bump();
                    if depth == 0 {
                        break;
                    }
                    text.push_str("*/");
                    continue;
                }
                text.push(ch);
                cur.bump();
            }
            out.comments.push(Comment {
                text,
                line,
                col,
                trailing: line_has_token,
            });
            continue;
        }
        line_has_token = true;
        if c == '"' {
            lex_string(&mut cur, 0);
            push(&mut out, TokKind::Str, "\"…\"", line, col);
            continue;
        }
        if c == '\'' {
            lex_quote(&mut cur, &mut out, line, col);
            continue;
        }
        if is_ident_start(c) {
            let mut text = String::new();
            while let Some(ch) = cur.peek() {
                if !is_ident_continue(ch) {
                    break;
                }
                text.push(ch);
                cur.bump();
            }
            // Raw/byte string and byte-char prefixes: `r"…"`, `r#"…"#`,
            // `b"…"`, `br#"…"#`, `c"…"`, `b'…'`.
            let is_str_prefix = matches!(text.as_str(), "r" | "b" | "br" | "c" | "cr");
            match (is_str_prefix, cur.peek()) {
                (true, Some('"')) => {
                    lex_string(&mut cur, 0);
                    push(&mut out, TokKind::Str, "\"…\"", line, col);
                }
                (true, Some('#')) if text != "b" => {
                    let mut hashes = 0usize;
                    while cur.peek() == Some('#') {
                        hashes += 1;
                        cur.bump();
                    }
                    if cur.peek() == Some('"') {
                        lex_string(&mut cur, hashes);
                        push(&mut out, TokKind::Str, "r\"…\"", line, col);
                    } else {
                        // `r#ident` raw identifier: the `#`s were consumed;
                        // emit the prefix as an ident and continue.
                        push_owned(&mut out, TokKind::Ident, text, line, col);
                    }
                }
                (true, Some('\'')) if text == "b" => {
                    cur.bump();
                    lex_char_body(&mut cur);
                    push(&mut out, TokKind::Char, "b'…'", line, col);
                }
                _ => push_owned(&mut out, TokKind::Ident, text, line, col),
            }
            continue;
        }
        if c.is_ascii_digit() {
            let mut text = String::new();
            while let Some(ch) = cur.peek() {
                if !is_ident_continue(ch) {
                    break;
                }
                text.push(ch);
                cur.bump();
            }
            // Fractional part: `.` followed by a digit (so `0..n` and
            // `2.0f64.ln()` both split correctly).
            if cur.peek() == Some('.') && cur.peek_at(1).is_some_and(|d| d.is_ascii_digit()) {
                text.push('.');
                cur.bump();
                while let Some(ch) = cur.peek() {
                    if !is_ident_continue(ch) {
                        break;
                    }
                    text.push(ch);
                    cur.bump();
                }
            }
            push_owned(&mut out, TokKind::Num, text, line, col);
            continue;
        }
        cur.bump();
        push_owned(&mut out, TokKind::Punct, c.to_string(), line, col);
    }
    out
}

fn push(out: &mut Lexed, kind: TokKind, text: &str, line: u32, col: u32) {
    push_owned(out, kind, text.to_string(), line, col);
}

fn push_owned(out: &mut Lexed, kind: TokKind, text: String, line: u32, col: u32) {
    out.tokens.push(Token {
        kind,
        text,
        line,
        col,
    });
}

/// Consumes a string literal whose opening `"` is the cursor's next char.
/// `hashes > 0` means a raw string closed by `"` + that many `#`s (no escape
/// processing); `hashes == 0` means a normal string with `\` escapes.
fn lex_string(cur: &mut Cursor<'_>, hashes: usize) {
    cur.bump(); // opening quote
    while let Some(ch) = cur.peek() {
        if hashes == 0 && ch == '\\' {
            cur.bump();
            cur.bump();
            continue;
        }
        if ch == '"' {
            cur.bump();
            if hashes == 0 {
                return;
            }
            let mut seen = 0usize;
            while seen < hashes && cur.peek() == Some('#') {
                seen += 1;
                cur.bump();
            }
            if seen == hashes {
                return;
            }
            continue;
        }
        cur.bump();
    }
}

/// After a bare `'`: decides char literal vs lifetime and consumes it.
fn lex_quote(cur: &mut Cursor<'_>, out: &mut Lexed, line: u32, col: u32) {
    cur.bump(); // the apostrophe
    match (cur.peek(), cur.peek_at(1)) {
        // Escape (`'\n'`) — always a char literal.
        (Some('\\'), _) => {
            lex_char_body(cur);
            push(out, TokKind::Char, "'…'", line, col);
        }
        // `'x'` — plain char literal (also covers `'''`).
        (Some(_), Some('\'')) => {
            lex_char_body(cur);
            push(out, TokKind::Char, "'…'", line, col);
        }
        // `'a`, `'static`, `'_` — lifetime.
        (Some(c), _) if is_ident_start(c) => {
            let mut text = String::from("'");
            while let Some(ch) = cur.peek() {
                if !is_ident_continue(ch) {
                    break;
                }
                text.push(ch);
                cur.bump();
            }
            push_owned(out, TokKind::Lifetime, text, line, col);
        }
        _ => push(out, TokKind::Punct, "'", line, col),
    }
}

/// Consumes a char-literal body (after the opening `'`) through its closing
/// `'`, handling `\`-escapes including `\u{…}`.
fn lex_char_body(cur: &mut Cursor<'_>) {
    while let Some(ch) = cur.peek() {
        if ch == '\\' {
            cur.bump();
            cur.bump();
            continue;
        }
        cur.bump();
        if ch == '\'' {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"
            // calls .ln() in a comment
            /* and .exp() in /* a nested */ block */
            let a = "x.ln()";
            let b = r#"y.powf(2.0)"#;
            let c = 'l';
            let d: &'static str = "s";
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"ln".to_string()));
        assert!(!ids.contains(&"exp".to_string()));
        assert!(!ids.contains(&"powf".to_string()));
        assert!(ids.contains(&"let".to_string()));
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains(".ln()"));
    }

    #[test]
    fn method_calls_split_into_sequences() {
        let lexed = lex("x.ln(); v.sum::<f64>(); 2.0f64.exp()");
        let texts: Vec<&str> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        assert!(texts.windows(2).any(|w| w == [".", "ln"]));
        assert!(texts.windows(2).any(|w| w == [".", "sum"]));
        // `2.0f64` stays one number; `.exp` splits off.
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Num && t.text == "2.0f64"));
        assert!(texts.windows(2).any(|w| w == [".", "exp"]));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.kind == TokKind::Lifetime)
                .count(),
            3
        );
        assert!(!lexed.tokens.iter().any(|t| t.kind == TokKind::Char));
    }

    #[test]
    fn trailing_vs_standalone_comments() {
        let lexed = lex("let x = 1; // trailing\n// standalone\nlet y = 2;");
        assert!(lexed.comments[0].trailing);
        assert!(!lexed.comments[1].trailing);
    }

    #[test]
    fn numbers_with_ranges_and_tuple_access() {
        let lexed = lex("for i in 0..n { t.0 += 1e-5; }");
        let nums: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert!(nums.contains(&"0"));
    }
}
