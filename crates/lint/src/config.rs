//! The repo-specific knowledge: which modules are sanctioned oracles, which
//! functions are hot-path kernels, where the backend enum and its golden
//! pins live. Every list here is *load-bearing* — the driver fails the pass
//! if an entry goes stale (a listed function that no longer exists, a pin
//! file that vanished), so this file cannot silently drift from the tree.

/// Directories pruned from the workspace walk. `vendor/` holds offline
/// stand-ins for crates.io dependencies (not our invariants to enforce);
/// `crates/lint/tests` holds fixtures that *deliberately* violate rules.
pub const SKIP_DIRS: &[&str] = &[".git", "target", "vendor", "crates/lint/tests"];

/// Method names whose results are not correctly rounded by IEEE 754 and may
/// differ across platforms/libms — the frozen-bits rule. (`sqrt` is absent
/// deliberately: IEEE 754 requires exact rounding for it, so it cannot
/// break bit-reproducibility.)
pub const TRANSCENDENTAL_METHODS: &[&str] = &[
    "ln", "log", "log2", "log10", "ln_1p", "exp", "exp2", "exp_m1", "powf", "sin", "cos", "tan",
    "asin", "acos", "atan", "atan2", "sinh", "cosh", "tanh",
];

/// Modules where transcendental calls are sanctioned: the versioned noise
/// backends (every `ln` on the release path is pinned by golden snapshots)
/// and `hc-linalg`'s Cholesky oracle (`log_det` is a spec-level quantity
/// used only by reference/verification paths — reclassified as an oracle
/// module in the initial hc-lint rollout rather than annotated per call).
pub const TRANSCENDENTAL_ORACLE_PATHS: &[&str] =
    &["crates/noise/src/", "crates/linalg/src/chol.rs"];

/// Identifiers that smuggle nondeterminism into result-affecting code.
/// `HashMap`/`HashSet` because their iteration order is randomized per
/// process; the entropy constructors because `SeedStream` substreams are the
/// only sanctioned randomness source.
pub const NONDETERMINISTIC_IDENTS: &[&str] = &[
    "HashMap",
    "HashSet",
    "SystemTime",
    "thread_rng",
    "from_entropy",
    "from_os_rng",
    "OsRng",
];

/// Modules whose `Iterator::sum::<f64>()` folds *are* the specification —
/// the reference estimators whose fold order downstream fast paths must
/// reproduce bit for bit (the float-fold rule protects the fast paths, not
/// the spec). `crates/ext` holds reference implementations of competing
/// mechanisms; `stats.rs` is measurement harness, not released data.
pub const FOLD_ORACLE_PATHS: &[&str] = &[
    "crates/core/src/hier.rs",
    "crates/core/src/weighted.rs",
    "crates/core/src/isotonic.rs",
    "crates/core/src/unattributed.rs",
    "crates/core/src/universal.rs",
    "crates/core/src/budgeted.rs",
    "crates/core/src/error.rs",
    "crates/core/src/theory.rs",
    "crates/linalg/src/",
    "crates/noise/src/",
    "crates/ext/src/",
    "crates/bench/src/stats.rs",
];

/// The hot-path kernel registry: `(file, functions)` pairs naming the
/// engine-sweep, snapshot-serving, and release-path functions that must stay
/// allocation-free *statically* — complementing the counting-allocator test
/// in `tests/alloc_free.rs`, which only covers the configurations a test
/// happens to exercise. A listed function that no longer exists fails the
/// pass (`stale-config`), so renames must update this table. In-source
/// `// hc-lint: hot-path` markers extend the registry without touching it.
pub const HOT_FUNCTIONS: &[(&str, &[&str])] = &[
    (
        "crates/core/src/engine.rs",
        &[
            // Theorem-3 sweep kernels and their slab/level drivers.
            "up_level_uniform",
            "up_level_weighted",
            "down_level_uniform",
            "down_level_weighted",
            "round_nonneg",
            "zero_level",
            "tile_cut",
            "infer_into",
            "infer_zero_round_into",
            "downward_zero_round",
            "noised_upward",
            "fused_trial",
            "fused_trial_into",
            "release_and_infer",
            "release_and_infer_rounded",
            "zero_levels",
            "zero_round_slab",
            "upward",
            "downward",
            "upward_slab",
            "downward_slab",
            "upward_levels",
            "downward_levels",
            "up_kernel",
            "down_kernel",
            "zero_subtrees_in_place",
            "zero_round_in_place",
            "zero_subtrees_impl",
            "infer_parallel_into",
            "upward_subtree",
            "downward_subtree",
        ],
    ),
    (
        "crates/core/src/snapshot.rs",
        &[
            // O(1) prefix serving and the SubtreeServer decomposition folds.
            "answer_prefix_into",
            "answer",
            "answer_into",
            "answer_parallel",
            "answer_parallel_with_floor",
            "answer_recursive",
            "answer_blocked",
            "answer_blocked_into",
            "fold_two_fringe",
            "fold_two_fringe_blocked",
            "sum_run_blocked",
            "rebuild_from_leaves",
            "rebuild_from_leaves_blocked",
            "rebuild_from_tree_values",
            "rebuild_from_tree_values_blocked",
            "total",
            "for_each_node",
            "for_each_node_at_depth",
            "walk",
            "decomposition_len",
            "count_per_depth",
        ],
    ),
    (
        "crates/core/src/accuracy.rs",
        &[
            // The planner's inner pricing loops call these once per sampled
            // position × candidate ε (bisection multiplies that by ~200
            // probes), so they must stay allocation-free.
            "det_cbrt",
            "alpha_half_width",
            "epsilon_for_alpha_width",
            "invert_monotone",
        ],
    ),
    (
        "crates/mech/src/budget.rs",
        &[
            // Accountant getters sit on the serving read path (checked per
            // publish); `spend`/`spend_at` allocate their ledger rows by
            // design and are deliberately not listed.
            "remaining",
            "remaining_delta",
            "spent",
            "spent_delta",
        ],
    ),
    (
        "crates/core/src/shard.rs",
        &[
            // The persistent pool's per-batch paths: dispatch/collect moves
            // recycled owned buffers, workers answer from their shard's
            // snapshot clone — no fresh owned values per batch. (`new`,
            // `with_floor`, and `publish` are construction/refresh paths and
            // clone by design; they are deliberately not listed.)
            "answer_into",
            "answer_into_with_floor",
            "answer_serial",
            "serve_chunk",
            "worker_loop",
        ],
    ),
    (
        "crates/mech/src/sequences/hierarchical.rs",
        &[
            // Per-trial query evaluation straight into batch segments.
            "tree_counts_into_slice",
            "evaluate_into_slice",
        ],
    ),
    (
        "crates/mech/src/sequences/unit.rs",
        &["evaluate_into_slice"],
    ),
    (
        "crates/noise/src/laplace.rs",
        &[
            // The batched Laplace draw paths (2^21 draws per trial).
            "sample",
            "sample_with",
            "fill",
            "fill_with",
            "add_noise",
            "add_noise_with",
            "fast_ln_pass",
            "fast_magnitude",
            "sample_from_bits",
            "fill_wide",
            "draw_strip",
            "transform_strip",
        ],
    ),
    ("crates/noise/src/backend.rs", &["fast_ln"]),
    (
        "crates/serve/src/cell.rs",
        &[
            // The epoch-swap read and publish paths: a reader pin must cost
            // two atomics and an Arc bump, never a fresh owned value, and
            // the publisher may allocate only through `Arc::new(snapshot)`
            // (taking ownership of the prebuilt snapshot, not copying it).
            // The sharded bank's read paths ride the same contract;
            // `broadcast` clones per shard by design and is not listed.
            "load",
            "publish",
            "epoch",
            "pin",
            "pin_shard",
        ],
    ),
    (
        "crates/serve/src/service.rs",
        &[
            // The serving read path: validation + pinned prefix lookups
            // into a caller-owned buffer; errors are plain-field variants
            // so the failure paths stay allocation-free too.
            "answer",
            "answer_into",
        ],
    ),
];

/// Token sequences forbidden inside hot-path kernels. `resize`, `reserve`,
/// and `push` are deliberately *not* here: the warm-up contract allows
/// capacity growth to the high-water mark (the counting-allocator test pins
/// the warm behaviour); what a kernel must never do is construct fresh
/// owned values per call.
pub const HOT_FORBIDDEN: &[&[&str]] = &[
    &["Vec", ":", ":", "new"],
    &["Vec", ":", ":", "with_capacity"],
    &["Vec", ":", ":", "from"],
    &["vec", "!"],
    &[".", "collect"],
    &[".", "to_vec"],
    &[".", "clone"],
    &[".", "to_string"],
    &[".", "to_owned"],
    &["Box", ":", ":", "new"],
    &["String", ":", ":", "new"],
    &["String", ":", ":", "from"],
    &["format", "!"],
];

/// Where the versioned backend enum lives.
pub const BACKEND_ENUM_PATH: &str = "crates/noise/src/backend.rs";

/// The test files CI runs per backend prefix; every `NoiseBackend` variant
/// must have at least one `<snake_case_variant>_*` test in **each** (the CI
/// bench-smoke job runs `cargo test --test <file> <prefix>_` per backend, so
/// a variant missing from either file silently loses its pin coverage).
pub const BACKEND_PIN_FILES: &[&str] = &["tests/golden_releases.rs", "tests/snapshot_serving.rs"];

/// Converts a `CamelCase` variant name to the `snake_case` golden-pin
/// prefix (`FastLn` → `fast_ln`).
pub fn snake_case(variant: &str) -> String {
    let mut out = String::with_capacity(variant.len() + 4);
    for (i, c) in variant.chars().enumerate() {
        if c.is_uppercase() {
            if i > 0 {
                out.push('_');
            }
            for lc in c.to_lowercase() {
                out.push(lc);
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// True if `rel_path` (workspace-relative, `/`-separated) matches `pat`: a
/// trailing-`/` pattern is a directory prefix, anything else is exact.
pub fn path_matches(rel_path: &str, pat: &str) -> bool {
    if let Some(dir) = pat.strip_suffix('/') {
        rel_path.starts_with(dir) && rel_path.as_bytes().get(dir.len()) == Some(&b'/')
    } else {
        rel_path == pat
    }
}

/// True if any pattern in `pats` matches.
pub fn path_in(rel_path: &str, pats: &[&str]) -> bool {
    pats.iter().any(|p| path_matches(rel_path, p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snake_case_matches_backend_names() {
        assert_eq!(snake_case("Reference"), "reference");
        assert_eq!(snake_case("FastLn"), "fast_ln");
        assert_eq!(snake_case("AVX512"), "a_v_x512");
    }

    #[test]
    fn dir_patterns_need_a_separator() {
        assert!(path_matches(
            "crates/noise/src/laplace.rs",
            "crates/noise/src/"
        ));
        assert!(!path_matches(
            "crates/noise/srcx/laplace.rs",
            "crates/noise/src/"
        ));
        assert!(path_matches(
            "crates/linalg/src/chol.rs",
            "crates/linalg/src/chol.rs"
        ));
        assert!(!path_matches(
            "crates/linalg/src/chol.rs.bak",
            "crates/linalg/src/chol.rs"
        ));
    }
}
