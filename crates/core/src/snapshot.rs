//! The query-serving subsystem: prefix-summed snapshots, allocation-free
//! subtree serving, and the workload-driven strategy planner.
//!
//! The write path (release → inference) has been allocation-free and
//! trial-parallel since the engine work; this module is the matching *read*
//! path. Three pieces:
//!
//! * [`ConsistentSnapshot`] — an immutable prefix-summed view over the leaf
//!   level of a consistent estimate (engine output, [`ConsistentTree`]
//!   values, a flat release's fused prefix arrays, or true counts). Any
//!   `[lo, hi]` range query is two prefix lookups — O(1) regardless of range
//!   length — with batched [`answer_into`](ConsistentSnapshot::answer_into)
//!   (unrolled, zero allocations after warm-up) and an `HC_THREADS`-honouring
//!   [`answer_parallel`](ConsistentSnapshot::answer_parallel) for large query
//!   batches. A snapshot can carry its release's Laplace noise scale so every
//!   answer can be served with a [`ConfidenceInterval`].
//! * [`SubtreeServer`] — the `H̃`-style estimators (noisy trees, and the
//!   Sec. 4.2 zeroed/rounded `H̄` whose consistency is deliberately broken at
//!   zeroed boundaries) answer by summing the minimal subtree decomposition.
//!   The server folds that decomposition *in place* — same node order, same
//!   summation order, bit-identical to materializing
//!   [`TreeShape::subtree_decomposition`] and summing — without the
//!   per-query index vector (the decomposition stays as the test oracle).
//! * [`StrategyPlanner`] — Hay et al.'s own analysis (Sec. 5, Theorem 4)
//!   says the right strategy depends on workload shape: flat beats
//!   hierarchical for short ranges, and per-level budgets can shift the
//!   trade-off. Given a declared set of [`RangeWorkload`]s the planner
//!   prices each candidate release with [`crate::theory`]'s closed forms and
//!   returns the predicted per-query error alongside the pick.

use std::sync::OnceLock;

use hc_data::{Histogram, Interval, RangeWorkload};
use hc_mech::{laplace_half_width, ConfidenceInterval, Epsilon, TreeShape};
use hc_noise::{NoiseBackend, SeedStream};
use rand::Rng;

use crate::accuracy::{self, AccuracyTarget, Guarantee};
use crate::budgeted::{BudgetSplit, BudgetedHierarchical};
use crate::engine::{effective_threads, BatchInference};
use crate::theory;
use crate::universal::{FlatUniversal, HierarchicalUniversal, Rounding};

/// Exact-integer ceiling for f64 prefix sums: every integer partial sum up
/// to **and including** `2^53` is represented exactly (the first
/// unrepresentable integer is `2^53 + 1`), so prefix differences reproduce
/// direct summation bit for bit as long as the total stays at or below this
/// bound.
const EXACT_F64_INT: u64 = 1 << 53;

/// Query-count floor below which [`ConsistentSnapshot::answer_parallel`]
/// answers serially instead of spawning scoped threads. Measured (see
/// BENCH_hier_infer.json `range_serving_*`): a warm serial answer is ~1.4 ns
/// per query on an L2-resident prefix, while a `thread::scope` spawn+join
/// cycle costs tens of microseconds — the threaded split only amortizes past
/// a few thousand queries even on DRAM-resident domains, so the floor sits
/// at the batch size where the split first measured faster than serial.
pub const PARALLEL_SERIAL_FLOOR: usize = 4096;

/// Query-count floor below which [`crate::shard::ShardPool`] answers
/// serially from shard 0 instead of waking its workers. The persistent
/// pool's hand-off (one condvar wake + one reply wait per worker) is two
/// orders of magnitude cheaper than a scope spawn, so its floor is
/// correspondingly lower: past a few hundred queries the wake cost is noise
/// against the batch's serve time on the large domains the pool targets.
pub const SHARD_SERIAL_FLOOR: usize = 512;

/// Batched prefix-difference kernel shared by [`ConsistentSnapshot`] and
/// `FlatRelease::answer_into`: 4-way unrolled over the query batch (each
/// answer is two independent loads and one subtract, so the unrolled form
/// keeps several lookups in flight).
pub(crate) fn answer_prefix_into(
    prefix: &[f64],
    domain_size: usize,
    queries: &[Interval],
    out: &mut [f64],
) {
    assert_eq!(queries.len(), out.len(), "one answer slot per query");
    let check = |q: &Interval| {
        assert!(
            q.hi() < domain_size,
            "query {q} outside domain of size {domain_size}"
        );
    };
    let n = queries.len();
    let main = n - n % 4;
    for i in (0..main).step_by(4) {
        let q = &queries[i..i + 4];
        let o = &mut out[i..i + 4];
        q.iter().for_each(check);
        o[0] = prefix[q[0].hi() + 1] - prefix[q[0].lo()];
        o[1] = prefix[q[1].hi() + 1] - prefix[q[1].lo()];
        o[2] = prefix[q[2].hi() + 1] - prefix[q[2].lo()];
        o[3] = prefix[q[3].hi() + 1] - prefix[q[3].lo()];
    }
    for i in main..n {
        let q = &queries[i];
        check(q);
        out[i] = prefix[q.hi() + 1] - prefix[q.lo()];
    }
}

/// An immutable prefix-summed view of a consistent leaf estimate, serving
/// any `[lo, hi]` range count in O(1) via two prefix lookups.
///
/// The prefix is built with the exact construction of the historical
/// `ConsistentTree` prefix (`prefix[i+1] = prefix[i] + leaf[i]`, every leaf
/// of the padded level, in index order), so
/// [`answer`](ConsistentSnapshot::answer) is **bit-identical** to
/// `ConsistentTree::range_query` for the same values — and, on exactly
/// consistent trees (true counts, or any integer-valued tree whose parents
/// equal their child sums), bit-identical to summing the minimal subtree
/// decomposition as well. `tests/snapshot_serving.rs` pins both.
///
/// Snapshots are cheap to rebuild
/// ([`rebuild_from_tree_values`](Self::rebuild_from_tree_values) is one pass
/// over the leaves with zero allocations after warm-up), which is how the
/// experiment scoring loops use them: one snapshot per trial, thousands of
/// queries served from it.
#[derive(Debug, PartialEq)]
pub struct ConsistentSnapshot {
    /// `prefix[i]` = sum of the first `i` leaf values (padding included).
    prefix: Vec<f64>,
    domain_size: usize,
    /// The per-answer Laplace scale `b` of the release behind this view,
    /// when known — enables [`Self::confidence`].
    noise_scale: Option<f64>,
}

/// Hand-written so `clone_from` reuses the destination's prefix buffer (the
/// derive would fall back to `*self = source.clone()`, allocating a fresh
/// vector per call) — [`crate::shard::ShardPool::publish`] republishes into
/// warm per-shard clones on this path, keeping steady-state publishes
/// allocation-free once every shard has reached its high-water mark.
impl Clone for ConsistentSnapshot {
    fn clone(&self) -> Self {
        Self {
            prefix: self.prefix.clone(),
            domain_size: self.domain_size,
            noise_scale: self.noise_scale,
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.prefix.clone_from(&source.prefix);
        self.domain_size = source.domain_size;
        self.noise_scale = source.noise_scale;
    }
}

impl ConsistentSnapshot {
    /// Builds a snapshot over a full (padded) leaf-value slice; queries are
    /// accepted on `[0, domain_size)`.
    pub fn from_leaves(leaves: &[f64], domain_size: usize) -> Self {
        let mut snapshot = Self {
            prefix: Vec::new(),
            domain_size: 0,
            noise_scale: None,
        };
        snapshot.rebuild_from_leaves(leaves, domain_size);
        snapshot
    }

    /// Builds a snapshot from a full tree-node vector (BFS order over
    /// `shape`) — the layout every engine output
    /// (`BatchInference::release_and_infer*`, `LevelTree::infer*`, batch
    /// slices) uses.
    pub fn from_tree_values(shape: &TreeShape, values: &[f64], domain_size: usize) -> Self {
        let mut snapshot = Self {
            prefix: Vec::new(),
            domain_size: 0,
            noise_scale: None,
        };
        snapshot.rebuild_from_tree_values(shape, values, domain_size);
        snapshot
    }

    /// Wraps an already-built prefix array (`prefix[0] == 0`, one entry per
    /// leaf plus the leading zero) — the zero-copy hook for releases that
    /// already maintain fused prefix sums (`FlatRelease`).
    pub fn from_prefix(prefix: Vec<f64>, domain_size: usize) -> Self {
        assert!(
            prefix.len() > domain_size,
            "prefix of {} entries cannot cover a domain of {domain_size}",
            prefix.len()
        );
        assert_eq!(prefix[0], 0.0, "prefix must start at zero");
        Self {
            prefix,
            domain_size,
            noise_scale: None,
        }
    }

    /// A snapshot of the *true* counts — exact O(1) truth for experiment
    /// scoring loops. Requires the total count to stay at or below `2^53` so
    /// every prefix partial sum is an exact f64 integer and range answers
    /// reproduce [`Histogram::range_count`] exactly. The bound is inclusive:
    /// `2^53` itself is exactly representable, and every partial sum along
    /// the way is a smaller integer, so the prefix stays exact right up to
    /// (and including) the boundary — `tests` pins the exact-boundary total.
    pub fn from_histogram(histogram: &Histogram) -> Self {
        assert!(
            histogram.total() <= EXACT_F64_INT,
            "total count too large for exact f64 prefix sums"
        );
        let mut snapshot = Self {
            prefix: Vec::new(),
            domain_size: 0,
            noise_scale: None,
        };
        snapshot.prefix.reserve(histogram.len() + 1);
        snapshot.prefix.push(0.0);
        let mut acc = 0.0f64;
        for &c in histogram.counts() {
            acc += c as f64;
            snapshot.prefix.push(acc);
        }
        snapshot.domain_size = histogram.len();
        snapshot
    }

    /// Attaches the release's per-answer Laplace scale `b = Δ/ε`, enabling
    /// [`Self::confidence`].
    pub fn with_noise_scale(mut self, noise_scale: f64) -> Self {
        assert!(
            noise_scale > 0.0 && noise_scale.is_finite(),
            "noise scale must be positive"
        );
        self.noise_scale = Some(noise_scale);
        self
    }

    /// Replaces (or clears) the attached noise scale in place — the rebuild
    /// paths' companion to [`Self::with_noise_scale`]: a snapshot reused
    /// across releases via `rebuild_from_*` keeps its old scale otherwise,
    /// which would silently misprice [`Self::confidence`] when the new
    /// release was drawn at a different ε.
    pub fn set_noise_scale(&mut self, noise_scale: Option<f64>) {
        if let Some(scale) = noise_scale {
            assert!(
                scale > 0.0 && scale.is_finite(),
                "noise scale must be positive"
            );
        }
        self.noise_scale = noise_scale;
    }

    /// Rebuilds in place from a leaf slice — zero allocations once the
    /// prefix buffer has warmed up. Same arithmetic as
    /// [`Self::from_leaves`], bit for bit.
    ///
    /// The prefix sum is a strict serial dependency chain
    /// (`prefix[i+1] = prefix[i] + leaf[i]`, left-associated), and that
    /// association is frozen — every golden release pin depends on it. What
    /// *is* optimized here is everything around the chain: the buffer is
    /// `resize`d once and written by index (steady-state rebuilds touch no
    /// capacity check and no memset), and the writes are blocked four at a
    /// time so the stores batch while the adds stay in exact serial order.
    /// For an order-*changing* blocked scan (vectorizable carry-per-block
    /// form, different bits), see [`Self::rebuild_from_leaves_blocked`].
    pub fn rebuild_from_leaves(&mut self, leaves: &[f64], domain_size: usize) {
        assert!(
            domain_size <= leaves.len(),
            "domain larger than the leaf level"
        );
        self.prefix.resize(leaves.len() + 1, 0.0);
        self.prefix[0] = 0.0;
        let out = &mut self.prefix[1..];
        let mut acc = 0.0f64;
        let mut leaf_blocks = leaves.chunks_exact(4);
        let mut out_blocks = out.chunks_exact_mut(4);
        for (l, o) in (&mut leaf_blocks).zip(&mut out_blocks) {
            // The four adds stay one serial chain — identical association to
            // the scalar loop, so the bits cannot move.
            acc += l[0];
            o[0] = acc;
            acc += l[1];
            o[1] = acc;
            acc += l[2];
            o[2] = acc;
            acc += l[3];
            o[3] = acc;
        }
        for (&leaf, slot) in leaf_blocks
            .remainder()
            .iter()
            .zip(out_blocks.into_remainder())
        {
            acc += leaf;
            *slot = acc;
        }
        self.domain_size = domain_size;
    }

    /// Order-changing blocked rebuild: per-block-of-8 local prefix scan
    /// (Hillis–Steele log-step form, which autovectorizes at the pinned
    /// `x86-64-v3` baseline) plus one carry add per lane — the serial
    /// dependency chain shrinks from one add per *leaf* to one add per
    /// *block*.
    ///
    /// **This changes the summation association**, so the resulting prefix
    /// (and every answer served from it) is *not* bit-identical to
    /// [`Self::rebuild_from_leaves`] — it is a distinct, separately-pinned
    /// serving mode (`tests/snapshot_serving.rs` freezes its bits at fixed
    /// seeds), opted into explicitly per tenant in `hc-serve`. Default paths
    /// never route here.
    pub fn rebuild_from_leaves_blocked(&mut self, leaves: &[f64], domain_size: usize) {
        assert!(
            domain_size <= leaves.len(),
            "domain larger than the leaf level"
        );
        self.prefix.resize(leaves.len() + 1, 0.0);
        self.prefix[0] = 0.0;
        let out = &mut self.prefix[1..];
        let mut carry = 0.0f64;
        let mut leaf_blocks = leaves.chunks_exact(8);
        let mut out_blocks = out.chunks_exact_mut(8);
        for (l, o) in (&mut leaf_blocks).zip(&mut out_blocks) {
            // Deliberate reassociation: this serving mode is pinned under
            // its own golden bits, never the default's. The three log-steps
            // (d = 1, 2, 4) are written as explicit per-lane statements —
            // the same adds in the same association as the d-loop form, but
            // every intermediate stays an SSA scalar the SLP vectorizer
            // packs directly instead of a stack array it may leave scalar.
            let a1 = l[1] + l[0];
            let a2 = l[2] + l[1];
            let a3 = l[3] + l[2];
            let a4 = l[4] + l[3];
            let a5 = l[5] + l[4];
            let a6 = l[6] + l[5];
            let a7 = l[7] + l[6];
            let b2 = a2 + l[0];
            let b3 = a3 + a1;
            let b4 = a4 + a2;
            let b5 = a5 + a3;
            let b6 = a6 + a4;
            let b7 = a7 + a5;
            let c4 = b4 + l[0];
            let c5 = b5 + a1;
            let c6 = b6 + b2;
            let c7 = b7 + b3;
            o[0] = carry + l[0];
            o[1] = carry + a1;
            o[2] = carry + b2;
            o[3] = carry + b3;
            o[4] = carry + c4;
            o[5] = carry + c5;
            o[6] = carry + c6;
            o[7] = carry + c7;
            carry += c7;
        }
        for (&leaf, slot) in leaf_blocks
            .remainder()
            .iter()
            .zip(out_blocks.into_remainder())
        {
            carry += leaf;
            *slot = carry;
        }
        self.domain_size = domain_size;
    }

    /// Blocked-scan companion of [`Self::rebuild_from_tree_values`] — same
    /// leaf extraction, [`Self::rebuild_from_leaves_blocked`] arithmetic.
    /// Opt-in only; see the blocked rebuild's bit-identity caveat.
    pub fn rebuild_from_tree_values_blocked(
        &mut self,
        shape: &TreeShape,
        values: &[f64],
        domain_size: usize,
    ) {
        assert_eq!(values.len(), shape.nodes(), "one value per tree node");
        assert!(
            domain_size <= shape.leaves(),
            "domain larger than leaf level"
        );
        self.rebuild_from_leaves_blocked(&values[shape.first_leaf()..], domain_size);
    }

    /// Rebuilds in place from a BFS tree-node vector (see
    /// [`Self::from_tree_values`]).
    pub fn rebuild_from_tree_values(
        &mut self,
        shape: &TreeShape,
        values: &[f64],
        domain_size: usize,
    ) {
        assert_eq!(values.len(), shape.nodes(), "one value per tree node");
        assert!(
            domain_size <= shape.leaves(),
            "domain larger than leaf level"
        );
        self.rebuild_from_leaves(&values[shape.first_leaf()..], domain_size);
    }

    /// The unpadded domain size — queries must satisfy `hi < domain_size`.
    #[inline]
    pub fn domain_size(&self) -> usize {
        self.domain_size
    }

    /// The raw prefix array (`prefix[0] == 0`, one entry per leaf plus the
    /// leading zero) — the shard workers answer straight off this slice.
    #[inline]
    pub(crate) fn prefix(&self) -> &[f64] {
        &self.prefix
    }

    /// The attached Laplace noise scale, if any.
    #[inline]
    pub fn noise_scale(&self) -> Option<f64> {
        self.noise_scale
    }

    /// The total estimate over the (unpadded) domain.
    #[inline]
    pub fn total(&self) -> f64 {
        self.prefix[self.domain_size]
    }

    /// Answers `c([lo, hi])` in O(1): two prefix lookups and one subtract.
    #[inline]
    pub fn answer(&self, interval: Interval) -> f64 {
        assert!(
            interval.hi() < self.domain_size,
            "query {interval} outside domain of size {}",
            self.domain_size
        );
        self.prefix[interval.hi() + 1] - self.prefix[interval.lo()]
    }

    /// Answers a whole query batch into a caller-owned buffer (resized to
    /// the batch length; zero allocations after warm-up). Unrolled over the
    /// batch; each answer is exactly [`Self::answer`]'s arithmetic.
    pub fn answer_into(&self, queries: &[Interval], out: &mut Vec<f64>) {
        out.resize(queries.len(), 0.0);
        answer_prefix_into(&self.prefix, self.domain_size, queries, out);
    }

    /// [`Self::answer_into`] with the batch split across scoped-thread
    /// workers — for serving-side query floods. Answers are independent
    /// lookups, so the output is bit-identical to the serial batch for any
    /// thread count. `threads` is a cap, overridable via the `HC_THREADS`
    /// environment variable ([`effective_threads`]).
    ///
    /// Batches shorter than [`PARALLEL_SERIAL_FLOOR`] are answered serially:
    /// below that point the per-call `thread::scope` spawn/join cost exceeds
    /// the whole batch's serve time. For a *persistent* worker pool without
    /// the per-call spawn, see [`crate::shard::ShardPool`].
    pub fn answer_parallel(&self, queries: &[Interval], out: &mut Vec<f64>, threads: usize) {
        self.answer_parallel_with_floor(queries, out, threads, PARALLEL_SERIAL_FLOOR);
    }

    /// [`Self::answer_parallel`] with an explicit serial-fallback floor —
    /// tests and benches pass `0` to force the threaded split regardless of
    /// batch size (the bit-identity contract must hold on the threaded path
    /// itself, not just on the serial fallback small batches take).
    pub fn answer_parallel_with_floor(
        &self,
        queries: &[Interval],
        out: &mut Vec<f64>,
        threads: usize,
        serial_floor: usize,
    ) {
        let workers = effective_threads(threads).max(1).min(queries.len().max(1));
        if workers <= 1 || queries.len() < serial_floor {
            self.answer_into(queries, out);
            return;
        }
        out.resize(queries.len(), 0.0);
        let per = queries.len().div_ceil(workers);
        std::thread::scope(|scope| {
            for (q_chunk, o_chunk) in queries.chunks(per).zip(out.chunks_mut(per)) {
                let prefix = &self.prefix;
                let domain_size = self.domain_size;
                scope.spawn(move || {
                    answer_prefix_into(prefix, domain_size, q_chunk, o_chunk);
                });
            }
        });
    }

    /// A two-sided confidence interval around [`Self::answer`], derived from
    /// the attached noise scale; `None` when no scale was attached.
    ///
    /// Construction: a range of `m` bins sums `m` released counts, each
    /// `true + Lap(b)`. Holding every count inside its own two-sided
    /// interval at level `1 − (1 − level)/m` simultaneously (union bound)
    /// keeps the sum within `m` half-widths of the truth, so coverage is at
    /// least `level`. For flat releases this is an exact (conservative)
    /// guarantee; for inferred trees it inherits the Sec. 3.2 argument that
    /// projection onto a convex set containing the truth cannot move the
    /// estimate further from it, and the empirical-coverage test pins that
    /// the interval stays conservative in practice.
    pub fn confidence(&self, interval: Interval, level: f64) -> Option<ConfidenceInterval> {
        let scale = self.noise_scale?;
        let center = self.answer(interval);
        Some(union_bound_interval(scale, interval.len(), level, center))
    }
}

/// The union-bound interval arithmetic behind
/// [`ConsistentSnapshot::confidence`], total in `m` (the number of released
/// counts the range sums).
///
/// The historical in-line formula divided by `m`: at `m = 0` the per-term
/// level became `-inf` and the half-width NaN (or an assert, depending on
/// the quantile path). [`Interval`] is structurally non-empty, so
/// `confidence` itself can never reach `m = 0` — but serving layers with
/// emptiness-capable wire queries (`hc-serve`'s half-open `RangeQuery`) sum
/// zero released counts for an empty range, whose answer is exactly `0.0`
/// with no noise at all. The correct interval there is the exact zero-width
/// interval at the center, which is what this helper returns — never NaN.
/// For `m ≥ 1` the arithmetic is bit-identical to the historical formula.
pub fn union_bound_interval(scale: f64, m: usize, level: f64, center: f64) -> ConfidenceInterval {
    if m == 0 {
        // A sum over zero released counts is exact: zero-width coverage at
        // any level.
        return ConfidenceInterval {
            lo: center,
            hi: center,
            level,
        };
    }
    let m = m as f64;
    let per_term_level = 1.0 - (1.0 - level) / m;
    let half = m * laplace_half_width(scale, per_term_level);
    ConfidenceInterval {
        lo: center - half,
        hi: center + half,
        level,
    }
}

/// Allocation-free serving for the decomposition-answered estimators: `H̃`
/// (noisy trees) and the Sec. 4.2 zeroed/rounded `H̄` (whose consistency is
/// deliberately broken at zeroed boundaries, so leaf prefix sums would
/// answer differently — the decomposition is the defined semantics).
///
/// [`answer`](Self::answer) folds the node values of the minimal subtree
/// decomposition in the exact order
/// [`TreeShape::subtree_decomposition`] emits them (depth-first, left to
/// right), starting from `0.0` — bit-identical to materializing the
/// decomposition and summing, with no per-query index vector and no
/// `leaf_span`/`depth` recomputation per node (per-level span widths come
/// straight from the compiled level offsets).
#[derive(Debug, Clone)]
pub struct SubtreeServer {
    shape: TreeShape,
}

impl SubtreeServer {
    /// Compiles a server for one tree geometry (`TreeShape` is heap-free, so
    /// this allocates nothing).
    pub fn new(shape: &TreeShape) -> Self {
        Self {
            shape: shape.clone(),
        }
    }

    /// The served tree geometry.
    #[inline]
    pub fn shape(&self) -> &TreeShape {
        &self.shape
    }

    /// Visits the nodes of the minimal subtree decomposition of `target` in
    /// emission order — the iteration core shared by every fold below and by
    /// the planner's decomposition pricing.
    pub fn for_each_node(&self, target: Interval, mut visit: impl FnMut(usize)) {
        self.for_each_node_at_depth(target, |v, _| visit(v));
    }

    /// [`Self::for_each_node`] with the node's depth alongside — what the
    /// planner's per-level pricing consumes.
    pub fn for_each_node_at_depth(&self, target: Interval, mut visit: impl FnMut(usize, usize)) {
        assert!(
            target.hi() < self.shape.leaves(),
            "target {target} outside leaf range"
        );
        let leaves = self.shape.leaves();
        self.walk(0, 0, 0, leaves, target, &mut visit);
    }

    /// Depth-first descent mirroring `TreeShape::decompose_into`: emit a
    /// node whose span the target covers, otherwise recurse into the
    /// children that intersect it (left to right). `span_lo`/`span_len`
    /// track the node's leaf span arithmetically, so no per-node
    /// `leaf_span`/`depth` calls are needed.
    fn walk(
        &self,
        v: usize,
        depth: usize,
        span_lo: usize,
        span_len: usize,
        target: Interval,
        visit: &mut impl FnMut(usize, usize),
    ) {
        let span_hi = span_lo + span_len - 1;
        if target.lo() <= span_lo && span_hi <= target.hi() {
            visit(v, depth);
            return;
        }
        let k = self.shape.branching();
        let child_len = span_len / k;
        let first_child = k * v + 1;
        for i in 0..k {
            let c_lo = span_lo + i * child_len;
            let c_hi = c_lo + child_len - 1;
            if c_lo <= target.hi() && target.lo() <= c_hi {
                self.walk(first_child + i, depth + 1, c_lo, child_len, target, visit);
            }
        }
    }

    /// Folds `rounding.apply(values[v])` over the decomposition of `target`
    /// — `TreeRelease::range_query_subtree`'s summation, in place.
    ///
    /// The fold starts from `-0.0`, exactly like `Iterator::sum::<f64>()`
    /// (the historical query paths' accumulator), so the answer is
    /// bit-identical to materializing the decomposition and `.sum()`ing it
    /// even in the all-negative-zero corner.
    ///
    /// Implementation: the iterative two-fringe walk
    /// ([`Self::fold_two_fringe`]) — no recursion, no closure dispatch per
    /// node. [`Self::answer_recursive`] keeps the recursive fold as the
    /// bitwise oracle; `tests/snapshot_serving.rs` pins the two equal to the
    /// bit across shapes, values, and rounding policies.
    pub fn answer(&self, values: &[f64], rounding: Rounding, target: Interval) -> f64 {
        assert_eq!(
            values.len(),
            self.shape.nodes(),
            "value vector must cover the tree"
        );
        self.fold_two_fringe(values, rounding, target)
    }

    /// The recursive decomposition fold — the bitwise oracle
    /// [`Self::answer`]'s iterative walk is pinned against. Same visit
    /// order, same `-0.0` seed, same per-node arithmetic, one closure call
    /// per node.
    pub fn answer_recursive(&self, values: &[f64], rounding: Rounding, target: Interval) -> f64 {
        assert_eq!(
            values.len(),
            self.shape.nodes(),
            "value vector must cover the tree"
        );
        let mut acc = -0.0f64;
        self.for_each_node(target, |v| acc += rounding.apply(values[v]));
        acc
    }

    /// The iterative decomposition fold: descend to the *split node* (the
    /// deepest node whose span still contains the whole target), then walk
    /// the left fringe down to `target.lo()` stacking covered-sibling runs
    /// (emitted deepest-first on unwind, matching the recursion's postorder
    /// on that flank), emit the split node's fully-covered middle children,
    /// and walk the right fringe down to `target.hi()` emitting covered
    /// left-siblings on the way (the recursion's preorder on that flank).
    ///
    /// The emission sequence is exactly the recursive depth-first
    /// left-to-right order of [`Self::for_each_node`], so the `-0.0`-seeded
    /// float fold is bit-identical to [`Self::answer_recursive`] — while
    /// spans stay in three integers per fringe and the only state is a
    /// fixed-size run stack (`TreeShape` caps heights at 64, so it lives on
    /// the stack and the fold allocates nothing).
    fn fold_two_fringe(&self, values: &[f64], rounding: Rounding, target: Interval) -> f64 {
        assert!(
            target.hi() < self.shape.leaves(),
            "target {target} outside leaf range"
        );
        let k = self.shape.branching();
        let mut acc = -0.0f64;

        // Phase 1: descend while one child holds the whole target. The
        // descent invariant is `target ⊆ [span_lo, span_lo + span_len)`, so
        // "covered" can only mean "equal" and the check needs no `max`/`min`.
        let mut v = 0usize;
        let mut span_lo = 0usize;
        let mut span_len = self.shape.leaves();
        let (first_child, child_len, ci_lo, ci_hi) = loop {
            if target.lo() <= span_lo && span_lo + span_len - 1 <= target.hi() {
                acc += rounding.apply(values[v]);
                return acc;
            }
            let child_len = span_len / k;
            let first_child = k * v + 1;
            let ci_lo = (target.lo() - span_lo) / child_len;
            let ci_hi = (target.hi() - span_lo) / child_len;
            if ci_lo != ci_hi {
                break (first_child, child_len, ci_lo, ci_hi);
            }
            v = first_child + ci_lo;
            span_lo += ci_lo * child_len;
            span_len = child_len;
        };

        // Phase 2: left fringe into child `ci_lo`. Invariant: `target.lo()`
        // lies inside the node's span and the target covers through its
        // right edge — so every sibling right of the descent child is fully
        // covered. The recursion emits those runs *after* the deeper nodes
        // (postorder on this flank); stack them and unwind deepest-first.
        let mut pending = [(0usize, 0usize); 64];
        let mut stacked = 0usize;
        let mut lv = first_child + ci_lo;
        let mut l_lo = span_lo + ci_lo * child_len;
        let mut l_len = child_len;
        loop {
            if target.lo() <= l_lo {
                acc += rounding.apply(values[lv]);
                break;
            }
            let clen = l_len / k;
            let fc = k * lv + 1;
            let ci = (target.lo() - l_lo) / clen;
            if ci + 1 < k {
                pending[stacked] = (fc + ci + 1, k - 1 - ci);
                stacked += 1;
            }
            lv = fc + ci;
            l_lo += ci * clen;
            l_len = clen;
        }
        while stacked > 0 {
            stacked -= 1;
            let (start, count) = pending[stacked];
            for &node in &values[start..start + count] {
                acc += rounding.apply(node);
            }
        }

        // Phase 3: the split node's fully-covered middle children.
        for &node in &values[first_child + ci_lo + 1..first_child + ci_hi] {
            acc += rounding.apply(node);
        }

        // Phase 4: right fringe into child `ci_hi`. Invariant: `target.hi()`
        // lies inside the node's span and the target covers from its left
        // edge — siblings left of the descent child are fully covered, and
        // the recursion emits them *before* descending (preorder).
        let mut rv = first_child + ci_hi;
        let mut r_lo = span_lo + ci_hi * child_len;
        let mut r_len = child_len;
        loop {
            if target.hi() >= r_lo + r_len - 1 {
                acc += rounding.apply(values[rv]);
                break;
            }
            let clen = r_len / k;
            let fc = k * rv + 1;
            let ci = (target.hi() - r_lo) / clen;
            for &node in &values[fc..fc + ci] {
                acc += rounding.apply(node);
            }
            rv = fc + ci;
            r_lo += ci * clen;
            r_len = clen;
        }
        acc
    }

    /// Lane-blocked decomposition fold — the order-changing, opt-in
    /// companion to [`Self::answer`].
    ///
    /// Same two-fringe walk, but every *contiguous sibling run* the walk
    /// emits (stacked left-fringe runs, the split node's middle children,
    /// right-fringe left-sibling runs) is summed with four independent
    /// accumulators combined pairwise — the form that autovectorizes at the
    /// pinned `x86-64-v3` baseline — and the run total is folded into the
    /// running answer as one add.
    ///
    /// **Bit contract:** on binary trees every sibling run has at most one
    /// node, the run-total fold degenerates to the serial per-node fold, and
    /// the answer is bit-identical to [`Self::answer`]
    /// (`tests/snapshot_serving.rs` pins this for `k = 2`). For wider trees
    /// — the only shapes where lane-blocking buys anything — folding each
    /// run's total in one add reassociates the sum, so this fold is a
    /// distinct, separately-pinned serving mode and never the default.
    pub fn answer_blocked(&self, values: &[f64], rounding: Rounding, target: Interval) -> f64 {
        assert_eq!(
            values.len(),
            self.shape.nodes(),
            "value vector must cover the tree"
        );
        self.fold_two_fringe_blocked(values, rounding, target)
    }

    /// [`Self::fold_two_fringe`] with every contiguous sibling run summed by
    /// [`sum_run_blocked`] instead of node-serial accumulation. The walk —
    /// descent, fringes, run boundaries — is byte-for-byte the same; only
    /// the per-run summation association changes.
    fn fold_two_fringe_blocked(&self, values: &[f64], rounding: Rounding, target: Interval) -> f64 {
        assert!(
            target.hi() < self.shape.leaves(),
            "target {target} outside leaf range"
        );
        let k = self.shape.branching();
        let mut acc = -0.0f64;

        let mut v = 0usize;
        let mut span_lo = 0usize;
        let mut span_len = self.shape.leaves();
        let (first_child, child_len, ci_lo, ci_hi) = loop {
            if target.lo() <= span_lo && span_lo + span_len - 1 <= target.hi() {
                acc += rounding.apply(values[v]);
                return acc;
            }
            let child_len = span_len / k;
            let first_child = k * v + 1;
            let ci_lo = (target.lo() - span_lo) / child_len;
            let ci_hi = (target.hi() - span_lo) / child_len;
            if ci_lo != ci_hi {
                break (first_child, child_len, ci_lo, ci_hi);
            }
            v = first_child + ci_lo;
            span_lo += ci_lo * child_len;
            span_len = child_len;
        };

        let mut pending = [(0usize, 0usize); 64];
        let mut stacked = 0usize;
        let mut lv = first_child + ci_lo;
        let mut l_lo = span_lo + ci_lo * child_len;
        let mut l_len = child_len;
        loop {
            if target.lo() <= l_lo {
                acc += rounding.apply(values[lv]);
                break;
            }
            let clen = l_len / k;
            let fc = k * lv + 1;
            let ci = (target.lo() - l_lo) / clen;
            if ci + 1 < k {
                pending[stacked] = (fc + ci + 1, k - 1 - ci);
                stacked += 1;
            }
            lv = fc + ci;
            l_lo += ci * clen;
            l_len = clen;
        }
        while stacked > 0 {
            stacked -= 1;
            let (start, count) = pending[stacked];
            acc += sum_run_blocked(&values[start..start + count], rounding);
        }

        acc += sum_run_blocked(
            &values[first_child + ci_lo + 1..first_child + ci_hi],
            rounding,
        );

        let mut rv = first_child + ci_hi;
        let mut r_lo = span_lo + ci_hi * child_len;
        let mut r_len = child_len;
        loop {
            if target.hi() >= r_lo + r_len - 1 {
                acc += rounding.apply(values[rv]);
                break;
            }
            let clen = r_len / k;
            let fc = k * rv + 1;
            let ci = (target.hi() - r_lo) / clen;
            acc += sum_run_blocked(&values[fc..fc + ci], rounding);
            rv = fc + ci;
            r_lo += ci * clen;
            r_len = clen;
        }
        acc
    }

    /// Batched [`Self::answer`] into a caller-owned buffer (resized to the
    /// batch length; zero allocations after warm-up).
    pub fn answer_into(
        &self,
        values: &[f64],
        rounding: Rounding,
        queries: &[Interval],
        out: &mut Vec<f64>,
    ) {
        out.resize(queries.len(), 0.0);
        for (slot, &q) in out.iter_mut().zip(queries) {
            *slot = self.answer(values, rounding, q);
        }
    }

    /// Batched [`Self::answer_blocked`] — the lane-blocked fold over a query
    /// batch, same buffer contract as [`Self::answer_into`]. Opt-in only.
    pub fn answer_blocked_into(
        &self,
        values: &[f64],
        rounding: Rounding,
        queries: &[Interval],
        out: &mut Vec<f64>,
    ) {
        out.resize(queries.len(), 0.0);
        for (slot, &q) in out.iter_mut().zip(queries) {
            *slot = self.answer_blocked(values, rounding, q);
        }
    }

    /// Number of decomposition nodes for `target` — the `H̃` variance
    /// multiplier of [`theory::error_hier_range`].
    pub fn decomposition_len(&self, target: Interval) -> usize {
        let mut count = 0usize;
        self.for_each_node(target, |_| count += 1);
        count
    }

    /// Adds one count per decomposition node into `per_depth[depth(v)]` —
    /// the per-level profile the planner prices budgeted releases with.
    fn count_per_depth(&self, target: Interval, per_depth: &mut [usize]) {
        self.for_each_node_at_depth(target, |_, depth| per_depth[depth] += 1);
    }
}

/// Four-accumulator blocked sum over one contiguous sibling run — the
/// per-run kernel of [`SubtreeServer::answer_blocked`]. Lanes seed at
/// `-0.0` (the additive identity, sign of zero included), so runs shorter
/// than one block reduce to the exact serial `-0.0`-seeded fold and the
/// lane combine is a bitwise no-op — which is what makes the binary-tree
/// bit-identity contract hold without a branch.
#[inline]
fn sum_run_blocked(run: &[f64], rounding: Rounding) -> f64 {
    // Deliberate reassociation: opt-in serving mode pinned under its own
    // golden bits, never the default's.
    let mut lanes = [-0.0f64; 4];
    let mut chunks = run.chunks_exact(4);
    for c in &mut chunks {
        lanes[0] += rounding.apply(c[0]);
        lanes[1] += rounding.apply(c[1]);
        lanes[2] += rounding.apply(c[2]);
        lanes[3] += rounding.apply(c[3]);
    }
    let mut tail = -0.0f64;
    for &v in chunks.remainder() {
        tail += rounding.apply(v);
    }
    ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) + tail
}

/// A release strategy the planner can recommend for a range workload.
#[derive(Debug, Clone, PartialEq)]
pub enum ReleaseStrategy {
    /// `L̃`: release unit counts, serve ranges from the fused prefix arrays.
    /// Error grows linearly with range length — best for short ranges.
    Flat,
    /// `H̄`: release the k-ary tree, infer (Theorem 3), serve from a
    /// [`ConsistentSnapshot`]. Error O(ℓ³/ε²) regardless of range length.
    Hierarchical {
        /// The tree branching factor priced.
        branching: usize,
    },
    /// The [`crate::budgeted`] pipeline: per-level budgets shift accuracy
    /// between coarse and fine ranges; GLS inference decodes. Carries the
    /// concrete [`BudgetSplit`] to deploy — a geometric candidate from the
    /// planner's ratio list, or the workload-optimized
    /// [`BudgetSplit::Custom`] weights from
    /// [`crate::accuracy::optimal_custom_split`].
    Budgeted {
        /// The tree branching factor priced.
        branching: usize,
        /// The per-level budget split to release with.
        split: BudgetSplit,
    },
}

/// One workload entry's predicted per-query squared error under each
/// candidate strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct SizePrediction {
    /// The workload's fixed range length.
    pub range_size: usize,
    /// Predicted `error(L̃_q)` = `2·len/ε²` (exact, Sec. 4.2).
    pub flat: f64,
    /// Predicted `error(H̄_q)`: the average-decomposition `H̃` price capped
    /// by Theorem 4(iii)'s `kℓ · 2ℓ²/ε²` bound (Theorem 4(ii) guarantees
    /// `H̄ ≤ H̃` uniformly, so the cheaper of the two is a valid prediction).
    pub hierarchical: f64,
    /// Predicted error under the best candidate geometric budget split
    /// (same decomposition profile, per-level variances; GLS inference can
    /// only improve it). `f64::INFINITY` when no ratios were declared.
    pub budgeted: f64,
    /// Predicted error under the workload-optimized
    /// [`BudgetSplit::Custom`] weights (`w_d ∝ c_d^{1/3}`, the closed-form
    /// optimum for the aggregated profile) — never worse than the best
    /// geometric candidate up to the zero-depth weight floor.
    pub custom: f64,
}

/// The planner's verdict for a declared workload: a concrete, runnable
/// release recipe ([`Self::run`]) plus the price sheet behind it.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyPlan {
    /// The recommended release strategy.
    pub choice: ReleaseStrategy,
    /// The ε the plan releases at: the planner's forward ε in workload
    /// mode, or the solved minimum ε in accuracy mode.
    pub epsilon: f64,
    /// Predicted per-query squared error under [`Self::choice`] at
    /// [`Self::epsilon`], averaged over the workload entries.
    pub predicted_error: f64,
    /// The α-confidence promise the ε was solved for — `Some` only for
    /// plans built from an [`AccuracyTarget`].
    pub guarantee: Option<Guarantee>,
    /// The per-entry price sheet behind the decision.
    pub per_size: Vec<SizePrediction>,
    /// The domain the plan was priced over; [`Self::run`] rejects
    /// histograms of any other size.
    pub domain_size: usize,
}

impl StrategyPlan {
    /// The plan's ε as a validated [`Epsilon`].
    pub fn epsilon(&self) -> Epsilon {
        Epsilon::new(self.epsilon).expect("plans carry validated ε")
    }

    /// The one-call plan → release → snapshot pipeline: releases
    /// `histogram` under [`Self::choice`] at [`Self::epsilon`] with the
    /// reference backend and serves the result as a [`ConsistentSnapshot`].
    ///
    /// The noise stream is `SeedStream::new(seed).rng(0)` — release 0 of
    /// the seed, matching the serving layer's indexing — so the snapshot is
    /// bit-identical to registering a tenant with this plan and publishing
    /// once at the same seed.
    pub fn run(&self, histogram: &Histogram, seed: u64) -> ConsistentSnapshot {
        let mut rng = SeedStream::new(seed).rng(0);
        self.run_with(histogram, NoiseBackend::Reference, &mut rng)
    }

    /// [`Self::run`] with an explicit backend and caller-owned RNG — the
    /// hook for releasing several epochs from one stream, or pricing both
    /// noise backends at fixed seeds.
    ///
    /// Flat and hierarchical snapshots carry their release's Laplace scale
    /// (confidence queries work); budgeted snapshots carry none (per-level
    /// scales differ, so a single union-bound scale would be wrong).
    pub fn run_with<R: Rng + ?Sized>(
        &self,
        histogram: &Histogram,
        backend: NoiseBackend,
        rng: &mut R,
    ) -> ConsistentSnapshot {
        assert_eq!(
            histogram.len(),
            self.domain_size,
            "histogram does not match the planned domain"
        );
        let eps = self.epsilon();
        match &self.choice {
            ReleaseStrategy::Flat => FlatUniversal::new(eps)
                .with_backend(backend)
                .release(histogram, rng)
                .snapshot(Rounding::None),
            ReleaseStrategy::Hierarchical { branching } => {
                let mech = HierarchicalUniversal::new(eps, *branching).with_backend(backend);
                let prepared = mech.prepare(self.domain_size);
                let shape = TreeShape::for_domain(self.domain_size, *branching);
                let mut engine = BatchInference::for_shape(&shape);
                let mut inferred = Vec::new();
                engine.release_and_infer(&prepared, histogram, rng, &mut inferred);
                let mut snapshot =
                    ConsistentSnapshot::from_tree_values(&shape, &inferred, self.domain_size);
                snapshot.set_noise_scale(Some(prepared.noise_scale()));
                snapshot
            }
            ReleaseStrategy::Budgeted { branching, split } => {
                let mech =
                    BudgetedHierarchical::new(eps, *branching, split.clone()).with_backend(backend);
                let release = mech.release(histogram, rng);
                let mut engine = BatchInference::for_shape(release.shape());
                let tree = release.infer_with(&mut engine);
                ConsistentSnapshot::from_tree_values(
                    release.shape(),
                    tree.node_values(),
                    self.domain_size,
                )
            }
        }
    }
}

/// Cap on the range locations the planner prices per workload entry: exact
/// enumeration up to this many positions, a deterministic phase-rotated
/// stride subsample beyond it. 4096 locations × ≤ 2(k−1)ℓ nodes each keeps
/// planning in the microsecond range at any domain size.
const PLAN_POSITIONS: usize = 4096;

/// Visits the priced range locations for a workload with `positions`
/// placements: every location below [`PLAN_POSITIONS`], else a stride walk
/// whose phase rotates through every residue class mod the stride — a plain
/// `0, s, 2s, …` walk would alias alignment-sensitive profiles (a size-2
/// range decomposes to one parent at even locations but two leaves at odd
/// ones, and a power-of-two stride would only ever see the former).
fn for_each_position(positions: usize, mut visit: impl FnMut(usize)) {
    let stride = positions.div_ceil(PLAN_POSITIONS);
    let mut i = 0usize;
    loop {
        let lo = i * stride + (i % stride);
        if lo >= positions {
            break;
        }
        visit(lo);
        i += 1;
    }
}

/// Picks the release strategy for a declared range workload from the
/// paper's closed-form error analysis (Sec. 4.2, Theorem 4, and the
/// per-level budget generalization), and returns the predicted per-query
/// error alongside — so callers can judge how contested the decision was.
#[derive(Debug, Clone)]
pub struct StrategyPlanner {
    domain_size: usize,
    epsilon: Epsilon,
    branching: usize,
    budget_ratios: Vec<f64>,
}

impl StrategyPlanner {
    /// A planner for a domain of `domain_size` bins at privacy level
    /// `epsilon`, pricing the paper's binary hierarchy and geometric budget
    /// ratios `{0.5, 2.0}` by default.
    pub fn new(domain_size: usize, epsilon: Epsilon) -> Self {
        assert!(domain_size >= 1, "domain must be non-empty");
        Self {
            domain_size,
            epsilon,
            branching: 2,
            budget_ratios: vec![0.5, 2.0],
        }
    }

    /// A planner for accuracy-mode use only: [`Self::plan_ranked`] solves
    /// its own ε per candidate, so no forward ε is needed — the placeholder
    /// `ε = 1` is used only if the caller also asks for forward pricing.
    pub fn for_domain(domain_size: usize) -> Self {
        Self::new(domain_size, Epsilon::new(1.0).expect("1.0 is valid"))
    }

    /// Prices a k-ary hierarchy instead of the binary default.
    pub fn with_branching(mut self, branching: usize) -> Self {
        assert!(branching >= 2, "branching factor must be at least 2");
        self.branching = branching;
        self
    }

    /// Replaces the candidate geometric budget ratios (empty disables the
    /// budgeted strategy).
    pub fn with_budget_ratios(mut self, ratios: Vec<f64>) -> Self {
        assert!(
            ratios.iter().all(|&r| r > 0.0 && r.is_finite()),
            "budget ratios must be positive"
        );
        self.budget_ratios = ratios;
        self
    }

    /// The tree geometry the hierarchical candidates are priced over.
    pub fn shape(&self) -> TreeShape {
        TreeShape::for_domain(self.domain_size, self.branching)
    }

    /// The single planning entry point. Accepts either vocabulary:
    ///
    /// * a workload (`&[RangeWorkload]`, `&Vec<..>`, or a fixed-size array
    ///   reference) — forward mode: price every candidate at the planner's ε
    ///   and recommend the cheapest;
    /// * an [`AccuracyTarget`] — accuracy mode: solve each candidate's
    ///   minimal ε for the target and return the cheapest-ε plan (the full
    ///   ranking is available from [`Self::plan_ranked`]).
    ///
    /// Ties go to the simpler strategy: flat, then hierarchical, then
    /// geometric-budgeted, then custom-budgeted.
    ///
    /// The budgeted price is that of **one concrete split** — the geometric
    /// candidate whose workload-mean error is lowest, or the
    /// workload-optimized custom weights — so the recommendation and its
    /// `predicted_error` always describe a release the caller can actually
    /// deploy (per-size budgeted entries are the chosen split's prices, not
    /// a per-size best-of mix).
    pub fn plan<'a>(&self, input: impl Into<PlanInput<'a>>) -> StrategyPlan {
        match input.into() {
            PlanInput::Workload(workload) => self.plan_workload(workload),
            PlanInput::Accuracy(target) => {
                let mut ranked = self.plan_ranked(target);
                ranked.swap_remove(0)
            }
        }
    }

    /// Forward mode: price every candidate strategy at the planner's ε.
    fn plan_workload(&self, workload: &[RangeWorkload]) -> StrategyPlan {
        assert!(
            !workload.is_empty(),
            "workload must declare at least one range size"
        );
        self.check_domain(workload);
        let shape = self.shape();
        let server = SubtreeServer::new(&shape);
        let profiles = self.mean_profiles(workload, &server, shape.height());
        let sheet = self.price_sheet(workload, &profiles, self.epsilon.value(), &shape);

        let (choice, predicted_error) = if sheet.flat_mean <= sheet.hier_mean
            && sheet.flat_mean <= sheet.budget_mean
            && sheet.flat_mean <= sheet.custom_mean
        {
            (ReleaseStrategy::Flat, sheet.flat_mean)
        } else if sheet.hier_mean <= sheet.budget_mean && sheet.hier_mean <= sheet.custom_mean {
            (
                ReleaseStrategy::Hierarchical {
                    branching: self.branching,
                },
                sheet.hier_mean,
            )
        } else if sheet.budget_mean <= sheet.custom_mean {
            (
                ReleaseStrategy::Budgeted {
                    branching: self.branching,
                    split: BudgetSplit::Geometric {
                        ratio: sheet.best_ratio.expect("budgeted beat finite means"),
                    },
                },
                sheet.budget_mean,
            )
        } else {
            (
                ReleaseStrategy::Budgeted {
                    branching: self.branching,
                    split: BudgetSplit::Custom(sheet.custom_weights.clone()),
                },
                sheet.custom_mean,
            )
        };

        StrategyPlan {
            choice,
            epsilon: self.epsilon.value(),
            predicted_error,
            guarantee: None,
            per_size: sheet.per_size,
            domain_size: self.domain_size,
        }
    }

    /// Accuracy mode: for each candidate strategy, solve the minimal ε whose
    /// α-confidence error bound meets the target, and return every plan
    /// ranked cheapest-ε first (stable sort, so ties keep the
    /// flat → hierarchical → geometric → custom order).
    ///
    /// The bounds inverted (see [`crate::accuracy`]):
    ///
    /// * **Flat** sums `len` unit counts at scale `1/ε`; the longest
    ///   workload entry binds. Exact algebraic inversion.
    /// * **Hierarchical** sums the subtree decomposition — `m` nodes at
    ///   scale `ℓ/ε`; since `m·ln(m/α)` is increasing in `m`, the worst
    ///   sampled position binds. Exact inversion. (`H̄` only improves on the
    ///   priced `H̃` release, Theorem 4(ii).) This is *deliberately* the
    ///   decomposition bound, not the served-leaf union bound a
    ///   [`ConsistentSnapshot::confidence`] query reports — the leaf bound
    ///   sums `len` terms and would misprice trees against flat releases.
    /// * **Budgeted** mixes per-level scales, so no single closed form
    ///   exists; the per-position profiles drive a monotone bisection
    ///   ([`accuracy::invert_monotone`]) over the worst-position width.
    ///
    /// An empty target workload defaults to unit queries over the full
    /// domain. Every returned plan's `guarantee.predicted` is its bound at
    /// the solved ε — ≤ `max_error` up to float resolution by construction.
    pub fn plan_ranked(&self, target: &AccuracyTarget) -> Vec<StrategyPlan> {
        let workload: Vec<RangeWorkload> = if target.workload().is_empty() {
            vec![RangeWorkload::new(self.domain_size, 1)]
        } else {
            target.workload().to_vec()
        };
        self.check_domain(&workload);
        let alpha = target.alpha();
        let goal = target.max_error();
        let shape = self.shape();
        let server = SubtreeServer::new(&shape);
        let height = shape.height();
        let profiles = self.mean_profiles(&workload, &server, height);

        let m_flat = workload
            .iter()
            .map(RangeWorkload::range_size)
            .max()
            .expect("workload is non-empty");
        let eps_flat = accuracy::epsilon_for_alpha_width(1.0, m_flat, alpha, goal);

        let m_hier = workload
            .iter()
            .map(|w| worst_decomposition(&server, w))
            .max()
            .expect("workload is non-empty");
        let eps_hier = accuracy::epsilon_for_alpha_width(height as f64, m_hier, alpha, goal);

        // Per-position decomposition rows for the budgeted bisections: each
        // row is the per-depth node counts at one sampled location, paired
        // with its cached ln(m/α) factor.
        let (rows, row_logs) = position_profiles(&server, &workload, height, alpha);
        let worst_half = |split: &BudgetSplit, eps: f64| -> f64 {
            let eps = Epsilon::new(eps).expect("bisection stays within (0, ∞)");
            let scales: Vec<f64> = split
                .level_epsilons(eps, height)
                .into_iter()
                .map(|e| 1.0 / e)
                .collect();
            let mut worst = 0.0f64;
            for (row, &log_term) in rows.chunks_exact(height).zip(&row_logs) {
                let mut width = 0.0f64;
                for (&c, &b) in row.iter().zip(&scales) {
                    width += c as f64 * b;
                }
                worst = worst.max(log_term * width);
            }
            worst
        };

        let best_geometric: Option<(f64, f64)> = self
            .budget_ratios
            .iter()
            .map(|&ratio| {
                let split = BudgetSplit::Geometric { ratio };
                (
                    ratio,
                    accuracy::invert_monotone(goal, |e| worst_half(&split, e)),
                )
            })
            .min_by(|a, b| a.1.total_cmp(&b.1));

        let mut costs = vec![0.0f64; height];
        for profile in &profiles {
            for (acc, &c) in costs.iter_mut().zip(profile) {
                *acc += c;
            }
        }
        let custom_weights = accuracy::optimal_custom_split(&costs);
        let custom_split = BudgetSplit::Custom(custom_weights.clone());
        let eps_custom = accuracy::invert_monotone(goal, |e| worst_half(&custom_split, e));

        let make_plan = |choice: ReleaseStrategy, eps: f64, predicted_alpha: f64| -> StrategyPlan {
            let sheet = self.price_sheet(&workload, &profiles, eps, &shape);
            let predicted_error = match &choice {
                ReleaseStrategy::Flat => sheet.flat_mean,
                ReleaseStrategy::Hierarchical { .. } => sheet.hier_mean,
                ReleaseStrategy::Budgeted { split, .. } => {
                    sheet.split_mean(&self.split_prices(&profiles, split, eps, height))
                }
            };
            StrategyPlan {
                choice,
                epsilon: eps,
                predicted_error,
                guarantee: Some(Guarantee {
                    alpha,
                    max_error: goal,
                    predicted: predicted_alpha,
                }),
                per_size: sheet.per_size,
                domain_size: self.domain_size,
            }
        };

        let mut plans = vec![
            make_plan(
                ReleaseStrategy::Flat,
                eps_flat,
                accuracy::alpha_half_width(1.0 / eps_flat, m_flat, alpha),
            ),
            make_plan(
                ReleaseStrategy::Hierarchical {
                    branching: self.branching,
                },
                eps_hier,
                accuracy::alpha_half_width(height as f64 / eps_hier, m_hier, alpha),
            ),
        ];
        if let Some((ratio, eps_geo)) = best_geometric {
            let split = BudgetSplit::Geometric { ratio };
            let predicted = worst_half(&split, eps_geo);
            plans.push(make_plan(
                ReleaseStrategy::Budgeted {
                    branching: self.branching,
                    split,
                },
                eps_geo,
                predicted,
            ));
        }
        let predicted_custom = worst_half(&custom_split, eps_custom);
        plans.push(make_plan(
            ReleaseStrategy::Budgeted {
                branching: self.branching,
                split: custom_split,
            },
            eps_custom,
            predicted_custom,
        ));

        plans.sort_by(|a, b| a.epsilon.total_cmp(&b.epsilon));
        plans
    }

    fn check_domain(&self, workload: &[RangeWorkload]) {
        for w in workload {
            assert_eq!(
                w.domain_size(),
                self.domain_size,
                "workload declared over a different domain than the planner"
            );
        }
    }

    /// Average decomposition profile per workload entry: mean node count
    /// per depth over the priced range locations.
    fn mean_profiles(
        &self,
        workload: &[RangeWorkload],
        server: &SubtreeServer,
        height: usize,
    ) -> Vec<Vec<f64>> {
        let mut per_depth = vec![0usize; height];
        workload
            .iter()
            .map(|w| {
                per_depth.iter_mut().for_each(|c| *c = 0);
                let sampled = average_profile(server, w, &mut per_depth);
                per_depth
                    .iter()
                    .map(|&c| c as f64 / sampled as f64)
                    .collect()
            })
            .collect()
    }

    /// Per-entry prices for one concrete budget split at `eps`.
    fn split_prices(
        &self,
        profiles: &[Vec<f64>],
        split: &BudgetSplit,
        eps: f64,
        height: usize,
    ) -> Vec<f64> {
        let total = Epsilon::new(eps).expect("planner ε is validated");
        let vars: Vec<f64> = split
            .level_epsilons(total, height)
            .into_iter()
            .map(|e| 2.0 / (e * e))
            .collect();
        profiles
            .iter()
            .map(|profile| profile.iter().zip(&vars).map(|(&c, &v)| c * v).sum())
            .collect()
    }

    /// Prices every candidate column at `eps` over the given profiles.
    fn price_sheet(
        &self,
        workload: &[RangeWorkload],
        profiles: &[Vec<f64>],
        eps: f64,
        shape: &TreeShape,
    ) -> PriceSheet {
        let height = shape.height();
        let uniform_var = theory::laplace_variance(height as f64, eps);
        let hbar_cap = theory::error_hbar_range_bound(shape, eps);

        // Pick the single geometric ratio with the lowest workload-mean
        // price; every geometric-budgeted number below is that ratio's.
        let best_budget: Option<(f64, Vec<f64>)> = self
            .budget_ratios
            .iter()
            .map(|&ratio| {
                (
                    ratio,
                    self.split_prices(profiles, &BudgetSplit::Geometric { ratio }, eps, height),
                )
            })
            .min_by(|(_, a), (_, b)| {
                let mean_a: f64 = a.iter().sum::<f64>() / a.len() as f64; // hc-lint: allow(float-fold) — planner cost ranking; advisory, never released
                let mean_b: f64 = b.iter().sum::<f64>() / b.len() as f64; // hc-lint: allow(float-fold) — planner cost ranking; advisory, never released
                mean_a.total_cmp(&mean_b)
            });

        // The workload-optimized custom split: aggregate the per-depth costs
        // across entries and apply the closed-form cube-root weights.
        let mut costs = vec![0.0f64; height];
        for profile in profiles {
            for (acc, &c) in costs.iter_mut().zip(profile) {
                *acc += c;
            }
        }
        let custom_weights = accuracy::optimal_custom_split(&costs);
        let custom_prices = self.split_prices(
            profiles,
            &BudgetSplit::Custom(custom_weights.clone()),
            eps,
            height,
        );

        let per_size: Vec<SizePrediction> = workload
            .iter()
            .zip(profiles)
            .enumerate()
            .map(|(i, (w, profile))| {
                let avg_nodes: f64 = profile.iter().sum();
                SizePrediction {
                    range_size: w.range_size(),
                    flat: theory::error_unit_range(w.range_size(), eps),
                    hierarchical: (avg_nodes * uniform_var).min(hbar_cap),
                    budgeted: best_budget
                        .as_ref()
                        .map_or(f64::INFINITY, |(_, prices)| prices[i]),
                    custom: custom_prices[i],
                }
            })
            .collect();

        let mean = |f: fn(&SizePrediction) -> f64| {
            per_size.iter().map(f).sum::<f64>() / per_size.len() as f64 // hc-lint: allow(float-fold) — planner summary statistic; advisory, never released
        };
        PriceSheet {
            flat_mean: mean(|p| p.flat),
            hier_mean: mean(|p| p.hierarchical),
            budget_mean: mean(|p| p.budgeted),
            custom_mean: mean(|p| p.custom),
            best_ratio: best_budget.map(|(r, _)| r),
            custom_weights,
            per_size,
        }
    }
}

/// Either vocabulary [`StrategyPlanner::plan`] accepts: a declared workload
/// (forward pricing at the planner's ε) or an [`AccuracyTarget`] (inverse
/// mode — solve the minimal ε meeting the target).
#[derive(Debug)]
pub enum PlanInput<'a> {
    /// Forward mode: price candidates at the planner's ε.
    Workload(&'a [RangeWorkload]),
    /// Accuracy mode: solve the minimal ε for the target's α/error promise.
    Accuracy(&'a AccuracyTarget),
}

impl<'a> From<&'a [RangeWorkload]> for PlanInput<'a> {
    fn from(workload: &'a [RangeWorkload]) -> Self {
        PlanInput::Workload(workload)
    }
}

impl<'a, const N: usize> From<&'a [RangeWorkload; N]> for PlanInput<'a> {
    fn from(workload: &'a [RangeWorkload; N]) -> Self {
        PlanInput::Workload(workload)
    }
}

impl<'a> From<&'a Vec<RangeWorkload>> for PlanInput<'a> {
    fn from(workload: &'a Vec<RangeWorkload>) -> Self {
        PlanInput::Workload(workload)
    }
}

impl<'a> From<&'a AccuracyTarget> for PlanInput<'a> {
    fn from(target: &'a AccuracyTarget) -> Self {
        PlanInput::Accuracy(target)
    }
}

/// The planner's internal price grid: workload-mean cost per candidate
/// column plus the per-entry sheet exposed on [`StrategyPlan`].
struct PriceSheet {
    flat_mean: f64,
    hier_mean: f64,
    budget_mean: f64,
    custom_mean: f64,
    best_ratio: Option<f64>,
    custom_weights: Vec<f64>,
    per_size: Vec<SizePrediction>,
}

impl PriceSheet {
    fn split_mean(&self, prices: &[f64]) -> f64 {
        prices.iter().sum::<f64>() / prices.len() as f64 // hc-lint: allow(float-fold) — planner summary statistic; advisory, never released
    }
}

/// The largest decomposition (node count) over the workload's sampled range
/// locations — the binding entry for the hierarchical α-width, since
/// `m·ln(m/α)` is increasing in `m`.
fn worst_decomposition(server: &SubtreeServer, workload: &RangeWorkload) -> usize {
    let mut worst = 0usize;
    for_each_position(workload.positions(), |lo| {
        worst = worst.max(server.decomposition_len(workload.interval_at(lo)));
    });
    worst
}

/// Flattened per-position decomposition rows (`height` counts per sampled
/// location, concatenated) with each row's `ln(m/α)` union-bound factor —
/// precomputed once so the budgeted bisections only do multiply-adds.
fn position_profiles(
    server: &SubtreeServer,
    workload: &[RangeWorkload],
    height: usize,
    alpha: f64,
) -> (Vec<usize>, Vec<f64>) {
    let mut rows = Vec::new();
    let mut row_logs = Vec::new();
    let mut scratch = vec![0usize; height];
    for w in workload {
        for_each_position(w.positions(), |lo| {
            scratch.iter_mut().for_each(|c| *c = 0);
            server.count_per_depth(w.interval_at(lo), &mut scratch);
            let m: usize = scratch.iter().sum();
            rows.extend_from_slice(&scratch);
            row_logs.push((m as f64 / alpha).ln()); // hc-lint: allow(frozen-bits) — planner bound arithmetic; never enters a release
        });
    }
    (rows, row_logs)
}

/// Accumulates the decomposition's per-depth node counts over the
/// workload's priced range locations (see [`for_each_position`]), returning
/// how many locations were priced.
fn average_profile(
    server: &SubtreeServer,
    workload: &RangeWorkload,
    per_depth: &mut [usize],
) -> usize {
    let mut sampled = 0usize;
    for_each_position(workload.positions(), |lo| {
        server.count_per_depth(workload.interval_at(lo), per_depth);
        sampled += 1;
    });
    sampled
}

/// Lazily-built snapshot storage for types that own consistent tree values
/// (`ConsistentTree`): thread-safe one-shot initialization so `range_query`
/// on a shared reference can build the prefix on first use.
pub(crate) type LazySnapshot = OnceLock<ConsistentSnapshot>;

#[cfg(test)]
mod tests {
    use super::*;
    use hc_mech::{HierarchicalQuery, QuerySequence};
    use hc_noise::rng_from_seed;
    use rand::Rng;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn random_values(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = rng_from_seed(seed);
        (0..n).map(|_| rng.random_range(-9.0..17.0)).collect()
    }

    #[test]
    fn answer_matches_direct_leaf_summation() {
        let shape = TreeShape::new(2, 5);
        let values = random_values(shape.nodes(), 1);
        let snap = ConsistentSnapshot::from_tree_values(&shape, &values, 16);
        let leaves = &values[shape.first_leaf()..];
        for (lo, hi) in [(0usize, 15usize), (3, 9), (5, 5), (0, 0), (15, 15)] {
            let direct: f64 = leaves[lo..=hi].iter().sum();
            let got = snap.answer(Interval::new(lo, hi));
            assert!((got - direct).abs() < 1e-9, "[{lo},{hi}] {got} vs {direct}");
        }
        assert_eq!(snap.total(), snap.answer(Interval::new(0, 15)));
    }

    #[test]
    fn batched_and_parallel_answers_are_bit_identical_to_serial() {
        let shape = TreeShape::new(2, 8);
        let values = random_values(shape.nodes(), 2);
        let snap = ConsistentSnapshot::from_tree_values(&shape, &values, shape.leaves());
        let mut rng = rng_from_seed(3);
        let queries: Vec<Interval> = (0..257)
            .map(|_| {
                let lo = rng.random_range(0..shape.leaves());
                let hi = rng.random_range(lo..shape.leaves());
                Interval::new(lo, hi)
            })
            .collect();
        let singles: Vec<f64> = queries.iter().map(|&q| snap.answer(q)).collect();
        let mut batched = Vec::new();
        snap.answer_into(&queries, &mut batched);
        assert_eq!(batched, singles);
        for threads in [1usize, 2, 3, 8] {
            let mut parallel = Vec::new();
            snap.answer_parallel(&queries, &mut parallel, threads);
            assert_eq!(parallel, singles, "threads = {threads}");
        }
    }

    #[test]
    fn unrolled_rebuild_is_bit_identical_across_tail_lengths() {
        // The 4-blocked default rebuild must reproduce the historical
        // push-loop bits for every tail length around the block boundary.
        for n in [0usize, 1, 3, 4, 5, 7, 8, 9, 63, 64, 65, 257] {
            let leaves = random_values(n, 1000 + n as u64);
            let snap = ConsistentSnapshot::from_leaves(&leaves, n);
            let mut acc = 0.0f64;
            let mut oracle = vec![0.0f64];
            for &leaf in &leaves {
                acc += leaf;
                oracle.push(acc);
            }
            let got: Vec<u64> = snap.prefix().iter().map(|v| v.to_bits()).collect();
            let want: Vec<u64> = oracle.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, want, "n = {n}");
        }
    }

    #[test]
    fn blocked_rebuild_serves_the_same_answers_within_tolerance() {
        // The blocked scan reassociates, so bits may differ — but every
        // range answer must agree with the serial build to float tolerance,
        // for lengths on and off the 8-block boundary.
        for n in [5usize, 8, 16, 17, 100, 256, 300] {
            let leaves = random_values(n, 2000 + n as u64);
            let serial = ConsistentSnapshot::from_leaves(&leaves, n);
            let mut blocked = ConsistentSnapshot::from_leaves(&[], 0);
            blocked.rebuild_from_leaves_blocked(&leaves, n);
            assert_eq!(blocked.domain_size(), n);
            let mut rng = rng_from_seed(77 + n as u64);
            for _ in 0..64 {
                let lo = rng.random_range(0..n);
                let hi = rng.random_range(lo..n);
                let q = Interval::new(lo, hi);
                let a = serial.answer(q);
                let b = blocked.answer(q);
                assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "q={q} {a} vs {b}");
            }
        }
    }

    #[test]
    fn blocked_rebuild_from_tree_values_extracts_the_leaf_level() {
        let shape = TreeShape::new(2, 6);
        let values = random_values(shape.nodes(), 91);
        let mut via_tree = ConsistentSnapshot::from_leaves(&[], 0);
        via_tree.rebuild_from_tree_values_blocked(&shape, &values, shape.leaves());
        let mut via_leaves = ConsistentSnapshot::from_leaves(&[], 0);
        via_leaves.rebuild_from_leaves_blocked(&values[shape.first_leaf()..], shape.leaves());
        assert_eq!(via_tree, via_leaves);
    }

    #[test]
    fn blocked_fold_is_bit_identical_on_binary_trees() {
        // k = 2: every sibling run is a single node, so the lane-blocked
        // fold must reproduce the serial fold exactly, bit for bit.
        let shape = TreeShape::new(2, 9);
        let values = random_values(shape.nodes(), 14);
        let server = SubtreeServer::new(&shape);
        let n = shape.leaves();
        let mut rng = rng_from_seed(15);
        for _ in 0..300 {
            let lo = rng.random_range(0..n);
            let hi = rng.random_range(lo..n);
            let q = Interval::new(lo, hi);
            for rounding in [Rounding::None, Rounding::NonNegativeInteger] {
                assert_eq!(
                    server.answer_blocked(&values, rounding, q).to_bits(),
                    server.answer(&values, rounding, q).to_bits(),
                    "q = {q}"
                );
            }
        }
    }

    #[test]
    fn blocked_fold_matches_the_oracle_on_wide_trees() {
        // Wide branching exercises the real lane blocks; the reassociated
        // fold must agree with the recursive oracle to float tolerance.
        for (k, height, seed) in [(8usize, 3usize, 16u64), (16, 2, 17), (6, 3, 18)] {
            let shape = TreeShape::new(k, height);
            let values = random_values(shape.nodes(), seed);
            let server = SubtreeServer::new(&shape);
            let n = shape.leaves();
            let mut rng = rng_from_seed(seed ^ 0xC0);
            for _ in 0..200 {
                let lo = rng.random_range(0..n);
                let hi = rng.random_range(lo..n);
                let q = Interval::new(lo, hi);
                let oracle = server.answer_recursive(&values, Rounding::None, q);
                let got = server.answer_blocked(&values, Rounding::None, q);
                assert!(
                    (got - oracle).abs() <= 1e-9 * oracle.abs().max(1.0),
                    "k={k} q={q} {got} vs {oracle}"
                );
            }
        }
    }

    #[test]
    fn blocked_batch_answers_match_the_single_query_path() {
        let shape = TreeShape::new(4, 4);
        let values = random_values(shape.nodes(), 19);
        let server = SubtreeServer::new(&shape);
        let n = shape.leaves();
        let mut rng = rng_from_seed(20);
        let queries: Vec<Interval> = (0..65)
            .map(|_| {
                let lo = rng.random_range(0..n);
                let hi = rng.random_range(lo..n);
                Interval::new(lo, hi)
            })
            .collect();
        let mut batched = Vec::new();
        server.answer_blocked_into(&values, Rounding::None, &queries, &mut batched);
        let singles: Vec<f64> = queries
            .iter()
            .map(|&q| server.answer_blocked(&values, Rounding::None, q))
            .collect();
        assert_eq!(batched, singles);
    }

    #[test]
    fn rebuild_reuses_the_prefix_buffer() {
        let shape = TreeShape::new(2, 4);
        let a = random_values(shape.nodes(), 4);
        let b = random_values(shape.nodes(), 5);
        let mut snap = ConsistentSnapshot::from_tree_values(&shape, &a, 8);
        let from_a = snap.answer(Interval::new(1, 6));
        snap.rebuild_from_tree_values(&shape, &b, 8);
        let fresh = ConsistentSnapshot::from_tree_values(&shape, &b, 8);
        assert_eq!(snap, fresh);
        assert_ne!(snap.answer(Interval::new(1, 6)), from_a);
    }

    #[test]
    fn histogram_snapshot_reproduces_range_count_exactly() {
        use hc_data::Domain;
        let counts: Vec<u64> = (0..37).map(|i| (i * 31 + 7) % 23).collect();
        let h = Histogram::from_counts(Domain::new("x", 37).unwrap(), counts);
        let snap = ConsistentSnapshot::from_histogram(&h);
        for (lo, hi) in [(0usize, 36usize), (4, 11), (17, 17), (0, 0)] {
            let q = Interval::new(lo, hi);
            assert_eq!(snap.answer(q), h.range_count(q) as f64);
        }
    }

    #[test]
    fn subtree_server_is_bit_identical_to_materialized_decomposition() {
        for (k, height, seed) in [(2usize, 6usize, 11u64), (3, 4, 12), (5, 3, 13)] {
            let shape = TreeShape::new(k, height);
            let values = random_values(shape.nodes(), seed);
            let server = SubtreeServer::new(&shape);
            let n = shape.leaves();
            let mut rng = rng_from_seed(seed ^ 0xAB);
            for _ in 0..200 {
                let lo = rng.random_range(0..n);
                let hi = rng.random_range(lo..n);
                let q = Interval::new(lo, hi);
                let mut emitted = Vec::new();
                server.for_each_node(q, |v| emitted.push(v));
                assert_eq!(emitted, shape.subtree_decomposition(q), "k={k} q={q}");
                for rounding in [Rounding::None, Rounding::NonNegativeInteger] {
                    let oracle: f64 = shape
                        .subtree_decomposition(q)
                        .into_iter()
                        .map(|v| rounding.apply(values[v]))
                        .sum();
                    assert_eq!(server.answer(&values, rounding, q), oracle);
                }
            }
        }
    }

    #[test]
    fn snapshot_and_decomposition_agree_on_exactly_consistent_trees() {
        // True tree counts are integer-consistent, so O(1) prefix serving
        // and the subtree decomposition answer identically, bit for bit.
        use hc_data::Domain;
        let counts: Vec<u64> = (0..32).map(|i| (i * 13) % 9).collect();
        let h = Histogram::from_counts(Domain::new("x", 32).unwrap(), counts);
        let q = HierarchicalQuery::binary();
        let shape = q.shape(32);
        let truth = q.evaluate(&h);
        let snap = ConsistentSnapshot::from_tree_values(&shape, &truth, 32);
        let server = SubtreeServer::new(&shape);
        let mut rng = rng_from_seed(21);
        for _ in 0..200 {
            let lo = rng.random_range(0..32);
            let hi = rng.random_range(lo..32);
            let iv = Interval::new(lo, hi);
            assert_eq!(
                snap.answer(iv),
                server.answer(&truth, Rounding::None, iv),
                "q = {iv}"
            );
        }
    }

    #[test]
    fn confidence_interval_centers_on_the_answer() {
        let shape = TreeShape::new(2, 4);
        let values = random_values(shape.nodes(), 31);
        let snap = ConsistentSnapshot::from_tree_values(&shape, &values, 8).with_noise_scale(2.0);
        let q = Interval::new(1, 4);
        let ci = snap.confidence(q, 0.9).expect("scale attached");
        let center = snap.answer(q);
        assert!(((ci.lo + ci.hi) / 2.0 - center).abs() < 1e-9);
        assert!(ci.contains(center));
        assert_eq!(ci.level, 0.9);
        // Wider ranges and levels give wider intervals.
        let wide = snap.confidence(Interval::new(0, 7), 0.9).unwrap();
        assert!(wide.width() > ci.width());
        let tight = snap.confidence(q, 0.5).unwrap();
        assert!(tight.width() < ci.width());
        // No scale, no interval.
        let bare = ConsistentSnapshot::from_tree_values(&shape, &values, 8);
        assert!(bare.confidence(q, 0.9).is_none());
    }

    #[test]
    fn flat_confidence_coverage_is_conservative() {
        use crate::universal::FlatUniversal;
        use hc_data::Domain;
        let n = 16usize;
        let h = Histogram::from_counts(Domain::new("x", n).unwrap(), vec![5; n]);
        let pipeline = FlatUniversal::new(eps(0.5));
        let q = Interval::new(2, 9);
        let truth = h.range_count(q) as f64;
        let level = 0.9;
        let mut rng = rng_from_seed(41);
        let trials = 1000;
        let mut covered = 0usize;
        for _ in 0..trials {
            let release = pipeline.release(&h, &mut rng);
            let snap = release.snapshot(Rounding::None);
            if snap
                .confidence(q, level)
                .expect("scale attached")
                .contains(truth)
            {
                covered += 1;
            }
        }
        let coverage = covered as f64 / trials as f64;
        assert!(
            coverage >= level,
            "coverage {coverage} below nominal {level}"
        );
    }

    #[test]
    fn planner_prefers_flat_for_short_ranges_and_trees_for_long() {
        let planner = StrategyPlanner::new(1 << 14, eps(0.1));
        let short = planner.plan(&[RangeWorkload::new(1 << 14, 2)]);
        assert_eq!(short.choice, ReleaseStrategy::Flat);
        let long = planner.plan(&[RangeWorkload::new(1 << 14, 1 << 13)]);
        assert!(
            matches!(
                long.choice,
                ReleaseStrategy::Hierarchical { .. } | ReleaseStrategy::Budgeted { .. }
            ),
            "long ranges must leave the flat strategy: {long:?}"
        );
        // Long-range tree serving must be predicted cheaper than flat.
        let p = &long.per_size[0];
        assert!(p.hierarchical < p.flat, "{p:?}");
        assert!(long.predicted_error <= p.flat);
    }

    #[test]
    fn planner_prices_match_theory_closed_forms() {
        let n = 1 << 10;
        let planner = StrategyPlanner::new(n, eps(1.0));
        let plan = planner.plan(&[RangeWorkload::new(n, 4), RangeWorkload::new(n, 256)]);
        assert_eq!(plan.per_size.len(), 2);
        // Flat is the exact closed form.
        assert_eq!(plan.per_size[0].flat, theory::error_unit_range(4, 1.0));
        assert_eq!(plan.per_size[1].flat, theory::error_unit_range(256, 1.0));
        // The hierarchical price never exceeds Theorem 4(iii)'s cap.
        let shape = planner.shape();
        let cap = theory::error_hbar_range_bound(&shape, 1.0);
        for p in &plan.per_size {
            assert!(p.hierarchical <= cap + 1e-9, "{p:?}");
            assert!(p.hierarchical > 0.0 && p.budgeted > 0.0);
        }
    }

    #[test]
    fn planner_hierarchical_price_tracks_enumerated_decompositions() {
        // On a domain small enough for exact enumeration the H̃ part of the
        // price is exactly avg(decomposition size) × 2ℓ²/ε², capped.
        let n = 64usize;
        let planner = StrategyPlanner::new(n, eps(1.0));
        let size = 5usize;
        let plan = planner.plan(&[RangeWorkload::new(n, size)]);
        let shape = planner.shape();
        let server = SubtreeServer::new(&shape);
        let mut nodes = 0usize;
        let positions = n - size + 1;
        for lo in 0..positions {
            nodes += server.decomposition_len(Interval::new(lo, lo + size - 1));
        }
        let htilde =
            nodes as f64 / positions as f64 * theory::laplace_variance(shape.height() as f64, 1.0);
        let expect = htilde.min(theory::error_hbar_range_bound(&shape, 1.0));
        assert!(
            (plan.per_size[0].hierarchical - expect).abs() < 1e-9,
            "{} vs {expect}",
            plan.per_size[0].hierarchical
        );
    }

    #[test]
    fn planner_budgeted_with_uniform_ratio_matches_hierarchical() {
        // ratio = 1.0 is the paper's uniform split: per-level variance is
        // exactly 2ℓ²/ε², so the budgeted price equals the H̃ average and
        // the planner must never prefer it over plain hierarchical. The
        // workload is long enough that the tree beats flat outright.
        let n = 1 << 14;
        let planner = StrategyPlanner::new(n, eps(0.1)).with_budget_ratios(vec![1.0]);
        let plan = planner.plan(&[RangeWorkload::new(n, 1 << 13)]);
        let p = &plan.per_size[0];
        assert!(
            (p.budgeted - p.hierarchical).abs() <= 1e-9 * p.hierarchical,
            "{p:?}"
        );
        // The geometric candidate ties hierarchical, so it must never win;
        // only the workload-optimized custom split may displace the tree,
        // and only by actually pricing cheaper.
        match &plan.choice {
            ReleaseStrategy::Hierarchical { .. } => {}
            ReleaseStrategy::Budgeted {
                split: BudgetSplit::Custom(_),
                ..
            } => {
                assert!(p.custom <= p.hierarchical * (1.0 + 1e-9), "{p:?}");
            }
            other => panic!("uniform geometric split must not win: {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "different domain")]
    fn planner_rejects_workloads_over_a_different_domain() {
        let planner = StrategyPlanner::new(1024, eps(1.0));
        let _ = planner.plan(&[RangeWorkload::new(512, 4)]);
    }

    #[test]
    fn planner_budgeted_price_is_one_ratio_for_the_whole_workload() {
        // A mixed short+long workload: the budgeted column must be priced
        // under a single candidate ratio (the one with the best workload
        // mean), never a per-size best-of mix — so re-pricing the whole
        // workload with each candidate must reproduce one candidate's
        // numbers exactly.
        let n = 1 << 12;
        let planner = StrategyPlanner::new(n, eps(0.5));
        let workload = [RangeWorkload::new(n, 2), RangeWorkload::new(n, n / 2)];
        let plan = planner.plan(&workload);
        let matches_single_ratio = [0.5, 2.0].iter().any(|&ratio| {
            let single = StrategyPlanner::new(n, eps(0.5))
                .with_budget_ratios(vec![ratio])
                .plan(&workload);
            single
                .per_size
                .iter()
                .zip(&plan.per_size)
                .all(|(s, p)| s.budgeted == p.budgeted)
        });
        assert!(matches_single_ratio, "{plan:?}");
    }

    fn test_histogram(n: usize, seed: u64) -> Histogram {
        let mut rng = rng_from_seed(seed);
        let counts: Vec<u64> = (0..n).map(|_| rng.random_range(0..40u64)).collect();
        let domain = hc_data::Domain::new("planner-test", n).expect("non-empty test domain");
        Histogram::from_counts(domain, counts)
    }

    #[test]
    fn ranked_plans_meet_the_accuracy_target_and_sort_by_epsilon() {
        let n = 1 << 10;
        let target = AccuracyTarget::new(0.05, 50.0)
            .with_workload(vec![RangeWorkload::new(n, 8), RangeWorkload::new(n, 256)]);
        let ranked = StrategyPlanner::new(n, eps(1.0)).plan_ranked(&target);
        assert_eq!(ranked.len(), 4, "flat, hier, geometric, custom");
        for pair in ranked.windows(2) {
            assert!(pair[0].epsilon <= pair[1].epsilon, "{ranked:?}");
        }
        for plan in &ranked {
            let g = plan.guarantee.expect("accuracy mode sets the guarantee");
            assert_eq!(g.alpha, 0.05);
            assert_eq!(g.max_error, 50.0);
            assert!(
                g.predicted <= g.max_error * (1.0 + 1e-9),
                "plan violates its own promise: {plan:?}"
            );
            assert!(plan.epsilon > 0.0 && plan.epsilon.is_finite());
        }
    }

    #[test]
    fn ranked_flat_epsilon_round_trips_the_closed_form() {
        // Exact algebraic inversion: re-predicting the α-width at the solved
        // ε must land back on the target within float resolution.
        let n = 1 << 12;
        let target = AccuracyTarget::new(0.1, 25.0).with_workload(vec![RangeWorkload::new(n, 64)]);
        let ranked = StrategyPlanner::new(n, eps(1.0)).plan_ranked(&target);
        let flat = ranked
            .iter()
            .find(|p| p.choice == ReleaseStrategy::Flat)
            .expect("flat plan present");
        let back = accuracy::alpha_half_width(1.0 / flat.epsilon, 64, 0.1);
        assert!((back - 25.0).abs() <= 25.0 * 1e-9, "{back}");
    }

    #[test]
    fn custom_split_never_prices_worse_than_geometric_at_equal_epsilon() {
        let n = 1 << 12;
        let planner = StrategyPlanner::new(n, eps(0.5));
        let plan = planner.plan(&[RangeWorkload::new(n, 4), RangeWorkload::new(n, n / 4)]);
        let mean = |f: fn(&SizePrediction) -> f64| {
            plan.per_size.iter().map(f).sum::<f64>() / plan.per_size.len() as f64
        };
        assert!(
            mean(|p| p.custom) <= mean(|p| p.budgeted) * (1.0 + 1e-9),
            "{plan:?}"
        );
    }

    #[test]
    fn plan_accepts_accuracy_targets_through_the_same_entry_point() {
        let n = 512;
        let target = AccuracyTarget::new(0.05, 80.0).with_workload(vec![RangeWorkload::new(n, 32)]);
        let planner = StrategyPlanner::new(n, eps(1.0));
        let via_plan = planner.plan(&target);
        let ranked = planner.plan_ranked(&target);
        assert_eq!(
            via_plan, ranked[0],
            "plan() must return the top-ranked plan"
        );
    }

    #[test]
    fn plan_run_is_bit_identical_to_the_manual_pipelines() {
        let n = 64usize;
        let histogram = test_histogram(n, 9);
        let seed = 41u64;
        let queries: Vec<Interval> = (0..n).map(|lo| Interval::new(lo, n - 1)).collect();
        let plan = |choice: ReleaseStrategy| StrategyPlan {
            choice,
            epsilon: 1.0,
            predicted_error: 0.0,
            guarantee: None,
            per_size: Vec::new(),
            domain_size: n,
        };

        let flat = plan(ReleaseStrategy::Flat).run(&histogram, seed);
        let manual_flat = crate::universal::FlatUniversal::new(eps(1.0))
            .release(&histogram, &mut hc_noise::SeedStream::new(seed).rng(0))
            .snapshot(Rounding::None);
        for &q in &queries {
            assert_eq!(flat.answer(q).to_bits(), manual_flat.answer(q).to_bits());
        }

        let hier = plan(ReleaseStrategy::Hierarchical { branching: 2 }).run(&histogram, seed);
        let mech = crate::universal::HierarchicalUniversal::new(eps(1.0), 2);
        let prepared = mech.prepare(n);
        let shape = TreeShape::for_domain(n, 2);
        let mut engine = BatchInference::for_shape(&shape);
        let mut inferred = Vec::new();
        engine.release_and_infer(
            &prepared,
            &histogram,
            &mut hc_noise::SeedStream::new(seed).rng(0),
            &mut inferred,
        );
        let manual_hier = ConsistentSnapshot::from_tree_values(&shape, &inferred, n);
        for &q in &queries {
            assert_eq!(hier.answer(q).to_bits(), manual_hier.answer(q).to_bits());
        }
        assert_eq!(hier.noise_scale(), Some(prepared.noise_scale()));

        let split = BudgetSplit::Geometric { ratio: 1.5 };
        let budgeted = plan(ReleaseStrategy::Budgeted {
            branching: 2,
            split: split.clone(),
        })
        .run(&histogram, seed);
        let release = BudgetedHierarchical::new(eps(1.0), 2, split)
            .release(&histogram, &mut hc_noise::SeedStream::new(seed).rng(0));
        let mut engine = BatchInference::for_shape(release.shape());
        let tree = release.infer_with(&mut engine);
        let manual_budgeted =
            ConsistentSnapshot::from_tree_values(release.shape(), tree.node_values(), n);
        for &q in &queries {
            assert_eq!(
                budgeted.answer(q).to_bits(),
                manual_budgeted.answer(q).to_bits()
            );
        }
    }

    #[test]
    #[should_panic(expected = "does not match the planned domain")]
    fn plan_run_rejects_histograms_of_the_wrong_domain() {
        let plan = StrategyPlan {
            choice: ReleaseStrategy::Flat,
            epsilon: 1.0,
            predicted_error: 0.0,
            guarantee: None,
            per_size: Vec::new(),
            domain_size: 128,
        };
        let _ = plan.run(&test_histogram(64, 3), 1);
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn snapshot_rejects_out_of_domain_queries() {
        let shape = TreeShape::new(2, 3);
        let snap = ConsistentSnapshot::from_tree_values(&shape, &[0.0; 7], 3);
        let _ = snap.answer(Interval::new(0, 3));
    }

    #[test]
    fn union_bound_interval_is_total_in_m() {
        // Regression: the historical inline formula divided by m, so m = 0
        // produced a -inf per-term level and a NaN (or panicking) half-width.
        // The helper must return the exact zero-width interval instead.
        let empty = union_bound_interval(2.0, 0, 0.9, 7.5);
        assert_eq!((empty.lo, empty.hi, empty.level), (7.5, 7.5, 0.9));
        assert_eq!(empty.width(), 0.0);
        assert!(empty.contains(7.5));
        // m >= 1 reproduces the historical arithmetic bit for bit.
        let m = 5usize;
        let level = 0.9;
        let scale = 2.0;
        let center = -3.25;
        let got = union_bound_interval(scale, m, level, center);
        let mf = m as f64;
        let half = mf * laplace_half_width(scale, 1.0 - (1.0 - level) / mf);
        assert_eq!(got.lo.to_bits(), (center - half).to_bits());
        assert_eq!(got.hi.to_bits(), (center + half).to_bits());
        // Width grows with m (union bound pays per summed count).
        assert!(union_bound_interval(scale, 6, level, center).width() > got.width());
    }

    #[test]
    fn histogram_snapshot_accepts_the_exact_2_53_boundary_total() {
        use hc_data::Domain;
        // 2^53 is exactly representable, and every partial sum on the way is
        // a smaller integer — the bound is inclusive. Pin the exact-boundary
        // total end to end: build, answer, and match range_count exactly.
        let boundary = 1u64 << 53;
        let counts = vec![boundary - 3, 2, 0, 1];
        let h = Histogram::from_counts(Domain::new("x", 4).unwrap(), counts);
        assert_eq!(h.total(), boundary);
        let snap = ConsistentSnapshot::from_histogram(&h);
        assert_eq!(snap.total(), boundary as f64);
        for (lo, hi) in [(0usize, 3usize), (0, 0), (1, 3), (3, 3)] {
            let q = Interval::new(lo, hi);
            assert_eq!(snap.answer(q), h.range_count(q) as f64, "q = {q}");
        }
    }

    #[test]
    #[should_panic(expected = "total count too large")]
    fn histogram_snapshot_rejects_totals_past_the_boundary() {
        use hc_data::Domain;
        // 2^53 + 1 is the first unrepresentable integer: the prefix can no
        // longer promise exactness, so construction must refuse.
        let h = Histogram::from_counts(Domain::new("x", 2).unwrap(), vec![1u64 << 53, 1]);
        let _ = ConsistentSnapshot::from_histogram(&h);
    }

    #[test]
    fn set_noise_scale_replaces_and_clears() {
        let shape = TreeShape::new(2, 4);
        let values = random_values(shape.nodes(), 61);
        let mut snap =
            ConsistentSnapshot::from_tree_values(&shape, &values, 8).with_noise_scale(2.0);
        let q = Interval::new(1, 5);
        let wide = snap.confidence(q, 0.9).unwrap();
        snap.set_noise_scale(Some(1.0));
        let tight = snap.confidence(q, 0.9).unwrap();
        assert!(tight.width() < wide.width());
        snap.set_noise_scale(None);
        assert!(snap.confidence(q, 0.9).is_none());
        assert_eq!(snap.noise_scale(), None);
    }

    #[test]
    fn answer_into_unrolled_tail_is_covered() {
        // Batch lengths around the 4-wide unroll boundary.
        let shape = TreeShape::new(2, 4);
        let values = random_values(shape.nodes(), 51);
        let snap = ConsistentSnapshot::from_tree_values(&shape, &values, 8);
        for len in 0..9usize {
            let queries: Vec<Interval> = (0..len).map(|i| Interval::new(i % 8, 7)).collect();
            let mut out = Vec::new();
            snap.answer_into(&queries, &mut out);
            let singles: Vec<f64> = queries.iter().map(|&q| snap.answer(q)).collect();
            assert_eq!(out, singles, "len = {len}");
        }
    }
}
