//! The accuracy-first front door: state a target accuracy, get the ε (and
//! per-level budget split) that achieves it.
//!
//! Everything else in the workspace runs *forward*: pick ε and a strategy,
//! release, and discover accuracy afterward. Analysts want the inverse (the
//! PSI Library's `histogram.getParameters` ergonomics): "I need every
//! workload answer within `max_error` of the truth with probability
//! `1 − alpha` — what ε does that cost, and under which strategy?" This
//! module inverts the closed forms of [`crate::theory`] and the union-bound
//! confidence arithmetic ([`crate::snapshot::union_bound_interval`]):
//!
//! * **Exact algebraic inversions** where the forms allow: every squared
//!   error form is `C/ε²` and every α-confidence half-width is `C/ε`, so the
//!   flat, hierarchical, and Theorem-4 bounds invert in one line.
//! * **Monotone bisection** ([`invert_monotone`]) where the planner prices
//!   through a closure (per-level budget splits over sampled decomposition
//!   profiles) — every form is strictly decreasing in ε, so bisection is
//!   exact to float resolution and always returns an ε that *satisfies* the
//!   target (the upper bracket end).
//! * **Optimized custom splits** ([`optimal_custom_split`]): for a workload
//!   with per-depth decomposition costs `c_d`, the per-level weights
//!   minimizing predicted error are `w_d ∝ c_d^{1/3}` (Lagrange on
//!   `Σ c_d/w_d²` subject to `Σ w_d = 1`) — computed with a deterministic
//!   Newton cube root ([`det_cbrt`]) so plans are bit-identical across
//!   platforms.
//!
//! [`AccuracyTarget`] carries the request; `StrategyPlanner::plan` (and
//! `plan_ranked`) in [`crate::snapshot`] turn it into ranked, runnable
//! [`crate::snapshot::StrategyPlan`]s.
//!
//! The (ε, δ) stability-mechanism forms ([`stability_alpha_error`] /
//! [`stability_epsilon`]) follow the PSI Library's accuracy arithmetic for
//! sparse/unknown domains; they price the accountant's (ε, δ) entries, not a
//! release pipeline this crate ships.

use hc_data::{Interval, RangeWorkload};
use hc_mech::TreeShape;

/// An analyst's accuracy request: with probability at least `1 − alpha`,
/// every workload range answer must be within `max_error` of the truth.
///
/// The workload declares which ranges matter (empty = per-bin accuracy, the
/// PSI Library's default semantics); `delta` is only consulted by the
/// stability-mechanism forms ([`Self::stability_epsilon`]) and the
/// accountant's (ε, δ) entries — the Laplace strategies planned from this
/// target are pure ε-DP.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyTarget {
    alpha: f64,
    max_error: f64,
    workload: Vec<RangeWorkload>,
    delta: f64,
}

impl AccuracyTarget {
    /// A target holding every workload answer within `max_error` with
    /// probability `1 − alpha`, over an initially empty workload (planners
    /// default that to per-bin accuracy).
    pub fn new(alpha: f64, max_error: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "alpha must lie strictly inside (0, 1)"
        );
        assert!(
            max_error > 0.0 && max_error.is_finite(),
            "max_error must be positive and finite"
        );
        Self {
            alpha,
            max_error,
            workload: Vec::new(),
            delta: 0.0,
        }
    }

    /// Declares the ranges the guarantee must cover. All entries must share
    /// one domain (the planner checks it against its own).
    pub fn with_workload(mut self, workload: Vec<RangeWorkload>) -> Self {
        if let Some(first) = workload.first() {
            assert!(
                workload
                    .iter()
                    .all(|w| w.domain_size() == first.domain_size()),
                "workload entries must share one domain"
            );
        }
        self.workload = workload;
        self
    }

    /// Attaches a δ for the stability-mechanism forms (`0 ≤ δ < 1`; zero
    /// keeps the target pure-ε).
    pub fn with_delta(mut self, delta: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&delta) && delta.is_finite(),
            "delta must lie in [0, 1)"
        );
        self.delta = delta;
        self
    }

    /// The failure probability bound α.
    #[inline]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The per-answer error ceiling the guarantee enforces.
    #[inline]
    pub fn max_error(&self) -> f64 {
        self.max_error
    }

    /// The declared workload (empty = per-bin accuracy).
    #[inline]
    pub fn workload(&self) -> &[RangeWorkload] {
        &self.workload
    }

    /// The attached δ (zero when the target is pure-ε).
    #[inline]
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// The ε a *stability-mechanism* release (sparse/unknown domains, per
    /// the PSI Library path) needs to meet this target's per-bin accuracy —
    /// `None` when no δ was attached (the stability form needs δ > 0).
    pub fn stability_epsilon(&self) -> Option<f64> {
        (self.delta > 0.0).then(|| stability_epsilon(self.alpha, self.delta, self.max_error))
    }
}

/// The accuracy promise attached to a solved plan: at the plan's ε, the
/// predicted α-confidence error bound `predicted` satisfies
/// `predicted ≤ max_error`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Guarantee {
    /// The failure probability bound the plan was solved for.
    pub alpha: f64,
    /// The requested per-answer error ceiling.
    pub max_error: f64,
    /// The plan's predicted α-confidence error at its solved ε — by
    /// construction at most `max_error` (equal up to float resolution for
    /// the exactly-inverted strategies).
    pub predicted: f64,
}

/// The α-confidence half-width of a sum of `m` independent `Lap(scale)`
/// counts, by union bound: `m · scale · ln(m/α)` (zero when `m = 0`).
///
/// This is exactly the arithmetic of
/// [`crate::snapshot::union_bound_interval`] at level `1 − α`, in closed
/// form: each term is held at per-term level `1 − α/m`, whose Laplace
/// quantile is `scale · ln(m/α)`.
pub fn alpha_half_width(scale: f64, m: usize, alpha: f64) -> f64 {
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must lie in (0, 1)");
    assert!(scale > 0.0, "noise scale must be positive");
    if m == 0 {
        return 0.0;
    }
    let m = m as f64;
    m * scale * (m / alpha).ln() // hc-lint: allow(frozen-bits) — planning/accounting arithmetic; never enters a release
}

/// Inverts [`alpha_half_width`] for the Laplace mechanism at sensitivity
/// `Δ`: the ε at which a sum of `m` counts noised at scale `Δ/ε` has
/// α-confidence half-width exactly `half_width`.
///
/// `half = m · (Δ/ε) · ln(m/α)` ⇒ `ε = Δ · m · ln(m/α) / half`.
pub fn epsilon_for_alpha_width(sensitivity: f64, m: usize, alpha: f64, half_width: f64) -> f64 {
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must lie in (0, 1)");
    assert!(sensitivity > 0.0, "sensitivity must be positive");
    assert!(
        half_width > 0.0 && half_width.is_finite(),
        "target half-width must be positive and finite"
    );
    assert!(m >= 1, "a guarantee over zero counts costs no budget");
    let m = m as f64;
    sensitivity * m * (m / alpha).ln() / half_width // hc-lint: allow(frozen-bits) — planning/accounting arithmetic; never enters a release
}

/// Inverts [`crate::theory::error_unit_full`] (`2n/ε²`): the ε at which the
/// flat strategy's total squared error over `n` unit counts is `max_error`.
pub fn epsilon_for_unit_error(n: usize, max_error: f64) -> f64 {
    assert!(max_error > 0.0, "target error must be positive");
    (2.0 * n as f64 / max_error).sqrt()
}

/// Inverts [`crate::theory::error_unit_range`] (`2·len/ε²`): the ε at which
/// a flat range of `len` units has squared error `max_error`.
pub fn epsilon_for_unit_range_error(len: usize, max_error: f64) -> f64 {
    assert!(max_error > 0.0, "target error must be positive");
    (2.0 * len as f64 / max_error).sqrt()
}

/// Inverts [`crate::theory::error_hier_range`] (`nodes · 2ℓ²/ε²`): the ε at
/// which the subtree-sum strategy answers `interval` with squared error
/// `max_error`.
pub fn epsilon_for_hier_error(shape: &TreeShape, interval: Interval, max_error: f64) -> f64 {
    assert!(max_error > 0.0, "target error must be positive");
    let nodes = shape.subtree_decomposition(interval).len() as f64;
    shape.height() as f64 * (2.0 * nodes / max_error).sqrt()
}

/// Inverts [`crate::theory::thm4_hbar_upper`] (`3 · 2ℓ²/ε²`): the ε at
/// which Theorem 4(iv)'s `H̄` bound equals `max_error`.
pub fn epsilon_for_thm4_hbar(shape: &TreeShape, max_error: f64) -> f64 {
    assert!(max_error > 0.0, "target error must be positive");
    shape.height() as f64 * (6.0 / max_error).sqrt()
}

/// The PSI Library's stability-mechanism accuracy at `(ε, δ)`: with
/// probability `1 − α` a released bin is within `2 · ln(2/(α·δ)) / ε` of
/// the truth (the δ-thresholding adds the `/δ` term to the pure-ε
/// `2 · ln(1/α)/ε` form).
pub fn stability_alpha_error(epsilon: f64, alpha: f64, delta: f64) -> f64 {
    assert!(epsilon > 0.0, "epsilon must be positive");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must lie in (0, 1)");
    assert!(delta > 0.0 && delta < 1.0, "delta must lie in (0, 1)");
    2.0 * (2.0 / (alpha * delta)).ln() / epsilon // hc-lint: allow(frozen-bits) — planning/accounting arithmetic; never enters a release
}

/// Inverts [`stability_alpha_error`]: the ε a stability-mechanism release
/// needs for α-confidence error `max_error` at the given δ.
pub fn stability_epsilon(alpha: f64, delta: f64, max_error: f64) -> f64 {
    assert!(max_error > 0.0, "target error must be positive");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must lie in (0, 1)");
    assert!(delta > 0.0 && delta < 1.0, "delta must lie in (0, 1)");
    2.0 * (2.0 / (alpha * delta)).ln() / max_error // hc-lint: allow(frozen-bits) — planning/accounting arithmetic; never enters a release
}

/// Finds the smallest ε (to float resolution) with `error_at(ε) ≤ target`,
/// for any `error_at` strictly decreasing in ε — the bisection behind the
/// budgeted-split inversions, whose pricing runs through a sampled-profile
/// closure rather than a closed form.
///
/// Brackets geometrically from ε = 1, then bisects; the returned value is
/// the bracket's *upper* end, so `error_at(result) ≤ target` always holds
/// (the guarantee is never violated by the last half-step). Fully
/// deterministic: fixed iteration bounds, exactly-rounded arithmetic only.
pub fn invert_monotone(target: f64, mut error_at: impl FnMut(f64) -> f64) -> f64 {
    assert!(
        target > 0.0 && target.is_finite(),
        "target must be positive and finite"
    );
    // Grow the satisfying end. f64 overflows past ~2^1024 doublings of 1.0,
    // so a satisfiable form is found within 1100 steps.
    let mut hi = 1.0f64;
    let mut steps = 0usize;
    while error_at(hi) > target {
        hi *= 2.0;
        steps += 1;
        assert!(steps < 1100, "no finite ε satisfies the target");
    }
    // Shrink to a violating lower end (a free-of-charge target has none:
    // give the whole budget saving back as ε → 0).
    let mut lo = hi;
    loop {
        let next = lo / 2.0;
        if next < f64::MIN_POSITIVE {
            return next.max(f64::MIN_POSITIVE);
        }
        if error_at(next) > target {
            lo = next;
            break;
        }
        hi = next;
        lo = next;
    }
    // Bisect [lo, hi] with error_at(lo) > target ≥ error_at(hi) until the
    // midpoint stops moving.
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if mid <= lo || mid >= hi {
            break;
        }
        if error_at(mid) > target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi
}

/// A deterministic cube root: bit-level initial guess plus fixed Newton
/// iterations, using only exactly-rounded IEEE-754 operations — unlike
/// libm's `cbrt`, results are identical on every platform, so plans built
/// from it are bit-reproducible. Accurate to within an ulp or two of the
/// true cube root (the planner only ranks with it; nothing released depends
/// on the low bits).
pub fn det_cbrt(x: f64) -> f64 {
    assert!(x >= 0.0 && x.is_finite(), "domain is [0, ∞)");
    if x == 0.0 {
        return 0.0;
    }
    if x < f64::MIN_POSITIVE {
        // Subnormals defeat the exponent bit-hack (their exponent field is
        // zero), so rescale by an exact power-of-two cube and undo after:
        // cbrt(x·2^768) · 2^-256. Both factors are exact, so this costs no
        // accuracy.
        let up = f64::from_bits(1791u64 << 52); // 2^768 = (2^256)³
        let down = f64::from_bits(767u64 << 52); // 2^-256
        return det_cbrt(x * up) * down;
    }
    // Dividing the bit pattern by 3 thirds the exponent; re-biasing by
    // (2/3)·1023·2^52 = 0x2AA0000000000000 restores the offset, landing
    // within ~25% of x^(1/3) across the whole finite range.
    let mut y = f64::from_bits(x.to_bits() / 3 + 0x2AA0_0000_0000_0000);
    // Newton on y³ = x: y ← (2y + x/y²)/3. Quadratic convergence takes a
    // 25% guess to full f64 precision in six steps; the seventh is margin.
    for _ in 0..7 {
        y = (2.0 * y + x / (y * y)) / 3.0;
    }
    y
}

/// The per-level budget weights minimizing predicted workload error for a
/// per-depth decomposition cost profile `c_d` (mean node count at depth `d`
/// over the workload's ranges).
///
/// With level budgets `ε_d = ε·w_d` the predicted error is
/// `Σ_d c_d · 2/ε_d² ∝ Σ_d c_d/w_d²`; minimizing subject to `Σ w_d = 1`
/// gives `w_d ∝ c_d^{1/3}` (Lagrange). Depths the workload never touches
/// get a floor of `1e-12 × max` weight instead of zero — the split stays
/// releasable (every level needs *some* budget to be DP) while perturbing
/// the optimum by well under the 1e-9 tolerances the tests pin.
///
/// Returned weights are relative (callers wrap them in
/// [`crate::budgeted::BudgetSplit::Custom`], which normalizes).
pub fn optimal_custom_split(per_depth_costs: &[f64]) -> Vec<f64> {
    assert!(!per_depth_costs.is_empty(), "profile must cover the tree");
    assert!(
        per_depth_costs.iter().all(|&c| c >= 0.0 && c.is_finite()),
        "costs must be finite and non-negative"
    );
    let mut weights: Vec<f64> = per_depth_costs.iter().map(|&c| det_cbrt(c)).collect();
    let max = weights.iter().fold(0.0f64, |a, &b| a.max(b));
    if max == 0.0 {
        // No workload cost anywhere: any split works; uniform is canonical.
        weights.iter_mut().for_each(|w| *w = 1.0);
        return weights;
    }
    let floor = 1e-12 * max;
    for w in &mut weights {
        if *w < floor {
            *w = floor;
        }
    }
    weights
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budgeted::BudgetSplit;
    use crate::theory;
    use hc_mech::Epsilon;

    #[test]
    fn exact_inversions_round_trip_the_theory_forms() {
        let shape = TreeShape::new(2, 10);
        let target = 123.456;
        let eps = epsilon_for_unit_error(1 << 9, target);
        assert!((theory::error_unit_full(1 << 9, eps) - target).abs() < 1e-9 * target);
        let eps = epsilon_for_unit_range_error(77, target);
        assert!((theory::error_unit_range(77, eps) - target).abs() < 1e-9 * target);
        let q = Interval::new(3, 401);
        let eps = epsilon_for_hier_error(&shape, q, target);
        assert!((theory::error_hier_range(&shape, q, eps) - target).abs() < 1e-9 * target);
        let eps = epsilon_for_thm4_hbar(&shape, target);
        assert!((theory::thm4_hbar_upper(&shape, eps) - target).abs() < 1e-9 * target);
    }

    #[test]
    fn alpha_width_inversion_matches_union_bound_arithmetic() {
        use crate::snapshot::union_bound_interval;
        let (alpha, m, sens) = (0.05f64, 9usize, 4.0f64);
        let eps = epsilon_for_alpha_width(sens, m, alpha, 50.0);
        // Forward through the closed form…
        let half = alpha_half_width(sens / eps, m, alpha);
        assert!((half - 50.0).abs() < 1e-9 * 50.0);
        // …and through the served interval arithmetic itself.
        let ci = union_bound_interval(sens / eps, m, 1.0 - alpha, 0.0);
        assert!(
            (ci.width() / 2.0 - 50.0).abs() < 1e-9 * 50.0,
            "{}",
            ci.width()
        );
        // m = 0 sums nothing: exact answer, zero width.
        assert_eq!(alpha_half_width(1.0, 0, alpha), 0.0);
    }

    #[test]
    fn det_cbrt_cubes_back_exactly_enough() {
        for &x in &[
            0.0, 1.0, 8.0, 27.0, 1e-12, 0.5, 2.0, 1234.567, 1e18, 1e300,
            4.9e-324, // smallest subnormal
        ] {
            let y = det_cbrt(x);
            let back = y * y * y;
            let tol = 1e-12 * x.max(f64::MIN_POSITIVE);
            assert!((back - x).abs() <= tol, "cbrt({x}) = {y}, cubes to {back}");
        }
        assert_eq!(det_cbrt(8.0), 2.0);
        assert_eq!(det_cbrt(27.0), 3.0);
    }

    #[test]
    fn invert_monotone_lands_on_the_boundary_and_never_violates() {
        // A pricing-shaped closure: C/ε with an awkward constant.
        let c = 9876.543;
        let eps = invert_monotone(12.5, |e| c / e);
        assert!(c / eps <= 12.5, "guarantee violated");
        assert!(
            (c / eps - 12.5).abs() < 1e-9 * 12.5,
            "not tight: {}",
            c / eps
        );
        // Quadratic forms too.
        let eps = invert_monotone(0.25, |e| 3.0 / (e * e));
        assert!((3.0 / (eps * eps) - 0.25).abs() < 1e-9 * 0.25);
        // A target met at ε → 0 costs (essentially) nothing.
        assert!(invert_monotone(10.0, |_| 1.0) < 1e-300);
    }

    #[test]
    fn optimal_split_beats_every_geometric_candidate() {
        // Predicted error Σ c_d · 2/ε_d² at total ε = 1: the cube-root
        // weights are the global optimum, so no geometric ratio can price
        // lower (up to the zero-depth floor, far inside 1e-9).
        let costs = [0.0, 0.7, 1.9, 3.2, 1.1, 0.0, 5.5];
        let total = Epsilon::new(1.0).unwrap();
        let price = |split: &BudgetSplit| -> f64 {
            split
                .level_epsilons(total, costs.len())
                .iter()
                .zip(&costs)
                .map(|(&e, &c)| c * 2.0 / (e * e))
                .fold(0.0, |a, b| a + b)
        };
        let custom = price(&BudgetSplit::Custom(optimal_custom_split(&costs)));
        for ratio in [0.25, 0.5, 1.0, 1.5, 2.0, 4.0] {
            let geo = price(&BudgetSplit::Geometric { ratio });
            assert!(
                custom <= geo * (1.0 + 1e-9),
                "custom {custom} vs geometric({ratio}) {geo}"
            );
        }
    }

    #[test]
    fn stability_forms_round_trip_and_exceed_pure_epsilon() {
        let (alpha, delta) = (0.05, 1e-6);
        let eps = stability_epsilon(alpha, delta, 40.0);
        let err = stability_alpha_error(eps, alpha, delta);
        assert!((err - 40.0).abs() < 1e-9 * 40.0);
        // The δ-thresholding term makes the stability release strictly less
        // accurate than a pure-ε Laplace bin at the same ε.
        let pure = 2.0 * (1.0 / alpha).ln() / eps;
        assert!(err > pure);
    }

    #[test]
    fn target_builder_validates_and_carries() {
        let w = vec![RangeWorkload::new(256, 4), RangeWorkload::new(256, 64)];
        let t = AccuracyTarget::new(0.05, 50.0)
            .with_workload(w.clone())
            .with_delta(1e-7);
        assert_eq!(t.alpha(), 0.05);
        assert_eq!(t.max_error(), 50.0);
        assert_eq!(t.workload(), &w[..]);
        assert_eq!(t.delta(), 1e-7);
        let se = t.stability_epsilon().unwrap();
        assert!((stability_alpha_error(se, 0.05, 1e-7) - 50.0).abs() < 1e-9 * 50.0);
        assert!(AccuracyTarget::new(0.5, 1.0).stability_epsilon().is_none());
    }

    #[test]
    #[should_panic(expected = "share one domain")]
    fn mixed_domain_workloads_are_rejected() {
        let _ = AccuracyTarget::new(0.1, 10.0)
            .with_workload(vec![RangeWorkload::new(64, 2), RangeWorkload::new(128, 2)]);
    }

    #[test]
    #[should_panic(expected = "inside (0, 1)")]
    fn alpha_must_be_a_probability() {
        let _ = AccuracyTarget::new(1.0, 10.0);
    }
}
