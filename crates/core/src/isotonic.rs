//! Isotonic regression: the minimum-L2 projection onto ordered sequences.
//!
//! Given the noisy sorted release `s̃`, the constrained-inference answer `s̄`
//! minimizes `‖s̃ − s‖₂` subject to `s[i] ≤ s[i+1]` (Sec. 3.1). Theorem 1
//! gives the min-max characterization
//! `s̄[k] = L_k = U_k` with
//! `L_k = min_{j ∈ [k,n]} max_{i ∈ [1,j]} M̃[i,j]` — an instance of isotonic
//! regression, solvable in linear time by pool-adjacent-violators (PAVA,
//! Barlow et al. 1972).
//!
//! [`isotonic_regression`] is the production PAVA path;
//! [`minmax_reference`] evaluates Theorem 1's formula directly (O(n²)) and
//! serves as the executable specification in tests.

/// Linear-time isotonic regression (pool adjacent violators).
///
/// Returns the nondecreasing sequence closest to `values` in L2. Ties are
/// resolved exactly as the projection demands: merged blocks take their mean.
pub fn isotonic_regression(values: &[f64]) -> Vec<f64> {
    let weights = vec![1.0; values.len()];
    isotonic_regression_weighted(values, &weights)
}

/// Weighted isotonic regression minimizing `Σ wᵢ (s̃ᵢ − sᵢ)²`.
///
/// The unweighted projection is the `wᵢ = 1` case; the weighted form supports
/// inference over releases with heterogeneous noise scales (used by the
/// matrix-mechanism ablation).
pub fn isotonic_regression_weighted(values: &[f64], weights: &[f64]) -> Vec<f64> {
    assert_eq!(values.len(), weights.len(), "one weight per value");
    assert!(
        weights.iter().all(|&w| w > 0.0 && w.is_finite()),
        "weights must be positive and finite"
    );

    // Blocks of pooled values: (weighted sum, total weight, member count).
    struct Block {
        sum: f64,
        weight: f64,
        len: usize,
    }
    impl Block {
        fn mean(&self) -> f64 {
            self.sum / self.weight
        }
    }

    let mut blocks: Vec<Block> = Vec::with_capacity(values.len());
    for (&v, &w) in values.iter().zip(weights) {
        blocks.push(Block {
            sum: v * w,
            weight: w,
            len: 1,
        });
        // Pool while the ordering constraint is violated.
        while blocks.len() >= 2 {
            let last = blocks.len() - 1;
            if blocks[last - 1].mean() > blocks[last].mean() {
                let top = blocks.pop().expect("len >= 2");
                let prev = blocks.last_mut().expect("len >= 1");
                prev.sum += top.sum;
                prev.weight += top.weight;
                prev.len += top.len;
            } else {
                break;
            }
        }
    }

    let mut out = Vec::with_capacity(values.len());
    for b in &blocks {
        let m = b.mean();
        out.extend(std::iter::repeat_n(m, b.len));
    }
    out
}

/// Direct evaluation of Theorem 1's min-max formula (`L_k` form), O(n²).
///
/// Uses prefix sums so each subsequence mean `M̃[i,j]` is O(1); for each `j`
/// the inner `max_{i ≤ j} M̃[i,j]` is accumulated in one backward sweep, and
/// the outer `min_{j ≥ k}` is a suffix minimum. Exists to validate
/// [`isotonic_regression`]; not intended for large inputs.
pub fn minmax_reference(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    if n == 0 {
        return Vec::new();
    }
    let mut prefix = Vec::with_capacity(n + 1);
    prefix.push(0.0);
    for &v in values {
        prefix.push(prefix.last().expect("non-empty") + v);
    }
    let mean = |i: usize, j: usize| (prefix[j + 1] - prefix[i]) / (j - i + 1) as f64;

    // max_mean_ending_at[j] = max over i <= j of mean(i, j).
    let mut max_mean_ending_at = vec![0.0f64; n];
    for (j, slot) in max_mean_ending_at.iter_mut().enumerate() {
        let mut best = f64::NEG_INFINITY;
        for i in (0..=j).rev() {
            best = best.max(mean(i, j));
        }
        *slot = best;
    }

    // L_k = min over j >= k of max_mean_ending_at[j]: suffix minimum.
    let mut out = vec![0.0f64; n];
    let mut suffix_min = f64::INFINITY;
    for k in (0..n).rev() {
        suffix_min = suffix_min.min(max_mean_ending_at[k]);
        out[k] = suffix_min;
    }
    out
}

/// The dual `U_k = max_{i ∈ [1,k]} min_{j ∈ [i,n]} M̃[i,j]` form of
/// Theorem 1. Theorem 1 asserts `L_k = U_k`; tests verify both against PAVA.
pub fn minmax_reference_dual(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    if n == 0 {
        return Vec::new();
    }
    let mut prefix = Vec::with_capacity(n + 1);
    prefix.push(0.0);
    for &v in values {
        prefix.push(prefix.last().expect("non-empty") + v);
    }
    let mean = |i: usize, j: usize| (prefix[j + 1] - prefix[i]) / (j - i + 1) as f64;

    // min_mean_starting_at[i] = min over j >= i of mean(i, j).
    let mut min_mean_starting_at = vec![0.0f64; n];
    for (i, slot) in min_mean_starting_at.iter_mut().enumerate() {
        let mut best = f64::INFINITY;
        for j in i..n {
            best = best.min(mean(i, j));
        }
        *slot = best;
    }

    let mut out = vec![0.0f64; n];
    let mut prefix_max = f64::NEG_INFINITY;
    for k in 0..n {
        prefix_max = prefix_max.max(min_mean_starting_at[k]);
        out[k] = prefix_max;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_noise::rng_from_seed;
    use hc_testutil::assert_close;
    use rand::Rng;

    #[test]
    fn already_sorted_is_fixed_point() {
        // Example 4, case 1: s̃ = ⟨9, 10, 14⟩ is ordered, s̄ = s̃.
        let s = isotonic_regression(&[9.0, 10.0, 14.0]);
        assert_eq!(s, vec![9.0, 10.0, 14.0]);
    }

    #[test]
    fn paper_example4_case2() {
        // s̃ = ⟨9, 14, 10⟩ → s̄ = ⟨9, 12, 12⟩.
        let s = isotonic_regression(&[9.0, 14.0, 10.0]);
        assert_close(&s, &[9.0, 12.0, 12.0], 1e-12);
    }

    #[test]
    fn paper_example4_case3() {
        // s̃ = ⟨14, 9, 10, 15⟩ → s̄ = ⟨11, 11, 11, 15⟩ with ‖s̃−s̄‖² = 14.
        let s = isotonic_regression(&[14.0, 9.0, 10.0, 15.0]);
        assert_close(&s, &[11.0, 11.0, 11.0, 15.0], 1e-12);
        let dist: f64 = [14.0, 9.0, 10.0, 15.0]
            .iter()
            .zip(&s)
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        assert!((dist - 14.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(isotonic_regression(&[]).is_empty());
        assert_eq!(isotonic_regression(&[3.5]), vec![3.5]);
    }

    #[test]
    fn strictly_decreasing_pools_to_global_mean() {
        let s = isotonic_regression(&[5.0, 4.0, 3.0, 2.0, 1.0]);
        assert_close(&s, &[3.0; 5], 1e-12);
    }

    #[test]
    fn output_is_always_nondecreasing() {
        let mut rng = rng_from_seed(71);
        for _ in 0..50 {
            let v: Vec<f64> = (0..40).map(|_| rng.random_range(-10.0..10.0)).collect();
            let s = isotonic_regression(&v);
            assert!(s.windows(2).all(|w| w[0] <= w[1] + 1e-12));
        }
    }

    #[test]
    fn projection_preserves_total_mass() {
        // Pooling replaces blocks by their mean, so the sum is invariant —
        // a known property of L2 isotonic regression with uniform weights.
        let mut rng = rng_from_seed(72);
        for _ in 0..20 {
            let v: Vec<f64> = (0..30).map(|_| rng.random_range(-5.0..5.0)).collect();
            let s = isotonic_regression(&v);
            let sum_in: f64 = v.iter().sum();
            let sum_out: f64 = s.iter().sum();
            assert!((sum_in - sum_out).abs() < 1e-9);
        }
    }

    #[test]
    fn idempotent() {
        let mut rng = rng_from_seed(73);
        let v: Vec<f64> = (0..50).map(|_| rng.random_range(-3.0..3.0)).collect();
        let once = isotonic_regression(&v);
        let twice = isotonic_regression(&once);
        assert_close(&once, &twice, 1e-12);
    }

    #[test]
    fn matches_minmax_reference_on_random_inputs() {
        // Theorem 1's formula is the specification; PAVA must agree.
        let mut rng = rng_from_seed(74);
        for trial in 0..40 {
            let n = 1 + (trial % 17);
            let v: Vec<f64> = (0..n).map(|_| rng.random_range(-8.0..8.0)).collect();
            let pava = isotonic_regression(&v);
            let lk = minmax_reference(&v);
            let uk = minmax_reference_dual(&v);
            assert_close(&pava, &lk, 1e-9);
            assert_close(&lk, &uk, 1e-9); // Theorem 1: L_k = U_k
        }
    }

    #[test]
    fn no_feasible_point_is_closer() {
        // Projection optimality: random feasible (sorted) candidates are
        // never closer to s̃ than the PAVA output.
        let mut rng = rng_from_seed(75);
        let v: Vec<f64> = (0..20).map(|_| rng.random_range(-5.0..5.0)).collect();
        let s = isotonic_regression(&v);
        let proj_dist: f64 = v.iter().zip(&s).map(|(a, b)| (a - b) * (a - b)).sum();
        for _ in 0..200 {
            let mut cand: Vec<f64> = (0..20).map(|_| rng.random_range(-6.0..6.0)).collect();
            cand.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let cand_dist: f64 = v.iter().zip(&cand).map(|(a, b)| (a - b) * (a - b)).sum();
            assert!(cand_dist >= proj_dist - 1e-9);
        }
    }

    #[test]
    fn translation_equivariance() {
        // Lemma 2's invariance: isotonic(s̃ + δ) = isotonic(s̃) + δ.
        let v = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let base = isotonic_regression(&v);
        let shifted: Vec<f64> = v.iter().map(|x| x + 7.5).collect();
        let out = isotonic_regression(&shifted);
        let expect: Vec<f64> = base.iter().map(|x| x + 7.5).collect();
        assert_close(&out, &expect, 1e-12);
    }

    #[test]
    fn weighted_reduces_to_unweighted_with_unit_weights() {
        let v = [2.0, -1.0, 0.5, 3.0, 2.5];
        let a = isotonic_regression(&v);
        let b = isotonic_regression_weighted(&v, &[1.0; 5]);
        assert_close(&a, &b, 1e-12);
    }

    #[test]
    fn weighted_mean_respects_weights() {
        // Two violating points with weights 3 and 1 pool to weighted mean.
        let s = isotonic_regression_weighted(&[4.0, 0.0], &[3.0, 1.0]);
        assert_close(&s, &[3.0, 3.0], 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_weights() {
        let _ = isotonic_regression_weighted(&[1.0, 2.0], &[1.0, 0.0]);
    }
}
