//! Closed-form error predictions from the paper's analysis.
//!
//! Experiments print measured error next to these predictions so the shape
//! claims (who wins, by what factor, where crossovers fall) can be verified
//! quantitatively, not just eyeballed.

use hc_data::Interval;
use hc_mech::TreeShape;

/// Per-answer Laplace noise variance `2(Δ/ε)²`.
pub fn laplace_variance(sensitivity: f64, epsilon: f64) -> f64 {
    let b = sensitivity / epsilon;
    2.0 * b * b
}

/// `error(L̃)` over all `n` unit counts: `2n/ε²` (Sec. 2.1).
pub fn error_unit_full(n: usize, epsilon: f64) -> f64 {
    n as f64 * laplace_variance(1.0, epsilon)
}

/// `error(L̃_q)` for a range of `len` units: `2·len/ε²` (Sec. 4.2).
pub fn error_unit_range(len: usize, epsilon: f64) -> f64 {
    len as f64 * laplace_variance(1.0, epsilon)
}

/// `error(S̃)` over the sorted sequence: identical to `L̃`'s `2n/ε²`
/// (Theorem 2's baseline side).
pub fn error_sorted_baseline(n: usize, epsilon: f64) -> f64 {
    error_unit_full(n, epsilon)
}

/// `error(H̃_q)`: exact expected squared error of the subtree-sum strategy —
/// (number of decomposition subtrees) × `2ℓ²/ε²`.
pub fn error_hier_range(shape: &TreeShape, interval: Interval, epsilon: f64) -> f64 {
    let nodes = shape.subtree_decomposition(interval).len();
    nodes as f64 * laplace_variance(shape.height() as f64, epsilon)
}

/// Theorem 4(iii)'s bound on `error(H̄_q)`: `kℓ · 2ℓ²/ε²` = O(ℓ³/ε²).
pub fn error_hbar_range_bound(shape: &TreeShape, epsilon: f64) -> f64 {
    (shape.branching() * shape.height()) as f64 * laplace_variance(shape.height() as f64, epsilon)
}

/// Theorem 2's bound on `error(S̄)`: `Σᵣ (c₁·log³ nᵣ + c₂)/ε²` where `nᵣ`
/// are the multiplicities of the `d` distinct values in the true sorted
/// sequence. The constants are not pinned down by the paper; callers pass
/// them explicitly (the scaling experiment fits them empirically).
pub fn thm2_bound(sorted_truth: &[f64], epsilon: f64, c1: f64, c2: f64) -> f64 {
    run_lengths(sorted_truth)
        .into_iter()
        .map(|n_r| {
            let log_n = (n_r as f64).ln(); // hc-lint: allow(frozen-bits) — closed-form bound for figures; never enters a release
            (c1 * log_n.powi(3) + c2) / (epsilon * epsilon)
        })
        .sum()
}

/// Multiplicities `n₁ … n_d` of the distinct values in a sorted sequence.
pub fn run_lengths(sorted_truth: &[f64]) -> Vec<usize> {
    let mut runs = Vec::new();
    let mut iter = sorted_truth.iter();
    let Some(&first) = iter.next() else {
        return runs;
    };
    let mut current = first;
    let mut len = 1usize;
    for &v in iter {
        if v == current {
            len += 1;
        } else {
            runs.push(len);
            current = v;
            len = 1;
        }
    }
    runs.push(len);
    runs
}

/// Theorem 4(iv)'s worst-case query: all leaves except the two extreme ones.
pub fn thm4_query(shape: &TreeShape) -> Interval {
    assert!(shape.leaves() >= 4, "query needs at least 4 leaves");
    Interval::new(1, shape.leaves() - 2)
}

/// Theorem 4(iv)'s advantage factor `(2(ℓ−1)(k−1) − k)/3` by which `H̄` can
/// beat `H̃` on [`thm4_query`]. For the paper's height-16 binary tree this is
/// `28/3 ≈ 9.33`.
pub fn thm4_gap_factor(shape: &TreeShape) -> f64 {
    let l = shape.height() as f64;
    let k = shape.branching() as f64;
    (2.0 * (l - 1.0) * (k - 1.0) - k) / 3.0
}

/// Exact `error(H̄_q)` bound used in the Theorem 4(iv) proof: the estimate
/// `h̃[root] − h̃[leftmost] − h̃[rightmost]` has error `3 · 2ℓ²/ε²`; the OLS
/// estimator can only be better.
pub fn thm4_hbar_upper(shape: &TreeShape, epsilon: f64) -> f64 {
    3.0 * laplace_variance(shape.height() as f64, epsilon)
}

/// Appendix E: the number of noisy counts `H̃` sums for the Theorem 4(iv)
/// query, `2(k−1)(ℓ−1) − k`, giving `error(H̃_q) = (2(k−1)(ℓ−1) − k)·2ℓ²/ε²`.
pub fn thm4_htilde_error(shape: &TreeShape, epsilon: f64) -> f64 {
    let l = shape.height() as f64;
    let k = shape.branching() as f64;
    (2.0 * (k - 1.0) * (l - 1.0) - k) * laplace_variance(l, epsilon)
}

/// Appendix E's reference scaling for the Blum et al. equi-depth approach:
/// absolute error grows as `N^(2/3)` with the database size `N` (up to
/// constants). Returned unnormalized; the experiment rescales to the first
/// measured point.
pub fn blum_error_scaling(n_records: u64) -> f64 {
    (n_records as f64).powf(2.0 / 3.0) // hc-lint: allow(frozen-bits) — reference scaling curve for plots; never enters a release
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laplace_variance_matches_distribution() {
        // Δ=1, ε=1: Var(Lap(1)) = 2.
        assert!((laplace_variance(1.0, 1.0) - 2.0).abs() < 1e-12);
        // Δ=3, ε=0.5: b=6, var = 72.
        assert!((laplace_variance(3.0, 0.5) - 72.0).abs() < 1e-12);
    }

    #[test]
    fn unit_error_formulas() {
        assert!((error_unit_full(100, 1.0) - 200.0).abs() < 1e-12);
        assert!((error_unit_range(7, 0.1) - 1400.0).abs() < 1e-12);
        assert_eq!(error_sorted_baseline(50, 2.0), error_unit_full(50, 2.0));
    }

    #[test]
    fn hier_range_error_counts_subtrees() {
        let shape = TreeShape::new(2, 4); // ℓ=4, per-node var = 2·16/ε²
                                          // [1, 6] decomposes into 4 nodes: leaf1, [2,3], [4,5], leaf6.
        let e = error_hier_range(&shape, Interval::new(1, 6), 1.0);
        assert!((e - 4.0 * 32.0).abs() < 1e-12);
    }

    #[test]
    fn run_lengths_splits_correctly() {
        assert_eq!(run_lengths(&[1.0, 1.0, 2.0, 5.0, 5.0, 5.0]), vec![2, 1, 3]);
        assert_eq!(run_lengths(&[]), Vec::<usize>::new());
        assert_eq!(run_lengths(&[3.0]), vec![1]);
    }

    #[test]
    fn thm2_bound_grows_with_distinct_values() {
        let n = 1 << 14;
        let uniform = vec![4.0; n];
        let distinct: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let b_uniform = thm2_bound(&uniform, 1.0, 1.0, 1.0);
        let b_distinct = thm2_bound(&distinct, 1.0, 1.0, 1.0);
        // d = 1: O(log³n) ≪ Θ(n); d = n: bound scales linearly like the
        // baseline (Theorem 2's two regimes).
        assert!(b_uniform * 10.0 < b_distinct, "{b_uniform} vs {b_distinct}");
        assert!(b_uniform * 10.0 < error_sorted_baseline(n, 1.0));
        assert!((b_distinct - n as f64).abs() < 1e-6); // log³1 = 0, c₂ = 1 each
    }

    #[test]
    fn paper_height16_gap_factor() {
        // "in a height 16 binary tree … more accurate by a factor of
        // 2(ℓ−1)(k−1)−k over 3 = 9.33"
        let shape = TreeShape::new(2, 16);
        assert!((thm4_gap_factor(&shape) - 28.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn thm4_errors_are_consistent_with_gap() {
        let shape = TreeShape::new(2, 16);
        let ratio = thm4_htilde_error(&shape, 1.0) / thm4_hbar_upper(&shape, 1.0);
        assert!((ratio - thm4_gap_factor(&shape)).abs() < 1e-12);
    }

    #[test]
    fn thm4_query_excludes_extreme_leaves() {
        let shape = TreeShape::new(2, 4);
        let q = thm4_query(&shape);
        assert_eq!((q.lo(), q.hi()), (1, 6));
    }

    #[test]
    fn blum_scaling_is_two_thirds_power() {
        let r = blum_error_scaling(8_000_000) / blum_error_scaling(1_000_000);
        assert!((r - 4.0).abs() < 1e-9); // 8^(2/3) = 4
    }
}
