//! The persistent sharded serving pool: `effective_threads`-governed
//! workers, each owning its **own clone** of the served
//! [`ConsistentSnapshot`], answering query batches without a per-call
//! thread spawn.
//!
//! [`ConsistentSnapshot::answer_parallel`] splits each batch across a fresh
//! `std::thread::scope` — correct, but the spawn/join cycle costs tens of
//! microseconds per call, which dwarfs the batch itself at prefix-serving
//! speeds (~1.4 ns/query L2-resident). [`ShardPool`] keeps the workers
//! alive across calls: dispatching a batch is one mutex/condvar hand-off
//! per worker (microseconds for the whole pool), and each worker answers
//! from its own snapshot clone, so on multi-socket machines the per-shard
//! prefix arrays can live in worker-local memory instead of all readers
//! hammering one allocation. `hc-serve` mirrors the same layout at the
//! epoch-swap layer with `SnapshotShards` (one `SnapshotCell` per shard).
//!
//! Contracts, pinned by `tests/snapshot_serving.rs` and `tests/alloc_free.rs`:
//!
//! * **Bit-identical to serial.** Chunks are answered left to right into
//!   disjoint output ranges by the same [`answer_prefix_into`] kernel over
//!   byte-identical prefix clones, so [`ShardPool::answer_into`] equals
//!   [`ConsistentSnapshot::answer_into`] bit for bit at any worker count —
//!   including under `HC_THREADS` overrides (the pool sizes itself through
//!   [`effective_threads`] at construction).
//! * **Allocation-free when warm.** Hand-off moves recycled owned buffers
//!   (`Vec` moves, no copies of the allocations); workers answer into their
//!   chunk's warm output buffer; [`ShardPool::publish`] refreshes every
//!   shard clone via `clone_from` into warm prefix buffers.
//! * **Small batches stay serial.** Below the construction-time serial
//!   floor ([`SHARD_SERIAL_FLOOR`] by default) the dispatching thread
//!   answers from shard 0 directly — waking workers for a dozen queries
//!   costs more than answering them.
//!
//! The hand-off copies each query in (16 B) and each answer out (8 B). On
//! the large, DRAM-resident domains the pool exists for (2^20–2^26 bins),
//! a query answer is two dependent cache-missing loads — hundreds of times
//! the copy cost — so the safe ownership-based hand-off loses nothing
//! measurable over a borrowed-slice design, and the crate keeps its
//! `#![forbid(unsafe_code)]`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};

use hc_data::Interval;

use crate::engine::effective_threads;
use crate::snapshot::{answer_prefix_into, ConsistentSnapshot, SHARD_SERIAL_FLOOR};

/// One in-flight batch chunk: owned query/answer buffers that shuttle
/// between the dispatcher and a worker and are recycled across calls.
#[derive(Debug, Default)]
struct ChunkBuf {
    queries: Vec<Interval>,
    out: Vec<f64>,
}

/// Everything one worker shares with the pool: its snapshot clone, the
/// task/done hand-off slots, and the shutdown flag.
#[derive(Debug)]
struct ShardState {
    /// This shard's own snapshot clone. Workers hold the read lock only
    /// while answering; [`ShardPool::publish`] write-locks shard by shard.
    snapshot: RwLock<ConsistentSnapshot>,
    /// Dispatcher → worker hand-off slot (at most one task outstanding).
    task: Mutex<Option<ChunkBuf>>,
    task_ready: Condvar,
    /// Worker → dispatcher reply slot.
    done: Mutex<Option<ChunkBuf>>,
    done_ready: Condvar,
    /// Set (under the `task` mutex) by [`ShardPool::drop`].
    stop: AtomicBool,
}

/// A persistent pool of snapshot-serving workers — the long-lived
/// alternative to [`ConsistentSnapshot::answer_parallel`]'s per-call
/// scoped-thread split.
///
/// ```
/// use hc_core::{ConsistentSnapshot, ShardPool};
/// use hc_data::Interval;
///
/// let snapshot = ConsistentSnapshot::from_leaves(&[1.0, 2.0, 3.0, 4.0], 4);
/// let mut pool = ShardPool::new(&snapshot, 2);
/// let queries = [Interval::new(0, 3), Interval::new(1, 2)];
/// let mut out = Vec::new();
/// pool.answer_into(&queries, &mut out);
/// assert_eq!(out, vec![10.0, 5.0]);
/// ```
#[derive(Debug)]
pub struct ShardPool {
    shards: Vec<Arc<ShardState>>,
    /// Worker join handles; empty when the pool resolved to one worker
    /// (then every batch is answered inline from shard 0).
    threads: Vec<std::thread::JoinHandle<()>>,
    /// Recycled hand-off buffers, one slot per shard; `None` only while the
    /// buffer is out with its worker.
    chunks: Vec<Option<ChunkBuf>>,
    serial_floor: usize,
}

impl ShardPool {
    /// A pool of `effective_threads(threads).max(1)` workers, each seeded
    /// with its own clone of `snapshot`, with the measured default serial
    /// floor ([`SHARD_SERIAL_FLOOR`]).
    pub fn new(snapshot: &ConsistentSnapshot, threads: usize) -> Self {
        Self::with_floor(snapshot, threads, SHARD_SERIAL_FLOOR)
    }

    /// [`Self::new`] with an explicit serial-fallback floor — tests pass
    /// `0` so even one-query batches exercise the worker hand-off path.
    pub fn with_floor(snapshot: &ConsistentSnapshot, threads: usize, serial_floor: usize) -> Self {
        let workers = effective_threads(threads).max(1);
        let shards: Vec<Arc<ShardState>> = (0..workers)
            .map(|_| {
                Arc::new(ShardState {
                    snapshot: RwLock::new(snapshot.clone()),
                    task: Mutex::new(None),
                    task_ready: Condvar::new(),
                    done: Mutex::new(None),
                    done_ready: Condvar::new(),
                    stop: AtomicBool::new(false),
                })
            })
            .collect();
        let threads = if workers > 1 {
            shards
                .iter()
                .enumerate()
                .map(|(i, state)| {
                    let state = Arc::clone(state);
                    // Named `Builder` spawn, not the banned free
                    // `thread::spawn`: these are long-lived pool workers
                    // whose count routed through `effective_threads` above,
                    // joined in `Drop` — the HC_THREADS contract holds.
                    std::thread::Builder::new()
                        .name(format!("hc-shard-{i}"))
                        .spawn(move || worker_loop(&state))
                        .expect("spawn shard worker")
                })
                .collect()
        } else {
            Vec::new()
        };
        let chunks = (0..workers).map(|_| Some(ChunkBuf::default())).collect();
        Self {
            shards,
            threads,
            chunks,
            serial_floor,
        }
    }

    /// The resolved worker count (after the `HC_THREADS` override).
    #[inline]
    pub fn workers(&self) -> usize {
        self.shards.len()
    }

    /// The serial-fallback floor this pool was built with.
    #[inline]
    pub fn serial_floor(&self) -> usize {
        self.serial_floor
    }

    /// Replaces every shard's snapshot clone. Synchronous: when this
    /// returns, the next [`Self::answer_into`] on this pool serves the new
    /// snapshot from every shard. Warm republishes reuse each shard's
    /// prefix buffer (`clone_from`), so steady-state publishes allocate
    /// nothing once buffers have reached their high-water mark.
    ///
    /// Shard clones are refreshed one at a time; a worker answering
    /// concurrently (only possible through external sharing — `answer_into`
    /// takes `&mut self`) would see old or new whole snapshots, never a
    /// torn mix, because the swap happens under each shard's write lock.
    pub fn publish(&mut self, snapshot: &ConsistentSnapshot) {
        for state in &self.shards {
            let mut shard = state
                .snapshot
                .write()
                .expect("shard snapshot lock never poisoned");
            shard.clone_from(snapshot);
        }
    }

    /// Answers a query batch into `out` (resized to the batch length) —
    /// bit-identical to [`ConsistentSnapshot::answer_into`] on the served
    /// snapshot, at any worker count.
    pub fn answer_into(&mut self, queries: &[Interval], out: &mut Vec<f64>) {
        self.answer_into_with_floor(queries, out, self.serial_floor);
    }

    /// [`Self::answer_into`] with a per-call serial floor override.
    pub fn answer_into_with_floor(
        &mut self,
        queries: &[Interval],
        out: &mut Vec<f64>,
        serial_floor: usize,
    ) {
        let workers = self.shards.len();
        if workers <= 1 || queries.is_empty() || queries.len() < serial_floor {
            self.answer_serial(queries, out);
            return;
        }
        out.resize(queries.len(), 0.0);
        let per = queries.len().div_ceil(workers);
        // With fewer queries than workers, `chunks(per)` yields fewer
        // chunks than shards — trailing workers simply stay parked.
        let dispatched = queries.len().div_ceil(per);
        for (i, q_chunk) in queries.chunks(per).enumerate() {
            let mut buf = self.chunks[i].take().expect("chunk buffer parked");
            buf.queries.clear();
            buf.queries.extend_from_slice(q_chunk);
            let state = &self.shards[i];
            {
                let mut task = state.task.lock().expect("task lock never poisoned");
                *task = Some(buf);
            }
            state.task_ready.notify_one();
        }
        // Collect strictly in shard order: chunk i lands at offset i*per,
        // so the stitched output is the serial order regardless of which
        // worker finishes first.
        let mut offset = 0usize;
        for i in 0..dispatched {
            let state = &self.shards[i];
            let buf = {
                let mut done = state.done.lock().expect("done lock never poisoned");
                loop {
                    if let Some(buf) = done.take() {
                        break buf;
                    }
                    done = state
                        .done_ready
                        .wait(done)
                        .expect("done condvar never poisoned");
                }
            };
            out[offset..offset + buf.out.len()].copy_from_slice(&buf.out);
            offset += buf.out.len();
            self.chunks[i] = Some(buf);
        }
        debug_assert_eq!(offset, queries.len(), "chunks must tile the batch");
    }

    /// The serial fallback: the dispatching thread answers the whole batch
    /// from shard 0's clone — same kernel, same arithmetic.
    fn answer_serial(&self, queries: &[Interval], out: &mut Vec<f64>) {
        let snapshot = self.shards[0]
            .snapshot
            .read()
            .expect("shard snapshot lock never poisoned");
        out.resize(queries.len(), 0.0);
        answer_prefix_into(snapshot.prefix(), snapshot.domain_size(), queries, out);
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        for state in &self.shards {
            // Raise `stop` under the task mutex so a worker between its
            // stop check and its condvar wait cannot miss the wakeup.
            let guard = state.task.lock().expect("task lock never poisoned");
            state.stop.store(true, Ordering::Release);
            drop(guard);
            state.task_ready.notify_all();
        }
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

/// One worker: park on the task slot, answer the chunk from this shard's
/// snapshot clone, hand the buffer back through the done slot.
fn worker_loop(state: &ShardState) {
    loop {
        let mut buf = {
            let mut task = state.task.lock().expect("task lock never poisoned");
            loop {
                if state.stop.load(Ordering::Acquire) {
                    return;
                }
                if let Some(buf) = task.take() {
                    break buf;
                }
                task = state
                    .task_ready
                    .wait(task)
                    .expect("task condvar never poisoned");
            }
        };
        serve_chunk(state, &mut buf);
        {
            let mut done = state.done.lock().expect("done lock never poisoned");
            *done = Some(buf);
        }
        state.done_ready.notify_one();
    }
}

/// Answers one chunk from the shard's snapshot clone — the same
/// [`answer_prefix_into`] kernel the serial path runs, over a byte-identical
/// prefix, so chunk answers are bit-identical to the serial batch's slice.
fn serve_chunk(state: &ShardState, buf: &mut ChunkBuf) {
    let snapshot = state
        .snapshot
        .read()
        .expect("shard snapshot lock never poisoned");
    buf.out.resize(buf.queries.len(), 0.0);
    answer_prefix_into(
        snapshot.prefix(),
        snapshot.domain_size(),
        &buf.queries,
        &mut buf.out,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_mech::TreeShape;
    use hc_noise::rng_from_seed;
    use rand::Rng;

    fn random_snapshot(height: usize, seed: u64) -> ConsistentSnapshot {
        let shape = TreeShape::new(2, height);
        let mut rng = rng_from_seed(seed);
        let values: Vec<f64> = (0..shape.nodes())
            .map(|_| rng.random_range(-9.0..17.0))
            .collect();
        ConsistentSnapshot::from_tree_values(&shape, &values, shape.leaves())
    }

    fn random_queries(domain: usize, count: usize, seed: u64) -> Vec<Interval> {
        let mut rng = rng_from_seed(seed);
        (0..count)
            .map(|_| {
                let lo = rng.random_range(0..domain);
                let hi = rng.random_range(lo..domain);
                Interval::new(lo, hi)
            })
            .collect()
    }

    #[test]
    fn pool_matches_serial_bit_for_bit() {
        let snapshot = random_snapshot(9, 1);
        let queries = random_queries(snapshot.domain_size(), 1000, 2);
        let mut serial = Vec::new();
        snapshot.answer_into(&queries, &mut serial);
        for workers in [1usize, 2, 3, 4] {
            let mut pool = ShardPool::with_floor(&snapshot, workers, 0);
            // Under an HC_THREADS override the pool resolves to that width
            // instead; either way the answers below must stay identical.
            assert_eq!(pool.workers(), effective_threads(workers).max(1));
            let mut out = Vec::new();
            pool.answer_into(&queries, &mut out);
            assert_eq!(out, serial, "workers = {workers}");
            // Repeat on warm buffers: recycling must not corrupt anything.
            pool.answer_into(&queries, &mut out);
            assert_eq!(out, serial, "workers = {workers}, warm");
        }
    }

    #[test]
    fn publish_swaps_every_shard() {
        let first = random_snapshot(6, 3);
        let second = random_snapshot(6, 4);
        let queries = random_queries(first.domain_size(), 64, 5);
        let mut pool = ShardPool::with_floor(&first, 4, 0);
        let (mut expect, mut out) = (Vec::new(), Vec::new());
        first.answer_into(&queries, &mut expect);
        pool.answer_into(&queries, &mut out);
        assert_eq!(out, expect);
        pool.publish(&second);
        second.answer_into(&queries, &mut expect);
        pool.answer_into(&queries, &mut out);
        assert_eq!(
            out, expect,
            "post-publish answers must be the new snapshot's"
        );
    }

    #[test]
    fn small_batches_take_the_serial_path_and_stay_identical() {
        let snapshot = random_snapshot(7, 6);
        // Default floor: a small batch is answered inline; the answers are
        // the same either way — the floor is a latency knob, not semantics.
        let mut pool = ShardPool::new(&snapshot, 4);
        assert_eq!(pool.serial_floor(), SHARD_SERIAL_FLOOR);
        let queries = random_queries(snapshot.domain_size(), 65, 7);
        let (mut serial, mut out) = (Vec::new(), Vec::new());
        snapshot.answer_into(&queries, &mut serial);
        pool.answer_into(&queries, &mut out);
        assert_eq!(out, serial);
    }

    #[test]
    fn degenerate_batches_are_well_defined() {
        let snapshot = random_snapshot(5, 8);
        let mut pool = ShardPool::with_floor(&snapshot, 8, 0);
        // Empty batch: output truncated, no worker woken.
        let mut out = vec![1.0, 2.0];
        pool.answer_into(&[], &mut out);
        assert!(out.is_empty());
        // Fewer queries than workers: trailing shards stay parked.
        let queries = random_queries(snapshot.domain_size(), 3, 9);
        let mut serial = Vec::new();
        snapshot.answer_into(&queries, &mut serial);
        pool.answer_into(&queries, &mut out);
        assert_eq!(out, serial);
        // One worker: everything inline, still identical.
        let mut single = ShardPool::with_floor(&snapshot, 1, 0);
        single.answer_into(&queries, &mut out);
        assert_eq!(out, serial);
    }
}
