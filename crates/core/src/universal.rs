//! The universal-histogram task (Sec. 4): estimators `L̃`, `H̃`, `H̄`.
//!
//! A universal histogram answers *arbitrary* range queries from one private
//! release. Fig. 6 compares:
//!
//! * **`L̃`** ([`FlatUniversal`]) — release unit counts, answer ranges by
//!   summation. Accurate for small ranges, error grows linearly with range.
//! * **`H̃`** ([`HierarchicalUniversal`] + [`TreeRelease::range_query_subtree`])
//!   — release a k-ary interval tree (sensitivity ℓ), answer by summing the
//!   minimal subtree decomposition: error O(ℓ³/ε²) regardless of range size.
//! * **`H̄`** ([`TreeRelease::infer`]) — constrained inference over the tree
//!   (Theorem 3), uniformly at least as accurate as `H̃` (Theorem 4).
//!
//! Following Sec. 5.2, all estimators optionally enforce integrality and
//! non-negativity by rounding ([`Rounding::NonNegativeInteger`]); for `H̄`
//! the non-negativity step is the Sec. 4.2 subtree-zeroing heuristic applied
//! during inference.

use hc_data::{Histogram, Interval};
use hc_mech::{Epsilon, HierarchicalQuery, LaplaceMechanism, NoiseBackend, TreeShape, UnitQuery};
use rand::Rng;

use crate::engine::{BatchInference, LevelTree};
use crate::hier::ConsistentTree;
use crate::snapshot::{answer_prefix_into, ConsistentSnapshot, SubtreeServer};

/// Post-processing policy applied to released counts before answering
/// queries (Sec. 5.2's protocol).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Rounding {
    /// Use raw noisy values.
    #[default]
    None,
    /// Round each count to the nearest non-negative integer.
    NonNegativeInteger,
}

impl Rounding {
    /// Applies the policy to one value.
    #[inline]
    pub fn apply(self, v: f64) -> f64 {
        match self {
            Rounding::None => v,
            Rounding::NonNegativeInteger => v.round().max(0.0),
        }
    }
}

/// The flat strategy `L̃`: unit counts under the Laplace mechanism.
#[derive(Debug, Clone, Copy)]
pub struct FlatUniversal {
    epsilon: Epsilon,
    backend: NoiseBackend,
}

impl FlatUniversal {
    /// A pipeline calibrated to `epsilon` (default
    /// [`NoiseBackend::Reference`] sampling).
    pub fn new(epsilon: Epsilon) -> Self {
        Self {
            epsilon,
            backend: NoiseBackend::Reference,
        }
    }

    /// The same pipeline sampling through `backend`.
    pub fn with_backend(self, backend: NoiseBackend) -> Self {
        Self { backend, ..self }
    }

    /// The configured ε.
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    /// The configured sampling backend.
    pub fn backend(&self) -> NoiseBackend {
        self.backend
    }

    /// Releases `l̃ = L̃(I)`.
    pub fn release<R: Rng + ?Sized>(&self, histogram: &Histogram, rng: &mut R) -> FlatRelease {
        let mut out = FlatRelease::from_noisy(self.epsilon, Vec::new());
        self.release_into(histogram, rng, &mut out);
        out
    }

    /// Re-releases into an existing [`FlatRelease`], reusing its buffers —
    /// allocation-free after warm-up, bit-identical to [`Self::release`] at
    /// the same RNG state.
    ///
    /// The old path was three passes over the domain: evaluate, perturb,
    /// then re-read the noisy vector to build both prefix arrays. This is
    /// two: a backend-batched [`hc_noise::Laplace::fill_with`] draws the
    /// noise (so `FastLn` keeps its vectorized block transform), then one
    /// **fused counts+prefix pass** adds each unit count and folds the value
    /// into both prefix-sum arrays while it is still in registers. Per
    /// element the arithmetic is the old path's exactly (`count + sample` —
    /// f64 addition commutes bitwise — then `prefix[i] + value` in index
    /// order), so the release is bit-identical to perturbing via
    /// [`LaplaceMechanism::release_into`] and then rebuilding the prefixes.
    pub fn release_into<R: Rng + ?Sized>(
        &self,
        histogram: &Histogram,
        rng: &mut R,
        out: &mut FlatRelease,
    ) {
        let mech = LaplaceMechanism::new(self.epsilon).with_backend(self.backend);
        let laplace = hc_noise::Laplace::centered(mech.noise_scale(&UnitQuery, histogram.len()))
            .expect("positive scale from valid ε");
        let n = histogram.len();
        out.epsilon = self.epsilon;
        out.noisy.resize(n, 0.0);
        laplace.fill_with(self.backend, rng, &mut out.noisy);
        out.prefix_raw.clear();
        out.prefix_rounded.clear();
        out.prefix_raw.reserve(n + 1);
        out.prefix_rounded.reserve(n + 1);
        out.prefix_raw.push(0.0);
        out.prefix_rounded.push(0.0);
        let (mut raw_acc, mut rounded_acc) = (0.0f64, 0.0f64);
        for (slot, &count) in out.noisy.iter_mut().zip(histogram.counts()) {
            let v = count as f64 + *slot;
            *slot = v;
            raw_acc += v;
            rounded_acc += Rounding::NonNegativeInteger.apply(v);
            out.prefix_raw.push(raw_acc);
            out.prefix_rounded.push(rounded_acc);
        }
    }
}

/// A released flat histogram with prefix-sum range queries.
#[derive(Debug, Clone)]
pub struct FlatRelease {
    epsilon: Epsilon,
    noisy: Vec<f64>,
    prefix_raw: Vec<f64>,
    prefix_rounded: Vec<f64>,
}

impl FlatRelease {
    /// Wraps an existing noisy unit-count vector.
    pub fn from_noisy(epsilon: Epsilon, noisy: Vec<f64>) -> Self {
        let mut release = Self {
            epsilon,
            noisy: Vec::new(),
            prefix_raw: Vec::new(),
            prefix_rounded: Vec::new(),
        };
        release.refill(epsilon, noisy);
        release
    }

    /// Rebuilds the release around a new noisy vector, recycling the prefix
    /// buffers — the reuse core shared by [`Self::from_noisy`] and
    /// [`FlatUniversal::release_into`].
    fn refill(&mut self, epsilon: Epsilon, noisy: Vec<f64>) {
        self.epsilon = epsilon;
        self.noisy = noisy;
        self.prefix_raw.clear();
        self.prefix_rounded.clear();
        self.prefix_raw.reserve(self.noisy.len() + 1);
        self.prefix_rounded.reserve(self.noisy.len() + 1);
        self.prefix_raw.push(0.0);
        self.prefix_rounded.push(0.0);
        for (i, &v) in self.noisy.iter().enumerate() {
            self.prefix_raw.push(self.prefix_raw[i] + v);
            self.prefix_rounded
                .push(self.prefix_rounded[i] + Rounding::NonNegativeInteger.apply(v));
        }
    }

    /// The ε the release was calibrated to.
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    /// The raw noisy unit counts.
    pub fn counts(&self) -> &[f64] {
        &self.noisy
    }

    /// Unit-count estimates under the given rounding policy.
    pub fn estimates(&self, rounding: Rounding) -> Vec<f64> {
        self.noisy.iter().map(|&v| rounding.apply(v)).collect()
    }

    /// Answers `c([lo, hi])` by summing (optionally rounded) unit counts.
    pub fn range_query(&self, interval: Interval, rounding: Rounding) -> f64 {
        assert!(
            interval.hi() < self.noisy.len(),
            "query {interval} outside domain of size {}",
            self.noisy.len()
        );
        let prefix = match rounding {
            Rounding::None => &self.prefix_raw,
            Rounding::NonNegativeInteger => &self.prefix_rounded,
        };
        prefix[interval.hi() + 1] - prefix[interval.lo()]
    }

    /// Batched [`Self::range_query`] into a caller-owned buffer (resized to
    /// the batch length; zero allocations after warm-up) — the serving-loop
    /// form, answering straight from the release's fused prefix arrays.
    pub fn answer_into(&self, rounding: Rounding, queries: &[Interval], out: &mut Vec<f64>) {
        let prefix = match rounding {
            Rounding::None => &self.prefix_raw,
            Rounding::NonNegativeInteger => &self.prefix_rounded,
        };
        out.resize(queries.len(), 0.0);
        answer_prefix_into(prefix, self.noisy.len(), queries, out);
    }

    /// An owned [`ConsistentSnapshot`] over this release's (optionally
    /// rounded) unit counts — built by *copying the already-fused prefix
    /// array*, no per-leaf recomputation. The snapshot carries the release's
    /// per-count Laplace scale `b = 1/ε` (unit queries have sensitivity 1),
    /// so served answers can attach exact confidence intervals.
    pub fn snapshot(&self, rounding: Rounding) -> ConsistentSnapshot {
        let prefix = match rounding {
            Rounding::None => &self.prefix_raw,
            Rounding::NonNegativeInteger => &self.prefix_rounded,
        };
        ConsistentSnapshot::from_prefix(prefix.clone(), self.noisy.len())
            .with_noise_scale(1.0 / self.epsilon.value())
    }
}

/// The hierarchical strategy: releases the `H` tree and derives `H̃` / `H̄`.
#[derive(Debug, Clone, Copy)]
pub struct HierarchicalUniversal {
    epsilon: Epsilon,
    backend: NoiseBackend,
    query: HierarchicalQuery,
}

impl HierarchicalUniversal {
    /// A pipeline with branching factor `k` (default
    /// [`NoiseBackend::Reference`] sampling).
    pub fn new(epsilon: Epsilon, branching: usize) -> Self {
        Self {
            epsilon,
            backend: NoiseBackend::Reference,
            query: HierarchicalQuery::new(branching),
        }
    }

    /// The paper's binary hierarchy.
    pub fn binary(epsilon: Epsilon) -> Self {
        Self::new(epsilon, 2)
    }

    /// The same pipeline sampling through `backend` — threaded into every
    /// release path, including the prepared mechanism
    /// [`BatchInference::release_and_infer`] consumes.
    pub fn with_backend(self, backend: NoiseBackend) -> Self {
        Self { backend, ..self }
    }

    /// The configured ε.
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    /// The configured sampling backend.
    pub fn backend(&self) -> NoiseBackend {
        self.backend
    }

    /// The branching factor `k`.
    pub fn branching(&self) -> usize {
        self.query.branching()
    }

    /// Releases `h̃ = H̃(I)`.
    pub fn release<R: Rng + ?Sized>(&self, histogram: &Histogram, rng: &mut R) -> TreeRelease {
        let mech = LaplaceMechanism::new(self.epsilon).with_backend(self.backend);
        let mut noisy = Vec::new();
        mech.release_into(&self.query, histogram, rng, &mut noisy);
        TreeRelease {
            epsilon: self.epsilon,
            shape: self.query.shape(histogram.len()),
            domain_size: histogram.len(),
            noisy,
        }
    }

    /// Re-releases into an existing [`TreeRelease`], reusing its noisy
    /// buffer — allocation-free after warm-up when the shape is unchanged,
    /// bit-identical to [`Self::release`] at the same RNG state.
    pub fn release_into<R: Rng + ?Sized>(
        &self,
        histogram: &Histogram,
        rng: &mut R,
        out: &mut TreeRelease,
    ) {
        let mech = LaplaceMechanism::new(self.epsilon).with_backend(self.backend);
        mech.release_into(&self.query, histogram, rng, &mut out.noisy);
        out.shape = self.query.shape(histogram.len());
        out.epsilon = self.epsilon;
        out.domain_size = histogram.len();
    }

    /// A placeholder [`TreeRelease`] (all-zero noisy values) sized for
    /// `domain_size` — the warm-up target trial loops hand to
    /// [`Self::release_into`] from their per-worker init.
    pub fn empty_release(&self, domain_size: usize) -> TreeRelease {
        let shape = self.query.shape(domain_size);
        let noisy = vec![0.0; shape.nodes()];
        TreeRelease {
            epsilon: self.epsilon,
            shape,
            domain_size,
            noisy,
        }
    }

    /// The hoisted mechanism for this pipeline over `domain_size` — what
    /// [`BatchInference::release_and_infer`] consumes. Carries the
    /// pipeline's backend, so fused engine trials sample exactly as
    /// [`Self::release_into`] does.
    pub fn prepare(&self, domain_size: usize) -> hc_mech::PreparedMechanism<HierarchicalQuery> {
        LaplaceMechanism::new(self.epsilon)
            .with_backend(self.backend)
            .prepare(self.query, domain_size)
    }
}

/// A released noisy interval tree: the `H̃` estimator directly, and the
/// gateway to constrained inference (`H̄`).
#[derive(Debug, Clone)]
pub struct TreeRelease {
    epsilon: Epsilon,
    shape: TreeShape,
    domain_size: usize,
    noisy: Vec<f64>,
}

impl TreeRelease {
    /// Wraps an existing noisy tree vector (BFS order over `shape`).
    pub fn from_noisy(
        epsilon: Epsilon,
        shape: TreeShape,
        domain_size: usize,
        noisy: Vec<f64>,
    ) -> Self {
        assert_eq!(noisy.len(), shape.nodes(), "one value per tree node");
        assert!(
            domain_size <= shape.leaves(),
            "domain exceeds the leaf level"
        );
        Self {
            epsilon,
            shape,
            domain_size,
            noisy,
        }
    }

    /// The ε the release was calibrated to.
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    /// The tree geometry.
    pub fn shape(&self) -> &TreeShape {
        &self.shape
    }

    /// The unpadded domain size.
    pub fn domain_size(&self) -> usize {
        self.domain_size
    }

    /// The raw noisy node counts (BFS order).
    pub fn noisy_values(&self) -> &[f64] {
        &self.noisy
    }

    /// `H̃`'s range query: sum the fewest noisy subtree counts whose spans
    /// tile the range (Sec. 4.2's "natural strategy").
    ///
    /// Served through [`SubtreeServer`]: the decomposition is folded in
    /// place (same node order, same summation order — bit-identical to
    /// materializing it) with no per-query allocation.
    pub fn range_query_subtree(&self, interval: Interval, rounding: Rounding) -> f64 {
        assert!(
            interval.hi() < self.domain_size,
            "query {interval} outside domain of size {}",
            self.domain_size
        );
        SubtreeServer::new(&self.shape).answer(&self.noisy, rounding, interval)
    }

    /// An owned [`ConsistentSnapshot`] of the Theorem-3 inference — the
    /// engine-output plumbing for serving loops: infer through a
    /// caller-owned [`BatchInference`] (scratch reuse, recompile only on
    /// shape change) straight into a prefix-summed view, skipping the
    /// [`ConsistentTree`] wrapper. The snapshot carries the release's
    /// per-node Laplace scale for confidence intervals.
    pub fn infer_snapshot(&self, engine: &mut BatchInference) -> ConsistentSnapshot {
        engine.ensure_shape(&self.shape);
        let h = engine.infer(&self.noisy);
        ConsistentSnapshot::from_tree_values(&self.shape, &h, self.domain_size)
            .with_noise_scale(self.shape.height() as f64 / self.epsilon.value())
    }

    /// `H̄`: the exact Theorem 3 minimum-L2 consistent tree (no rounding).
    ///
    /// Runs through the level-indexed [`LevelTree`] engine (bit-identical to
    /// the [`crate::hier::hierarchical_inference`] reference oracle). Trial
    /// loops should prefer [`Self::infer_with`] to also reuse scratch
    /// buffers across releases.
    pub fn infer(&self) -> ConsistentTree {
        let h = LevelTree::new(&self.shape).infer(&self.noisy);
        ConsistentTree::new(self.shape.clone(), h, self.domain_size)
    }

    /// [`Self::infer`] through a caller-owned [`BatchInference`]: the engine
    /// is recompiled only when the shape changes and its scratch buffer is
    /// reused, so repeated trials allocate nothing beyond the result.
    pub fn infer_with(&self, engine: &mut BatchInference) -> ConsistentTree {
        engine.ensure_shape(&self.shape);
        let h = engine.infer(&self.noisy);
        ConsistentTree::new(self.shape.clone(), h, self.domain_size)
    }

    /// The raw Theorem-3 node values into a caller-owned buffer — the
    /// allocation-free core of [`Self::infer_with`] for trial loops that
    /// answer queries straight from the flat vector.
    pub fn infer_into(&self, engine: &mut BatchInference, out: &mut Vec<f64>) {
        engine.ensure_shape(&self.shape);
        engine.infer_into(&self.noisy, out);
    }

    /// `H̄` as run in the experiments (Sec. 5.2 protocol): Theorem 3
    /// inference, then the Sec. 4.2 non-negativity subtree zeroing, then
    /// rounding every node value to a non-negative integer.
    ///
    /// The zeroing deliberately breaks exact parent-sum consistency (the
    /// paper calls it a heuristic), so range queries over the result are
    /// answered by the minimal subtree decomposition — each query touches at
    /// most `2ℓ` node values, so the clamping at zero cannot accumulate bias
    /// across a wide range the way per-leaf clamping would.
    pub fn infer_rounded(&self) -> RoundedTree {
        let mut engine = BatchInference::for_shape(&self.shape);
        self.infer_rounded_with(&mut engine)
    }

    /// [`Self::infer_rounded`] through a caller-owned [`BatchInference`]
    /// (see [`Self::infer_with`]).
    ///
    /// The zeroing + rounding run as the engine's fused level sweep
    /// ([`LevelTree::zero_round_in_place`]), bit-identical to the
    /// [`crate::hier::enforce_nonnegativity`] oracle walk followed by
    /// per-node rounding.
    pub fn infer_rounded_with(&self, engine: &mut BatchInference) -> RoundedTree {
        let mut values = Vec::new();
        self.infer_rounded_into(engine, &mut values);
        RoundedTree {
            shape: self.shape.clone(),
            domain_size: self.domain_size,
            values,
        }
    }

    /// The full `H̄` post-processing (Theorem 3 → Sec. 4.2 zeroing → Sec. 5.2
    /// rounding) into a caller-owned node-value buffer — the allocation-free
    /// form trial loops pair with [`HierarchicalUniversal::release_into`].
    /// The values written are exactly [`Self::infer_rounded`]'s.
    pub fn infer_rounded_into(&self, engine: &mut BatchInference, out: &mut Vec<f64>) {
        engine.ensure_shape(&self.shape);
        engine.infer_zero_round_into(&self.noisy, out);
    }
}

/// The Sec. 4.2/5.2 post-processed tree: inferred, subtree-zeroed, and
/// rounded to non-negative integers.
///
/// Unlike [`ConsistentTree`] this is only *approximately* consistent (the
/// zeroing is a heuristic); queries therefore go through the subtree
/// decomposition rather than leaf prefix sums.
#[derive(Debug, Clone)]
pub struct RoundedTree {
    shape: TreeShape,
    domain_size: usize,
    values: Vec<f64>,
}

impl RoundedTree {
    /// The tree geometry.
    pub fn shape(&self) -> &TreeShape {
        &self.shape
    }

    /// The unpadded domain size.
    pub fn domain_size(&self) -> usize {
        self.domain_size
    }

    /// All node values (BFS order): non-negative integers.
    pub fn node_values(&self) -> &[f64] {
        &self.values
    }

    /// The leaf estimates over the unpadded domain.
    pub fn leaves(&self) -> &[f64] {
        let first = self.shape.leaf_node(0);
        &self.values[first..first + self.domain_size]
    }

    /// Answers `c([lo, hi])` by summing the minimal subtree decomposition of
    /// the zeroed, rounded node values — folded in place through
    /// [`SubtreeServer`] (bit-identical to materializing the decomposition,
    /// no per-query allocation).
    pub fn range_query(&self, interval: Interval) -> f64 {
        assert!(
            interval.hi() < self.domain_size,
            "query {interval} outside domain of size {}",
            self.domain_size
        );
        SubtreeServer::new(&self.shape).answer(&self.values, Rounding::None, interval)
    }

    /// A reusable decomposition server over this tree's geometry, for
    /// callers answering many queries (amortizes nothing heap-side —
    /// `TreeShape` is heap-free — but keeps the serving intent explicit).
    pub fn server(&self) -> SubtreeServer {
        SubtreeServer::new(&self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_data::Domain;
    use hc_noise::rng_from_seed;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn example() -> Histogram {
        Histogram::from_counts(Domain::new("src", 4).unwrap(), vec![2, 0, 10, 2])
    }

    #[test]
    fn flat_range_queries_sum_unit_counts() {
        let rel = FlatRelease::from_noisy(eps(1.0), vec![1.5, -0.5, 9.8, 2.2]);
        let q = Interval::new(0, 2);
        assert!((rel.range_query(q, Rounding::None) - 10.8).abs() < 1e-12);
        // Rounded: 2 + 0 + 10 = 12.
        assert!((rel.range_query(q, Rounding::NonNegativeInteger) - 12.0).abs() < 1e-12);
    }

    #[test]
    fn flat_estimates_respect_rounding() {
        let rel = FlatRelease::from_noisy(eps(1.0), vec![1.4, -2.0, 0.6]);
        assert_eq!(rel.estimates(Rounding::None), vec![1.4, -2.0, 0.6]);
        assert_eq!(
            rel.estimates(Rounding::NonNegativeInteger),
            vec![1.0, 0.0, 1.0]
        );
    }

    #[test]
    fn subtree_query_on_noiseless_tree_is_exact() {
        // With zero noise the H̃ strategy must return true range counts.
        let h = example();
        let shape = HierarchicalQuery::binary().shape(4);
        let truth = hc_mech::QuerySequence::evaluate(&HierarchicalQuery::binary(), &h);
        let rel = TreeRelease::from_noisy(eps(1.0), shape, 4, truth);
        for (lo, hi, want) in [
            (0usize, 3usize, 14.0),
            (0, 1, 2.0),
            (2, 3, 12.0),
            (1, 2, 10.0),
            (2, 2, 10.0),
        ] {
            let got = rel.range_query_subtree(Interval::new(lo, hi), Rounding::None);
            assert!((got - want).abs() < 1e-12, "[{lo},{hi}]: {got} vs {want}");
        }
    }

    #[test]
    fn inference_pipeline_matches_paper_example() {
        // Fig. 2(b) end-to-end through the estimator types.
        let shape = TreeShape::new(2, 3);
        let noisy = vec![13.0, 3.0, 11.0, 4.0, 1.0, 12.0, 1.0];
        let rel = TreeRelease::from_noisy(eps(1.0), shape, 4, noisy);
        let tree = rel.infer();
        let expected = [14.0, 3.0, 11.0, 3.0, 0.0, 11.0, 0.0];
        for (got, want) in tree.node_values().iter().zip(&expected) {
            assert!((got - want).abs() < 1e-12, "{got} vs {want}");
        }
        assert!((tree.range_query(Interval::new(0, 3)) - 14.0).abs() < 1e-12);
    }

    #[test]
    fn rounded_inference_is_integral_and_nonnegative() {
        let h = example();
        let pipeline = HierarchicalUniversal::binary(eps(0.5));
        let mut rng = rng_from_seed(101);
        for _ in 0..20 {
            let rel = pipeline.release(&h, &mut rng);
            let tree = rel.infer_rounded();
            assert!(tree
                .node_values()
                .iter()
                .all(|&v| v >= 0.0 && v.fract() == 0.0));
            // Range answers are sums of such values, hence also integral ≥ 0.
            let q = tree.range_query(Interval::new(0, 3));
            assert!(q >= 0.0 && q.fract() == 0.0);
        }
    }

    #[test]
    fn rounded_inference_has_no_accumulating_bias_on_wide_ranges() {
        // The regression this design guards against: answering wide ranges by
        // summing individually-clamped leaves picks up positive bias
        // proportional to the range size. The decomposition path touches at
        // most 2ℓ values, keeping the bias bounded.
        let d = Domain::new("x", 256).unwrap();
        let h = Histogram::from_counts(d, vec![0; 256]); // fully empty domain
        let pipeline = HierarchicalUniversal::binary(eps(0.1));
        let q = Interval::new(1, 254);
        let mut rng = rng_from_seed(104);
        let trials = 200;
        let mut total = 0.0;
        for _ in 0..trials {
            let rel = pipeline.release(&h, &mut rng);
            total += rel.infer_rounded().range_query(q);
        }
        let mean_estimate = total / trials as f64;
        // Truth is 0; per-node clamp bias over ≤ 2ℓ nodes stays far below
        // what 254 clamped leaves (≈ 0.4σ each, σ ≈ 90) would produce.
        assert!(mean_estimate < 500.0, "bias too large: {mean_estimate}");
    }

    #[test]
    fn release_dimensions_and_padding() {
        let d = Domain::new("x", 5).unwrap();
        let h = Histogram::from_counts(d, vec![1, 2, 3, 4, 5]);
        let pipeline = HierarchicalUniversal::binary(eps(1.0));
        let mut rng = rng_from_seed(102);
        let rel = pipeline.release(&h, &mut rng);
        assert_eq!(rel.shape().leaves(), 8);
        assert_eq!(rel.domain_size(), 5);
        assert_eq!(rel.noisy_values().len(), 15);
        let tree = rel.infer();
        assert_eq!(tree.leaves().len(), 5);
    }

    #[test]
    fn inferred_beats_subtree_on_average() {
        // Theorem 4(ii) in action on a mid-size query: average squared error
        // of H̄ must not exceed H̃'s.
        let d = Domain::new("x", 32).unwrap();
        let counts: Vec<u64> = (0..32).map(|i| (i % 7) as u64).collect();
        let h = Histogram::from_counts(d.clone(), counts);
        let q = Interval::new(3, 27);
        let truth = h.range_count(q) as f64;

        let pipeline = HierarchicalUniversal::binary(eps(0.5));
        let mut rng = rng_from_seed(103);
        let trials = 300;
        let (mut err_subtree, mut err_inferred) = (0.0, 0.0);
        for _ in 0..trials {
            let rel = pipeline.release(&h, &mut rng);
            let a = rel.range_query_subtree(q, Rounding::None);
            let b = rel.infer().range_query(q);
            err_subtree += (a - truth) * (a - truth);
            err_inferred += (b - truth) * (b - truth);
        }
        assert!(
            err_inferred < err_subtree,
            "H̄ {err_inferred} vs H̃ {err_subtree}"
        );
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn subtree_query_beyond_domain_panics() {
        let shape = TreeShape::new(2, 3);
        let rel = TreeRelease::from_noisy(eps(1.0), shape, 3, vec![0.0; 7]);
        let _ = rel.range_query_subtree(Interval::new(0, 3), Rounding::None);
    }

    #[test]
    fn release_into_matches_owned_release_bit_for_bit() {
        let h = example();
        let flat = FlatUniversal::new(eps(0.4));
        let tree = HierarchicalUniversal::binary(eps(0.4));
        let mut flat_buf = flat.release(&h, &mut rng_from_seed(1));
        let mut tree_buf = tree.empty_release(h.len());
        for seed in [110u64, 111, 112] {
            let owned = flat.release(&h, &mut rng_from_seed(seed));
            flat.release_into(&h, &mut rng_from_seed(seed), &mut flat_buf);
            assert_eq!(flat_buf.counts(), owned.counts());
            let q = Interval::new(0, 3);
            assert_eq!(
                flat_buf.range_query(q, Rounding::NonNegativeInteger),
                owned.range_query(q, Rounding::NonNegativeInteger)
            );

            let owned_tree = tree.release(&h, &mut rng_from_seed(seed));
            tree.release_into(&h, &mut rng_from_seed(seed), &mut tree_buf);
            assert_eq!(tree_buf.noisy_values(), owned_tree.noisy_values());
            assert_eq!(tree_buf.shape(), owned_tree.shape());
        }
    }

    #[test]
    fn fused_flat_release_matches_the_two_pass_path_bit_for_bit() {
        // The counts+prefix fusion must reproduce the old pipeline exactly:
        // perturb via the mechanism (two passes), then rebuild both prefix
        // arrays from the noisy vector (`from_noisy`'s construction).
        let d = Domain::new("x", 37).unwrap();
        let counts: Vec<u64> = (0..37).map(|i| (i * 7 + 3) % 11).collect();
        let h = Histogram::from_counts(d, counts);
        for backend in [NoiseBackend::Reference, NoiseBackend::FastLn] {
            let flat = FlatUniversal::new(eps(0.3)).with_backend(backend);
            assert_eq!(flat.backend(), backend);
            for seed in [120u64, 121, 122] {
                let mech = LaplaceMechanism::new(eps(0.3)).with_backend(backend);
                let mut noisy = Vec::new();
                mech.release_into(&UnitQuery, &h, &mut rng_from_seed(seed), &mut noisy);
                let two_pass = FlatRelease::from_noisy(eps(0.3), noisy);

                let fused = flat.release(&h, &mut rng_from_seed(seed));
                assert_eq!(fused.counts(), two_pass.counts());
                assert_eq!(fused.prefix_raw, two_pass.prefix_raw);
                assert_eq!(fused.prefix_rounded, two_pass.prefix_rounded);

                // And the buffer-reusing form agrees with the owned form.
                let mut reused = FlatRelease::from_noisy(eps(0.3), vec![0.0; 64]);
                flat.release_into(&h, &mut rng_from_seed(seed), &mut reused);
                assert_eq!(reused.counts(), fused.counts());
                assert_eq!(reused.prefix_raw, fused.prefix_raw);
                assert_eq!(reused.prefix_rounded, fused.prefix_rounded);
            }
        }
    }

    #[test]
    fn tree_pipeline_backend_threads_through_release_and_prepare() {
        // Big enough that fast_ln's low-bit differences from the platform ln
        // are certain to show up somewhere in the release (per sample the
        // two usually round identically).
        let d = Domain::new("x", 256).unwrap();
        let h = Histogram::from_counts(d, vec![3; 256]);
        let pipeline = HierarchicalUniversal::binary(eps(0.5)).with_backend(NoiseBackend::FastLn);
        assert_eq!(pipeline.backend(), NoiseBackend::FastLn);
        assert_eq!(pipeline.prepare(h.len()).backend(), NoiseBackend::FastLn);
        // Same seed: FastLn and Reference releases differ (different ln
        // arithmetic) but stay within polynomial accuracy of each other.
        let fast = pipeline.release(&h, &mut rng_from_seed(130));
        let reference =
            HierarchicalUniversal::binary(eps(0.5)).release(&h, &mut rng_from_seed(130));
        assert_ne!(fast.noisy_values(), reference.noisy_values());
        for (f, r) in fast.noisy_values().iter().zip(reference.noisy_values()) {
            assert!((f - r).abs() <= 1e-9 * (1.0 + r.abs()), "{f} vs {r}");
        }
    }

    #[test]
    fn infer_rounded_into_matches_infer_rounded() {
        let h = example();
        let pipeline = HierarchicalUniversal::binary(eps(0.3));
        let mut rng = rng_from_seed(113);
        let mut engine = BatchInference::for_shape(&TreeShape::for_domain(h.len(), 2));
        let mut out = Vec::new();
        for _ in 0..10 {
            let rel = pipeline.release(&h, &mut rng);
            rel.infer_rounded_into(&mut engine, &mut out);
            assert_eq!(out, rel.infer_rounded().node_values());
        }
    }

    #[test]
    fn release_and_infer_rounded_matches_release_then_infer() {
        // The engine's fused trial ≡ the estimator-type path, bit for bit.
        let h = example();
        let pipeline = HierarchicalUniversal::binary(eps(0.2));
        let prepared = pipeline.prepare(h.len());
        let shape = TreeShape::for_domain(h.len(), 2);
        let mut engine = BatchInference::for_shape(&shape);
        let mut out = Vec::new();
        for seed in [114u64, 115, 116] {
            engine.release_and_infer_rounded(&prepared, &h, &mut rng_from_seed(seed), &mut out);
            let old = pipeline
                .release(&h, &mut rng_from_seed(seed))
                .infer_rounded();
            assert_eq!(out, old.node_values());
        }
    }
}
