//! The unattributed-histogram task (Sec. 3): estimators `S̃`, `S̃r`, `S̄`.
//!
//! The analyst asks for the multiset of counts in rank order ([`SortedQuery`])
//! and receives the noisy `s̃`. Three estimators are compared in Fig. 5:
//!
//! * **`S̃`** — the raw noisy answer (baseline).
//! * **`S̃r`** — a naive consistency fix: re-sort and round each count to the
//!   nearest non-negative integer.
//! * **`S̄`** — constrained inference: the minimum-L2 ordered sequence
//!   (isotonic regression, Theorem 1).

use hc_data::Histogram;
use hc_mech::{Epsilon, LaplaceMechanism, SortedQuery};
use rand::Rng;

use crate::isotonic::isotonic_regression;

/// The unattributed-histogram pipeline: releases the sorted counts privately
/// and exposes the three Fig. 5 estimators.
#[derive(Debug, Clone, Copy)]
pub struct UnattributedHistogram {
    epsilon: Epsilon,
}

impl UnattributedHistogram {
    /// A pipeline calibrated to `epsilon`.
    pub fn new(epsilon: Epsilon) -> Self {
        Self { epsilon }
    }

    /// The configured ε.
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    /// Releases `s̃ = S̃(I)` — the only step that touches the private data.
    pub fn release<R: Rng + ?Sized>(&self, histogram: &Histogram, rng: &mut R) -> SortedRelease {
        let mech = LaplaceMechanism::new(self.epsilon);
        let output = mech.release(&SortedQuery, histogram, rng);
        SortedRelease {
            epsilon: self.epsilon,
            noisy: output.into_values(),
        }
    }

    /// The true sorted sequence `S(I)` for error evaluation (not private).
    pub fn ground_truth(&self, histogram: &Histogram) -> Vec<f64> {
        histogram
            .sorted_counts()
            .into_iter()
            .map(|c| c as f64)
            .collect()
    }
}

/// A differentially private release of the sorted query, with the paper's
/// three post-processing options. All derivations are pure post-processing
/// of `s̃` (Proposition 2: no effect on the privacy guarantee).
#[derive(Debug, Clone, PartialEq)]
pub struct SortedRelease {
    epsilon: Epsilon,
    noisy: Vec<f64>,
}

impl SortedRelease {
    /// Wraps an existing noisy sorted vector (for testing and replay).
    pub fn from_noisy(epsilon: Epsilon, noisy: Vec<f64>) -> Self {
        Self { epsilon, noisy }
    }

    /// The ε the release was calibrated to.
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    /// `S̃`: the raw noisy answers — likely out-of-order, fractional, and
    /// negative.
    pub fn baseline(&self) -> &[f64] {
        &self.noisy
    }

    /// `S̃r`: sort the noisy answers and round each to the nearest
    /// non-negative integer — the "enforce consistency without inference"
    /// straw man of Sec. 5.1.
    pub fn sorted_rounded(&self) -> Vec<f64> {
        let mut s = self.noisy.clone();
        s.sort_by(|a, b| a.partial_cmp(b).expect("noise is finite"));
        for v in &mut s {
            *v = v.round().max(0.0);
        }
        s
    }

    /// `S̄`: constrained inference — the minimum-L2 ordered sequence
    /// (Theorem 1, computed by linear-time isotonic regression).
    pub fn inferred(&self) -> Vec<f64> {
        isotonic_regression(&self.noisy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::sum_squared_error;
    use hc_data::Domain;
    use hc_noise::rng_from_seed;

    fn example() -> Histogram {
        Histogram::from_counts(Domain::new("src", 4).unwrap(), vec![2, 0, 10, 2])
    }

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn ground_truth_is_sorted_counts() {
        let task = UnattributedHistogram::new(eps(1.0));
        assert_eq!(task.ground_truth(&example()), vec![0.0, 2.0, 2.0, 10.0]);
    }

    #[test]
    fn release_produces_n_values() {
        let task = UnattributedHistogram::new(eps(1.0));
        let mut rng = rng_from_seed(91);
        let rel = task.release(&example(), &mut rng);
        assert_eq!(rel.baseline().len(), 4);
    }

    #[test]
    fn sorted_rounded_is_ordered_integral_nonnegative() {
        let rel = SortedRelease::from_noisy(eps(1.0), vec![3.7, -1.2, 0.4, 9.9, 2.0]);
        let sr = rel.sorted_rounded();
        assert!(sr.windows(2).all(|w| w[0] <= w[1]));
        assert!(sr.iter().all(|&v| v >= 0.0 && v.fract() == 0.0));
        assert_eq!(sr, vec![0.0, 0.0, 2.0, 4.0, 10.0]);
    }

    #[test]
    fn inferred_is_ordered() {
        let rel = SortedRelease::from_noisy(eps(1.0), vec![5.0, 1.0, 4.0, 2.0]);
        let inf = rel.inferred();
        assert!(inf.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn inference_never_hurts_on_average() {
        // Hwang & Peddada (cited in Sec. 3.2): isotonic projection cannot
        // increase L2 distance to any feasible (sorted) target — check
        // against the sorted ground truth per trial.
        let task = UnattributedHistogram::new(eps(0.5));
        let truth = task.ground_truth(&example());
        let mut rng = rng_from_seed(92);
        for _ in 0..200 {
            let rel = task.release(&example(), &mut rng);
            let base = sum_squared_error(rel.baseline(), &truth);
            let inferred = sum_squared_error(&rel.inferred(), &truth);
            assert!(inferred <= base + 1e-9);
        }
    }

    #[test]
    fn inference_boosts_accuracy_on_uniform_sequences() {
        // A constant sequence (d = 1) is the best case of Theorem 2: expect
        // a large average improvement, not just non-harm.
        let d = Domain::new("x", 64).unwrap();
        let h = Histogram::from_counts(d, vec![5; 64]);
        let task = UnattributedHistogram::new(eps(0.5));
        let truth = task.ground_truth(&h);
        let mut rng = rng_from_seed(93);
        let trials = 100;
        let (mut base_total, mut inf_total) = (0.0, 0.0);
        for _ in 0..trials {
            let rel = task.release(&h, &mut rng);
            base_total += sum_squared_error(rel.baseline(), &truth);
            inf_total += sum_squared_error(&rel.inferred(), &truth);
        }
        assert!(
            inf_total * 4.0 < base_total,
            "expected ≥4× improvement: baseline {base_total}, inferred {inf_total}"
        );
    }
}
