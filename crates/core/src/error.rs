//! Error metrics (Definition 2.3 and the experimental protocol of Sec. 5).

/// The squared L2 distance `‖est − truth‖₂²` — one trial's contribution to
/// the paper's `error(Q̃) = Σᵢ E(Q̃[i] − Q[i])²` (the expectation is taken by
/// averaging this over trials).
pub fn sum_squared_error(estimate: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(estimate.len(), truth.len(), "estimate and truth must align");
    estimate
        .iter()
        .zip(truth)
        .map(|(e, t)| (e - t) * (e - t))
        .sum()
}

/// Per-position squared errors — the profile plotted in Fig. 7.
pub fn per_position_squared_error(estimate: &[f64], truth: &[f64]) -> Vec<f64> {
    assert_eq!(estimate.len(), truth.len(), "estimate and truth must align");
    estimate
        .iter()
        .zip(truth)
        .map(|(e, t)| (e - t) * (e - t))
        .collect()
}

/// Mean absolute error, used for the (ε, δ)-usefulness comparison of
/// Appendix E (Blum et al. bound absolute error).
pub fn mean_absolute_error(estimate: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(estimate.len(), truth.len(), "estimate and truth must align");
    if estimate.is_empty() {
        return 0.0;
    }
    estimate
        .iter()
        .zip(truth)
        .map(|(e, t)| (e - t).abs())
        .sum::<f64>()
        / estimate.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_squared_error_basic() {
        assert_eq!(sum_squared_error(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert_eq!(sum_squared_error(&[3.0, 0.0], &[1.0, 2.0]), 8.0);
    }

    #[test]
    fn per_position_profile() {
        assert_eq!(
            per_position_squared_error(&[1.0, 5.0, 2.0], &[0.0, 5.0, 4.0]),
            vec![1.0, 0.0, 4.0]
        );
    }

    #[test]
    fn mean_absolute_error_basic() {
        assert_eq!(mean_absolute_error(&[2.0, -2.0], &[0.0, 0.0]), 2.0);
        assert_eq!(mean_absolute_error(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_lengths_panic() {
        let _ = sum_squared_error(&[1.0], &[1.0, 2.0]);
    }
}
