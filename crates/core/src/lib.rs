//! Constrained inference for differentially private histograms — the core of
//! the reproduction of Hay, Rastogi, Miklau & Suciu, *"Boosting the Accuracy
//! of Differentially Private Histograms Through Consistency"* (VLDB 2010).
//!
//! The paper's pipeline has three steps (Fig. 1):
//!
//! 1. the analyst picks a query sequence with known constraints
//!    (`hc-mech`: [`hc_mech::SortedQuery`] with ordering constraints, or
//!    [`hc_mech::HierarchicalQuery`] with parent-sum constraints);
//! 2. the data owner releases noisy answers through the Laplace mechanism
//!    (`hc-mech`: [`hc_mech::LaplaceMechanism`]);
//! 3. the analyst (or owner) post-processes the noisy answers to the
//!    *closest consistent* answer vector — the minimum-L2 projection onto
//!    the constraint set. **That third step is this crate.**
//!
//! The inference engines:
//!
//! * [`isotonic::isotonic_regression`] — Theorem 1's projection onto ordered
//!   sequences, in linear time (PAVA), with the paper's min-max formula as an
//!   executable reference specification.
//! * [`hier::hierarchical_inference`] — Theorem 3's two-pass closed form for
//!   the tree-consistency projection, plus the Sec. 4.2 non-negativity
//!   heuristic. This is the *reference oracle*: per-node weights, allocating,
//!   deliberately close to the paper's notation.
//! * [`engine::LevelTree`] / [`engine::BatchInference`] — the production
//!   engine: the same two passes over a flat level-indexed layout with
//!   precomputed per-level weight tables, scratch-buffer reuse, batched
//!   trials, and scoped-thread parallel passes. Every estimator's hot path
//!   goes through it; the test suite pins it to the oracle bit for bit.
//! * [`snapshot::ConsistentSnapshot`] / [`snapshot::SubtreeServer`] /
//!   [`snapshot::StrategyPlanner`] — the matching *read* path: O(1)
//!   prefix-summed range serving over engine output, allocation-free
//!   decomposition folds for the `H̃`-style estimators, and a
//!   workload-driven planner that picks flat vs hierarchical vs budgeted
//!   releases from the paper's closed-form error analysis.
//!
//! End-to-end estimators wrap the pipeline for the paper's two tasks:
//!
//! * [`unattributed::UnattributedHistogram`] — release `S̃`, then derive the
//!   three estimators compared in Fig. 5 (`S̃`, `S̃r`, `S̄`).
//! * [`universal::FlatUniversal`] / [`universal::HierarchicalUniversal`] —
//!   the `L̃`, `H̃`, and `H̄` strategies compared in Fig. 6, with range-query
//!   engines.
//!
//! [`theory`] holds the paper's closed-form error predictions, so experiments
//! can print measured-vs-predicted columns.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod budgeted;
pub mod engine;
pub mod error;
pub mod hier;
pub mod isotonic;
pub mod shard;
pub mod snapshot;
pub mod theory;
pub mod unattributed;
pub mod universal;
pub mod weighted;

pub use accuracy::{
    alpha_half_width, det_cbrt, epsilon_for_alpha_width, epsilon_for_hier_error,
    epsilon_for_thm4_hbar, epsilon_for_unit_error, epsilon_for_unit_range_error, invert_monotone,
    optimal_custom_split, stability_alpha_error, stability_epsilon, AccuracyTarget, Guarantee,
};
pub use budgeted::{BudgetSplit, BudgetedHierarchical, BudgetedTreeRelease};
pub use engine::{effective_threads, BatchInference, LevelTree};
pub use error::{mean_absolute_error, per_position_squared_error, sum_squared_error};
pub use hier::{enforce_nonnegativity, hierarchical_inference, ConsistentTree};
pub use isotonic::{isotonic_regression, isotonic_regression_weighted, minmax_reference};
pub use shard::ShardPool;
pub use snapshot::{
    union_bound_interval, ConsistentSnapshot, PlanInput, ReleaseStrategy, SizePrediction,
    StrategyPlan, StrategyPlanner, SubtreeServer, PARALLEL_SERIAL_FLOOR, SHARD_SERIAL_FLOOR,
};
pub use unattributed::{SortedRelease, UnattributedHistogram};
pub use universal::{
    FlatRelease, FlatUniversal, HierarchicalUniversal, RoundedTree, Rounding, TreeRelease,
};
pub use weighted::{level_budget_variances, weighted_hierarchical_inference};
