//! Weighted hierarchical inference: Theorem 3 generalized to heteroscedastic
//! noise.
//!
//! The paper splits ε uniformly over the tree (every node gets `Lap(ℓ/ε)`),
//! and Theorem 3's weights are specialized to that case. An alternative the
//! literature explored soon after (e.g. Cormode et al., ICDE 2012) is to
//! give each *level* its own budget `ε_l` with `Σ ε_l = ε` — each level is a
//! partition of the domain, so a record touches one node per level and the
//! release is `Σ ε_l`-differentially private by sequential composition.
//! Nodes then carry different noise variances and the minimum-variance
//! consistent estimate is *generalized* least squares.
//!
//! On a tree, GLS is exact two-pass message passing:
//!
//! * **Upward**: `z[v]` fuses the node's own observation with the sum of its
//!   children's `z` values by inverse-variance weighting.
//! * **Downward**: the parent's surplus `h̄[u] − Σ z[w]` is distributed to
//!   the children *proportionally to their `z`-variances* (a high-variance
//!   child absorbs more correction).
//!
//! With equal variances this reduces exactly to the paper's recurrences, and
//! the test suite checks the general case against `hc-linalg`'s weighted
//! least squares.

use hc_mech::TreeShape;

/// Result of the upward pass: fused estimates and their variances.
#[derive(Debug, Clone)]
struct Upward {
    z: Vec<f64>,
    var: Vec<f64>,
}

fn upward_pass(shape: &TreeShape, noisy: &[f64], variances: &[f64]) -> Upward {
    let n = shape.nodes();
    let mut z = vec![0.0f64; n];
    let mut var = vec![0.0f64; n];
    for v in (0..n).rev() {
        if shape.is_leaf(v) {
            z[v] = noisy[v];
            var[v] = variances[v];
        } else {
            let succ_z: f64 = shape.children(v).map(|c| z[c]).sum();
            let succ_var: f64 = shape.children(v).map(|c| var[c]).sum();
            // Inverse-variance fusion of the two independent estimates of
            // this subtree's total: own observation vs children's sum.
            let w_own = 1.0 / variances[v];
            let w_succ = 1.0 / succ_var;
            z[v] = (w_own * noisy[v] + w_succ * succ_z) / (w_own + w_succ);
            var[v] = 1.0 / (w_own + w_succ);
        }
    }
    Upward { z, var }
}

/// Minimum-variance (GLS) tree-consistent estimate for per-node noise
/// variances.
///
/// `variances[v]` is the noise variance of `noisy[v]`; all must be positive
/// and finite. For uniform variances this equals
/// [`crate::hier::hierarchical_inference`] exactly.
pub fn weighted_hierarchical_inference(
    shape: &TreeShape,
    noisy: &[f64],
    variances: &[f64],
) -> Vec<f64> {
    assert_eq!(noisy.len(), shape.nodes(), "one observation per node");
    assert_eq!(variances.len(), shape.nodes(), "one variance per node");
    assert!(
        variances.iter().all(|&v| v > 0.0 && v.is_finite()),
        "variances must be positive and finite"
    );

    let up = upward_pass(shape, noisy, variances);
    let mut h = vec![0.0f64; shape.nodes()];
    for v in 0..shape.nodes() {
        if shape.is_root(v) {
            h[v] = up.z[v];
        } else {
            let u = shape.parent(v).expect("non-root node");
            let succ_z: f64 = shape.children(u).map(|c| up.z[c]).sum();
            let succ_var: f64 = shape.children(u).map(|c| up.var[c]).sum();
            // Distribute the parent's surplus proportionally to variance:
            // the GLS projection of (z_w) onto Σ x_w = h̄[u].
            h[v] = up.z[v] + up.var[v] / succ_var * (h[u] - succ_z);
        }
    }
    h
}

/// The per-node noise variances induced by a per-level budget split: nodes
/// at depth `d` (0 = root) receive `Lap(1/ε_d)` noise, i.e. variance
/// `2/ε_d²`. `level_epsilons.len()` must equal the tree height.
pub fn level_budget_variances(shape: &TreeShape, level_epsilons: &[f64]) -> Vec<f64> {
    assert_eq!(level_epsilons.len(), shape.height(), "one ε per tree level");
    assert!(
        level_epsilons.iter().all(|&e| e > 0.0 && e.is_finite()),
        "level budgets must be positive"
    );
    let mut variances = vec![0.0f64; shape.nodes()];
    for (depth, &eps) in level_epsilons.iter().enumerate() {
        let var = 2.0 / (eps * eps);
        for v in shape.level(depth) {
            variances[v] = var;
        }
    }
    variances
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hier::hierarchical_inference;
    use hc_noise::rng_from_seed;
    use hc_testutil::assert_close;
    use rand::Rng;

    #[test]
    fn uniform_variances_reduce_to_theorem3() {
        for (k, height, seed) in [(2usize, 4usize, 1u64), (3, 3, 2), (2, 6, 3)] {
            let shape = TreeShape::new(k, height);
            let mut rng = rng_from_seed(seed);
            let noisy: Vec<f64> = (0..shape.nodes())
                .map(|_| rng.random_range(-20.0..40.0))
                .collect();
            let uniform = vec![3.7; shape.nodes()];
            let weighted = weighted_hierarchical_inference(&shape, &noisy, &uniform);
            let classic = hierarchical_inference(&shape, &noisy);
            assert_close(&weighted, &classic, 1e-9);
        }
    }

    #[test]
    fn output_is_consistent_for_arbitrary_variances() {
        let shape = TreeShape::new(2, 5);
        let mut rng = rng_from_seed(4);
        let noisy: Vec<f64> = (0..shape.nodes())
            .map(|_| rng.random_range(-10.0..30.0))
            .collect();
        let variances: Vec<f64> = (0..shape.nodes())
            .map(|_| rng.random_range(0.1..20.0))
            .collect();
        let h = weighted_hierarchical_inference(&shape, &noisy, &variances);
        for v in 0..shape.nodes() {
            if !shape.is_leaf(v) {
                let child_sum: f64 = shape.children(v).map(|c| h[c]).sum();
                assert!((h[v] - child_sum).abs() < 1e-9, "node {v}");
            }
        }
    }

    #[test]
    fn matches_generalized_least_squares() {
        // GLS via hc-linalg: minimize Σ (noisy_v − (Ax)_v)² / σ²_v over leaf
        // unknowns x; the tree message passing must agree.
        for (k, height, seed) in [(2usize, 4usize, 5u64), (3, 3, 6), (2, 5, 7)] {
            let shape = TreeShape::new(k, height);
            let mut rng = rng_from_seed(seed);
            let noisy: Vec<f64> = (0..shape.nodes())
                .map(|_| rng.random_range(-15.0..25.0))
                .collect();
            let variances: Vec<f64> = (0..shape.nodes())
                .map(|_| rng.random_range(0.5..8.0))
                .collect();

            let a = hc_linalg::Matrix::from_fn(shape.nodes(), shape.leaves(), |v, leaf| {
                if shape.leaf_span(v).contains(leaf) {
                    1.0
                } else {
                    0.0
                }
            });
            let weights: Vec<f64> = variances.iter().map(|&s| 1.0 / s).collect();
            let x = hc_linalg::lstsq_weighted(&a, &noisy, &weights).expect("full rank");
            let gls = a.matvec(&x).expect("dimensions match");

            let ours = weighted_hierarchical_inference(&shape, &noisy, &variances);
            assert_close(&ours, &gls, 1e-7);
        }
    }

    #[test]
    fn near_noiseless_node_dominates_its_subtree() {
        // If one node's observation is (almost) exact, the fused estimate of
        // its subtree total must sit on it.
        let shape = TreeShape::new(2, 3);
        let noisy = vec![100.0, 37.0, 60.0, 10.0, 10.0, 30.0, 30.0];
        let mut variances = vec![50.0; 7];
        variances[1] = 1e-9; // node 1's count of 37 is essentially exact
        let h = weighted_hierarchical_inference(&shape, &noisy, &variances);
        assert!((h[1] - 37.0).abs() < 1e-3, "h[1] = {}", h[1]);
    }

    #[test]
    fn level_budget_variances_map_depths() {
        let shape = TreeShape::new(2, 3);
        let vars = level_budget_variances(&shape, &[1.0, 0.5, 0.25]);
        assert!((vars[0] - 2.0).abs() < 1e-12); // root: 2/1²
        assert!((vars[1] - 8.0).abs() < 1e-12); // depth 1: 2/0.5²
        assert!((vars[3] - 32.0).abs() < 1e-12); // leaves: 2/0.25²
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_variance() {
        let shape = TreeShape::new(2, 2);
        let _ = weighted_hierarchical_inference(&shape, &[1.0, 1.0, 1.0], &[1.0, 0.0, 1.0]);
    }
}
