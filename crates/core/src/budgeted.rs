//! Per-level privacy-budget allocation for the hierarchical strategy.
//!
//! Instead of one `Lap(ℓ/ε)` draw per node, each tree level gets its own
//! budget `ε_d` with `Σ_d ε_d = ε`: a level is a partition of the domain, so
//! one record changes exactly one count per level and each level's release
//! is `ε_d`-DP; sequential composition gives `ε` overall. Uniform allocation
//! recovers the paper's calibration exactly; non-uniform allocations trade
//! accuracy between coarse and fine ranges, and
//! [`crate::weighted::weighted_hierarchical_inference`] remains the optimal
//! consistent decoder (now as generalized least squares).

use hc_data::{Histogram, Interval};
use hc_mech::{Epsilon, HierarchicalQuery, QuerySequence, TreeShape};
use hc_noise::Laplace;
use rand::Rng;

use crate::engine::{BatchInference, LevelTree};
use crate::hier::ConsistentTree;

/// How the total ε is divided among the tree's levels (depth 0 = root).
#[derive(Debug, Clone, PartialEq)]
pub enum BudgetSplit {
    /// Equal ε per level — the paper's calibration (`Lap(ℓ/ε)` per node).
    Uniform,
    /// Budget at depth `d` proportional to `ratio^d`: `ratio > 1` favours
    /// leaves (better small ranges), `ratio < 1` favours the root (better
    /// large ranges).
    Geometric {
        /// Per-level budget growth factor (must be positive and finite).
        ratio: f64,
    },
    /// Explicit relative weights per depth; must match the tree height at
    /// release time and be positive.
    Custom(Vec<f64>),
}

impl BudgetSplit {
    /// Resolves the split into absolute per-level budgets summing to
    /// `total` for a tree of the given height.
    pub fn level_epsilons(&self, total: Epsilon, height: usize) -> Vec<f64> {
        let weights: Vec<f64> = match self {
            BudgetSplit::Uniform => vec![1.0; height],
            BudgetSplit::Geometric { ratio } => {
                assert!(
                    *ratio > 0.0 && ratio.is_finite(),
                    "geometric ratio must be positive"
                );
                (0..height).map(|d| ratio.powi(d as i32)).collect()
            }
            BudgetSplit::Custom(w) => {
                assert_eq!(w.len(), height, "one weight per tree level");
                assert!(
                    w.iter().all(|&x| x > 0.0 && x.is_finite()),
                    "weights must be positive"
                );
                w.clone()
            }
        };
        let sum: f64 = weights.iter().sum();
        weights
            .into_iter()
            .map(|w| total.value() * w / sum)
            .collect()
    }
}

/// The hierarchical pipeline with a configurable per-level budget split.
#[derive(Debug, Clone)]
pub struct BudgetedHierarchical {
    epsilon: Epsilon,
    branching: usize,
    split: BudgetSplit,
    backend: hc_noise::NoiseBackend,
}

impl BudgetedHierarchical {
    /// A binary hierarchy with the given total budget and split.
    pub fn binary(epsilon: Epsilon, split: BudgetSplit) -> Self {
        Self::new(epsilon, 2, split)
    }

    /// A k-ary hierarchy with the given total budget and split.
    pub fn new(epsilon: Epsilon, branching: usize, split: BudgetSplit) -> Self {
        assert!(branching >= 2, "branching factor must be at least 2");
        Self {
            epsilon,
            branching,
            split,
            backend: hc_noise::NoiseBackend::Reference,
        }
    }

    /// The same pipeline sampling through `backend` (see
    /// [`hc_noise::NoiseBackend`]; the per-level draw order is unchanged).
    pub fn with_backend(self, backend: hc_noise::NoiseBackend) -> Self {
        Self { backend, ..self }
    }

    /// The configured sampling backend.
    pub fn backend(&self) -> hc_noise::NoiseBackend {
        self.backend
    }

    /// The total ε (what sequential composition certifies).
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    /// Releases the tree with per-level noise scales.
    pub fn release<R: Rng + ?Sized>(
        &self,
        histogram: &Histogram,
        rng: &mut R,
    ) -> BudgetedTreeRelease {
        let query = HierarchicalQuery::new(self.branching);
        let shape = query.shape(histogram.len());
        let mut out = BudgetedTreeRelease {
            shape,
            domain_size: histogram.len(),
            noisy: Vec::new(),
            level_variances: Vec::new(),
            epsilon: self.epsilon,
        };
        self.release_into(histogram, rng, &mut out);
        out
    }

    /// Re-releases into an existing [`BudgetedTreeRelease`], reusing its
    /// O(nodes) buffers (only the O(height) per-level budget table is
    /// rebuilt) — bit-identical to [`Self::release`] at the same RNG state.
    pub fn release_into<R: Rng + ?Sized>(
        &self,
        histogram: &Histogram,
        rng: &mut R,
        out: &mut BudgetedTreeRelease,
    ) {
        let query = HierarchicalQuery::new(self.branching);
        let shape = query.shape(histogram.len());
        let level_eps = self.split.level_epsilons(self.epsilon, shape.height());
        out.level_variances.clear();
        out.level_variances
            .extend(level_eps.iter().map(|&e| 2.0 / (e * e)));

        query.evaluate_into(histogram, &mut out.noisy);
        for (depth, &eps_d) in level_eps.iter().enumerate() {
            // One distribution per level, constructed once per release —
            // each level's scale really does differ, so this is the hoisted
            // form (the per-node construction would be height× the work).
            let noise = Laplace::centered(1.0 / eps_d).expect("positive scale");
            noise.add_noise_with(self.backend, rng, &mut out.noisy[shape.level(depth)]);
        }
        out.shape = shape;
        out.domain_size = histogram.len();
        out.epsilon = self.epsilon;
    }
}

/// A hierarchical release with heteroscedastic noise and its GLS decoder.
#[derive(Debug, Clone)]
pub struct BudgetedTreeRelease {
    shape: TreeShape,
    domain_size: usize,
    noisy: Vec<f64>,
    /// One noise variance per tree level — the single source of truth the
    /// GLS engine compiles its weight tables from; the per-node view is
    /// derived on demand.
    level_variances: Vec<f64>,
    epsilon: Epsilon,
}

impl BudgetedTreeRelease {
    /// The total ε of the release.
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    /// The tree geometry.
    pub fn shape(&self) -> &TreeShape {
        &self.shape
    }

    /// The raw noisy node values (BFS order).
    pub fn noisy_values(&self) -> &[f64] {
        &self.noisy
    }

    /// The per-node noise variances of the release, expanded on demand from
    /// [`Self::level_variances`] (each node carries its level's variance).
    pub fn variances(&self) -> Vec<f64> {
        let mut out = vec![0.0f64; self.shape.nodes()];
        for (d, &var) in self.level_variances.iter().enumerate() {
            for v in self.shape.level(d) {
                out[v] = var;
            }
        }
        out
    }

    /// The per-level noise variances (depth 0 = root).
    pub fn level_variances(&self) -> &[f64] {
        &self.level_variances
    }

    /// Raw subtree-sum range query (the `H̃` analogue), folded in place
    /// through [`crate::snapshot::SubtreeServer`] — bit-identical to
    /// materializing the decomposition, no per-query allocation.
    pub fn range_query_subtree(&self, interval: Interval) -> f64 {
        assert!(
            interval.hi() < self.domain_size,
            "query {interval} outside domain of size {}",
            self.domain_size
        );
        crate::snapshot::SubtreeServer::new(&self.shape).answer(
            &self.noisy,
            crate::universal::Rounding::None,
            interval,
        )
    }

    /// GLS constrained inference (the `H̄` analogue, weighted).
    ///
    /// Runs through the level-indexed engine with per-level GLS weight
    /// tables — bit-identical to
    /// [`crate::weighted::weighted_hierarchical_inference`] over the
    /// per-node expansion of the level variances, which the test suite pins.
    pub fn infer(&self) -> ConsistentTree {
        let engine = LevelTree::with_level_variances(&self.shape, &self.level_variances);
        ConsistentTree::new(
            self.shape.clone(),
            engine.infer(&self.noisy),
            self.domain_size,
        )
    }

    /// [`Self::infer`] through a caller-owned [`BatchInference`]: the GLS
    /// tables are recompiled only when the shape or the per-level variances
    /// change ([`BatchInference::ensure_level_variances`]) and the scratch
    /// buffer is reused, so repeated budgeted trials allocate only results.
    pub fn infer_with(&self, engine: &mut BatchInference) -> ConsistentTree {
        engine.ensure_level_variances(&self.shape, &self.level_variances);
        let h = engine.infer(&self.noisy);
        ConsistentTree::new(self.shape.clone(), h, self.domain_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universal::HierarchicalUniversal;
    use hc_data::Domain;
    use hc_noise::rng_from_seed;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn histogram(n: usize) -> Histogram {
        Histogram::from_counts(
            Domain::new("x", n).unwrap(),
            (0..n).map(|i| (i % 4) as u64).collect(),
        )
    }

    #[test]
    fn split_resolves_to_total() {
        for split in [
            BudgetSplit::Uniform,
            BudgetSplit::Geometric { ratio: 2.0 },
            BudgetSplit::Custom(vec![1.0, 2.0, 3.0, 4.0]),
        ] {
            let levels = split.level_epsilons(eps(0.8), 4);
            assert_eq!(levels.len(), 4);
            let total: f64 = levels.iter().sum();
            assert!((total - 0.8).abs() < 1e-12, "{split:?}: {total}");
        }
    }

    #[test]
    fn uniform_split_matches_paper_noise_scale() {
        // ε/ℓ per level means Lap(ℓ/ε) per node — the paper's calibration.
        let levels = BudgetSplit::Uniform.level_epsilons(eps(0.5), 5);
        for level_eps in levels {
            assert!((1.0 / level_eps - 10.0).abs() < 1e-9); // scale ℓ/ε = 10
        }
    }

    #[test]
    fn uniform_budgeted_release_statistically_matches_classic() {
        // Same total budget, same estimator family: over many trials the
        // error of the budgeted-uniform pipeline equals the classic one.
        let h = histogram(16);
        let q = Interval::new(2, 13);
        let truth = h.range_count(q) as f64;
        let classic = HierarchicalUniversal::binary(eps(0.5));
        let budgeted = BudgetedHierarchical::binary(eps(0.5), BudgetSplit::Uniform);
        let mut rng = rng_from_seed(8);
        let trials = 400;
        let (mut e_classic, mut e_budgeted) = (0.0, 0.0);
        for _ in 0..trials {
            let a = classic.release(&h, &mut rng).infer().range_query(q);
            let b = budgeted.release(&h, &mut rng).infer().range_query(q);
            e_classic += (a - truth) * (a - truth);
            e_budgeted += (b - truth) * (b - truth);
        }
        let ratio = e_budgeted / e_classic;
        assert!((0.7..1.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn engine_inference_matches_weighted_reference() {
        // The release's GLS engine (per-level tables) must agree bit for bit
        // with the per-node weighted oracle it replaced.
        let h = histogram(32);
        for (split, seed) in [
            (BudgetSplit::Uniform, 12u64),
            (BudgetSplit::Geometric { ratio: 1.7 }, 13),
            (BudgetSplit::Custom(vec![3.0, 1.0, 2.0, 1.0, 1.0, 4.0]), 14),
        ] {
            let pipeline = BudgetedHierarchical::binary(eps(0.4), split);
            let mut rng = rng_from_seed(seed);
            let rel = pipeline.release(&h, &mut rng);
            let reference = crate::weighted::weighted_hierarchical_inference(
                rel.shape(),
                rel.noisy_values(),
                &rel.variances(),
            );
            assert_eq!(rel.infer().node_values(), &reference[..]);
        }
    }

    #[test]
    fn release_into_and_infer_with_match_the_owned_paths() {
        let h = histogram(32);
        let pipeline =
            BudgetedHierarchical::binary(eps(0.4), BudgetSplit::Geometric { ratio: 1.3 });
        let mut engine = BatchInference::for_shape(&TreeShape::for_domain(32, 2));
        let mut reused = pipeline.release(&h, &mut rng_from_seed(20));
        for seed in [21u64, 22, 23] {
            let owned = pipeline.release(&h, &mut rng_from_seed(seed));
            pipeline.release_into(&h, &mut rng_from_seed(seed), &mut reused);
            assert_eq!(reused.noisy_values(), owned.noisy_values());
            assert_eq!(reused.level_variances(), owned.level_variances());
            assert_eq!(
                reused.infer_with(&mut engine).node_values(),
                owned.infer().node_values()
            );
        }
    }

    #[test]
    fn inference_output_is_consistent() {
        let h = histogram(32);
        let pipeline =
            BudgetedHierarchical::binary(eps(0.3), BudgetSplit::Geometric { ratio: 1.5 });
        let mut rng = rng_from_seed(9);
        let tree = pipeline.release(&h, &mut rng).infer();
        assert!(tree.max_consistency_violation() < 1e-9);
    }

    #[test]
    fn leaf_heavy_split_improves_unit_ranges() {
        // Shifting budget toward the leaves must reduce unit-range error
        // relative to a root-heavy split at equal total ε.
        let h = histogram(64);
        let mut rng = rng_from_seed(10);
        let trials = 300;
        let measure = |ratio: f64, rng: &mut rand::rngs::StdRng| {
            let pipeline = BudgetedHierarchical::binary(eps(0.2), BudgetSplit::Geometric { ratio });
            let mut err = 0.0;
            for _ in 0..trials {
                let tree = pipeline.release(&h, rng).infer();
                for i in (0..64).step_by(16) {
                    let q = Interval::new(i, i);
                    let truth = h.range_count(q) as f64;
                    err += (tree.range_query(q) - truth).powi(2);
                }
            }
            err
        };
        let leaf_heavy = measure(2.0, &mut rng);
        let root_heavy = measure(0.5, &mut rng);
        assert!(
            leaf_heavy < root_heavy,
            "leaf-heavy {leaf_heavy} vs root-heavy {root_heavy}"
        );
    }

    #[test]
    #[should_panic(expected = "one weight per tree level")]
    fn custom_split_length_is_checked() {
        let h = histogram(16); // height 5
        let pipeline = BudgetedHierarchical::binary(eps(0.1), BudgetSplit::Custom(vec![1.0; 3]));
        let mut rng = rng_from_seed(11);
        let _ = pipeline.release(&h, &mut rng);
    }
}
