//! The batched, level-indexed inference engine — Theorem 3 on a flat layout.
//!
//! [`crate::hier::hierarchical_inference`] is the executable specification of
//! Theorem 3: per node it recomputes `k^l` weights with `powi`, resolves
//! `parent()`/`children()` index arithmetic, and allocates fresh vectors per
//! call. That is fine for a reference oracle and fatal for the Fig. 5–7
//! experiment loops, which run it thousands of times per curve.
//!
//! This module exploits two structural facts about the complete k-ary BFS
//! layout:
//!
//! 1. **Levels are contiguous slices** (`TreeShape::level_offsets`), and the
//!    children of the `i`-th node at depth `d` start at
//!    `level_offsets[d + 1] + i·k` — sibling groups never interleave, so both
//!    Theorem-3 passes are sequential sweeps over flat slices.
//! 2. **The weights depend only on the level**, so the per-node `powi`
//!    recurrences collapse into tables of `height` precomputed coefficients
//!    ([`LevelTree`]), shared by every trial over the same shape.
//!
//! [`BatchInference`] adds scratch-buffer reuse on top: after the first call
//! every inference is allocation-free, and batches of trials amortize the
//! table setup to nothing. [`LevelTree::infer_parallel`] splits the root's k
//! subtrees across `std::thread::scope` workers for single huge trees;
//! [`BatchInference::infer_batch_parallel`] splits *trials* across workers
//! for the experiment protocol. All paths produce bit-identical output to
//! their serial counterparts, and the uniform path is bit-identical to the
//! reference `hierarchical_inference` (same floating-point expressions in the
//! same order) — the cross-engine equivalence tests pin this.

use hc_mech::TreeShape;

/// Per-level coefficient tables for the two Theorem-3 passes.
///
/// `Uniform` is the paper's equal-variance case (every node carries the same
/// `Lap(ℓ/ε)` noise); `Weighted` is the GLS generalization for per-*level*
/// noise variances (the [`crate::budgeted`] pipeline).
#[derive(Debug, Clone)]
enum Weights {
    /// Theorem 3 exactly: `z = own·h̃ + child·Σz`, `h̄ = z + (h̄_u − Σz)/k`.
    Uniform {
        /// `(k^l − k^(l−1))/(k^l − 1)` per depth (`l` = height − depth).
        up_own: Vec<f64>,
        /// `(k^(l−1) − 1)/(k^l − 1)` per depth.
        up_child: Vec<f64>,
    },
    /// Inverse-variance fusion: `z = (w_own·h̃ + w_succ·Σz)/(w_own + w_succ)`,
    /// `h̄ = z + ratio·(h̄_u − Σz)` with `ratio = var/succ_var` per depth.
    Weighted {
        /// `1/σ²_d` per depth.
        w_own: Vec<f64>,
        /// `1/Σ σ²_fused(children)` per depth (0.0 at the leaf depth).
        w_succ: Vec<f64>,
        /// `σ²_fused(d) / succ_var(d−1)` per depth (unused at depth 0).
        down_ratio: Vec<f64>,
    },
}

/// A [`TreeShape`] compiled for fast repeated inference: contiguous per-level
/// slices plus precomputed per-level weight tables.
///
/// Construction is O(height); each [`infer`](Self::infer) is two sequential
/// sweeps over the node vector with no `powi`, no parent/child index
/// arithmetic beyond a running offset, and no per-node branching.
#[derive(Debug, Clone)]
pub struct LevelTree {
    shape: TreeShape,
    weights: Weights,
}

impl LevelTree {
    /// Compiles the uniform (paper) Theorem-3 weights for `shape`.
    ///
    /// Output is bit-identical to [`crate::hier::hierarchical_inference`].
    pub fn new(shape: &TreeShape) -> Self {
        let height = shape.height();
        let k = shape.branching() as f64;
        let mut up_own = vec![1.0f64; height];
        let mut up_child = vec![0.0f64; height];
        for (d, (own, child)) in up_own.iter_mut().zip(&mut up_child).enumerate() {
            let l = (height - d) as i32;
            if l > 1 {
                // Same expressions as the reference so the bits agree.
                let k_l = k.powi(l);
                let k_lm1 = k.powi(l - 1);
                *own = (k_l - k_lm1) / (k_l - 1.0);
                *child = (k_lm1 - 1.0) / (k_l - 1.0);
            }
        }
        Self {
            shape: shape.clone(),
            weights: Weights::Uniform { up_own, up_child },
        }
    }

    /// Compiles GLS weights for per-**level** noise variances (depth 0 =
    /// root), the [`crate::budgeted`] noise model.
    ///
    /// Matches [`crate::weighted::weighted_hierarchical_inference`] with the
    /// variance of level `d` replicated across that level's nodes.
    pub fn with_level_variances(shape: &TreeShape, level_variances: &[f64]) -> Self {
        let height = shape.height();
        assert_eq!(level_variances.len(), height, "one variance per level");
        assert!(
            level_variances.iter().all(|&v| v > 0.0 && v.is_finite()),
            "variances must be positive and finite"
        );
        let k = shape.branching();
        let mut w_own = vec![0.0f64; height];
        let mut w_succ = vec![0.0f64; height];
        let mut down_ratio = vec![0.0f64; height];
        // Fused subtree-total variance per depth, bottom-up (matches the
        // reference's upward pass, including the k-term summation order).
        let mut fused = vec![0.0f64; height];
        fused[height - 1] = level_variances[height - 1];
        w_own[height - 1] = 1.0 / level_variances[height - 1];
        let mut succ_var = vec![0.0f64; height]; // of the child group under depth d
        for d in (0..height.saturating_sub(1)).rev() {
            let mut sv = 0.0f64;
            for _ in 0..k {
                sv += fused[d + 1];
            }
            succ_var[d] = sv;
            w_own[d] = 1.0 / level_variances[d];
            w_succ[d] = 1.0 / sv;
            fused[d] = 1.0 / (w_own[d] + w_succ[d]);
        }
        for d in 1..height {
            down_ratio[d] = fused[d] / succ_var[d - 1];
        }
        Self {
            shape: shape.clone(),
            weights: Weights::Weighted {
                w_own,
                w_succ,
                down_ratio,
            },
        }
    }

    /// The compiled tree geometry.
    #[inline]
    pub fn shape(&self) -> &TreeShape {
        &self.shape
    }

    /// Total node count (length of the noisy/output vectors).
    #[inline]
    pub fn nodes(&self) -> usize {
        self.shape.nodes()
    }

    /// Whether the tables are the uniform Theorem-3 weights (as opposed to
    /// per-level GLS weights).
    pub fn is_uniform(&self) -> bool {
        matches!(self.weights, Weights::Uniform { .. })
    }

    /// Theorem 3 in two flat sweeps, allocating the result.
    pub fn infer(&self, noisy: &[f64]) -> Vec<f64> {
        let mut z = Vec::new();
        let mut out = Vec::new();
        self.infer_into(noisy, &mut z, &mut out);
        out
    }

    /// Theorem 3 in two flat sweeps into caller-owned buffers.
    ///
    /// `z` and `out` are resized to `nodes()`; once their capacity has grown
    /// past that, repeated calls allocate nothing.
    pub fn infer_into(&self, noisy: &[f64], z: &mut Vec<f64>, out: &mut Vec<f64>) {
        let n = self.shape.nodes();
        assert_eq!(noisy.len(), n, "noisy vector must cover the tree");
        z.clear();
        z.resize(n, 0.0);
        out.clear();
        out.resize(n, 0.0);
        self.upward(noisy, z);
        self.downward(z, out);
    }

    /// Bottom-up pass: fills `z` (pre-sized to `nodes()`).
    fn upward(&self, noisy: &[f64], z: &mut [f64]) {
        let height = self.shape.height();
        let offsets = self.shape.level_offsets();
        let k = self.shape.branching();
        let first_leaf = offsets[height - 1];
        z[first_leaf..].copy_from_slice(&noisy[first_leaf..]);
        for d in (0..height.saturating_sub(1)).rev() {
            let (lo, hi) = (offsets[d], offsets[d + 1]);
            // Children of the i-th node at depth d start at hi + i·k.
            let (parents, rest) = z[lo..].split_at_mut(hi - lo);
            let children = &rest[..(hi - lo) * k];
            match &self.weights {
                Weights::Uniform { up_own, up_child } => {
                    let (own, child) = (up_own[d], up_child[d]);
                    for (i, p) in parents.iter_mut().enumerate() {
                        let mut succ = 0.0f64;
                        for c in &children[i * k..(i + 1) * k] {
                            succ += c;
                        }
                        *p = own * noisy[lo + i] + child * succ;
                    }
                }
                Weights::Weighted { w_own, w_succ, .. } => {
                    let (wo, ws) = (w_own[d], w_succ[d]);
                    for (i, p) in parents.iter_mut().enumerate() {
                        let mut succ = 0.0f64;
                        for c in &children[i * k..(i + 1) * k] {
                            succ += c;
                        }
                        *p = (wo * noisy[lo + i] + ws * succ) / (wo + ws);
                    }
                }
            }
        }
    }

    /// Top-down pass: fills `out` (pre-sized to `nodes()`) from `z`.
    fn downward(&self, z: &[f64], out: &mut [f64]) {
        let height = self.shape.height();
        let offsets = self.shape.level_offsets();
        let k = self.shape.branching();
        let kf = k as f64;
        out[0] = z[0];
        for d in 0..height.saturating_sub(1) {
            let (lo, hi) = (offsets[d], offsets[d + 1]);
            let (parents, rest) = out[lo..].split_at_mut(hi - lo);
            let children = &mut rest[..(hi - lo) * k];
            let down_ratio = match &self.weights {
                Weights::Uniform { .. } => None,
                Weights::Weighted { down_ratio, .. } => Some(down_ratio[d + 1]),
            };
            for (i, p) in parents.iter().enumerate() {
                let group = &z[hi + i * k..hi + (i + 1) * k];
                let mut succ = 0.0f64;
                for c in group {
                    succ += c;
                }
                let surplus = p - succ;
                let h = &mut children[i * k..(i + 1) * k];
                match down_ratio {
                    None => {
                        for (hv, zv) in h.iter_mut().zip(group) {
                            *hv = zv + surplus / kf;
                        }
                    }
                    Some(ratio) => {
                        for (hv, zv) in h.iter_mut().zip(group) {
                            *hv = zv + ratio * surplus;
                        }
                    }
                }
            }
        }
    }

    /// Theorem 3 with the root's k subtrees split across scoped-thread
    /// workers — for single trees too large to wait on one core.
    ///
    /// Each worker owns one subtree's per-level slices, so the arithmetic
    /// (and therefore the output, bit for bit) is identical to
    /// [`infer`](Self::infer); only the sweep order across *independent*
    /// subtrees changes. `threads` is a cap; trees of height < 3 or a cap of
    /// ≤ 1 fall back to the serial path.
    pub fn infer_parallel(&self, noisy: &[f64], threads: usize) -> Vec<f64> {
        let mut z = Vec::new();
        let mut out = Vec::new();
        self.infer_parallel_into(noisy, &mut z, &mut out, threads);
        out
    }

    /// [`infer_parallel`](Self::infer_parallel) into caller-owned buffers.
    pub fn infer_parallel_into(
        &self,
        noisy: &[f64],
        z: &mut Vec<f64>,
        out: &mut Vec<f64>,
        threads: usize,
    ) {
        let height = self.shape.height();
        if threads <= 1 || height < 3 {
            self.infer_into(noisy, z, out);
            return;
        }
        let n = self.shape.nodes();
        assert_eq!(noisy.len(), n, "noisy vector must cover the tree");
        z.clear();
        z.resize(n, 0.0);
        out.clear();
        out.resize(n, 0.0);

        let k = self.shape.branching();
        let offsets = self.shape.level_offsets();
        let kf = k as f64;
        let workers = threads.min(k);

        // Phase 1: bottom-up within each root subtree (disjoint z slices).
        {
            let batches = batch_subtrees(split_subtrees(&mut z[1..], offsets, k), workers);
            std::thread::scope(|scope| {
                for batch in batches {
                    scope.spawn(move || {
                        for (s, mut levels) in batch {
                            self.upward_subtree(s, &mut levels, noisy);
                        }
                    });
                }
            });
        }

        // Root: fuse the k subtree totals, then seed each subtree's h̄.
        let mut succ = 0.0f64;
        for c in &z[1..1 + k] {
            succ += c;
        }
        match &self.weights {
            Weights::Uniform { up_own, up_child } => {
                z[0] = up_own[0] * noisy[0] + up_child[0] * succ;
                out[0] = z[0];
                let surplus = out[0] - succ;
                for v in 1..1 + k {
                    out[v] = z[v] + surplus / kf;
                }
            }
            Weights::Weighted {
                w_own,
                w_succ,
                down_ratio,
            } => {
                z[0] = (w_own[0] * noisy[0] + w_succ[0] * succ) / (w_own[0] + w_succ[0]);
                out[0] = z[0];
                let surplus = out[0] - succ;
                for v in 1..1 + k {
                    out[v] = z[v] + down_ratio[1] * surplus;
                }
            }
        }

        // Phase 2: top-down within each subtree (z is now read-only).
        {
            let z = &z[..];
            let batches = batch_subtrees(split_subtrees(&mut out[1..], offsets, k), workers);
            std::thread::scope(|scope| {
                for batch in batches {
                    scope.spawn(move || {
                        for (s, mut levels) in batch {
                            self.downward_subtree(s, &mut levels, z);
                        }
                    });
                }
            });
        }
    }

    /// Bottom-up pass over root subtree `s`; `levels[j]` is its z slice at
    /// depth `j + 1`.
    fn upward_subtree(&self, s: usize, levels: &mut [&mut [f64]], noisy: &[f64]) {
        let height = self.shape.height();
        let offsets = self.shape.level_offsets();
        let k = self.shape.branching();
        let leaf_depth = height - 1;
        let w_leaf = self.subtree_level_width(leaf_depth);
        let leaf_lo = offsets[leaf_depth] + s * w_leaf;
        levels[leaf_depth - 1].copy_from_slice(&noisy[leaf_lo..leaf_lo + w_leaf]);
        for d in (1..leaf_depth).rev() {
            let w = self.subtree_level_width(d);
            let noisy_lo = offsets[d] + s * w;
            let (lower, upper) = levels.split_at_mut(d);
            let parents = &mut lower[d - 1];
            let children = &upper[0];
            match &self.weights {
                Weights::Uniform { up_own, up_child } => {
                    let (own, child) = (up_own[d], up_child[d]);
                    for (i, p) in parents.iter_mut().enumerate() {
                        let mut succ = 0.0f64;
                        for c in &children[i * k..(i + 1) * k] {
                            succ += c;
                        }
                        *p = own * noisy[noisy_lo + i] + child * succ;
                    }
                }
                Weights::Weighted { w_own, w_succ, .. } => {
                    let (wo, ws) = (w_own[d], w_succ[d]);
                    for (i, p) in parents.iter_mut().enumerate() {
                        let mut succ = 0.0f64;
                        for c in &children[i * k..(i + 1) * k] {
                            succ += c;
                        }
                        *p = (wo * noisy[noisy_lo + i] + ws * succ) / (wo + ws);
                    }
                }
            }
        }
    }

    /// Top-down pass over root subtree `s`; `levels[j]` is its h̄ slice at
    /// depth `j + 1` (the subtree root's h̄ must already be seeded).
    fn downward_subtree(&self, s: usize, levels: &mut [&mut [f64]], z: &[f64]) {
        let height = self.shape.height();
        let offsets = self.shape.level_offsets();
        let k = self.shape.branching();
        let kf = k as f64;
        for d in 1..height - 1 {
            let w = self.subtree_level_width(d);
            let child_lo = offsets[d + 1] + s * w * k;
            let group_z = &z[child_lo..child_lo + w * k];
            let (lower, upper) = levels.split_at_mut(d);
            let parents = &lower[d - 1];
            let children = &mut upper[0];
            let down_ratio = match &self.weights {
                Weights::Uniform { .. } => None,
                Weights::Weighted { down_ratio, .. } => Some(down_ratio[d + 1]),
            };
            for (i, p) in parents.iter().enumerate() {
                let group = &group_z[i * k..(i + 1) * k];
                let mut succ = 0.0f64;
                for c in group {
                    succ += c;
                }
                let surplus = p - succ;
                let h = &mut children[i * k..(i + 1) * k];
                match down_ratio {
                    None => {
                        for (hv, zv) in h.iter_mut().zip(group) {
                            *hv = zv + surplus / kf;
                        }
                    }
                    Some(ratio) => {
                        for (hv, zv) in h.iter_mut().zip(group) {
                            *hv = zv + ratio * surplus;
                        }
                    }
                }
            }
        }
    }

    /// Nodes per root subtree at `depth` (≥ 1): `level_width(depth) / k`.
    #[inline]
    fn subtree_level_width(&self, depth: usize) -> usize {
        self.shape.level_width(depth) / self.shape.branching()
    }
}

/// Groups the k subtree slice-sets into at most `workers` batches, each
/// handled by one scoped thread.
fn batch_subtrees<T>(subtrees: Vec<T>, workers: usize) -> Vec<Vec<(usize, T)>> {
    let per = subtrees.len().div_ceil(workers.max(1));
    let mut batches: Vec<Vec<(usize, T)>> = Vec::new();
    for (s, levels) in subtrees.into_iter().enumerate() {
        if s % per == 0 {
            batches.push(Vec::with_capacity(per));
        }
        batches.last_mut().expect("pushed above").push((s, levels));
    }
    batches
}

/// Splits `buf` (the node vector minus the root) into `k` root subtrees,
/// each as a vector of per-level slices: `result[s][j]` covers depth `j + 1`
/// of subtree `s`. The disjointness lets scoped workers mutate their subtree
/// without locks.
fn split_subtrees<'a>(
    mut buf: &'a mut [f64],
    offsets: &[usize],
    k: usize,
) -> Vec<Vec<&'a mut [f64]>> {
    let height = offsets.len() - 1;
    let mut per: Vec<Vec<&'a mut [f64]>> = (0..k).map(|_| Vec::with_capacity(height - 1)).collect();
    for d in 1..height {
        let width = offsets[d + 1] - offsets[d];
        let (mut level, rest) = buf.split_at_mut(width);
        buf = rest;
        let chunk = width / k;
        for sub in per.iter_mut() {
            let (c, remainder) = level.split_at_mut(chunk);
            sub.push(c);
            level = remainder;
        }
    }
    per
}

/// Reusable inference executor: one scratch buffer, many trials.
///
/// After the first call every `infer_*` method is allocation-free (buffers
/// are recycled at their high-water mark), which is what the experiment
/// loops need — thousands of trials over one shape.
#[derive(Debug, Clone)]
pub struct BatchInference {
    tree: LevelTree,
    z: Vec<f64>,
}

impl BatchInference {
    /// Wraps a compiled tree.
    pub fn new(tree: LevelTree) -> Self {
        Self {
            tree,
            z: Vec::new(),
        }
    }

    /// Compiles uniform Theorem-3 tables for `shape` and wraps them.
    pub fn for_shape(shape: &TreeShape) -> Self {
        Self::new(LevelTree::new(shape))
    }

    /// The compiled tables.
    pub fn tree(&self) -> &LevelTree {
        &self.tree
    }

    /// Recompiles (uniform weights) if `shape` differs from the current one.
    ///
    /// This is the hook for trial loops that sweep shapes: pay O(height)
    /// only when the shape actually changes, keep the scratch either way.
    pub fn ensure_shape(&mut self, shape: &TreeShape) {
        if self.tree.shape() != shape || !self.tree.is_uniform() {
            self.tree = LevelTree::new(shape);
        }
    }

    /// One inference, reusing internal scratch; allocates only the result.
    pub fn infer(&mut self, noisy: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.infer_into(noisy, &mut out);
        out
    }

    /// One inference into a caller-owned output buffer (zero allocations
    /// once `out` and the scratch have warmed up).
    pub fn infer_into(&mut self, noisy: &[f64], out: &mut Vec<f64>) {
        let mut z = std::mem::take(&mut self.z);
        self.tree.infer_into(noisy, &mut z, out);
        self.z = z;
    }

    /// Batched inference: `noisy_batch` is `trials` node vectors
    /// concatenated; the result has the same layout. Bit-identical to
    /// running the trials one by one.
    pub fn infer_batch(&mut self, noisy_batch: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.infer_batch_into(noisy_batch, &mut out);
        out
    }

    /// [`infer_batch`](Self::infer_batch) into a caller-owned buffer.
    pub fn infer_batch_into(&mut self, noisy_batch: &[f64], out: &mut Vec<f64>) {
        let n = self.tree.nodes();
        assert!(
            n > 0 && noisy_batch.len() % n == 0,
            "batch length {} is not a multiple of the node count {n}",
            noisy_batch.len()
        );
        out.clear();
        out.resize(noisy_batch.len(), 0.0);
        let mut z = std::mem::take(&mut self.z);
        z.clear();
        z.resize(n, 0.0);
        for (noisy, h) in noisy_batch.chunks_exact(n).zip(out.chunks_exact_mut(n)) {
            self.tree.upward(noisy, &mut z);
            self.tree.downward(&z, h);
        }
        self.z = z;
    }

    /// Batched inference with trials split across scoped-thread workers —
    /// the shape the Fig. 5–7 protocol wants (many independent trials, one
    /// shape). Bit-identical to [`infer_batch`](Self::infer_batch); each
    /// worker carries its own scratch, allocated once per call and amortized
    /// over its share of trials.
    pub fn infer_batch_parallel(&mut self, noisy_batch: &[f64], threads: usize) -> Vec<f64> {
        let n = self.tree.nodes();
        assert!(
            n > 0 && noisy_batch.len() % n == 0,
            "batch length {} is not a multiple of the node count {n}",
            noisy_batch.len()
        );
        let trials = noisy_batch.len() / n;
        let workers = threads.max(1).min(trials.max(1));
        if workers <= 1 {
            let mut out = Vec::new();
            self.infer_batch_into(noisy_batch, &mut out);
            return out;
        }
        let mut out = vec![0.0f64; noisy_batch.len()];
        let per = trials.div_ceil(workers);
        std::thread::scope(|scope| {
            for (in_chunk, out_chunk) in noisy_batch.chunks(per * n).zip(out.chunks_mut(per * n)) {
                let tree = &self.tree;
                scope.spawn(move || {
                    let mut z = vec![0.0f64; n];
                    for (noisy, h) in in_chunk.chunks_exact(n).zip(out_chunk.chunks_exact_mut(n)) {
                        tree.upward(noisy, &mut z);
                        tree.downward(&z, h);
                    }
                });
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hier::hierarchical_inference;
    use hc_noise::rng_from_seed;
    use hc_testutil::assert_close;
    use rand::Rng;

    fn random_noisy(shape: &TreeShape, seed: u64) -> Vec<f64> {
        let mut rng = rng_from_seed(seed);
        (0..shape.nodes())
            .map(|_| rng.random_range(-25.0..60.0))
            .collect()
    }

    #[test]
    fn engine_is_bit_identical_to_reference_on_uniform_weights() {
        for (k, height, seed) in [
            (2usize, 1usize, 11u64),
            (2, 3, 12),
            (2, 7, 13),
            (3, 4, 14),
            (5, 3, 15),
        ] {
            let shape = TreeShape::new(k, height);
            let noisy = random_noisy(&shape, seed);
            let reference = hierarchical_inference(&shape, &noisy);
            let engine = LevelTree::new(&shape).infer(&noisy);
            assert_eq!(engine, reference, "k={k} ℓ={height}");
        }
    }

    #[test]
    fn engine_matches_fig2_worked_example() {
        let shape = TreeShape::new(2, 3);
        let noisy = [13.0, 3.0, 11.0, 4.0, 1.0, 12.0, 1.0];
        let h = LevelTree::new(&shape).infer(&noisy);
        assert_close(&h, &[14.0, 3.0, 11.0, 3.0, 0.0, 11.0, 0.0], 1e-12);
    }

    #[test]
    fn parallel_is_bit_identical_to_serial() {
        for (k, height, seed) in [(2usize, 6usize, 21u64), (3, 5, 22), (4, 4, 23)] {
            let shape = TreeShape::new(k, height);
            let noisy = random_noisy(&shape, seed);
            let tree = LevelTree::new(&shape);
            let serial = tree.infer(&noisy);
            for threads in [2, 4, 8] {
                assert_eq!(tree.infer_parallel(&noisy, threads), serial);
            }
        }
    }

    #[test]
    fn batch_is_bit_identical_to_singles() {
        let shape = TreeShape::new(2, 5);
        let tree = LevelTree::new(&shape);
        let n = shape.nodes();
        let trials = 7;
        let mut batch = Vec::with_capacity(trials * n);
        let mut singles = Vec::with_capacity(trials * n);
        for t in 0..trials {
            let noisy = random_noisy(&shape, 31 + t as u64);
            singles.extend(tree.infer(&noisy));
            batch.extend(noisy);
        }
        let mut engine = BatchInference::new(tree);
        assert_eq!(engine.infer_batch(&batch), singles);
        assert_eq!(engine.infer_batch_parallel(&batch, 3), singles);
    }

    #[test]
    fn scratch_reuse_across_shapes_stays_correct() {
        let mut engine = BatchInference::for_shape(&TreeShape::new(2, 4));
        for (k, height, seed) in [(2usize, 4usize, 41u64), (3, 3, 42), (2, 6, 43)] {
            let shape = TreeShape::new(k, height);
            engine.ensure_shape(&shape);
            let noisy = random_noisy(&shape, seed);
            assert_eq!(engine.infer(&noisy), hierarchical_inference(&shape, &noisy));
        }
    }

    #[test]
    fn weighted_tables_match_weighted_reference() {
        use crate::weighted::weighted_hierarchical_inference;
        for (k, height, seed) in [(2usize, 4usize, 51u64), (3, 3, 52), (2, 6, 53)] {
            let shape = TreeShape::new(k, height);
            let mut rng = rng_from_seed(seed);
            let noisy = random_noisy(&shape, seed ^ 0xF0);
            let level_vars: Vec<f64> = (0..height).map(|_| rng.random_range(0.2..9.0)).collect();
            let mut per_node = vec![0.0f64; shape.nodes()];
            for (d, &var) in level_vars.iter().enumerate() {
                for v in shape.level(d) {
                    per_node[v] = var;
                }
            }
            let reference = weighted_hierarchical_inference(&shape, &noisy, &per_node);
            let tree = LevelTree::with_level_variances(&shape, &level_vars);
            assert_eq!(tree.infer(&noisy), reference, "k={k} ℓ={height}");
            assert_eq!(tree.infer_parallel(&noisy, 4), reference);
        }
    }

    #[test]
    fn single_node_tree_passes_through() {
        let shape = TreeShape::new(2, 1);
        let tree = LevelTree::new(&shape);
        assert_eq!(tree.infer(&[7.25]), vec![7.25]);
        assert_eq!(tree.infer_parallel(&[7.25], 8), vec![7.25]);
    }

    #[test]
    #[should_panic(expected = "multiple of the node count")]
    fn batch_length_is_checked() {
        let mut engine = BatchInference::for_shape(&TreeShape::new(2, 3));
        let _ = engine.infer_batch(&[0.0; 10]);
    }
}
