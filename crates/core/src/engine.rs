//! The batched, level-indexed inference engine — Theorem 3 on a flat layout.
//!
//! [`crate::hier::hierarchical_inference`] is the executable specification of
//! Theorem 3: per node it recomputes `k^l` weights with `powi`, resolves
//! `parent()`/`children()` index arithmetic, and allocates fresh vectors per
//! call. That is fine for a reference oracle and fatal for the Fig. 5–7
//! experiment loops, which run it thousands of times per curve.
//!
//! This module exploits two structural facts about the complete k-ary BFS
//! layout:
//!
//! 1. **Levels are contiguous slices** (`TreeShape::level_offsets`), and the
//!    children of the `i`-th node at depth `d` start at
//!    `level_offsets[d + 1] + i·k` — sibling groups never interleave, so both
//!    Theorem-3 passes are sequential sweeps over flat slices.
//! 2. **The weights depend only on the level**, so the per-node `powi`
//!    recurrences collapse into tables of `height` precomputed coefficients
//!    ([`LevelTree`]), shared by every trial over the same shape.
//!
//! On top of the PR-2 layout this engine adds the allocation-free pipeline:
//!
//! * the two sweeps are **tiled** into vertical slabs of ≤ [`TILE_LEAVES`]
//!   leaves, so a subtree's intermediate `z` values are still cache-resident
//!   when its ancestors consume them (the untiled sweeps stream every level
//!   from memory and are bandwidth-bound at large heights);
//! * the binary-tree inner loops (`own·x + child·Σ(2-window)`) are manually
//!   **4-way unrolled** ([`up_level_uniform`] and friends), preserving the
//!   reference's floating-point expression per node so output stays
//!   bit-identical;
//! * the Sec. 4.2 non-negativity heuristic runs as a **top-down level sweep**
//!   ([`LevelTree::zero_subtrees_in_place`]) instead of the per-node
//!   `parent()` walk of [`crate::hier::enforce_nonnegativity`] (which is kept
//!   as the oracle), exploiting the invariant that after the sweep a node is
//!   zeroed iff its value is `0.0`;
//! * [`BatchInference::release_and_infer`] runs a whole trial — evaluate the
//!   query, add Laplace noise through the preparation's
//!   [`hc_noise::NoiseBackend`], both Theorem-3 passes, optional zeroing and
//!   rounding — through caller/engine-owned scratch with **zero heap
//!   allocations after warm-up** (`tests/alloc_free.rs` pins this with a
//!   counting allocator);
//! * [`BatchInference::release_and_infer_batch_parallel`] scales that full
//!   trial across scoped-thread workers, split by trial with per-worker
//!   scratch and per-trial [`SeedStream`] seeding — bit-identical to the
//!   serial batch for any thread count, per backend;
//! * [`LevelTree::infer_parallel`] splits the tree at a depth with enough
//!   subtrees to feed every worker (≥ 4 chunks per thread when the shape
//!   allows), and workers claim subtrees from an atomic work queue — k = 2
//!   trees no longer cap the fan-out at 2 the way the old
//!   one-worker-per-root-subtree split did.
//!
//! All paths produce bit-identical output to their serial counterparts, and
//! the uniform path is bit-identical to the reference
//! `hierarchical_inference` (same floating-point expressions in the same
//! order) — the cross-engine equivalence tests pin this.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use hc_data::Histogram;
use hc_mech::{PreparedMechanism, QuerySequence, TreeShape};
use hc_noise::{Laplace, NoiseBackend, SeedStream};
use rand::Rng;

/// Leaves per vertical slab in the tiled sweeps. A binary slab of 8192
/// leaves touches ≈ 16 K `z` nodes plus the matching noisy/output slices —
/// a few hundred KiB, comfortably inside L2 — while leaving enough slabs at
/// experiment scale (128 at 2^20 leaves) for the work-stealing queue.
const TILE_LEAVES: usize = 8192;

/// Effective worker count for the parallel paths: the `HC_THREADS`
/// environment variable, when set to a positive integer, overrides
/// `requested` — the hook CI and bench runs use to pin thread count
/// deterministically. Unset (or unparsable) leaves `requested` untouched.
pub fn effective_threads(requested: usize) -> usize {
    apply_thread_override(std::env::var("HC_THREADS").ok().as_deref(), requested)
}

/// Pure core of [`effective_threads`]: a positive-integer override wins,
/// anything else (unset, empty, zero, garbage) keeps `requested`.
fn apply_thread_override(override_value: Option<&str>, requested: usize) -> usize {
    override_value
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(requested)
}

/// Per-level coefficient tables for the two Theorem-3 passes.
///
/// `Uniform` is the paper's equal-variance case (every node carries the same
/// `Lap(ℓ/ε)` noise); `Weighted` is the GLS generalization for per-*level*
/// noise variances (the [`crate::budgeted`] pipeline).
#[derive(Debug, Clone)]
enum Weights {
    /// Theorem 3 exactly: `z = own·h̃ + child·Σz`, `h̄ = z + (h̄_u − Σz)/k`.
    Uniform {
        /// `(k^l − k^(l−1))/(k^l − 1)` per depth (`l` = height − depth).
        up_own: Vec<f64>,
        /// `(k^(l−1) − 1)/(k^l − 1)` per depth.
        up_child: Vec<f64>,
    },
    /// Inverse-variance fusion: `z = (w_own·h̃ + w_succ·Σz)/(w_own + w_succ)`,
    /// `h̄ = z + ratio·(h̄_u − Σz)` with `ratio = var/succ_var` per depth.
    Weighted {
        /// `1/σ²_d` per depth.
        w_own: Vec<f64>,
        /// `1/Σ σ²_fused(children)` per depth (0.0 at the leaf depth).
        w_succ: Vec<f64>,
        /// `σ²_fused(d) / succ_var(d−1)` per depth (unused at depth 0).
        down_ratio: Vec<f64>,
        /// The input per-level variances, kept so
        /// [`BatchInference::ensure_level_variances`] can detect staleness.
        vars: Vec<f64>,
    },
}

/// Bottom-up kernel, uniform weights: `p_i = own·x_i + child·Σ children_i`.
///
/// The k = 2 path is 4-way unrolled; every path folds the sibling window
/// exactly like the reference (`succ` starts at `0.0` and accumulates left
/// to right), so the result is bit-identical for all inputs.
fn up_level_uniform(
    parents: &mut [f64],
    own_in: &[f64],
    children: &[f64],
    k: usize,
    own: f64,
    child: f64,
) {
    if k == 2 {
        let n = parents.len();
        let main = n - n % 4;
        for i in (0..main).step_by(4) {
            let c = &children[2 * i..2 * i + 8];
            let x = &own_in[i..i + 4];
            let p = &mut parents[i..i + 4];
            p[0] = own * x[0] + child * (0.0 + c[0] + c[1]);
            p[1] = own * x[1] + child * (0.0 + c[2] + c[3]);
            p[2] = own * x[2] + child * (0.0 + c[4] + c[5]);
            p[3] = own * x[3] + child * (0.0 + c[6] + c[7]);
        }
        for i in main..n {
            parents[i] = own * own_in[i] + child * (0.0 + children[2 * i] + children[2 * i + 1]);
        }
    } else {
        for (i, p) in parents.iter_mut().enumerate() {
            let mut succ = 0.0f64;
            for c in &children[i * k..(i + 1) * k] {
                succ += c;
            }
            *p = own * own_in[i] + child * succ;
        }
    }
}

/// Bottom-up kernel, GLS weights: `p_i = (wo·x_i + ws·Σ children_i)/(wo+ws)`.
fn up_level_weighted(
    parents: &mut [f64],
    own_in: &[f64],
    children: &[f64],
    k: usize,
    wo: f64,
    ws: f64,
) {
    if k == 2 {
        let n = parents.len();
        let main = n - n % 4;
        for i in (0..main).step_by(4) {
            let c = &children[2 * i..2 * i + 8];
            let x = &own_in[i..i + 4];
            let p = &mut parents[i..i + 4];
            p[0] = (wo * x[0] + ws * (0.0 + c[0] + c[1])) / (wo + ws);
            p[1] = (wo * x[1] + ws * (0.0 + c[2] + c[3])) / (wo + ws);
            p[2] = (wo * x[2] + ws * (0.0 + c[4] + c[5])) / (wo + ws);
            p[3] = (wo * x[3] + ws * (0.0 + c[6] + c[7])) / (wo + ws);
        }
        for i in main..n {
            let succ = 0.0 + children[2 * i] + children[2 * i + 1];
            parents[i] = (wo * own_in[i] + ws * succ) / (wo + ws);
        }
    } else {
        for (i, p) in parents.iter_mut().enumerate() {
            let mut succ = 0.0f64;
            for c in &children[i * k..(i + 1) * k] {
                succ += c;
            }
            *p = (wo * own_in[i] + ws * succ) / (wo + ws);
        }
    }
}

/// Top-down kernel, uniform weights: per parent,
/// `h_j = z_j + (p − Σ z)/k` over its sibling window.
///
/// The per-child quotient `(p − Σz)/k` is hoisted out of the window loop —
/// the reference recomputes it per child, but division is exact, so the
/// value (and the output bits) are unchanged.
fn down_level_uniform(
    children_out: &mut [f64],
    parents: &[f64],
    group_z: &[f64],
    k: usize,
    kf: f64,
) {
    if k == 2 {
        let n = parents.len();
        let main = n - n % 4;
        for i in (0..main).step_by(4) {
            let z = &group_z[2 * i..2 * i + 8];
            let h = &mut children_out[2 * i..2 * i + 8];
            let p = &parents[i..i + 4];
            let s0 = (p[0] - (0.0 + z[0] + z[1])) / kf;
            let s1 = (p[1] - (0.0 + z[2] + z[3])) / kf;
            let s2 = (p[2] - (0.0 + z[4] + z[5])) / kf;
            let s3 = (p[3] - (0.0 + z[6] + z[7])) / kf;
            h[0] = z[0] + s0;
            h[1] = z[1] + s0;
            h[2] = z[2] + s1;
            h[3] = z[3] + s1;
            h[4] = z[4] + s2;
            h[5] = z[5] + s2;
            h[6] = z[6] + s3;
            h[7] = z[7] + s3;
        }
        for i in main..n {
            let z = &group_z[2 * i..2 * i + 2];
            let s = (parents[i] - (0.0 + z[0] + z[1])) / kf;
            children_out[2 * i] = z[0] + s;
            children_out[2 * i + 1] = z[1] + s;
        }
    } else {
        for (i, p) in parents.iter().enumerate() {
            let group = &group_z[i * k..(i + 1) * k];
            let mut succ = 0.0f64;
            for c in group {
                succ += c;
            }
            let share = (p - succ) / kf;
            for (hv, zv) in children_out[i * k..(i + 1) * k].iter_mut().zip(group) {
                *hv = zv + share;
            }
        }
    }
}

/// Top-down kernel, GLS weights: `h_j = z_j + ratio·(p − Σ z)`.
fn down_level_weighted(
    children_out: &mut [f64],
    parents: &[f64],
    group_z: &[f64],
    k: usize,
    ratio: f64,
) {
    if k == 2 {
        let n = parents.len();
        let main = n - n % 4;
        for i in (0..main).step_by(4) {
            let z = &group_z[2 * i..2 * i + 8];
            let h = &mut children_out[2 * i..2 * i + 8];
            let p = &parents[i..i + 4];
            let s0 = ratio * (p[0] - (0.0 + z[0] + z[1]));
            let s1 = ratio * (p[1] - (0.0 + z[2] + z[3]));
            let s2 = ratio * (p[2] - (0.0 + z[4] + z[5]));
            let s3 = ratio * (p[3] - (0.0 + z[6] + z[7]));
            h[0] = z[0] + s0;
            h[1] = z[1] + s0;
            h[2] = z[2] + s1;
            h[3] = z[3] + s1;
            h[4] = z[4] + s2;
            h[5] = z[5] + s2;
            h[6] = z[6] + s3;
            h[7] = z[7] + s3;
        }
        for i in main..n {
            let z = &group_z[2 * i..2 * i + 2];
            let s = ratio * (parents[i] - (0.0 + z[0] + z[1]));
            children_out[2 * i] = z[0] + s;
            children_out[2 * i + 1] = z[1] + s;
        }
    } else {
        for (i, p) in parents.iter().enumerate() {
            let group = &group_z[i * k..(i + 1) * k];
            let mut succ = 0.0f64;
            for c in group {
                succ += c;
            }
            let adjust = ratio * (p - succ);
            for (hv, zv) in children_out[i * k..(i + 1) * k].iter_mut().zip(group) {
                *hv = zv + adjust;
            }
        }
    }
}

/// `v.round().max(0.0)` for `v ≥ 0` (or NaN) without the libm `round` call.
///
/// On the baseline x86-64 target `f64::round` lowers to a library call
/// (round-half-away-from-zero has no SSE2 instruction), which dominated the
/// rounding sweep at 2^20 leaves. For finite `0 ≤ v < 2^52` the classic
/// magic-number trick is exact: `(v + 2^52) − 2^52` rounds to the nearest
/// *even* integer, and the only inputs where half-away disagrees are exact
/// `x.5` ties where the difference `v − t` is exactly `+0.5` (tie broken
/// downward) — bump those by one. Everything else (≥ 2^52 is already
/// integral; NaN) takes the library path, so the result is bit-identical to
/// `v.round().max(0.0)` for every non-negative input.
#[inline]
fn round_nonneg(v: f64) -> f64 {
    const MAGIC: f64 = 4_503_599_627_370_496.0; // 2^52
    if v < MAGIC {
        let t = (v + MAGIC) - MAGIC;
        // Select, not branch: the tie is rare but the inputs are noise.
        // `t + 0.0 ≡ t` here because `t ≥ +0.0` for every `v ≥ 0`.
        t + if v - t == 0.5 { 1.0 } else { 0.0 }
    } else {
        v.round().max(0.0)
    }
}

/// One parent-level step of the Sec. 4.2 zeroing sweep: zero each sibling
/// window whose parent was zeroed (post-sweep value `0.0` ⟺ zeroed), clamp
/// `≤ 0` children, and — once a parent's children no longer need its
/// pre-round value as their flag — optionally round the parent in place.
#[inline]
fn zero_level(parents: &mut [f64], children: &mut [f64], k: usize, round: bool) {
    for (i, p) in parents.iter_mut().enumerate() {
        let group = &mut children[i * k..(i + 1) * k];
        // Branchless select per child: on DP noise roughly half the values
        // are ≤ 0, so a conditional store mispredicts every other node —
        // the select form is what made this sweep beat the reference walk.
        // A zeroed parent (post-sweep value 0.0) takes the whole window.
        let parent_zeroed = *p == 0.0;
        for c in group {
            *c = if parent_zeroed | (*c <= 0.0) { 0.0 } else { *c };
        }
        if round {
            // Post-zeroing values are never negative, so the fast path
            // applies.
            *p = round_nonneg(*p);
        }
    }
}

/// A [`TreeShape`] compiled for fast repeated inference: contiguous per-level
/// slices plus precomputed per-level weight tables.
///
/// Construction is O(height); each [`infer`](Self::infer) is two slab-tiled
/// sweeps over the node vector with no `powi`, no parent/child index
/// arithmetic beyond a running offset, and no per-node branching.
#[derive(Debug, Clone)]
pub struct LevelTree {
    shape: TreeShape,
    weights: Weights,
}

impl LevelTree {
    /// Compiles the uniform (paper) Theorem-3 weights for `shape`.
    ///
    /// Output is bit-identical to [`crate::hier::hierarchical_inference`].
    pub fn new(shape: &TreeShape) -> Self {
        let height = shape.height();
        let k = shape.branching() as f64;
        let mut up_own = vec![1.0f64; height];
        let mut up_child = vec![0.0f64; height];
        for (d, (own, child)) in up_own.iter_mut().zip(&mut up_child).enumerate() {
            let l = (height - d) as i32;
            if l > 1 {
                // Same expressions as the reference so the bits agree.
                let k_l = k.powi(l);
                let k_lm1 = k.powi(l - 1);
                *own = (k_l - k_lm1) / (k_l - 1.0);
                *child = (k_lm1 - 1.0) / (k_l - 1.0);
            }
        }
        Self {
            shape: shape.clone(),
            weights: Weights::Uniform { up_own, up_child },
        }
    }

    /// Compiles GLS weights for per-**level** noise variances (depth 0 =
    /// root), the [`crate::budgeted`] noise model.
    ///
    /// Matches [`crate::weighted::weighted_hierarchical_inference`] with the
    /// variance of level `d` replicated across that level's nodes.
    pub fn with_level_variances(shape: &TreeShape, level_variances: &[f64]) -> Self {
        let height = shape.height();
        assert_eq!(level_variances.len(), height, "one variance per level");
        assert!(
            level_variances.iter().all(|&v| v > 0.0 && v.is_finite()),
            "variances must be positive and finite"
        );
        let k = shape.branching();
        let mut w_own = vec![0.0f64; height];
        let mut w_succ = vec![0.0f64; height];
        let mut down_ratio = vec![0.0f64; height];
        // Fused subtree-total variance per depth, bottom-up (matches the
        // reference's upward pass, including the k-term summation order).
        let mut fused = vec![0.0f64; height];
        fused[height - 1] = level_variances[height - 1];
        w_own[height - 1] = 1.0 / level_variances[height - 1];
        let mut succ_var = vec![0.0f64; height]; // of the child group under depth d
        for d in (0..height.saturating_sub(1)).rev() {
            let mut sv = 0.0f64;
            for _ in 0..k {
                sv += fused[d + 1];
            }
            succ_var[d] = sv;
            w_own[d] = 1.0 / level_variances[d];
            w_succ[d] = 1.0 / sv;
            fused[d] = 1.0 / (w_own[d] + w_succ[d]);
        }
        for d in 1..height {
            down_ratio[d] = fused[d] / succ_var[d - 1];
        }
        Self {
            shape: shape.clone(),
            weights: Weights::Weighted {
                w_own,
                w_succ,
                down_ratio,
                vars: level_variances.to_vec(),
            },
        }
    }

    /// The compiled tree geometry.
    #[inline]
    pub fn shape(&self) -> &TreeShape {
        &self.shape
    }

    /// Total node count (length of the noisy/output vectors).
    #[inline]
    pub fn nodes(&self) -> usize {
        self.shape.nodes()
    }

    /// Whether the tables are the uniform Theorem-3 weights (as opposed to
    /// per-level GLS weights).
    pub fn is_uniform(&self) -> bool {
        matches!(self.weights, Weights::Uniform { .. })
    }

    /// The per-level variances the GLS tables were compiled from, or `None`
    /// for the uniform tables.
    pub fn level_variances(&self) -> Option<&[f64]> {
        match &self.weights {
            Weights::Uniform { .. } => None,
            Weights::Weighted { vars, .. } => Some(vars),
        }
    }

    /// The depth at which the tiled sweeps root their vertical slabs: the
    /// shallowest depth whose subtrees hold at most [`TILE_LEAVES`] leaves.
    /// 0 (one slab — plain sweeps) for trees that already fit in cache.
    ///
    /// Never exceeds `height − 2`: each slab must include the leaf kernel
    /// step, because the sweeps read leaves from `noisy` only there (the
    /// leaf segment of `z` is deliberately never written). A branching
    /// factor larger than [`TILE_LEAVES`] therefore keeps slabs wider than
    /// the target rather than degenerating to leaf-depth slabs.
    fn tile_cut(&self) -> usize {
        let height = self.shape.height();
        let leaves = self.shape.leaves();
        let mut cut = 0;
        while cut + 1 < height - 1 && leaves / self.shape.level_width(cut) > TILE_LEAVES {
            cut += 1;
        }
        cut
    }

    /// Theorem 3 in two flat sweeps, allocating the result.
    pub fn infer(&self, noisy: &[f64]) -> Vec<f64> {
        let mut z = Vec::new();
        let mut out = Vec::new();
        self.infer_into(noisy, &mut z, &mut out);
        out
    }

    /// Theorem 3 in two slab-tiled sweeps into caller-owned buffers.
    ///
    /// `z` and `out` are resized to `nodes()`; once their capacity has grown
    /// past that, repeated calls allocate nothing.
    pub fn infer_into(&self, noisy: &[f64], z: &mut Vec<f64>, out: &mut Vec<f64>) {
        let n = self.shape.nodes();
        assert_eq!(noisy.len(), n, "noisy vector must cover the tree");
        // Resize without a zero-fill pass: the sweeps assign every slot they
        // read back (z's leaf segment is never touched — the kernels read
        // leaves from `noisy` directly).
        z.resize(n, 0.0);
        out.resize(n, 0.0);
        self.upward(noisy, z);
        self.downward(noisy, z, out);
    }

    /// [`Self::infer_into`] fused with the Sec. 4.2 zeroing and Sec. 5.2
    /// rounding: the zero/round sweep runs slab-by-slab immediately after
    /// the downward pass writes each slab, while the slab is still
    /// cache-resident — one DRAM round-trip less than inferring and then
    /// calling [`Self::zero_round_in_place`] over the whole vector.
    ///
    /// Output is bit-identical to `infer_into` followed by
    /// `zero_round_in_place`: every zeroing decision still reads pre-round
    /// values (nodes are rounded only once their own children are done, and
    /// the level just above the slab roots is rounded last, after every slab
    /// has consumed its flags).
    pub fn infer_zero_round_into(&self, noisy: &[f64], z: &mut Vec<f64>, out: &mut Vec<f64>) {
        let n = self.shape.nodes();
        assert_eq!(noisy.len(), n, "noisy vector must cover the tree");
        z.resize(n, 0.0);
        out.resize(n, 0.0);
        self.upward(noisy, z);
        self.downward_zero_round(noisy, z, out);
    }

    /// The fused downstream of [`Self::infer_zero_round_into`]: top-down
    /// pass with the zero/round sweep run per slab while it is hot.
    fn downward_zero_round(&self, noisy: &[f64], z: &[f64], out: &mut [f64]) {
        let height = self.shape.height();
        if height == 1 {
            let v = noisy[0];
            out[0] = if v <= 0.0 { 0.0 } else { round_nonneg(v) };
            return;
        }
        let cut = self.tile_cut();
        out[0] = z[0];
        self.downward_levels(z, out, 0..cut);
        // Zero the top region: depths 0..cut−1 act as parents, so depths
        // 1..=cut−1 get their zeroing and depths 0..cut−2 their rounding.
        // Depth cut−1 keeps pre-round values (the slabs' flags) and depth
        // cut stays raw — the downward slab kernels still need it.
        let offsets = self.shape.level_offsets();
        if cut >= 1 {
            if out[0] <= 0.0 {
                out[0] = 0.0;
            }
            self.zero_levels(out, 0..cut.saturating_sub(1), true);
        }
        for s in 0..self.shape.level_width(cut) {
            self.downward_slab(s, cut, noisy, z, out);
            self.zero_round_slab(s, cut, out);
        }
        if cut >= 1 {
            // Now that every slab has read its parent flag, round the
            // deferred level.
            for v in &mut out[offsets[cut - 1]..offsets[cut]] {
                *v = round_nonneg(*v);
            }
        }
    }

    /// Bottom-up pass fused with the noise perturbation: adds one Laplace
    /// draw to every node of `values` (true answers on input, the noisy
    /// release on output) while running the upward slabs, so each leaf slab
    /// is still cache-hot when its parents consume it.
    ///
    /// Draw order is the BFS index order — internal prefix first, then the
    /// leaf slabs left to right — exactly the order
    /// [`hc_noise::Laplace::add_noise`] uses over the whole vector, and
    /// backends consume one uniform per sample with length-independent bits,
    /// so the release is bit-identical to the unfused path *per backend*.
    fn noised_upward<R: Rng + ?Sized>(
        &self,
        laplace: &Laplace,
        backend: NoiseBackend,
        rng: &mut R,
        values: &mut [f64],
        z: &mut [f64],
    ) {
        let first_leaf = self.shape.first_leaf();
        laplace.add_noise_with(backend, rng, &mut values[..first_leaf]);
        let cut = self.tile_cut();
        let slabs = self.shape.level_width(cut);
        let leaf_w = self.shape.leaves() / slabs;
        for s in 0..slabs {
            let lo = first_leaf + s * leaf_w;
            laplace.add_noise_with(backend, rng, &mut values[lo..lo + leaf_w]);
            self.upward_slab(s, cut, values, z);
        }
        self.upward_levels(values, z, 0..cut);
    }

    /// One complete fused trial — evaluate the prepared query, add Laplace
    /// noise through the preparation's backend with the draws interleaved
    /// into the upward slabs, run the top-down pass (optionally with the
    /// Sec. 4.2 zeroing + Sec. 5.2 rounding fused in) — against caller-owned
    /// buffers. `noisy` must already have length `nodes()` (every slot is
    /// assigned, so it can be one trial's segment of a shared batch buffer
    /// — the batch pipelines release **in place** instead of copying from
    /// scratch); `z` is scratch (resized to `nodes()`, reusable across
    /// trials); `out` must already have length `nodes()`.
    ///
    /// This is the per-trial core shared by every `release_and_infer*`
    /// entry point, including the trial-parallel batch — so "bit-identical
    /// to serial per backend" holds by construction: all paths run exactly
    /// this function per trial.
    #[allow(clippy::too_many_arguments)] // scratch + output slots, all required
    fn fused_trial<Q: QuerySequence, R: Rng + ?Sized>(
        &self,
        prepared: &PreparedMechanism<Q>,
        histogram: &Histogram,
        rng: &mut R,
        rounded: bool,
        noisy: &mut [f64],
        z: &mut Vec<f64>,
        out: &mut [f64],
    ) {
        let n = self.nodes();
        assert_eq!(noisy.len(), n, "noisy slice must cover the tree");
        assert!(
            self.is_uniform(),
            "engine is compiled with per-level GLS weights; recompile with \
             ensure_shape before running uniform release_and_infer trials"
        );
        assert_eq!(
            prepared.output_len(),
            n,
            "prepared query does not cover the engine's tree"
        );
        assert_eq!(
            histogram.len(),
            prepared.domain_size(),
            "prepared for a different domain size"
        );
        // A tree-covering query's domain fits the leaf level; a flat query
        // whose output merely has the same length (e.g. UnitQuery over
        // `nodes()` bins) does not — fail loudly instead of inferring over
        // values that are not tree counts.
        assert!(
            prepared.domain_size() <= self.shape.leaves(),
            "prepared query's domain exceeds the tree's leaf level — not a \
             hierarchical release over this engine's shape"
        );
        assert_eq!(out.len(), n, "output slice must cover the tree");
        prepared.query().evaluate_into_slice(histogram, noisy);
        z.resize(n, 0.0);
        self.noised_upward(&prepared.noise(), prepared.backend(), rng, noisy, z);
        if rounded {
            self.downward_zero_round(noisy, z, out);
        } else {
            self.downward(noisy, z, out);
        }
    }

    /// The zero sweep over parent depths `depths` (children at `d + 1`),
    /// optionally rounding each parent once its children are processed. The
    /// root's own zero check is the caller's job.
    fn zero_levels(&self, values: &mut [f64], depths: core::ops::Range<usize>, round: bool) {
        let offsets = self.shape.level_offsets();
        let k = self.shape.branching();
        for d in depths {
            let (lo, hi) = (offsets[d], offsets[d + 1]);
            let (upper, lower) = values.split_at_mut(hi);
            let parents = &mut upper[lo..];
            let children = &mut lower[..(hi - lo) * k];
            zero_level(parents, children, k, round);
        }
    }

    /// Zero + round sweep over slab `s` rooted at depth `cut`, run right
    /// after [`Self::downward_slab`] filled it. The slab root's zeroing
    /// consults its parent's (pre-round) value at depth `cut − 1`; the slab
    /// then rounds every level it owns, leaves included.
    fn zero_round_slab(&self, s: usize, cut: usize, values: &mut [f64]) {
        let height = self.shape.height();
        let offsets = self.shape.level_offsets();
        let k = self.shape.branching();
        let slabs = self.shape.level_width(cut);
        if cut == 0 {
            // Single slab covering the whole tree: the slab root is the
            // tree root.
            if values[0] <= 0.0 {
                values[0] = 0.0;
            }
        } else {
            let parent = values[offsets[cut - 1] + s / k];
            let root = &mut values[offsets[cut] + s];
            if parent == 0.0 || *root <= 0.0 {
                *root = 0.0;
            }
        }
        for d in cut..height - 1 {
            let w = self.shape.level_width(d) / slabs;
            let plo = offsets[d] + s * w;
            let (upper, lower) = values.split_at_mut(offsets[d + 1]);
            let parents = &mut upper[plo..plo + w];
            let children = &mut lower[s * w * k..(s + 1) * w * k];
            zero_level(parents, children, k, true);
        }
        let leaf_w = self.shape.leaves() / slabs;
        let leaf_lo = offsets[height - 1] + s * leaf_w;
        for v in &mut values[leaf_lo..leaf_lo + leaf_w] {
            *v = round_nonneg(*v);
        }
    }

    /// [`Self::infer`] through the plain untiled level sweeps — the memory
    /// order the tiled path is tested against. Arithmetic per node is
    /// identical, so the output matches [`Self::infer`] bit for bit; this
    /// exists so the equivalence tests can pin exactly that.
    pub fn infer_untiled(&self, noisy: &[f64]) -> Vec<f64> {
        let n = self.shape.nodes();
        assert_eq!(noisy.len(), n, "noisy vector must cover the tree");
        let height = self.shape.height();
        let first_leaf = self.shape.first_leaf();
        let mut z = vec![0.0f64; n];
        let mut out = vec![0.0f64; n];
        z[first_leaf..].copy_from_slice(&noisy[first_leaf..]);
        self.upward_levels(noisy, &mut z, 0..height - 1);
        out[0] = z[0];
        self.downward_levels(&z, &mut out, 0..height - 1);
        out
    }

    /// Bottom-up pass: fills the internal-node prefix of `z` (pre-sized to
    /// `nodes()`), slab-tiled. The leaf level of `z` is never written: the
    /// deepest kernels read their children straight from `noisy` (leaf `z`
    /// equals leaf `h̃` by definition), saving a full leaf-level copy.
    fn upward(&self, noisy: &[f64], z: &mut [f64]) {
        let cut = self.tile_cut();
        for s in 0..self.shape.level_width(cut) {
            self.upward_slab(s, cut, noisy, z);
        }
        self.upward_levels(noisy, z, 0..cut);
    }

    /// Top-down pass: fills `out` (pre-sized to `nodes()`) from `z` (and
    /// `noisy` for the leaf level — see [`Self::upward`]), slab-tiled.
    fn downward(&self, noisy: &[f64], z: &[f64], out: &mut [f64]) {
        if self.shape.height() == 1 {
            out[0] = noisy[0];
            return;
        }
        let cut = self.tile_cut();
        out[0] = z[0];
        self.downward_levels(z, out, 0..cut);
        for s in 0..self.shape.level_width(cut) {
            self.downward_slab(s, cut, noisy, z, out);
        }
    }

    /// Bottom-up sweep over slab `s` rooted at depth `cut`: computes `z` up
    /// to (and including) the slab root, touching only the slab's contiguous
    /// per-level slices (leaf children come from `noisy` directly).
    fn upward_slab(&self, s: usize, cut: usize, noisy: &[f64], z: &mut [f64]) {
        let height = self.shape.height();
        let offsets = self.shape.level_offsets();
        let k = self.shape.branching();
        let slabs = self.shape.level_width(cut);
        for d in (cut..height.saturating_sub(1)).rev() {
            let w = self.shape.level_width(d) / slabs;
            let plo = offsets[d] + s * w;
            let clo = offsets[d + 1] + s * w * k;
            if d + 1 == height - 1 {
                let parents = &mut z[plo..plo + w];
                let children = &noisy[clo..clo + w * k];
                self.up_kernel(d, parents, &noisy[plo..plo + w], children, k);
            } else {
                let (upper, lower) = z.split_at_mut(offsets[d + 1]);
                let parents = &mut upper[plo..plo + w];
                let children = &lower[s * w * k..(s + 1) * w * k];
                self.up_kernel(d, parents, &noisy[plo..plo + w], children, k);
            }
        }
    }

    /// Top-down sweep over slab `s` rooted at depth `cut` (whose `out` value
    /// must already be seeded).
    fn downward_slab(&self, s: usize, cut: usize, noisy: &[f64], z: &[f64], out: &mut [f64]) {
        let height = self.shape.height();
        let offsets = self.shape.level_offsets();
        let k = self.shape.branching();
        let slabs = self.shape.level_width(cut);
        for d in cut..height - 1 {
            let w = self.shape.level_width(d) / slabs;
            let plo = offsets[d] + s * w;
            let child_lo = offsets[d + 1] + s * w * k;
            let group_z = if d + 1 == height - 1 {
                &noisy[child_lo..child_lo + w * k]
            } else {
                &z[child_lo..child_lo + w * k]
            };
            let (upper, lower) = out.split_at_mut(offsets[d + 1]);
            let parents = &upper[plo..plo + w];
            let children = &mut lower[s * w * k..(s + 1) * w * k];
            self.down_kernel(d, children, parents, group_z, k);
        }
    }

    /// Plain bottom-up level sweeps: computes parents for each depth in
    /// `depths.rev()` from the already-valid level below.
    fn upward_levels(&self, noisy: &[f64], z: &mut [f64], depths: core::ops::Range<usize>) {
        let offsets = self.shape.level_offsets();
        let k = self.shape.branching();
        for d in depths.rev() {
            let (lo, hi) = (offsets[d], offsets[d + 1]);
            let (upper, lower) = z.split_at_mut(hi);
            let parents = &mut upper[lo..];
            let children = &lower[..(hi - lo) * k];
            self.up_kernel(d, parents, &noisy[lo..hi], children, k);
        }
    }

    /// Plain top-down level sweeps: fills the children of each depth in
    /// `depths` (the parents must already be valid).
    fn downward_levels(&self, z: &[f64], out: &mut [f64], depths: core::ops::Range<usize>) {
        let offsets = self.shape.level_offsets();
        let k = self.shape.branching();
        for d in depths {
            let (lo, hi) = (offsets[d], offsets[d + 1]);
            let (upper, lower) = out.split_at_mut(hi);
            let parents = &upper[lo..];
            let children = &mut lower[..(hi - lo) * k];
            self.down_kernel(d, children, parents, &z[hi..hi + (hi - lo) * k], k);
        }
    }

    /// Dispatches the bottom-up kernel for depth `d`.
    #[inline]
    fn up_kernel(&self, d: usize, parents: &mut [f64], own_in: &[f64], children: &[f64], k: usize) {
        match &self.weights {
            Weights::Uniform { up_own, up_child } => {
                up_level_uniform(parents, own_in, children, k, up_own[d], up_child[d]);
            }
            Weights::Weighted { w_own, w_succ, .. } => {
                up_level_weighted(parents, own_in, children, k, w_own[d], w_succ[d]);
            }
        }
    }

    /// Dispatches the top-down kernel for depth `d` (filling depth `d + 1`).
    #[inline]
    fn down_kernel(
        &self,
        d: usize,
        children_out: &mut [f64],
        parents: &[f64],
        group_z: &[f64],
        k: usize,
    ) {
        match &self.weights {
            Weights::Uniform { .. } => {
                down_level_uniform(children_out, parents, group_z, k, k as f64);
            }
            Weights::Weighted { down_ratio, .. } => {
                down_level_weighted(children_out, parents, group_z, k, down_ratio[d + 1]);
            }
        }
    }

    /// The Sec. 4.2 non-negativity heuristic as a top-down level sweep:
    /// zeroes every subtree whose root value is ≤ 0, in place.
    ///
    /// Bit-identical to [`crate::hier::enforce_nonnegativity`] (the per-node
    /// `parent()` walk, kept as the oracle) for every input: after a level
    /// has been swept, a node is zeroed **iff its value is `0.0`** — a
    /// non-zeroed node kept a value > 0, and a value ≤ 0 (including ±0.0)
    /// was zeroed — so the parent's own swept value doubles as the
    /// "parent-zeroed" flag and no flag array is needed.
    pub fn zero_subtrees_in_place(&self, values: &mut [f64]) {
        self.zero_subtrees_impl(values, false);
    }

    /// [`Self::zero_subtrees_in_place`] fused with Sec. 5.2 rounding: after
    /// the zeroing decision for a level is complete, each node is rounded to
    /// the nearest non-negative integer in the same sweep.
    ///
    /// Equivalent (bit for bit) to zeroing first and rounding every node
    /// after: a node's *pre-round* value is always the one consulted for the
    /// zeroing decisions — nodes are rounded only after their own children
    /// have been processed.
    pub fn zero_round_in_place(&self, values: &mut [f64]) {
        self.zero_subtrees_impl(values, true);
    }

    fn zero_subtrees_impl(&self, values: &mut [f64], round: bool) {
        let height = self.shape.height();
        assert_eq!(
            values.len(),
            self.shape.nodes(),
            "value vector must cover the tree"
        );
        if values[0] <= 0.0 {
            values[0] = 0.0;
        }
        self.zero_levels(values, 0..height - 1, round);
        if round {
            let first_leaf = self.shape.first_leaf();
            for v in &mut values[first_leaf..] {
                *v = round_nonneg(*v);
            }
        }
    }

    /// Theorem 3 with the tree split across scoped-thread workers pulling
    /// subtrees from an atomic work queue.
    ///
    /// The tree is cut at the shallowest depth that yields at least
    /// `4 × threads` independent subtrees (so a binary tree keeps every core
    /// busy — the old split was one worker per *root* subtree, capping
    /// fan-out at k). Each worker owns one subtree's per-level slices at a
    /// time, so the arithmetic (and therefore the output, bit for bit) is
    /// identical to [`infer`](Self::infer); only the sweep order across
    /// *independent* subtrees changes. `threads` is a cap (overridable via
    /// `HC_THREADS`, see [`effective_threads`]); trees of height < 3 or an
    /// effective cap of ≤ 1 fall back to the serial path.
    pub fn infer_parallel(&self, noisy: &[f64], threads: usize) -> Vec<f64> {
        let mut z = Vec::new();
        let mut out = Vec::new();
        self.infer_parallel_into(noisy, &mut z, &mut out, threads);
        out
    }

    /// [`infer_parallel`](Self::infer_parallel) into caller-owned buffers.
    pub fn infer_parallel_into(
        &self,
        noisy: &[f64],
        z: &mut Vec<f64>,
        out: &mut Vec<f64>,
        threads: usize,
    ) {
        let threads = effective_threads(threads);
        let height = self.shape.height();
        if threads <= 1 || height < 3 {
            self.infer_into(noisy, z, out);
            return;
        }
        let n = self.shape.nodes();
        assert_eq!(noisy.len(), n, "noisy vector must cover the tree");
        z.resize(n, 0.0);
        out.resize(n, 0.0);

        let offsets = self.shape.level_offsets();
        // Cut deep enough for ≥ 4 subtrees per worker; never below the
        // second-to-last level (a subtree needs at least two levels).
        let split = (1..=height - 2)
            .find(|&d| self.shape.level_width(d) >= 4 * threads)
            .unwrap_or(height - 2);
        let slabs = self.shape.level_width(split);
        let workers = threads.min(slabs);

        // Phase 1: bottom-up within each subtree rooted at depth `split`
        // (disjoint z slices, claimed from an atomic queue).
        run_subtree_jobs(
            split_at_depth(&mut z[offsets[split]..], offsets, split, slabs),
            workers,
            |s, levels| self.upward_subtree(s, split, levels, noisy),
        );

        // Serial top: z above the cut, then h̄ down to the cut (cheap — at
        // most 4·threads·k/(k−1) nodes).
        self.upward_levels(noisy, z, 0..split);
        out[0] = z[0];
        self.downward_levels(z, out, 0..split);

        // Phase 2: top-down within each subtree (z is now read-only).
        let z_ro = &z[..];
        run_subtree_jobs(
            split_at_depth(&mut out[offsets[split]..], offsets, split, slabs),
            workers,
            |s, levels| self.downward_subtree(s, split, levels, noisy, z_ro),
        );
    }

    /// Bottom-up pass over subtree `s` rooted at depth `split`; `levels[j]`
    /// is its z slice at depth `split + j` (leaf children are read straight
    /// from `noisy` — see [`Self::upward`]).
    fn upward_subtree(&self, s: usize, split: usize, levels: &mut [&mut [f64]], noisy: &[f64]) {
        let height = self.shape.height();
        let offsets = self.shape.level_offsets();
        let k = self.shape.branching();
        let slabs = self.shape.level_width(split);
        let leaf_depth = height - 1;
        for d in (split..leaf_depth).rev() {
            let w = self.shape.level_width(d) / slabs;
            let plo = offsets[d] + s * w;
            if d + 1 == leaf_depth {
                let clo = offsets[d + 1] + s * w * k;
                let children = &noisy[clo..clo + w * k];
                self.up_kernel(d, levels[d - split], &noisy[plo..plo + w], children, k);
            } else {
                let (lower, upper) = levels.split_at_mut(d - split + 1);
                let parents = &mut lower[d - split];
                let children = &upper[0];
                self.up_kernel(d, parents, &noisy[plo..plo + w], children, k);
            }
        }
    }

    /// Top-down pass over subtree `s` rooted at depth `split`; `levels[j]`
    /// is its h̄ slice at depth `split + j` (the subtree root's h̄ must
    /// already be seeded).
    fn downward_subtree(
        &self,
        s: usize,
        split: usize,
        levels: &mut [&mut [f64]],
        noisy: &[f64],
        z: &[f64],
    ) {
        let height = self.shape.height();
        let offsets = self.shape.level_offsets();
        let k = self.shape.branching();
        let slabs = self.shape.level_width(split);
        for d in split..height - 1 {
            let w = self.shape.level_width(d) / slabs;
            let child_lo = offsets[d + 1] + s * w * k;
            let group_z = if d + 1 == height - 1 {
                &noisy[child_lo..child_lo + w * k]
            } else {
                &z[child_lo..child_lo + w * k]
            };
            let (lower, upper) = levels.split_at_mut(d - split + 1);
            let parents = &lower[d - split];
            let children = &mut upper[0];
            self.down_kernel(d, children, parents, group_z, k);
        }
    }
}

/// Splits `buf` (the node vector from `offsets[split]` on) into the
/// `slabs` subtrees rooted at depth `split`, each as a vector of per-level
/// slices: `result[s][j]` covers depth `split + j` of subtree `s`. The
/// disjointness lets scoped workers mutate their subtree without locks.
fn split_at_depth<'a>(
    mut buf: &'a mut [f64],
    offsets: &[usize],
    split: usize,
    slabs: usize,
) -> Vec<Vec<&'a mut [f64]>> {
    let height = offsets.len() - 1;
    let mut per: Vec<Vec<&'a mut [f64]>> = (0..slabs)
        .map(|_| Vec::with_capacity(height - split))
        .collect();
    for d in split..height {
        let width = offsets[d + 1] - offsets[d];
        let (mut level, rest) = buf.split_at_mut(width);
        buf = rest;
        let chunk = width / slabs;
        for sub in per.iter_mut() {
            let (c, remainder) = level.split_at_mut(chunk);
            sub.push(c);
            level = remainder;
        }
    }
    per
}

/// One claimed-once work item of the splittable queue: a subtree index plus
/// its per-level mutable slices, behind a mutex so the `&mut` slices can be
/// handed across scoped threads without unsafe code.
type SubtreeJob<'a> = Mutex<Option<(usize, Vec<&'a mut [f64]>)>>;

/// Runs `body` over every subtree slice-set with `workers` scoped threads
/// pulling indices from an atomic counter — the splittable work queue. Each
/// job is claimed exactly once (the per-job mutex is never contended).
fn run_subtree_jobs<F>(subtrees: Vec<Vec<&mut [f64]>>, workers: usize, body: F)
where
    F: Fn(usize, &mut [&mut [f64]]) + Sync,
{
    let jobs: Vec<SubtreeJob<'_>> = subtrees
        .into_iter()
        .enumerate()
        .map(|(s, levels)| Mutex::new(Some((s, levels))))
        .collect();
    let next = AtomicUsize::new(0);
    let body = &body;
    let jobs = &jobs;
    let next = &next;
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let (s, mut levels) = jobs[i]
                    .lock()
                    .expect("job mutex never poisoned")
                    .take()
                    .expect("each job claimed exactly once");
                body(s, &mut levels);
            });
        }
    });
}

/// Reusable inference executor: one set of scratch buffers, many trials.
///
/// After the first call every `infer_*` and `release_and_infer*` method is
/// allocation-free (buffers are recycled at their high-water mark), which is
/// what the experiment loops need — thousands of trials over one shape.
#[derive(Debug, Clone)]
pub struct BatchInference {
    tree: LevelTree,
    z: Vec<f64>,
    noisy: Vec<f64>,
}

impl BatchInference {
    /// Wraps a compiled tree.
    pub fn new(tree: LevelTree) -> Self {
        Self {
            tree,
            z: Vec::new(),
            noisy: Vec::new(),
        }
    }

    /// Compiles uniform Theorem-3 tables for `shape` and wraps them.
    pub fn for_shape(shape: &TreeShape) -> Self {
        Self::new(LevelTree::new(shape))
    }

    /// The compiled tables.
    pub fn tree(&self) -> &LevelTree {
        &self.tree
    }

    /// Recompiles (uniform weights) if `shape` differs from the current one.
    ///
    /// This is the hook for trial loops that sweep shapes: pay O(height)
    /// only when the shape actually changes, keep the scratch either way.
    pub fn ensure_shape(&mut self, shape: &TreeShape) {
        if self.tree.shape() != shape || !self.tree.is_uniform() {
            self.tree = LevelTree::new(shape);
        }
    }

    /// Recompiles the per-level GLS tables if `shape` or the variances
    /// differ from the current compilation — the weighted counterpart of
    /// [`Self::ensure_shape`], used by the budgeted pipeline's trial loops.
    pub fn ensure_level_variances(&mut self, shape: &TreeShape, level_variances: &[f64]) {
        let current = self.tree.shape() == shape
            && self
                .tree
                .level_variances()
                .is_some_and(|v| v == level_variances);
        if !current {
            self.tree = LevelTree::with_level_variances(shape, level_variances);
        }
    }

    /// One inference, reusing internal scratch; allocates only the result.
    pub fn infer(&mut self, noisy: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.infer_into(noisy, &mut out);
        out
    }

    /// One inference into a caller-owned output buffer (zero allocations
    /// once `out` and the scratch have warmed up).
    pub fn infer_into(&mut self, noisy: &[f64], out: &mut Vec<f64>) {
        let mut z = std::mem::take(&mut self.z);
        self.tree.infer_into(noisy, &mut z, out);
        self.z = z;
    }

    /// One full trial — evaluate the prepared query, perturb with Laplace
    /// noise, run both Theorem-3 passes — into `out`, with zero heap
    /// allocations after warm-up (the noisy vector lives in engine scratch;
    /// no `NoisyOutput`, no label, no release wrapper).
    ///
    /// Bit-identical to releasing through
    /// [`hc_mech::LaplaceMechanism::release`] and inferring the result at
    /// the same RNG state — `tests/engine_equivalence.rs` pins this.
    pub fn release_and_infer<Q: QuerySequence, R: Rng + ?Sized>(
        &mut self,
        prepared: &PreparedMechanism<Q>,
        histogram: &Histogram,
        rng: &mut R,
        out: &mut Vec<f64>,
    ) {
        self.fused_trial_into(prepared, histogram, rng, false, out);
    }

    /// [`Self::release_and_infer`] plus the Sec. 4.2 subtree zeroing and
    /// Sec. 5.2 non-negative-integer rounding, fused into the downward
    /// slabs ([`LevelTree::infer_zero_round_into`]) — the complete `H̄`
    /// experiment trial, allocation-free after warm-up.
    pub fn release_and_infer_rounded<Q: QuerySequence, R: Rng + ?Sized>(
        &mut self,
        prepared: &PreparedMechanism<Q>,
        histogram: &Histogram,
        rng: &mut R,
        out: &mut Vec<f64>,
    ) {
        self.fused_trial_into(prepared, histogram, rng, true, out);
    }

    /// [`LevelTree::fused_trial`] through the engine's scratch buffers.
    fn fused_trial_into<Q: QuerySequence, R: Rng + ?Sized>(
        &mut self,
        prepared: &PreparedMechanism<Q>,
        histogram: &Histogram,
        rng: &mut R,
        rounded: bool,
        out: &mut Vec<f64>,
    ) {
        let mut noisy = std::mem::take(&mut self.noisy);
        let mut z = std::mem::take(&mut self.z);
        let n = self.tree.nodes();
        noisy.resize(n, 0.0);
        out.resize(n, 0.0);
        self.tree
            .fused_trial(prepared, histogram, rng, rounded, &mut noisy, &mut z, out);
        self.noisy = noisy;
        self.z = z;
    }

    /// A whole batch of fused trials, serial: trial `t` runs the complete
    /// release→inference pipeline with its own RNG `seeds.rng(t)`, writing
    /// its inferred (if `rounded`, zeroed-and-rounded) tree into
    /// `out_batch[t·n .. (t+1)·n]` — and, when `noisy_batch` is `Some`, its
    /// noisy release into the same slice of that buffer. Trial `t` is
    /// bit-identical to [`Self::release_and_infer`] (or `_rounded`) run
    /// alone with `seeds.rng(t)` — the per-trial seeding makes every trial
    /// independent of batch size and position.
    ///
    /// Keeping the noisy release per trial is what the Fig. 6-style
    /// experiment loops need: `H̃` answers come from the release, `H̄`
    /// answers from the inferred tree, one fused pipeline pass for both.
    /// Callers that only consume the inference (e.g. the non-negativity
    /// ablation) pass `None` and skip the batch's memory and copies.
    #[allow(clippy::too_many_arguments)]
    pub fn release_and_infer_batch<Q: QuerySequence>(
        &mut self,
        prepared: &PreparedMechanism<Q>,
        histogram: &Histogram,
        seeds: SeedStream,
        trials: usize,
        rounded: bool,
        mut noisy_batch: Option<&mut Vec<f64>>,
        out_batch: &mut Vec<f64>,
    ) {
        let n = self.tree.nodes();
        if let Some(nb) = noisy_batch.as_deref_mut() {
            nb.resize(trials * n, 0.0);
        }
        out_batch.resize(trials * n, 0.0);
        let mut noisy = std::mem::take(&mut self.noisy);
        let mut z = std::mem::take(&mut self.z);
        noisy.resize(n, 0.0);
        for (t, out_chunk) in out_batch.chunks_exact_mut(n).enumerate() {
            let mut rng = seeds.rng(t as u64);
            // With a noisy batch the release is written in place — each
            // trial's segment *is* the working buffer, no scratch copy.
            let noisy_slot: &mut [f64] = match noisy_batch.as_deref_mut() {
                Some(nb) => &mut nb[t * n..(t + 1) * n],
                None => &mut noisy,
            };
            self.tree.fused_trial(
                prepared, histogram, &mut rng, rounded, noisy_slot, &mut z, out_chunk,
            );
        }
        self.noisy = noisy;
        self.z = z;
    }

    /// [`Self::release_and_infer_batch`] with trials split across
    /// scoped-thread workers — the full pipeline (evaluate, Laplace draws,
    /// both Theorem-3 passes, optional zeroing/rounding) scaled by trial,
    /// not just the inference step.
    ///
    /// Like `hc-bench`'s `run_trials_with`: each worker owns one set of
    /// per-worker scratch (engine buffers, amortized over its share of
    /// trials) and trials are claimed from an atomic work queue, but every
    /// trial's randomness comes only from `seeds.rng(t)` — so the output is
    /// bit-identical to the serial batch (and to `trials` standalone
    /// `release_and_infer*` calls) for any thread count or scheduling, per
    /// backend. `threads` is a cap, overridable via the `HC_THREADS`
    /// environment variable ([`effective_threads`]).
    #[allow(clippy::too_many_arguments)]
    pub fn release_and_infer_batch_parallel<Q: QuerySequence + Sync>(
        &mut self,
        prepared: &PreparedMechanism<Q>,
        histogram: &Histogram,
        seeds: SeedStream,
        trials: usize,
        rounded: bool,
        threads: usize,
        noisy_batch: Option<&mut Vec<f64>>,
        out_batch: &mut Vec<f64>,
    ) {
        let workers = effective_threads(threads).max(1).min(trials.max(1));
        if workers <= 1 {
            self.release_and_infer_batch(
                prepared,
                histogram,
                seeds,
                trials,
                rounded,
                noisy_batch,
                out_batch,
            );
            return;
        }
        let n = self.tree.nodes();
        out_batch.resize(trials * n, 0.0);
        let noisy_chunks: Vec<Option<&mut [f64]>> = match noisy_batch {
            Some(nb) => {
                nb.resize(trials * n, 0.0);
                nb.chunks_exact_mut(n).map(Some).collect()
            }
            None => (0..trials).map(|_| None).collect(),
        };
        // One claimed-once job per trial: its disjoint (noisy, out) slices
        // behind a mutex so the `&mut` slices cross the scope without
        // unsafe code (the same shape as the subtree work queue).
        type TrialJob<'a> = Mutex<Option<(Option<&'a mut [f64]>, &'a mut [f64])>>;
        let jobs: Vec<TrialJob<'_>> = noisy_chunks
            .into_iter()
            .zip(out_batch.chunks_exact_mut(n))
            .map(|(noisy_chunk, out_chunk)| Mutex::new(Some((noisy_chunk, out_chunk))))
            .collect();
        let next = AtomicUsize::new(0);
        let tree = &self.tree;
        let jobs = &jobs;
        let next = &next;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(move || {
                    // Scratch only materializes when a trial has no batch
                    // segment to release into (noisy_batch = None).
                    let mut noisy = Vec::new();
                    let mut z = Vec::new();
                    loop {
                        let t = next.fetch_add(1, Ordering::Relaxed);
                        if t >= jobs.len() {
                            break;
                        }
                        let (noisy_chunk, out_chunk) = jobs[t]
                            .lock()
                            .expect("job mutex never poisoned")
                            .take()
                            .expect("each trial claimed exactly once");
                        let mut rng = seeds.rng(t as u64);
                        // The trial's batch segment doubles as the working
                        // noisy buffer — the release is written in place,
                        // retiring the old per-trial scratch→batch memcpy.
                        let noisy_slot: &mut [f64] = match noisy_chunk {
                            Some(chunk) => chunk,
                            None => {
                                noisy.resize(n, 0.0);
                                &mut noisy
                            }
                        };
                        tree.fused_trial(
                            prepared, histogram, &mut rng, rounded, noisy_slot, &mut z, out_chunk,
                        );
                    }
                });
            }
        });
    }

    /// [`LevelTree::infer_zero_round_into`] through the engine's reusable
    /// scratch — the complete `H̄` post-processing, allocation-free after
    /// warm-up, bit-identical to `infer_into` + `zero_round_in_place`.
    pub fn infer_zero_round_into(&mut self, noisy: &[f64], out: &mut Vec<f64>) {
        let mut z = std::mem::take(&mut self.z);
        self.tree.infer_zero_round_into(noisy, &mut z, out);
        self.z = z;
    }

    /// Batched inference: `noisy_batch` is `trials` node vectors
    /// concatenated; the result has the same layout. Bit-identical to
    /// running the trials one by one.
    pub fn infer_batch(&mut self, noisy_batch: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.infer_batch_into(noisy_batch, &mut out);
        out
    }

    /// [`infer_batch`](Self::infer_batch) into a caller-owned buffer.
    pub fn infer_batch_into(&mut self, noisy_batch: &[f64], out: &mut Vec<f64>) {
        let n = self.tree.nodes();
        assert!(
            n > 0 && noisy_batch.len() % n == 0,
            "batch length {} is not a multiple of the node count {n}",
            noisy_batch.len()
        );
        out.resize(noisy_batch.len(), 0.0);
        let mut z = std::mem::take(&mut self.z);
        z.resize(n, 0.0);
        for (noisy, h) in noisy_batch.chunks_exact(n).zip(out.chunks_exact_mut(n)) {
            self.tree.upward(noisy, &mut z);
            self.tree.downward(noisy, &z, h);
        }
        self.z = z;
    }

    /// Batched inference with trials split across scoped-thread workers —
    /// the shape the Fig. 5–7 protocol wants (many independent trials, one
    /// shape). Bit-identical to [`infer_batch`](Self::infer_batch); each
    /// worker carries its own scratch, allocated once per call and amortized
    /// over its share of trials. `threads` honours the `HC_THREADS`
    /// override ([`effective_threads`]).
    pub fn infer_batch_parallel(&mut self, noisy_batch: &[f64], threads: usize) -> Vec<f64> {
        let n = self.tree.nodes();
        assert!(
            n > 0 && noisy_batch.len() % n == 0,
            "batch length {} is not a multiple of the node count {n}",
            noisy_batch.len()
        );
        let trials = noisy_batch.len() / n;
        let workers = effective_threads(threads).max(1).min(trials.max(1));
        if workers <= 1 {
            let mut out = Vec::new();
            self.infer_batch_into(noisy_batch, &mut out);
            return out;
        }
        let mut out = vec![0.0f64; noisy_batch.len()];
        let per = trials.div_ceil(workers);
        std::thread::scope(|scope| {
            for (in_chunk, out_chunk) in noisy_batch.chunks(per * n).zip(out.chunks_mut(per * n)) {
                let tree = &self.tree;
                scope.spawn(move || {
                    let mut z = vec![0.0f64; n];
                    for (noisy, h) in in_chunk.chunks_exact(n).zip(out_chunk.chunks_exact_mut(n)) {
                        tree.upward(noisy, &mut z);
                        tree.downward(noisy, &z, h);
                    }
                });
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hier::{enforce_nonnegativity, hierarchical_inference};
    use hc_noise::rng_from_seed;
    use hc_testutil::assert_close;
    use rand::Rng;

    fn random_noisy(shape: &TreeShape, seed: u64) -> Vec<f64> {
        let mut rng = rng_from_seed(seed);
        (0..shape.nodes())
            .map(|_| rng.random_range(-25.0..60.0))
            .collect()
    }

    #[test]
    fn engine_is_bit_identical_to_reference_on_uniform_weights() {
        for (k, height, seed) in [
            (2usize, 1usize, 11u64),
            (2, 3, 12),
            (2, 7, 13),
            (3, 4, 14),
            (5, 3, 15),
        ] {
            let shape = TreeShape::new(k, height);
            let noisy = random_noisy(&shape, seed);
            let reference = hierarchical_inference(&shape, &noisy);
            let engine = LevelTree::new(&shape).infer(&noisy);
            assert_eq!(engine, reference, "k={k} ℓ={height}");
        }
    }

    #[test]
    fn engine_matches_fig2_worked_example() {
        let shape = TreeShape::new(2, 3);
        let noisy = [13.0, 3.0, 11.0, 4.0, 1.0, 12.0, 1.0];
        let h = LevelTree::new(&shape).infer(&noisy);
        assert_close(&h, &[14.0, 3.0, 11.0, 3.0, 0.0, 11.0, 0.0], 1e-12);
    }

    #[test]
    fn tiled_matches_untiled_bit_for_bit() {
        for (k, height, seed) in [
            (2usize, 1usize, 16u64),
            (2, 6, 17),
            (2, 16, 18), // forces multiple slabs (2^15 leaves > TILE_LEAVES)
            (3, 10, 19),
            (4, 8, 20),
            (8193, 2, 24), // branching > TILE_LEAVES: slab must keep the leaf step
            (1000, 3, 25), // wide levels push the cut to exactly height − 2
        ] {
            let shape = TreeShape::new(k, height);
            let noisy = random_noisy(&shape, seed);
            let tree = LevelTree::new(&shape);
            assert_eq!(
                tree.infer(&noisy),
                tree.infer_untiled(&noisy),
                "k={k} ℓ={height}"
            );
        }
    }

    #[test]
    fn parallel_is_bit_identical_to_serial() {
        for (k, height, seed) in [(2usize, 6usize, 21u64), (3, 5, 22), (4, 4, 23)] {
            let shape = TreeShape::new(k, height);
            let noisy = random_noisy(&shape, seed);
            let tree = LevelTree::new(&shape);
            let serial = tree.infer(&noisy);
            for threads in [2, 4, 8] {
                assert_eq!(tree.infer_parallel(&noisy, threads), serial);
            }
        }
    }

    #[test]
    fn batch_is_bit_identical_to_singles() {
        let shape = TreeShape::new(2, 5);
        let tree = LevelTree::new(&shape);
        let n = shape.nodes();
        let trials = 7;
        let mut batch = Vec::with_capacity(trials * n);
        let mut singles = Vec::with_capacity(trials * n);
        for t in 0..trials {
            let noisy = random_noisy(&shape, 31 + t as u64);
            singles.extend(tree.infer(&noisy));
            batch.extend(noisy);
        }
        let mut engine = BatchInference::new(tree);
        assert_eq!(engine.infer_batch(&batch), singles);
        assert_eq!(engine.infer_batch_parallel(&batch, 3), singles);
    }

    #[test]
    fn scratch_reuse_across_shapes_stays_correct() {
        let mut engine = BatchInference::for_shape(&TreeShape::new(2, 4));
        for (k, height, seed) in [(2usize, 4usize, 41u64), (3, 3, 42), (2, 6, 43)] {
            let shape = TreeShape::new(k, height);
            engine.ensure_shape(&shape);
            let noisy = random_noisy(&shape, seed);
            assert_eq!(engine.infer(&noisy), hierarchical_inference(&shape, &noisy));
        }
    }

    #[test]
    fn weighted_tables_match_weighted_reference() {
        use crate::weighted::weighted_hierarchical_inference;
        for (k, height, seed) in [(2usize, 4usize, 51u64), (3, 3, 52), (2, 6, 53)] {
            let shape = TreeShape::new(k, height);
            let mut rng = rng_from_seed(seed);
            let noisy = random_noisy(&shape, seed ^ 0xF0);
            let level_vars: Vec<f64> = (0..height).map(|_| rng.random_range(0.2..9.0)).collect();
            let mut per_node = vec![0.0f64; shape.nodes()];
            for (d, &var) in level_vars.iter().enumerate() {
                for v in shape.level(d) {
                    per_node[v] = var;
                }
            }
            let reference = weighted_hierarchical_inference(&shape, &noisy, &per_node);
            let tree = LevelTree::with_level_variances(&shape, &level_vars);
            assert_eq!(tree.infer(&noisy), reference, "k={k} ℓ={height}");
            assert_eq!(tree.infer_parallel(&noisy, 4), reference);
            assert_eq!(tree.infer_untiled(&noisy), reference);
        }
    }

    #[test]
    fn single_node_tree_passes_through() {
        let shape = TreeShape::new(2, 1);
        let tree = LevelTree::new(&shape);
        assert_eq!(tree.infer(&[7.25]), vec![7.25]);
        assert_eq!(tree.infer_parallel(&[7.25], 8), vec![7.25]);
    }

    #[test]
    #[should_panic(expected = "multiple of the node count")]
    fn batch_length_is_checked() {
        let mut engine = BatchInference::for_shape(&TreeShape::new(2, 3));
        let _ = engine.infer_batch(&[0.0; 10]);
    }

    #[test]
    fn zeroing_sweep_matches_reference_walk() {
        for (k, height, seed) in [
            (2usize, 1usize, 61u64),
            (2, 4, 62),
            (2, 7, 63),
            (3, 4, 64),
            (5, 3, 65),
        ] {
            let shape = TreeShape::new(k, height);
            let mut rng = rng_from_seed(seed);
            // Straddle zero so subtree zeroing actually fires.
            let values: Vec<f64> = (0..shape.nodes())
                .map(|_| rng.random_range(-4.0..4.0))
                .collect();
            let reference = enforce_nonnegativity(&shape, &values);
            let tree = LevelTree::new(&shape);
            let mut engine = values.clone();
            tree.zero_subtrees_in_place(&mut engine);
            assert_eq!(engine, reference, "k={k} ℓ={height}");
        }
    }

    #[test]
    fn zeroing_pins_the_boundary_cases() {
        // The `<= 0.0` boundary: exact 0.0 and -0.0 zero their subtrees, and
        // a zeroed parent cascades through positive descendants.
        let shape = TreeShape::new(2, 3);
        let tree = LevelTree::new(&shape);
        for values in [
            [6.0, 0.0, 7.0, 2.0, 5.0, 4.0, 3.0],  // exact zero at node 1
            [6.0, -0.0, 7.0, 2.0, 5.0, 4.0, 3.0], // negative zero at node 1
            [-1.0, 3.0, 7.0, 2.0, 5.0, 4.0, 3.0], // zeroed root cascades
        ] {
            let reference = enforce_nonnegativity(&shape, &values);
            let mut engine = values;
            tree.zero_subtrees_in_place(&mut engine);
            assert_eq!(&engine[..], &reference[..], "input {values:?}");
        }
        // Node 1 subtree fully zeroed in the first two cases.
        let mut engine = [6.0, 0.0, 7.0, 2.0, 5.0, 4.0, 3.0];
        tree.zero_subtrees_in_place(&mut engine);
        assert_eq!(&engine[1..5], &[0.0, 7.0, 0.0, 0.0]);
    }

    #[test]
    fn fused_zero_round_matches_zero_then_round() {
        for (k, height, seed) in [(2usize, 5usize, 71u64), (3, 4, 72), (2, 8, 73)] {
            let shape = TreeShape::new(k, height);
            let mut rng = rng_from_seed(seed);
            let values: Vec<f64> = (0..shape.nodes())
                .map(|_| rng.random_range(-3.0..3.0))
                .collect();
            let tree = LevelTree::new(&shape);
            let mut split_path = values.clone();
            tree.zero_subtrees_in_place(&mut split_path);
            for v in &mut split_path {
                *v = v.round().max(0.0);
            }
            let mut fused = values.clone();
            tree.zero_round_in_place(&mut fused);
            assert_eq!(fused, split_path, "k={k} ℓ={height}");
        }
    }

    #[test]
    fn slab_fused_infer_zero_round_matches_separate_passes() {
        // The whole-trial fusion (downward slabs + zero/round while hot)
        // against infer + zero_round_in_place, across tile regimes: single
        // slab, slab boundary, many slabs, non-binary, single node.
        for (k, height, seed) in [
            (2usize, 1usize, 74u64),
            (2, 5, 75),
            (2, 14, 76),
            (2, 16, 77), // 2^15 leaves: multiple slabs
            (3, 9, 78),
            (5, 6, 79),
        ] {
            let shape = TreeShape::new(k, height);
            let mut rng = rng_from_seed(seed);
            let noisy: Vec<f64> = (0..shape.nodes())
                .map(|_| rng.random_range(-3.0..3.0))
                .collect();
            let tree = LevelTree::new(&shape);
            let mut separate = tree.infer(&noisy);
            tree.zero_round_in_place(&mut separate);
            let (mut z, mut fused) = (Vec::new(), Vec::new());
            tree.infer_zero_round_into(&noisy, &mut z, &mut fused);
            assert_eq!(fused, separate, "k={k} ℓ={height}");
        }
    }

    #[test]
    fn ensure_level_variances_recompiles_only_on_change() {
        let shape = TreeShape::new(2, 4);
        let vars_a = vec![1.0, 2.0, 3.0, 4.0];
        let vars_b = vec![4.0, 3.0, 2.0, 1.0];
        let mut engine = BatchInference::for_shape(&shape);
        engine.ensure_level_variances(&shape, &vars_a);
        assert_eq!(engine.tree().level_variances(), Some(&vars_a[..]));
        let noisy = random_noisy(&shape, 81);
        let a = engine.infer(&noisy);
        assert_eq!(
            a,
            LevelTree::with_level_variances(&shape, &vars_a).infer(&noisy)
        );
        engine.ensure_level_variances(&shape, &vars_b);
        let b = engine.infer(&noisy);
        assert_eq!(
            b,
            LevelTree::with_level_variances(&shape, &vars_b).infer(&noisy)
        );
        assert_ne!(a, b);
    }

    #[test]
    fn fast_round_matches_library_round_for_nonnegatives() {
        let mut cases = vec![
            0.0,
            0.25,
            0.5,
            0.49999999999999994, // largest f64 < 0.5: the naive +0.5 trick fails here
            0.5000000000000001,
            1.5,
            2.5,
            3.5,
            1e15,
            4_503_599_627_370_495.5, // just below 2^52
            4_503_599_627_370_496.0, // 2^52 exactly
            9e15,
            1e300,
            f64::INFINITY,
            f64::NAN,
        ];
        let mut rng = rng_from_seed(99);
        for _ in 0..10_000 {
            cases.push(rng.random_range(0.0..1000.0));
            cases.push(rng.random_range(0.0..10.0));
        }
        for v in cases {
            let expect = v.round().max(0.0);
            let got = round_nonneg(v);
            assert!(
                got == expect || (got.is_nan() && expect.is_nan()),
                "v = {v:?}: fast {got:?} vs library {expect:?}"
            );
            if got == expect {
                assert_eq!(got.to_bits(), expect.to_bits(), "v = {v:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "per-level GLS weights")]
    fn release_and_infer_rejects_a_gls_compiled_engine() {
        // A shared engine last used for budgeted (weighted) trials must not
        // silently run GLS kernels under the uniform release contract.
        use hc_data::Domain;
        use hc_mech::{Epsilon, HierarchicalQuery, LaplaceMechanism};
        let shape = TreeShape::new(2, 3);
        let mut engine = BatchInference::for_shape(&shape);
        engine.ensure_level_variances(&shape, &[1.0, 2.0, 3.0]);
        let histogram = Histogram::from_counts(Domain::new("x", 4).unwrap(), vec![1, 2, 3, 4]);
        let prepared = LaplaceMechanism::new(Epsilon::new(1.0).unwrap())
            .prepare(HierarchicalQuery::binary(), 4);
        let mut out = Vec::new();
        engine.release_and_infer(&prepared, &histogram, &mut rng_from_seed(1), &mut out);
    }

    #[test]
    fn batch_pipeline_matches_standalone_trials_per_backend() {
        use hc_data::Domain;
        use hc_mech::{Epsilon, HierarchicalQuery, LaplaceMechanism};
        let n = 64usize;
        let counts: Vec<u64> = (0..n as u64).map(|i| i % 9).collect();
        let histogram = Histogram::from_counts(Domain::new("x", n).unwrap(), counts);
        let shape = TreeShape::for_domain(n, 2);
        let seeds = SeedStream::new(91);
        let trials = 11;
        for backend in [NoiseBackend::Reference, NoiseBackend::FastLn] {
            let prepared = LaplaceMechanism::new(Epsilon::new(0.5).unwrap())
                .with_backend(backend)
                .prepare(HierarchicalQuery::binary(), n);
            for rounded in [false, true] {
                // Oracle: run each trial standalone with its own seed.
                let mut engine = BatchInference::for_shape(&shape);
                let nodes = shape.nodes();
                let mut expect_noisy = Vec::new();
                let mut expect_out = Vec::new();
                for t in 0..trials {
                    let mut rng = seeds.rng(t as u64);
                    let mut out = Vec::new();
                    if rounded {
                        engine.release_and_infer_rounded(&prepared, &histogram, &mut rng, &mut out);
                    } else {
                        engine.release_and_infer(&prepared, &histogram, &mut rng, &mut out);
                    }
                    expect_noisy.extend_from_slice(&engine.noisy[..nodes]);
                    expect_out.extend(out);
                }
                // Serial batch ≡ standalone trials.
                let (mut noisy_batch, mut out_batch) = (Vec::new(), Vec::new());
                engine.release_and_infer_batch(
                    &prepared,
                    &histogram,
                    seeds,
                    trials,
                    rounded,
                    Some(&mut noisy_batch),
                    &mut out_batch,
                );
                assert_eq!(out_batch, expect_out, "{backend:?} rounded={rounded}");
                assert_eq!(noisy_batch, expect_noisy, "{backend:?} rounded={rounded}");
                // Parallel ≡ serial for every fan-out (1 exercises the
                // serial fallback inside the parallel entry point).
                for threads in [1usize, 2, 4, 16] {
                    let (mut pn, mut po) = (Vec::new(), Vec::new());
                    engine.release_and_infer_batch_parallel(
                        &prepared,
                        &histogram,
                        seeds,
                        trials,
                        rounded,
                        threads,
                        Some(&mut pn),
                        &mut po,
                    );
                    assert_eq!(po, expect_out, "{backend:?} threads={threads}");
                    assert_eq!(pn, expect_noisy, "{backend:?} threads={threads}");
                }
            }
        }
    }

    #[test]
    fn batch_pipeline_handles_zero_trials() {
        use hc_data::Domain;
        use hc_mech::{Epsilon, HierarchicalQuery, LaplaceMechanism};
        let histogram = Histogram::from_counts(Domain::new("x", 4).unwrap(), vec![1, 2, 3, 4]);
        let shape = TreeShape::for_domain(4, 2);
        let prepared = LaplaceMechanism::new(Epsilon::new(1.0).unwrap())
            .prepare(HierarchicalQuery::binary(), 4);
        let mut engine = BatchInference::for_shape(&shape);
        let (mut noisy, mut out) = (vec![1.0; 10], vec![2.0; 10]);
        engine.release_and_infer_batch_parallel(
            &prepared,
            &histogram,
            SeedStream::new(1),
            0,
            true,
            4,
            Some(&mut noisy),
            &mut out,
        );
        assert!(noisy.is_empty() && out.is_empty());
    }

    #[test]
    fn hc_threads_override_parsing() {
        // The env hook itself is exercised end-to-end by the smoke tests
        // (which run experiment binaries with HC_THREADS set); mutating the
        // process environment from a multithreaded test harness would race,
        // so the unit test pins the pure parsing core instead.
        assert_eq!(apply_thread_override(None, 8), 8);
        assert_eq!(apply_thread_override(Some("1"), 8), 1);
        assert_eq!(apply_thread_override(Some(" 3 "), 8), 3);
        assert_eq!(apply_thread_override(Some("0"), 8), 8);
        assert_eq!(apply_thread_override(Some("not a number"), 8), 8);
        assert_eq!(apply_thread_override(Some(""), 8), 8);
    }
}
