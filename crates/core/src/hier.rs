//! Hierarchical constrained inference — Theorem 3's two-pass closed form.
//!
//! Given the noisy tree release `h̃ = H̃(I)`, the minimum-L2 consistent
//! answer `h̄` (parent = sum of children everywhere) is computed in two
//! linear scans:
//!
//! 1. **Bottom-up**: `z[v]` combines a node's own noisy count with the sum of
//!    its children's `z` values, weighted inversely to their variances:
//!    `z[v] = (k^l − k^(l−1))/(k^l − 1) · h̃[v] + (k^(l−1) − 1)/(k^l − 1) · Σ z[child]`
//!    where `l` is the node's height (leaves have `l = 1` and `z = h̃`).
//! 2. **Top-down**: the root takes `h̄ = z`; every other node adjusts for its
//!    parent's divergence: `h̄[v] = z[v] + (h̄[u] − Σ_w z[w]) / k`.
//!
//! The result is the ordinary-least-squares estimate of the leaf counts
//! aggregated back onto the tree (Theorem 4 proves it is the minimum-variance
//! linear unbiased estimator); the test suite checks it against a generic OLS
//! solve from `hc-linalg`.

use hc_data::Interval;
use hc_mech::TreeShape;

use crate::snapshot::{ConsistentSnapshot, LazySnapshot};

/// Computes the bottom-up `z` estimates of Sec. 4.1.
fn compute_z(shape: &TreeShape, noisy: &[f64]) -> Vec<f64> {
    assert_eq!(
        noisy.len(),
        shape.nodes(),
        "noisy vector must cover the tree"
    );
    let k = shape.branching() as f64;
    let mut z = vec![0.0f64; shape.nodes()];

    // Reverse BFS order visits children before parents.
    for v in (0..shape.nodes()).rev() {
        if shape.is_leaf(v) {
            z[v] = noisy[v];
        } else {
            let l = shape.node_height(v) as i32;
            let k_l = k.powi(l);
            let k_lm1 = k.powi(l - 1);
            let own_weight = (k_l - k_lm1) / (k_l - 1.0);
            let child_weight = (k_lm1 - 1.0) / (k_l - 1.0);
            let succ_z: f64 = shape.children(v).map(|c| z[c]).sum();
            z[v] = own_weight * noisy[v] + child_weight * succ_z;
        }
    }
    z
}

/// Theorem 3: the unique minimum-L2 tree-consistent solution `h̄`.
///
/// Returns the full consistent tree (one value per node, BFS order). Runs in
/// O(nodes) time and allocates two vectors.
pub fn hierarchical_inference(shape: &TreeShape, noisy: &[f64]) -> Vec<f64> {
    let z = compute_z(shape, noisy);
    let k = shape.branching() as f64;
    let mut h = vec![0.0f64; shape.nodes()];

    for v in 0..shape.nodes() {
        if shape.is_root(v) {
            h[v] = z[v];
        } else {
            let u = shape.parent(v).expect("non-root node");
            let succ_z: f64 = shape.children(u).map(|c| z[c]).sum();
            h[v] = z[v] + (h[u] - succ_z) / k;
        }
    }
    h
}

/// The Sec. 4.2 non-negativity heuristic: after inference, any subtree whose
/// root estimate is ≤ 0 is zeroed wholesale.
///
/// The paper's motivation is sparse domains: higher tree levels *observe*
/// that a region is empty, and zeroing suppresses the leaf-level noise there.
/// This deliberately breaks exact parent-sum consistency at the zeroed
/// boundary (the paper calls it a heuristic and leaves constrained
/// non-negative inference to future work); range queries over the result are
/// answered from the leaves.
pub fn enforce_nonnegativity(shape: &TreeShape, values: &[f64]) -> Vec<f64> {
    assert_eq!(
        values.len(),
        shape.nodes(),
        "value vector must cover the tree"
    );
    let mut out = values.to_vec();
    let mut zeroed = vec![false; shape.nodes()];
    for v in 0..shape.nodes() {
        let parent_zeroed = shape.parent(v).is_some_and(|u| zeroed[u]);
        if parent_zeroed || out[v] <= 0.0 {
            zeroed[v] = true;
            out[v] = 0.0;
        }
    }
    out
}

/// A consistent tree estimate supporting O(1) range queries via leaf prefix
/// sums — the query interface of the `H̄` estimator.
///
/// Queries are served through a lazily built
/// [`ConsistentSnapshot`]: construction stores only the node values, and the
/// prefix array is built once on the first range query (thread-safe), with
/// the exact arithmetic the eager construction historically used — query
/// answers are bit-identical.
#[derive(Debug, Clone)]
pub struct ConsistentTree {
    shape: TreeShape,
    values: Vec<f64>,
    domain_size: usize,
    /// Built on first use by [`Self::snapshot`].
    snapshot: LazySnapshot,
}

impl ConsistentTree {
    /// Wraps a full node-value vector (BFS order) over `shape`.
    ///
    /// `domain_size` is the unpadded domain; queries beyond it are rejected
    /// by the underlying `Interval` invariants.
    pub fn new(shape: TreeShape, values: Vec<f64>, domain_size: usize) -> Self {
        assert_eq!(values.len(), shape.nodes(), "one value per tree node");
        assert!(
            domain_size <= shape.leaves(),
            "domain larger than leaf level"
        );
        Self {
            shape,
            values,
            domain_size,
            snapshot: LazySnapshot::new(),
        }
    }

    /// The prefix-summed serving view over this tree's leaves, built on
    /// first use and shared by every subsequent query.
    pub fn snapshot(&self) -> &ConsistentSnapshot {
        self.snapshot.get_or_init(|| {
            ConsistentSnapshot::from_tree_values(&self.shape, &self.values, self.domain_size)
        })
    }

    /// The tree geometry.
    pub fn shape(&self) -> &TreeShape {
        &self.shape
    }

    /// The unpadded domain size.
    pub fn domain_size(&self) -> usize {
        self.domain_size
    }

    /// All node values in BFS order.
    pub fn node_values(&self) -> &[f64] {
        &self.values
    }

    /// The leaf estimates over the (unpadded) domain — the universal
    /// histogram itself.
    pub fn leaves(&self) -> &[f64] {
        let first = self.shape.leaf_node(0);
        &self.values[first..first + self.domain_size]
    }

    /// Answers the range count `c([lo, hi])` by prefix-sum difference —
    /// two O(1) lookups into the lazily built [`Self::snapshot`].
    pub fn range_query(&self, interval: Interval) -> f64 {
        self.snapshot().answer(interval)
    }

    /// Maximum violation of the parent-sum constraints, for diagnostics and
    /// tests (exact inference should be ~1e-9 of the value scale).
    pub fn max_consistency_violation(&self) -> f64 {
        let mut worst = 0.0f64;
        for v in 0..self.shape.nodes() {
            if !self.shape.is_leaf(v) {
                let child_sum: f64 = self.shape.children(v).map(|c| self.values[c]).sum();
                worst = worst.max((self.values[v] - child_sum).abs());
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_noise::rng_from_seed;
    use hc_testutil::assert_close;
    use rand::Rng;

    #[test]
    fn paper_fig2_worked_example() {
        // Fig. 2(b): H̃(I) = ⟨13, 3, 11, 4, 1, 12, 1⟩ infers to
        // H̄(I) = ⟨14, 3, 11, 3, 0, 11, 0⟩.
        let shape = TreeShape::new(2, 3);
        let noisy = [13.0, 3.0, 11.0, 4.0, 1.0, 12.0, 1.0];
        let h = hierarchical_inference(&shape, &noisy);
        assert_close(&h, &[14.0, 3.0, 11.0, 3.0, 0.0, 11.0, 0.0], 1e-12);
    }

    #[test]
    fn consistent_input_is_fixed_point() {
        let shape = TreeShape::new(2, 3);
        let consistent = [14.0, 2.0, 12.0, 2.0, 0.0, 10.0, 2.0];
        let h = hierarchical_inference(&shape, &consistent);
        assert_close(&h, &consistent, 1e-12);
    }

    #[test]
    fn output_satisfies_all_constraints() {
        let shape = TreeShape::new(3, 4);
        let mut rng = rng_from_seed(81);
        let noisy: Vec<f64> = (0..shape.nodes())
            .map(|_| rng.random_range(-5.0..20.0))
            .collect();
        let h = hierarchical_inference(&shape, &noisy);
        for v in 0..shape.nodes() {
            if !shape.is_leaf(v) {
                let child_sum: f64 = shape.children(v).map(|c| h[c]).sum();
                assert!((h[v] - child_sum).abs() < 1e-9, "node {v}");
            }
        }
    }

    #[test]
    fn idempotent() {
        let shape = TreeShape::new(2, 4);
        let mut rng = rng_from_seed(82);
        let noisy: Vec<f64> = (0..shape.nodes())
            .map(|_| rng.random_range(-5.0..20.0))
            .collect();
        let once = hierarchical_inference(&shape, &noisy);
        let twice = hierarchical_inference(&shape, &once);
        assert_close(&once, &twice, 1e-9);
    }

    #[test]
    fn single_node_tree_passes_through() {
        let shape = TreeShape::new(2, 1);
        let h = hierarchical_inference(&shape, &[7.25]);
        assert_eq!(h, vec![7.25]);
    }

    #[test]
    fn root_matches_level_weighted_average_formula() {
        // Proof of Theorem 3: h̄[r] = (k−1)/(k^ℓ−1) · Σ_i k^i Σ_{v ∈ level(i)} h̃[v]
        // where level i counts height (leaves at exponent 0 … root at ℓ−1,
        // indexed here by node height − 1).
        let shape = TreeShape::new(2, 3);
        let mut rng = rng_from_seed(83);
        let noisy: Vec<f64> = (0..shape.nodes())
            .map(|_| rng.random_range(0.0..10.0))
            .collect();
        let h = hierarchical_inference(&shape, &noisy);

        let k = 2.0f64;
        let l = 3;
        let mut acc = 0.0;
        for depth in 0..l {
            let exponent = (l - 1 - depth) as i32;
            let level_sum: f64 = shape.level(depth).map(|v| noisy[v]).sum();
            acc += k.powi(exponent) * level_sum;
        }
        let expected_root = (k - 1.0) / (k.powi(l as i32) - 1.0) * acc;
        assert!((h[0] - expected_root).abs() < 1e-9);
    }

    #[test]
    fn agrees_with_generic_ols() {
        // Theorem 3 vs. hc-linalg: build the aggregation matrix A (rows =
        // nodes, cols = leaves), solve min ‖Ax − h̃‖², re-aggregate.
        for (k, height, seed) in [(2usize, 3usize, 84u64), (2, 4, 85), (3, 3, 86), (4, 2, 87)] {
            let shape = TreeShape::new(k, height);
            let mut rng = rng_from_seed(seed);
            let noisy: Vec<f64> = (0..shape.nodes())
                .map(|_| rng.random_range(-10.0..30.0))
                .collect();

            let a = hc_linalg::Matrix::from_fn(shape.nodes(), shape.leaves(), |v, leaf| {
                let span = shape.leaf_span(v);
                if span.contains(leaf) {
                    1.0
                } else {
                    0.0
                }
            });
            let x = hc_linalg::lstsq(&a, &noisy).expect("full column rank");
            let reaggregated = a.matvec(&x).expect("dimensions match");

            let h = hierarchical_inference(&shape, &noisy);
            assert_close(&h, &reaggregated, 1e-8);
        }
    }

    #[test]
    fn nonnegativity_zeroes_whole_subtrees() {
        let shape = TreeShape::new(2, 3);
        // Node 1's subtree is negative at the top but positive below.
        let values = [6.0, -1.0, 7.0, 2.0, -3.0, 4.0, 3.0];
        let out = enforce_nonnegativity(&shape, &values);
        assert_eq!(out[1], 0.0);
        assert_eq!(out[3], 0.0, "child of zeroed subtree");
        assert_eq!(out[4], 0.0, "child of zeroed subtree");
        assert_eq!(out[2], 7.0, "positive sibling untouched");
        assert_eq!(out[5], 4.0);
    }

    #[test]
    fn nonnegativity_output_has_no_negative_values() {
        let shape = TreeShape::new(2, 4);
        let mut rng = rng_from_seed(88);
        let noisy: Vec<f64> = (0..shape.nodes())
            .map(|_| rng.random_range(-5.0..5.0))
            .collect();
        let h = hierarchical_inference(&shape, &noisy);
        let nn = enforce_nonnegativity(&shape, &h);
        assert!(nn.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn nonnegativity_breaks_consistency_only_at_zeroed_boundaries() {
        // The documented contract: subtree zeroing violates parent = Σ
        // children *only* at nodes that keep their value but lose a zeroed
        // child subtree; everywhere else consistency survives, and range
        // queries over the result are answered from the leaves.
        let shape = TreeShape::new(2, 5);
        let mut rng = rng_from_seed(91);
        let noisy: Vec<f64> = (0..shape.nodes())
            .map(|_| rng.random_range(-4.0..8.0))
            .collect();
        let h = hierarchical_inference(&shape, &noisy);
        let nn = enforce_nonnegativity(&shape, &h);

        // Recompute the zeroed set independently of the implementation.
        let mut zeroed = vec![false; shape.nodes()];
        for v in 0..shape.nodes() {
            let parent_zeroed = shape.parent(v).is_some_and(|u| zeroed[u]);
            zeroed[v] = parent_zeroed || h[v] <= 0.0;
        }
        assert!(
            zeroed.iter().any(|&z| z),
            "seed must exercise at least one zeroed subtree"
        );

        for v in 0..shape.nodes() {
            if shape.is_leaf(v) {
                continue;
            }
            let child_sum: f64 = shape.children(v).map(|c| nn[c]).sum();
            let violation = nn[v] - child_sum;
            if zeroed[v] {
                // Inside a zeroed subtree: 0 = 0 + 0, consistency holds.
                assert!(violation.abs() < 1e-12, "node {v} inside zeroed subtree");
            } else {
                // Outside: the exact discrepancy is the mass of the zeroed
                // children (h[c] ≤ 0 each), and it is zero iff no child
                // subtree was zeroed — the boundary is the only break point.
                let zeroed_mass: f64 = shape.children(v).filter(|&c| zeroed[c]).map(|c| h[c]).sum();
                assert!(
                    (violation - zeroed_mass).abs() < 1e-9,
                    "node {v}: violation {violation} vs zeroed child mass {zeroed_mass}"
                );
                if shape.children(v).all(|c| !zeroed[c]) {
                    assert!(violation.abs() < 1e-9, "non-boundary node {v} broke");
                }
            }
        }

        // Range queries over the zeroed result go through the leaves: the
        // prefix-sum path reproduces direct leaf summation everywhere, even
        // though a boundary node's own value no longer matches its span.
        let tree = ConsistentTree::new(shape.clone(), nn.clone(), shape.leaves());
        for (lo, hi) in [(0usize, 15usize), (0, 7), (3, 12), (5, 5)] {
            let direct: f64 = tree.leaves()[lo..=hi].iter().sum();
            assert!((tree.range_query(Interval::new(lo, hi)) - direct).abs() < 1e-9);
        }
        let boundary = (0..shape.nodes())
            .find(|&v| !zeroed[v] && shape.children(v).any(|c| zeroed[c]))
            .expect("a boundary node exists");
        let span = shape.leaf_span(boundary);
        let from_leaves = tree.range_query(Interval::new(span.lo(), span.hi()));
        assert!(
            (from_leaves - nn[boundary]).abs() > 1e-9,
            "boundary node value should disagree with its leaf sum"
        );
    }

    #[test]
    fn consistent_tree_range_queries_match_leaf_sums() {
        let shape = TreeShape::new(2, 4);
        let mut rng = rng_from_seed(89);
        let noisy: Vec<f64> = (0..shape.nodes())
            .map(|_| rng.random_range(0.0..9.0))
            .collect();
        let h = hierarchical_inference(&shape, &noisy);
        let tree = ConsistentTree::new(shape, h, 8);
        for (lo, hi) in [(0usize, 7usize), (2, 5), (0, 0), (7, 7), (1, 6)] {
            let direct: f64 = tree.leaves()[lo..=hi].iter().sum();
            let via_prefix = tree.range_query(Interval::new(lo, hi));
            assert!((direct - via_prefix).abs() < 1e-9);
        }
    }

    #[test]
    fn consistent_tree_aligned_query_equals_node_value() {
        let shape = TreeShape::new(2, 4);
        let mut rng = rng_from_seed(90);
        let noisy: Vec<f64> = (0..shape.nodes())
            .map(|_| rng.random_range(0.0..9.0))
            .collect();
        let h = hierarchical_inference(&shape, &noisy);
        let tree = ConsistentTree::new(shape.clone(), h.clone(), 8);
        // Node 1 covers [0, 3]; its value must equal the range query.
        assert!((tree.range_query(Interval::new(0, 3)) - h[1]).abs() < 1e-9);
        assert!(tree.max_consistency_violation() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn query_beyond_domain_panics() {
        let shape = TreeShape::new(2, 3);
        let tree = ConsistentTree::new(shape, vec![0.0; 7], 3); // padded leaf hidden
        let _ = tree.range_query(Interval::new(0, 3));
    }
}
