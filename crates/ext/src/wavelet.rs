//! The Haar-wavelet mechanism for range queries ("Privelet", Xiao et al.).
//!
//! The strategy releases the Haar tree of a histogram instead of interval
//! counts: the base coefficient `c₀` is the total, and every internal node
//! of a binary tree over the domain carries the *difference* between its
//! left and right subtree sums. One record affects `c₀` and exactly one
//! coefficient per tree level, each by 1, so the L1 sensitivity is
//! `m + 1 = log₂ n + 1` — the same as the binary `H` query. Li et al.
//! (PODS 2010) showed the two strategies have identical least-squares error;
//! the `ablation_wavelet` bench measures that equivalence.
//!
//! Reconstruction is exact (the transform is invertible), so no constrained
//! inference step is needed: the noisy coefficients *are* a consistent
//! histogram. That is the conceptual contrast with `H̃`/`H̄` the related-work
//! section draws.

use std::borrow::Cow;

use hc_data::{Histogram, Interval};
use hc_mech::{Epsilon, QuerySequence, TreeShape};
use hc_noise::Laplace;
use rand::Rng;

/// The Haar coefficient strategy as a [`QuerySequence`].
///
/// Output layout for a (zero-padded) domain of `n = 2^m` bins:
/// index 0 is the base coefficient (total count); indices `1 … n−1` are the
/// difference coefficients of the internal nodes of the binary tree in BFS
/// order (`c_v = sum(left subtree) − sum(right subtree)`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HaarQuery;

impl HaarQuery {
    /// The binary tree geometry used over a domain.
    pub fn shape(&self, domain_size: usize) -> TreeShape {
        TreeShape::for_domain(domain_size, 2)
    }

    /// Forward transform: `[total, differences…]` of the padded counts.
    pub fn transform(&self, counts: &[f64]) -> Vec<f64> {
        let shape = TreeShape::for_domain(counts.len().max(1), 2);
        let n = shape.leaves();
        let mut padded = counts.to_vec();
        padded.resize(n, 0.0);

        // Subtree sums over the implicit tree, bottom-up.
        let mut sums = vec![0.0f64; shape.nodes()];
        let first_leaf = shape.leaf_node(0);
        sums[first_leaf..(n + first_leaf)].copy_from_slice(&padded[..n]);
        for v in (0..first_leaf).rev() {
            sums[v] = shape.children(v).map(|c| sums[c]).sum();
        }

        let internal = first_leaf; // nodes 0..first_leaf are internal
        let mut out = Vec::with_capacity(internal + 1);
        out.push(sums[0]);
        for v in 0..internal {
            let mut child = shape.children(v);
            let left = child.next().expect("internal node has children");
            let right = child.next().expect("binary tree");
            out.push(sums[left] - sums[right]);
        }
        out
    }

    /// Inverse transform: recovers the `n` leaf counts from coefficients.
    pub fn reconstruct(&self, coefficients: &[f64], domain_size: usize) -> Vec<f64> {
        let shape = self.shape(domain_size);
        let first_leaf = shape.leaf_node(0);
        assert_eq!(
            coefficients.len(),
            first_leaf + 1,
            "coefficient vector must hold total + one difference per internal node"
        );
        let mut sums = vec![0.0f64; shape.nodes()];
        sums[0] = coefficients[0];
        for v in 0..first_leaf {
            let total = sums[v];
            let diff = coefficients[v + 1];
            let mut child = shape.children(v);
            let left = child.next().expect("internal node has children");
            let right = child.next().expect("binary tree");
            sums[left] = (total + diff) / 2.0;
            sums[right] = (total - diff) / 2.0;
        }
        sums[first_leaf..first_leaf + domain_size].to_vec()
    }
}

impl QuerySequence for HaarQuery {
    fn output_len(&self, domain_size: usize) -> usize {
        // total + one coefficient per internal node = leaves of padded tree.
        self.shape(domain_size).leaf_node(0) + 1
    }

    fn evaluate(&self, histogram: &Histogram) -> Vec<f64> {
        self.transform(&histogram.counts_f64())
    }

    fn sensitivity(&self, domain_size: usize) -> f64 {
        // c₀ plus one difference coefficient per internal level.
        self.shape(domain_size).height() as f64
    }

    fn label(&self) -> Cow<'static, str> {
        Cow::Borrowed("W")
    }
}

/// The wavelet pipeline: release noisy Haar coefficients, reconstruct, and
/// answer range queries.
#[derive(Debug, Clone, Copy)]
pub struct WaveletUniversal {
    epsilon: Epsilon,
}

impl WaveletUniversal {
    /// A pipeline calibrated to `epsilon`.
    pub fn new(epsilon: Epsilon) -> Self {
        Self { epsilon }
    }

    /// Releases noisy coefficients and reconstructs the histogram estimate.
    pub fn release<R: Rng + ?Sized>(&self, histogram: &Histogram, rng: &mut R) -> WaveletRelease {
        let query = HaarQuery;
        let mut coefficients = query.evaluate(histogram);
        let scale = query.sensitivity(histogram.len()) / self.epsilon.value();
        let laplace = Laplace::centered(scale).expect("positive scale");
        for c in &mut coefficients {
            *c += laplace.sample(rng);
        }
        let leaves = query.reconstruct(&coefficients, histogram.len());
        WaveletRelease::from_leaves(self.epsilon, leaves)
    }
}

/// A reconstructed wavelet estimate with prefix-sum range queries.
#[derive(Debug, Clone)]
pub struct WaveletRelease {
    epsilon: Epsilon,
    leaves: Vec<f64>,
    prefix: Vec<f64>,
}

impl WaveletRelease {
    fn from_leaves(epsilon: Epsilon, leaves: Vec<f64>) -> Self {
        let mut prefix = Vec::with_capacity(leaves.len() + 1);
        prefix.push(0.0);
        for (i, &v) in leaves.iter().enumerate() {
            prefix.push(prefix[i] + v);
        }
        Self {
            epsilon,
            leaves,
            prefix,
        }
    }

    /// The ε the release was calibrated to.
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    /// The reconstructed unit-count estimates.
    pub fn leaves(&self) -> &[f64] {
        &self.leaves
    }

    /// Answers `c([lo, hi])` from the reconstruction.
    pub fn range_query(&self, interval: Interval) -> f64 {
        assert!(
            interval.hi() < self.leaves.len(),
            "query {interval} outside domain of size {}",
            self.leaves.len()
        );
        self.prefix[interval.hi() + 1] - self.prefix[interval.lo()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_data::Domain;
    use hc_mech::empirical_sensitivity;
    use hc_noise::rng_from_seed;

    fn example() -> Histogram {
        Histogram::from_counts(Domain::new("src", 4).unwrap(), vec![2, 0, 10, 2])
    }

    #[test]
    fn transform_of_paper_example() {
        // counts ⟨2,0,10,2⟩: total 14; root diff (2+0)−(10+2) = −10;
        // then 2−0 = 2 and 10−2 = 8.
        let c = HaarQuery.transform(&[2.0, 0.0, 10.0, 2.0]);
        assert_eq!(c, vec![14.0, -10.0, 2.0, 8.0]);
    }

    #[test]
    fn transform_round_trips() {
        let counts = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let c = HaarQuery.transform(&counts);
        let back = HaarQuery.reconstruct(&c, 8);
        for (a, b) in back.iter().zip(&counts) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn round_trip_with_padding() {
        let counts = [7.0, 2.0, 5.0]; // pads to 4
        let c = HaarQuery.transform(&counts);
        let back = HaarQuery.reconstruct(&c, 3);
        assert_eq!(back.len(), 3);
        for (a, b) in back.iter().zip(&counts) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn sensitivity_matches_binary_h() {
        // Both strategies have Δ = log₂ n + 1.
        assert_eq!(HaarQuery.sensitivity(4), 3.0);
        assert_eq!(HaarQuery.sensitivity(1024), 11.0);
    }

    #[test]
    fn empirical_sensitivity_confirms_analysis() {
        let d = Domain::new("x", 8).unwrap();
        let r = hc_data::Relation::from_records(d, vec![0, 1, 1, 3, 5, 5, 5, 7]).unwrap();
        let s = empirical_sensitivity(&HaarQuery, &r);
        assert!(
            (s - HaarQuery.sensitivity(8)).abs() < 1e-12,
            "empirical {s}"
        );
    }

    #[test]
    fn noiseless_release_answers_ranges_exactly() {
        // Zero-noise path via direct transform/reconstruct.
        let h = example();
        let c = HaarQuery.transform(&h.counts_f64());
        let leaves = HaarQuery.reconstruct(&c, 4);
        let rel = WaveletRelease::from_leaves(Epsilon::new(1.0).unwrap(), leaves);
        assert!((rel.range_query(Interval::new(0, 3)) - 14.0).abs() < 1e-12);
        assert!((rel.range_query(Interval::new(2, 2)) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_release_is_unbiased() {
        let h = example();
        let w = WaveletUniversal::new(Epsilon::new(1.0).unwrap());
        let mut rng = rng_from_seed(111);
        let trials = 2000;
        let mut acc = [0.0; 4];
        for _ in 0..trials {
            let rel = w.release(&h, &mut rng);
            for (a, v) in acc.iter_mut().zip(rel.leaves()) {
                *a += v;
            }
        }
        for (a, t) in acc.iter().zip(h.counts_f64()) {
            let mean = a / trials as f64;
            assert!((mean - t).abs() < 0.5, "mean {mean} vs {t}");
        }
    }
}
