//! Graphical degree sequences — the Appendix B future-work constraint.
//!
//! The paper proposes (as future work) adding the constraint that an
//! unattributed histogram used as a *degree sequence* be **graphical**: the
//! degree sequence of some simple graph. This module provides the
//! Erdős–Gallai test and a projection heuristic that repairs an inferred
//! sequence into a graphical one, completing the paper's suggested pipeline
//! `S̄ → graphical repair` (the repair operates on post-processed values
//! only, so privacy is unaffected).

/// Checks the Erdős–Gallai conditions: a non-increasing sequence
/// `d₁ ≥ … ≥ dₙ` of non-negative integers is graphical iff the sum is even
/// and for every `r`:
/// `Σ_{i≤r} dᵢ ≤ r(r−1) + Σ_{i>r} min(dᵢ, r)`.
///
/// Accepts the sequence in *any* order (it sorts a copy).
pub fn is_graphical(degrees: &[u64]) -> bool {
    // A simple graph on n vertices has max degree n − 1. (The Erdős–Gallai
    // inequalities also reject such sequences, but this check is cheaper and
    // guards the arithmetic below.)
    let n = degrees.len() as u64;
    if n > 0 && degrees.iter().any(|&d| d > n - 1) {
        return false;
    }
    let total: u64 = degrees.iter().sum();
    if total % 2 != 0 {
        return false;
    }
    if degrees.is_empty() {
        return true;
    }

    let mut sorted = degrees.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a)); // non-increasing

    // Suffix sums of min(dᵢ, r) are evaluated per r with a two-pointer
    // sweep: for fixed r, entries > r contribute r, the rest contribute
    // themselves.
    let n = sorted.len();
    let mut suffix_sum = vec![0u64; n + 1];
    for i in (0..n).rev() {
        suffix_sum[i] = suffix_sum[i + 1] + sorted[i];
    }

    let mut left_sum = 0u64;
    for r in 1..=n {
        left_sum += sorted[r - 1];
        // Count entries after position r that exceed r.
        let r_u64 = r as u64;
        // sorted is non-increasing, so entries > r form a prefix of the tail.
        let tail = &sorted[r..];
        let gt = tail.partition_point(|&d| d > r_u64);
        let min_sum = (gt as u64) * r_u64 + (suffix_sum[r + gt] - suffix_sum[n]);
        if left_sum > r_u64 * (r_u64 - 1) + min_sum {
            return false;
        }
    }
    true
}

/// Projects an arbitrary non-negative integer sequence onto a graphical one
/// by greedy repair, returning the repaired sequence (same length, sorted
/// non-increasing).
///
/// Strategy: clamp to `n − 1`, fix parity by decrementing the largest
/// positive degree, then while an Erdős–Gallai inequality fails, decrement
/// the largest degree by 2 (preserving parity) — each step strictly reduces
/// the degree sum, so termination is guaranteed (the zero sequence is
/// graphical). This is a heuristic projection, not the L2-optimal one; the
/// paper leaves the optimal version open.
pub fn nearest_graphical(degrees: &[u64]) -> Vec<u64> {
    let n = degrees.len();
    if n == 0 {
        return Vec::new();
    }
    let cap = (n - 1) as u64;
    let mut d: Vec<u64> = degrees.iter().map(|&x| x.min(cap)).collect();
    d.sort_unstable_by(|a, b| b.cmp(a));

    if d.iter().sum::<u64>() % 2 != 0 {
        if let Some(first_positive) = d.iter_mut().find(|x| **x > 0) {
            *first_positive -= 1;
        }
        d.sort_unstable_by(|a, b| b.cmp(a));
    }

    while !is_graphical(&d) {
        // Decrement the largest degree by 2 (or zero it if it is 1, which
        // cannot happen here because parity is even and the test failed).
        if d[0] >= 2 {
            d[0] -= 2;
        } else {
            d[0] = 0;
        }
        d.sort_unstable_by(|a, b| b.cmp(a));
    }
    d
}

/// Rounds a real-valued inferred sequence (e.g. the output of `S̄`) to
/// non-negative integers and repairs it into a graphical sequence — the
/// complete degree-sequence post-processing pipeline.
pub fn graphical_from_inferred(inferred: &[f64]) -> Vec<u64> {
    let rounded: Vec<u64> = inferred
        .iter()
        .map(|&v| v.round().max(0.0) as u64)
        .collect();
    nearest_graphical(&rounded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_data::generators::{SocialNetwork, SocialNetworkConfig};
    use hc_noise::rng_from_seed;

    #[test]
    fn known_graphical_sequences() {
        assert!(is_graphical(&[])); // empty graph
        assert!(is_graphical(&[0, 0, 0]));
        assert!(is_graphical(&[1, 1]));
        assert!(is_graphical(&[2, 2, 2])); // triangle
        assert!(is_graphical(&[3, 2, 2, 1])); // triangle + pendant
        assert!(is_graphical(&[3, 3, 3, 3])); // K4
    }

    #[test]
    fn known_non_graphical_sequences() {
        assert!(!is_graphical(&[1])); // odd sum
        assert!(!is_graphical(&[3, 1])); // exceeds n − 1
        assert!(!is_graphical(&[3, 3, 1, 1])); // fails Erdős–Gallai at r = 2
        assert!(!is_graphical(&[2, 2, 1])); // odd sum
    }

    #[test]
    fn order_does_not_matter() {
        assert!(is_graphical(&[1, 2, 2, 3]));
        assert!(is_graphical(&[2, 3, 1, 2]));
    }

    #[test]
    fn generated_graph_degrees_are_graphical() {
        let mut rng = rng_from_seed(141);
        let s = SocialNetwork::generate(SocialNetworkConfig::small(), &mut rng);
        assert!(is_graphical(&s.graph().degree_sequence()));
    }

    #[test]
    fn repair_fixes_parity_and_violations() {
        let fixed = nearest_graphical(&[3, 1]); // not graphical
        assert!(is_graphical(&fixed));
        let fixed = nearest_graphical(&[9, 9, 9]); // way over cap
        assert!(is_graphical(&fixed));
        assert!(fixed.iter().all(|&d| d <= 2));
    }

    #[test]
    fn repair_is_identity_on_graphical_input() {
        let input = [3, 2, 2, 1];
        let fixed = nearest_graphical(&input);
        assert_eq!(fixed, vec![3, 2, 2, 1]);
    }

    #[test]
    fn inferred_pipeline_produces_graphical_output() {
        let inferred = [2.4, 2.4, 1.2, -0.7, 3.9];
        let g = graphical_from_inferred(&inferred);
        assert!(is_graphical(&g));
        assert_eq!(g.len(), 5);
    }

    #[test]
    fn repair_terminates_on_adversarial_input() {
        let adversarial: Vec<u64> = (0..50).map(|_| 49).collect();
        let fixed = nearest_graphical(&adversarial);
        assert!(is_graphical(&fixed)); // 49-regular on 50 vertices is K50, graphical
        let odd_mess: Vec<u64> = (0..33).map(|i| (i * 7 + 1) % 40).collect();
        assert!(is_graphical(&nearest_graphical(&odd_mess)));
    }
}
