//! Extensions and baselines around the core reproduction.
//!
//! Everything here is something the paper *discusses* but does not
//! implement as its main contribution:
//!
//! * [`wavelet`] — the Haar-wavelet mechanism (Xiao, Wang, Gehrke, ICDE
//!   2010), which Sec. 6 cites and which Li et al. (PODS 2010) proved
//!   error-equivalent to the binary `H` strategy.
//! * [`blum`] — the Blum–Ligett–Roth equi-depth histogram that Appendix E
//!   compares against analytically; implemented so the `N^(2/3)` error
//!   growth can be measured.
//! * [`quadtree`] — 2-D universal histograms over a Morton-ordered grid,
//!   the paper's "multi-dimensional range queries" future-work item; the
//!   constrained inference is the same Theorem 3 machinery with `k = 4`.
//! * [`graphical`] — Erdős–Gallai graphicality checking and repair for
//!   degree sequences, the future-work constraint of Appendix B.
//! * [`matrix_mech`] — the matrix-mechanism view of strategies (Li et al.):
//!   exact expected-error computation for identity / hierarchical / wavelet
//!   strategy matrices via `hc-linalg`.
//! * [`discrete`] — the geometric (discrete Laplace) mechanism as an
//!   alternative noise distribution for the unattributed task (Appendix B's
//!   "other noise distributions" discussion).
//! * [`continual`] — the Chan–Shi–Song continual counter (Sec. 6), which is
//!   the `H` strategy over the time domain plus a monotonicity projection
//!   that reuses Theorem 1's isotonic solver.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod blum;
pub mod continual;
pub mod discrete;
pub mod graphical;
pub mod matrix_mech;
pub mod quadtree;
pub mod wavelet;
