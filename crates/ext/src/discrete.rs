//! The geometric (discrete Laplace) mechanism as an alternative noise
//! source for the unattributed task.
//!
//! Appendix B observes that the existence of `S̄` shows "there is another
//! differentially private noise distribution that is more accurate than
//! independent Laplace noise", and cites Ghosh et al.'s geometric mechanism
//! as the optimal mechanism for single counting queries. This module wires
//! that mechanism into the sorted-query pipeline: integer noise, same
//! post-processing. The ablation bench compares it against the Laplace
//! pipeline at equal ε.

use hc_core::unattributed::SortedRelease;
use hc_data::Histogram;
use hc_mech::{Epsilon, QuerySequence, SortedQuery};
use hc_noise::TwoSidedGeometric;
use rand::Rng;

/// The unattributed-histogram pipeline backed by the geometric mechanism.
#[derive(Debug, Clone, Copy)]
pub struct GeometricUnattributed {
    epsilon: Epsilon,
}

impl GeometricUnattributed {
    /// A pipeline calibrated to `epsilon`.
    pub fn new(epsilon: Epsilon) -> Self {
        Self { epsilon }
    }

    /// The configured ε.
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    /// Per-answer noise variance `2α/(1−α)²` with `α = e^(−ε)` — strictly
    /// below the Laplace mechanism's `2/ε²` at equal ε.
    pub fn noise_variance(&self) -> f64 {
        TwoSidedGeometric::with_budget(self.epsilon.value(), 1.0)
            .expect("valid ε")
            .variance()
    }

    /// Releases `s̃` with two-sided geometric noise (sensitivity 1, so the
    /// decay parameter is `e^(−ε)`); post-processing reuses the standard
    /// [`SortedRelease`] estimators.
    pub fn release<R: Rng + ?Sized>(&self, histogram: &Histogram, rng: &mut R) -> SortedRelease {
        let noise = TwoSidedGeometric::with_budget(self.epsilon.value(), 1.0).expect("valid ε");
        let values: Vec<f64> = SortedQuery
            .evaluate(histogram)
            .into_iter()
            .map(|v| v + noise.sample(rng) as f64)
            .collect();
        SortedRelease::from_noisy(self.epsilon, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_core::sum_squared_error;
    use hc_data::Domain;
    use hc_noise::rng_from_seed;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn example() -> Histogram {
        Histogram::from_counts(Domain::new("x", 32).unwrap(), vec![3; 32])
    }

    #[test]
    fn baseline_values_are_integral() {
        let p = GeometricUnattributed::new(eps(1.0));
        let mut rng = rng_from_seed(151);
        let rel = p.release(&example(), &mut rng);
        assert!(rel.baseline().iter().all(|v| v.fract() == 0.0));
    }

    #[test]
    fn variance_is_below_laplace_at_equal_epsilon() {
        let p = GeometricUnattributed::new(eps(1.0));
        let laplace_var = 2.0; // 2(Δ/ε)² with Δ = ε = 1
        assert!(p.noise_variance() < laplace_var);
    }

    #[test]
    fn empirical_variance_matches_formula() {
        let p = GeometricUnattributed::new(eps(0.5));
        let truth: Vec<f64> = example()
            .sorted_counts()
            .into_iter()
            .map(|c| c as f64)
            .collect();
        let mut rng = rng_from_seed(152);
        let trials = 2000;
        let mut total = 0.0;
        for _ in 0..trials {
            let rel = p.release(&example(), &mut rng);
            total += sum_squared_error(rel.baseline(), &truth);
        }
        let per_count = total / trials as f64 / truth.len() as f64;
        let expected = p.noise_variance();
        assert!(
            (per_count - expected).abs() / expected < 0.1,
            "measured {per_count} vs {expected}"
        );
    }

    #[test]
    fn inference_still_boosts_accuracy() {
        let p = GeometricUnattributed::new(eps(0.5));
        let truth: Vec<f64> = example()
            .sorted_counts()
            .into_iter()
            .map(|c| c as f64)
            .collect();
        let mut rng = rng_from_seed(153);
        let (mut base, mut inferred) = (0.0, 0.0);
        for _ in 0..200 {
            let rel = p.release(&example(), &mut rng);
            base += sum_squared_error(rel.baseline(), &truth);
            inferred += sum_squared_error(&rel.inferred(), &truth);
        }
        assert!(
            inferred * 3.0 < base,
            "inference gain too small: {inferred} vs {base}"
        );
    }
}
