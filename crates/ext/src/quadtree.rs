//! 2-D universal histograms over a Morton-ordered grid (future work of
//! Appendix B, "extend the technique for universal histograms to
//! multi-dimensional range queries").
//!
//! A `2^m × 2^m` grid is linearized in Morton (Z-order): interleaving the
//! bits of `(x, y)` makes every aligned `2^j × 2^j` square a *contiguous*
//! block of the 1-D order, so a quadtree over the grid is exactly the
//! complete `k = 4` interval tree over the Morton order. Theorem 3's
//! inference then applies unchanged — which is precisely why the extension
//! is natural.

use hc_core::hier::ConsistentTree;
use hc_data::{Domain, Histogram};
use hc_mech::{Epsilon, HierarchicalQuery, LaplaceMechanism, TreeShape};
use rand::Rng;

/// Interleaves the low 16 bits of `x` and `y` into a Morton code
/// (x in even bit positions, y in odd).
pub fn morton_encode(x: u32, y: u32) -> u64 {
    spread_bits(x) | (spread_bits(y) << 1)
}

/// Inverse of [`morton_encode`].
pub fn morton_decode(code: u64) -> (u32, u32) {
    (compact_bits(code), compact_bits(code >> 1))
}

fn spread_bits(v: u32) -> u64 {
    let mut x = v as u64 & 0xFFFF_FFFF;
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

fn compact_bits(v: u64) -> u32 {
    let mut x = v & 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x >> 4)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x >> 8)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x >> 16)) & 0x0000_0000_FFFF_FFFF;
    x as u32
}

/// An axis-aligned rectangle `[x0, x1] × [y0, y1]` (inclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rect {
    /// Inclusive min x.
    pub x0: u32,
    /// Inclusive min y.
    pub y0: u32,
    /// Inclusive max x.
    pub x1: u32,
    /// Inclusive max y.
    pub y1: u32,
}

impl Rect {
    /// Creates a rectangle; bounds must be ordered.
    pub fn new(x0: u32, y0: u32, x1: u32, y1: u32) -> Self {
        assert!(x0 <= x1 && y0 <= y1, "rectangle bounds reversed");
        Self { x0, y0, x1, y1 }
    }

    /// Number of covered cells.
    pub fn area(&self) -> u64 {
        (self.x1 - self.x0 + 1) as u64 * (self.y1 - self.y0 + 1) as u64
    }

    fn contains_square(&self, sq: &Square) -> bool {
        self.x0 <= sq.x
            && sq.x + sq.side - 1 <= self.x1
            && self.y0 <= sq.y
            && sq.y + sq.side - 1 <= self.y1
    }

    fn intersects_square(&self, sq: &Square) -> bool {
        !(sq.x > self.x1
            || sq.x + sq.side - 1 < self.x0
            || sq.y > self.y1
            || sq.y + sq.side - 1 < self.y0)
    }
}

/// An aligned square region of the grid (a quadtree node's footprint).
struct Square {
    x: u32,
    y: u32,
    side: u32,
}

/// A 2-D histogram over a `side × side` grid (side a power of two),
/// stored in Morton order.
#[derive(Debug, Clone)]
pub struct GridHistogram {
    side: u32,
    histogram: Histogram,
}

impl GridHistogram {
    /// Builds from a row-major count matrix (`counts[y][x]`).
    pub fn from_rows(counts: &[Vec<u64>]) -> Self {
        let side = counts.len() as u32;
        assert!(side.is_power_of_two(), "grid side must be a power of two");
        assert!(
            counts.iter().all(|row| row.len() == side as usize),
            "grid must be square"
        );
        let cells = (side as usize) * (side as usize);
        let mut morton = vec![0u64; cells];
        for (y, row) in counts.iter().enumerate() {
            for (x, &c) in row.iter().enumerate() {
                morton[morton_encode(x as u32, y as u32) as usize] = c;
            }
        }
        let domain = Domain::new("morton_cell", cells).expect("non-empty grid");
        Self {
            side,
            histogram: Histogram::from_counts(domain, morton),
        }
    }

    /// Grid side length.
    pub fn side(&self) -> u32 {
        self.side
    }

    /// The Morton-order histogram.
    pub fn histogram(&self) -> &Histogram {
        &self.histogram
    }

    /// True count inside a rectangle (for evaluation).
    pub fn rect_count(&self, rect: Rect) -> u64 {
        assert!(
            rect.x1 < self.side && rect.y1 < self.side,
            "rect outside grid"
        );
        let counts = self.histogram.counts();
        let mut acc = 0u64;
        for y in rect.y0..=rect.y1 {
            for x in rect.x0..=rect.x1 {
                acc += counts[morton_encode(x, y) as usize];
            }
        }
        acc
    }
}

/// The 2-D hierarchical pipeline: a quadtree (k = 4 tree over Morton order)
/// released with Laplace noise, then Theorem 3 inference.
#[derive(Debug, Clone, Copy)]
pub struct QuadtreeUniversal {
    epsilon: Epsilon,
}

impl QuadtreeUniversal {
    /// A pipeline calibrated to `epsilon`.
    pub fn new(epsilon: Epsilon) -> Self {
        Self { epsilon }
    }

    /// Releases the noisy quadtree over a grid histogram.
    pub fn release<R: Rng + ?Sized>(&self, grid: &GridHistogram, rng: &mut R) -> QuadtreeRelease {
        let query = HierarchicalQuery::new(4);
        let mech = LaplaceMechanism::new(self.epsilon);
        let output = mech.release(&query, grid.histogram(), rng);
        QuadtreeRelease {
            side: grid.side(),
            shape: query.shape(grid.histogram().len()),
            noisy: output.into_values(),
        }
    }
}

/// A released noisy quadtree.
#[derive(Debug, Clone)]
pub struct QuadtreeRelease {
    side: u32,
    shape: TreeShape,
    noisy: Vec<f64>,
}

impl QuadtreeRelease {
    /// Grid side length.
    pub fn side(&self) -> u32 {
        self.side
    }

    /// The quadtree geometry (`k = 4` over Morton order).
    pub fn shape(&self) -> &TreeShape {
        &self.shape
    }

    /// Constrained inference (Theorem 3 with k = 4): the consistent quadtree.
    pub fn infer(&self) -> ConsistentQuadtree {
        let values = hc_core::hier::hierarchical_inference(&self.shape, &self.noisy);
        ConsistentQuadtree {
            side: self.side,
            tree: ConsistentTree::new(self.shape.clone(), values, self.shape.leaves()),
        }
    }

    /// Rectangle query from the raw noisy tree ("Q̃" analogue): sums the
    /// minimal set of aligned squares tiling the rectangle.
    pub fn rect_query_subtree(&self, rect: Rect) -> f64 {
        assert!(
            rect.x1 < self.side && rect.y1 < self.side,
            "rect outside grid"
        );
        let mut acc = 0.0;
        self.accumulate(0, &rect, &mut |node| acc += self.noisy[node]);
        acc
    }

    /// Recursive quadtree walk: nodes fully inside `rect` are consumed
    /// whole; partial overlaps recurse.
    fn accumulate(&self, node: usize, rect: &Rect, visit: &mut impl FnMut(usize)) {
        let sq = self.node_square(node);
        if rect.contains_square(&sq) {
            visit(node);
            return;
        }
        if !rect.intersects_square(&sq) {
            return;
        }
        if self.shape.is_leaf(node) {
            return; // disjoint leaf (partial impossible at side 1)
        }
        for child in self.shape.children(node) {
            self.accumulate(child, rect, visit);
        }
    }

    /// The aligned square a node covers, derived from its Morton leaf span.
    fn node_square(&self, node: usize) -> Square {
        let span = self.shape.leaf_span(node);
        let side = ((span.len() as f64).sqrt()) as u32;
        let (x, y) = morton_decode(span.lo() as u64);
        Square { x, y, side }
    }
}

/// A consistent (post-inference) quadtree answering rectangle queries.
#[derive(Debug, Clone)]
pub struct ConsistentQuadtree {
    side: u32,
    tree: ConsistentTree,
}

impl ConsistentQuadtree {
    /// Grid side length.
    pub fn side(&self) -> u32 {
        self.side
    }

    /// The underlying consistent tree (Morton order).
    pub fn tree(&self) -> &ConsistentTree {
        &self.tree
    }

    /// Rectangle query: sums node values over the minimal aligned-square
    /// tiling (consistency makes this equal to summing cells).
    pub fn rect_query(&self, rect: Rect) -> f64 {
        assert!(
            rect.x1 < self.side && rect.y1 < self.side,
            "rect outside grid"
        );
        let shape = self.tree.shape().clone();
        let values = self.tree.node_values();
        let mut acc = 0.0;
        let mut stack = vec![0usize];
        while let Some(node) = stack.pop() {
            let span = shape.leaf_span(node);
            let side = ((span.len() as f64).sqrt()) as u32;
            let (x, y) = morton_decode(span.lo() as u64);
            let sq = Square { x, y, side };
            if rect.contains_square(&sq) {
                acc += values[node];
            } else if rect.intersects_square(&sq) && !shape.is_leaf(node) {
                stack.extend(shape.children(node));
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_mech::QuerySequence;
    use hc_noise::rng_from_seed;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn checkerboard(side: usize) -> GridHistogram {
        let rows: Vec<Vec<u64>> = (0..side)
            .map(|y| (0..side).map(|x| ((x + y) % 2) as u64 * 3).collect())
            .collect();
        GridHistogram::from_rows(&rows)
    }

    #[test]
    fn morton_round_trips() {
        for (x, y) in [
            (0u32, 0u32),
            (1, 0),
            (0, 1),
            (5, 9),
            (255, 128),
            (65_535, 1),
        ] {
            let code = morton_encode(x, y);
            assert_eq!(morton_decode(code), (x, y), "({x},{y})");
        }
    }

    #[test]
    fn morton_aligned_squares_are_contiguous() {
        // Every aligned 2x2 square occupies 4 consecutive Morton codes.
        for (x, y) in [(0u32, 0u32), (2, 0), (0, 2), (4, 6)] {
            let base = morton_encode(x, y);
            let codes = [
                morton_encode(x, y),
                morton_encode(x + 1, y),
                morton_encode(x, y + 1),
                morton_encode(x + 1, y + 1),
            ];
            let max = *codes.iter().max().unwrap();
            assert_eq!(max - base, 3, "square at ({x},{y}) not contiguous");
        }
    }

    #[test]
    fn grid_histogram_counts_cells() {
        let g = checkerboard(4);
        assert_eq!(g.histogram().total(), 8 * 3);
        assert_eq!(g.rect_count(Rect::new(0, 0, 3, 3)), 24);
        assert_eq!(g.rect_count(Rect::new(0, 0, 0, 0)), 0);
        assert_eq!(g.rect_count(Rect::new(1, 0, 1, 0)), 3);
    }

    #[test]
    fn noiseless_subtree_rect_query_is_exact() {
        let g = checkerboard(8);
        let query = HierarchicalQuery::new(4);
        let truth = query.evaluate(g.histogram());
        let rel = QuadtreeRelease {
            side: 8,
            shape: query.shape(g.histogram().len()),
            noisy: truth,
        };
        for rect in [
            Rect::new(0, 0, 7, 7),
            Rect::new(1, 1, 6, 6),
            Rect::new(0, 0, 3, 3),
            Rect::new(2, 5, 2, 5),
        ] {
            let got = rel.rect_query_subtree(rect);
            let want = g.rect_count(rect) as f64;
            assert!((got - want).abs() < 1e-9, "{rect:?}: {got} vs {want}");
        }
    }

    #[test]
    fn inference_produces_consistent_tree_and_exact_rects_without_noise() {
        let g = checkerboard(8);
        let query = HierarchicalQuery::new(4);
        let truth = query.evaluate(g.histogram());
        let rel = QuadtreeRelease {
            side: 8,
            shape: query.shape(g.histogram().len()),
            noisy: truth,
        };
        let consistent = rel.infer();
        assert!(consistent.tree().max_consistency_violation() < 1e-9);
        let rect = Rect::new(1, 2, 5, 6);
        let got = consistent.rect_query(rect);
        assert!((got - g.rect_count(rect) as f64).abs() < 1e-6);
    }

    #[test]
    fn inference_reduces_error_on_large_rects() {
        let g = checkerboard(16);
        let pipeline = QuadtreeUniversal::new(eps(0.2));
        let rect = Rect::new(1, 1, 14, 14);
        let truth = g.rect_count(rect) as f64;
        let mut rng = rng_from_seed(131);
        let trials = 100;
        let (mut raw_err, mut inf_err) = (0.0, 0.0);
        for _ in 0..trials {
            let rel = pipeline.release(&g, &mut rng);
            let raw = rel.rect_query_subtree(rect);
            let inf = rel.infer().rect_query(rect);
            raw_err += (raw - truth) * (raw - truth);
            inf_err += (inf - truth) * (inf - truth);
        }
        assert!(inf_err < raw_err, "inferred {inf_err} vs raw {raw_err}");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_grid_is_rejected() {
        let rows = vec![vec![0u64; 3]; 3];
        let _ = GridHistogram::from_rows(&rows);
    }
}
